exception Bad_image of string

(* WAM images are loaded with [Marshal], which is NOT safe on untrusted
   bytes (a crafted image can crash the runtime or build type-confused
   values). That is acceptable here only because images come from
   trusted local files named on the command line — loading one is
   equivalent to running a local program. They must never be accepted
   from the network; the query server's CONSULT path deliberately has
   no fmt for them (its fmt=obj images use Obj_file's validated
   explicit codec instead). *)
let magic = "XSBWAM01"

let save program path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Emulator.write_image program oc)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header = really_input_string ic (String.length magic) in
      if header <> magic then raise (Bad_image "bad magic header");
      Emulator.read_image ic)

let load_into program path =
  let loaded = load path in
  let preds = Emulator.exported_code loaded in
  List.iter (fun ((name, arity), code) -> Emulator.install program name arity code) preds;
  List.iter
    (fun (name, arity) -> Emulator.declare_tabled program name arity)
    (Emulator.tabled_preds loaded);
  List.length preds
