(** CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Used to
    frame journal records so a torn or bit-rotted record is detected
    before its payload is ever decoded. *)

val string : ?crc:int32 -> string -> int32
(** [string s] is the CRC of [s]; pass [~crc] to continue a running
    checksum. *)

val to_int : int32 -> int
(** The checksum as a non-negative [int] (for u32 framing). *)
