(* The standard reflected CRC-32: polynomial 0xEDB88320, init and
   final xor 0xFFFFFFFF. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let string ?(crc = 0l) s =
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let to_int c = Int32.to_int c land 0xffffffff
