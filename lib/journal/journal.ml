open Xsb_term
open Xsb_db

(* ---------- sync policies ---------- *)

type sync_policy = Never | Interval of int | Always

let sync_policy_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let interval n =
    match int_of_string_opt n with Some n when n > 0 -> Some (Interval n) | _ -> None
  in
  match s with
  | "never" -> Some Never
  | "always" -> Some Always
  | "interval" -> Some (Interval 64)
  | _ -> (
      match String.index_opt s '=' with
      | Some i when String.sub s 0 i = "interval" ->
          interval (String.sub s (i + 1) (String.length s - i - 1))
      | _ -> interval s)

let sync_policy_to_string = function
  | Never -> "never"
  | Always -> "always"
  | Interval n -> Printf.sprintf "interval=%d" n

(* ---------- mutation records ---------- *)

type mutation =
  | Add_clause of {
      name : string;
      arity : int;
      front : bool;
      dynamic : bool;
      clause : Canon.t;
    }
  | Retract_clause of { name : string; arity : int; clause : Canon.t }
  | Remove_pred of { name : string; arity : int }
  | Set_tabled of { name : string; arity : int }
  | Set_table_mode of { name : string; arity : int; mode : Pred.table_mode }
  | Set_dynamic of { name : string; arity : int }
  | Set_index of {
      name : string;
      arity : int;
      spec : Pred.index_spec;
      size_hint : int option;
    }
  | Declare_hilog of string
  | Declare_module of { module_name : string; exports : (string * int) list }
  | Declare_op of { priority : int; fixity : string; op_name : string }
  | Load_image of string

exception Corrupt_record of string

let clause_canon (c : Pred.clause) =
  Canon.of_term (Term.Struct (":-", [| c.Pred.head; c.Pred.body |]))

let of_db_mutation : Database.mutation -> mutation = function
  | Database.Added_clause { pred; clause; front } ->
      Add_clause
        {
          name = Pred.name pred;
          arity = Pred.arity pred;
          front;
          dynamic = Pred.kind pred = Pred.Dynamic;
          clause = clause_canon clause;
        }
  | Database.Retracted_clause { pred; clause } ->
      Retract_clause
        { name = Pred.name pred; arity = Pred.arity pred; clause = clause_canon clause }
  | Database.Removed_pred { name; arity } -> Remove_pred { name; arity }
  | Database.Tabled_pred { name; arity } -> Set_tabled { name; arity }
  | Database.Table_mode_pred { name; arity; mode } -> Set_table_mode { name; arity; mode }
  | Database.Dynamic_pred { name; arity } -> Set_dynamic { name; arity }
  | Database.Indexed_pred { name; arity; spec; size_hint } ->
      Set_index { name; arity; spec; size_hint }
  | Database.Hilog_symbol name -> Declare_hilog name
  | Database.Module_decl { Database.module_name; exports } ->
      Declare_module { module_name; exports }
  | Database.Op_decl { priority; fixity; op_name } ->
      Declare_op { priority; fixity = Xsb_parse.Ops.fixity_to_string fixity; op_name }

(* Replay. The records carry post-encoding clauses, so nothing here
   re-runs HiLog encoding: the database ends up byte-identical to the
   one that produced the stream. Retractions and removals of
   already-gone targets are no-ops, keeping replay deterministic. *)
let apply_mutation db = function
  | Add_clause { name; arity; front; dynamic; clause } -> (
      let kind = if dynamic then Pred.Dynamic else Pred.Static in
      let pred = Database.declare db ~kind name arity in
      if dynamic && Pred.kind pred <> Pred.Dynamic then Pred.set_kind pred Pred.Dynamic;
      match Term.deref (Canon.to_term clause) with
      | Term.Struct (":-", [| head; body |]) ->
          ignore (Database.insert_clause db ~front pred ~head ~body)
      | _ -> raise (Corrupt_record "clause record is not a ':-'/2 term"))
  | Retract_clause { name; arity; clause } -> (
      match Database.find db name arity with
      | None -> ()
      | Some pred ->
          let rec go = function
            | [] -> ()
            | c :: rest ->
                if Canon.equal (clause_canon c) clause then Database.retract_clause db pred c
                else go rest
          in
          go (Pred.clauses pred))
  | Remove_pred { name; arity } -> Database.remove_pred db name arity
  | Set_tabled { name; arity } -> Database.set_tabled db name arity
  | Set_table_mode { name; arity; mode } -> Database.set_table_mode db name arity mode
  | Set_dynamic { name; arity } -> ignore (Database.set_dynamic db name arity)
  | Set_index { name; arity; spec; size_hint } ->
      Database.set_index db ?size_hint name arity spec
  | Declare_hilog name -> Database.declare_hilog db name
  | Declare_module { module_name; exports } -> Database.declare_module db module_name exports
  | Declare_op { priority; fixity; op_name } -> (
      match Xsb_parse.Ops.fixity_of_string fixity with
      | Some f -> Database.add_op db priority f op_name
      | None -> raise (Corrupt_record ("bad operator fixity " ^ fixity)))
  | Load_image image -> ignore (Obj_file.load_string db image)

(* ---------- the record codec ---------- *)

let put_index_spec b spec size_hint =
  (match spec with
  | Pred.Fields combos ->
      Codec.put_u8 b 0;
      Codec.put_u32 b (List.length combos);
      List.iter
        (fun combo ->
          Codec.put_u32 b (List.length combo);
          List.iter (Codec.put_u32 b) combo)
        combos
  | Pred.First_string_index -> Codec.put_u8 b 1
  | Pred.Disc_tree_index -> Codec.put_u8 b 2);
  match size_hint with
  | None -> Codec.put_bool b false
  | Some n ->
      Codec.put_bool b true;
      Codec.put_u32 b n

let get_index_spec c =
  let spec =
    match Codec.get_u8 c with
    | 0 -> Pred.Fields (Codec.get_list c (fun c -> Codec.get_list c Codec.get_u32))
    | 1 -> Pred.First_string_index
    | 2 -> Pred.Disc_tree_index
    | _ -> Codec.decode_error "bad index tag"
  in
  let size_hint = if Codec.get_bool c then Some (Codec.get_u32 c) else None in
  (spec, size_hint)

let table_mode_tag = function
  | Pred.Variant -> 0
  | Pred.Incremental -> 1
  | Pred.Subsumptive op -> (
      match op with
      | Xsb_index.Answer_store.Subsumption.Min -> 2
      | Max -> 3
      | Sum -> 4
      | Count -> 5
      | First -> 6)
  | Pred.Subsumption -> 7

let table_mode_of_tag = function
  | 0 -> Pred.Variant
  | 1 -> Pred.Incremental
  | 2 -> Pred.Subsumptive Xsb_index.Answer_store.Subsumption.Min
  | 3 -> Pred.Subsumptive Max
  | 4 -> Pred.Subsumptive Sum
  | 5 -> Pred.Subsumptive Count
  | 6 -> Pred.Subsumptive First
  | 7 -> Pred.Subsumption
  | _ -> Codec.decode_error "bad table mode tag"

let encode_mutation m =
  let b = Buffer.create 64 in
  (match m with
  | Add_clause { name; arity; front; dynamic; clause } ->
      Codec.put_u8 b 0;
      Codec.put_string b name;
      Codec.put_u32 b arity;
      Codec.put_bool b front;
      Codec.put_bool b dynamic;
      Codec.put_canon b clause
  | Retract_clause { name; arity; clause } ->
      Codec.put_u8 b 1;
      Codec.put_string b name;
      Codec.put_u32 b arity;
      Codec.put_canon b clause
  | Remove_pred { name; arity } ->
      Codec.put_u8 b 2;
      Codec.put_string b name;
      Codec.put_u32 b arity
  | Set_tabled { name; arity } ->
      Codec.put_u8 b 3;
      Codec.put_string b name;
      Codec.put_u32 b arity
  | Set_dynamic { name; arity } ->
      Codec.put_u8 b 4;
      Codec.put_string b name;
      Codec.put_u32 b arity
  | Set_index { name; arity; spec; size_hint } ->
      Codec.put_u8 b 5;
      Codec.put_string b name;
      Codec.put_u32 b arity;
      put_index_spec b spec size_hint
  | Declare_hilog name ->
      Codec.put_u8 b 6;
      Codec.put_string b name
  | Declare_module { module_name; exports } ->
      Codec.put_u8 b 7;
      Codec.put_string b module_name;
      Codec.put_u32 b (List.length exports);
      List.iter
        (fun (n, a) ->
          Codec.put_string b n;
          Codec.put_u32 b a)
        exports
  | Declare_op { priority; fixity; op_name } ->
      Codec.put_u8 b 8;
      Codec.put_u32 b priority;
      Codec.put_string b fixity;
      Codec.put_string b op_name
  | Load_image image ->
      Codec.put_u8 b 9;
      Codec.put_string b image
  | Set_table_mode { name; arity; mode } ->
      Codec.put_u8 b 10;
      Codec.put_string b name;
      Codec.put_u32 b arity;
      Codec.put_u8 b (table_mode_tag mode));
  Buffer.contents b

let decode_mutation payload =
  try
    let c = Codec.cursor payload in
    let name_arity () =
      let name = Codec.get_string c in
      let arity = Codec.get_u32 c in
      (name, arity)
    in
    let m =
      match Codec.get_u8 c with
      | 0 ->
          let name, arity = name_arity () in
          let front = Codec.get_bool c in
          let dynamic = Codec.get_bool c in
          let clause = Codec.get_canon c in
          Add_clause { name; arity; front; dynamic; clause }
      | 1 ->
          let name, arity = name_arity () in
          let clause = Codec.get_canon c in
          Retract_clause { name; arity; clause }
      | 2 ->
          let name, arity = name_arity () in
          Remove_pred { name; arity }
      | 3 ->
          let name, arity = name_arity () in
          Set_tabled { name; arity }
      | 4 ->
          let name, arity = name_arity () in
          Set_dynamic { name; arity }
      | 5 ->
          let name, arity = name_arity () in
          let spec, size_hint = get_index_spec c in
          Set_index { name; arity; spec; size_hint }
      | 6 -> Declare_hilog (Codec.get_string c)
      | 7 ->
          let module_name = Codec.get_string c in
          let exports =
            Codec.get_list c (fun c ->
                let n = Codec.get_string c in
                let a = Codec.get_u32 c in
                (n, a))
          in
          Declare_module { module_name; exports }
      | 8 ->
          let priority = Codec.get_u32 c in
          let fixity = Codec.get_string c in
          let op_name = Codec.get_string c in
          Declare_op { priority; fixity; op_name }
      | 9 -> Load_image (Codec.get_string c)
      | 10 ->
          let name, arity = name_arity () in
          let mode = table_mode_of_tag (Codec.get_u8 c) in
          Set_table_mode { name; arity; mode }
      | _ -> Codec.decode_error "bad record tag"
    in
    if c.Codec.pos <> String.length payload then
      Codec.decode_error "trailing bytes after record";
    m
  with Codec.Decode_error msg -> raise (Corrupt_record msg)

(* ---------- framing ---------- *)

(* must fit any snapshot image record: Obj_file.max_payload + headroom *)
let max_record = (256 * 1024 * 1024) + 4096

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  Codec.put_u32 b (String.length payload);
  Codec.put_u32 b (Crc32.to_int (Crc32.string payload));
  Buffer.add_string b payload;
  Buffer.contents b

let frame_record m = frame (encode_mutation m)

type read_result =
  | Record of mutation * int
  | End_clean
  | End_torn
  | Corrupt of string

let get_be32 buf pos = Int32.to_int (String.get_int32_be buf pos) land 0xffffffff

let read_framed buf pos =
  let len = String.length buf in
  if pos = len then End_clean
  else if len - pos < 8 then End_torn
  else
    let rlen = get_be32 buf pos in
    let crc = get_be32 buf (pos + 4) in
    if rlen > max_record then
      if pos + 8 + rlen > len then End_torn else Corrupt "implausible record length"
    else if pos + 8 + rlen > len then End_torn
    else
      let payload = String.sub buf (pos + 8) rlen in
      if Crc32.to_int (Crc32.string payload) <> crc then
        (* a bad checksum on the very last record is a torn write; one
           with valid data after it cannot be *)
        if pos + 8 + rlen = len then End_torn else Corrupt "record checksum mismatch"
      else
        match decode_mutation payload with
        | m -> Record (m, pos + 8 + rlen)
        | exception Corrupt_record msg -> Corrupt msg

(* records, end-of-valid-prefix offset, how scanning ended *)
let scan buf start =
  let rec go acc pos =
    match read_framed buf pos with
    | Record (m, next) -> go (m :: acc) next
    | End_clean -> (List.rev acc, pos, `Clean)
    | End_torn -> (List.rev acc, pos, `Torn)
    | Corrupt msg -> (List.rev acc, pos, `Corrupt msg)
  in
  go [] start

(* ---------- file headers ---------- *)

let journal_magic = "XSBJNL01"
let snapshot_magic = "XSBSNP01"
let header_len = 16

let header magic gen =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  Buffer.add_int64_be b gen;
  Buffer.contents b

(* ---------- the journal ---------- *)

type config = { dir : string; sync : sync_policy; compact_bytes : int }

let default_config ~dir = { dir; sync = Always; compact_bytes = 8 * 1024 * 1024 }

type stats = {
  mutable records_appended : int;
  mutable bytes_appended : int;
  mutable fsyncs : int;
  mutable compactions : int;
  mutable recovered_records : int;
  mutable torn_bytes_dropped : int;
  mutable recovery_ms : float;
}

let fresh_stats () =
  {
    records_appended = 0;
    bytes_appended = 0;
    fsyncs = 0;
    compactions = 0;
    recovered_records = 0;
    torn_bytes_dropped = 0;
    recovery_ms = 0.0;
  }

type t = {
  cfg : config;
  db : Database.t;
  mutable fd : Unix.file_descr;
  mutable written : int;
  mutable synced : int;
  mutable pending : int;  (* records appended since the last fsync *)
  mutable generation : int64;
  mutable failed_site : string option;
  mutable closed : bool;
  mutable attached : bool;
  (* operator declarations cannot be enumerated back out of [Ops.t],
     so every one that enters the stream is carried into snapshots *)
  mutable op_decls : mutation list;  (* reversed *)
  stats : stats;
}

exception Io_error of { site : string; message : string }

exception Recovery_error of {
  file : string;
  offset : int;
  records_ok : int;
  message : string;
}

let io_error site message = raise (Io_error { site; message })

let guard_usable j =
  if j.closed then io_error "journal" "journal is closed";
  match j.failed_site with
  | Some site -> io_error site "journal write path failed earlier; reopen to recover"
  | None -> ()

let write_all fd s =
  let len = String.length s in
  let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
  go 0

(* every I/O primitive passes its named failpoint first; a Unix error
   or an injected [Fail] poisons the journal (typed [Io_error], the
   server's read-only trigger), an injected crash raises
   [Failpoint.Injected_crash] after mimicking the partial effect *)

let write_site j site fd bytes =
  (match Failpoint.check site with
  | Some Failpoint.Fail ->
      j.failed_site <- Some site;
      io_error site "injected I/O failure"
  | Some (Failpoint.Short_write n) ->
      j.failed_site <- Some site;
      let n = min (max n 0) (String.length bytes) in
      (try write_all fd (String.sub bytes 0 n) with Unix.Unix_error _ -> ());
      raise (Failpoint.Injected_crash site)
  | Some Failpoint.Crash ->
      j.failed_site <- Some site;
      raise (Failpoint.Injected_crash site)
  | None -> ());
  try write_all fd bytes
  with Unix.Unix_error (e, _, _) ->
    j.failed_site <- Some site;
    io_error site (Unix.error_message e)

let fsync_site j site fd =
  (match Failpoint.check site with
  | Some Failpoint.Fail ->
      j.failed_site <- Some site;
      io_error site "injected fsync failure"
  | Some (Failpoint.Crash | Failpoint.Short_write _) ->
      j.failed_site <- Some site;
      raise (Failpoint.Injected_crash site)
  | None -> ());
  try Unix.fsync fd
  with Unix.Unix_error (e, _, _) ->
    j.failed_site <- Some site;
    io_error site (Unix.error_message e)

let rename_site j site src dst =
  (match Failpoint.check site with
  | Some Failpoint.Fail ->
      j.failed_site <- Some site;
      io_error site "injected rename failure"
  | Some (Failpoint.Crash | Failpoint.Short_write _) ->
      j.failed_site <- Some site;
      raise (Failpoint.Injected_crash site)
  | None -> ());
  try Unix.rename src dst
  with Unix.Unix_error (e, _, _) ->
    j.failed_site <- Some site;
    io_error site (Unix.error_message e)

(* directory fsync: makes a rename durable. Some filesystems refuse
   fsync on directories; that is not a data-loss signal. *)
let fsync_dir_raw dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let fsync_dir_site j site dir =
  (match Failpoint.check site with
  | Some Failpoint.Fail ->
      j.failed_site <- Some site;
      io_error site "injected directory fsync failure"
  | Some (Failpoint.Crash | Failpoint.Short_write _) ->
      j.failed_site <- Some site;
      raise (Failpoint.Injected_crash site)
  | None -> ());
  fsync_dir_raw dir

(* ---------- recovery ---------- *)

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let journal_path cfg = Filename.concat cfg.dir "journal.log"
let snapshot_path cfg = Filename.concat cfg.dir "snapshot.bin"

(* a fresh journal containing only its header, published atomically
   (tmp + rename) so a crash can never leave a torn header behind.
   The returned fd stays valid across the rename and is positioned at
   the end of the header. *)
let create_journal_file jpath gen =
  let tmp = jpath ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     write_all fd (header journal_magic gen);
     Unix.fsync fd;
     Unix.rename tmp jpath
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     io_error "journal.open" (Unix.error_message e));
  fsync_dir_raw (Filename.dirname jpath);
  fd

let open_ ?(tolerate_corruption = false) cfg db =
  let t0 = Unix.gettimeofday () in
  mkdir_p cfg.dir;
  let jpath = journal_path cfg and spath = snapshot_path cfg in
  let stats = fresh_stats () in
  let op_decls = ref [] in
  let recovery_error file offset records_ok message =
    raise (Recovery_error { file; offset; records_ok; message })
  in
  let apply_all file records =
    List.iteri
      (fun i m ->
        (match m with Declare_op _ -> op_decls := m :: !op_decls | _ -> ());
        try apply_mutation db m with
        | Corrupt_record msg | Obj_file.Bad_object_file msg ->
            recovery_error file (-1) i ("record failed to apply: " ^ msg))
      records;
    stats.recovered_records <- stats.recovered_records + List.length records
  in
  (* 1. the snapshot. It is published atomically, so unlike the journal
     it has no legitimate torn tail: anything short of clean is
     corruption (recoverable as a prefix only under
     [~tolerate_corruption]). *)
  let snap_gen =
    match read_file spath with
    | None -> 0L
    | Some buf ->
        if String.length buf < header_len || String.sub buf 0 8 <> snapshot_magic then
          recovery_error spath 0 0 "bad snapshot header";
        let gen = String.get_int64_be buf 8 in
        let records, end_pos, status = scan buf header_len in
        (match status with
        | `Clean -> ()
        | (`Torn | `Corrupt _) when tolerate_corruption -> ()
        | `Torn -> recovery_error spath end_pos (List.length records) "truncated snapshot"
        | `Corrupt msg -> recovery_error spath end_pos (List.length records) msg);
        apply_all spath records;
        gen
  in
  (* 2. the journal tail *)
  let generation, fd, written =
    match read_file jpath with
    | None ->
        let g = Int64.add snap_gen 1L in
        (g, create_journal_file jpath g, header_len)
    | Some buf when String.length buf < header_len ->
        (* crashed while the very first header was being written: no
           record can ever have followed it *)
        let g = Int64.add snap_gen 1L in
        (g, create_journal_file jpath g, header_len)
    | Some buf ->
        if String.sub buf 0 8 <> journal_magic then
          recovery_error jpath 0 0 "bad journal magic";
        let g = String.get_int64_be buf 8 in
        if Int64.compare g snap_gen <= 0 then begin
          (* stale: the crash hit compaction after the snapshot rename
             but before the journal rotation — every record here is
             already inside the snapshot, so replaying would double
             them. Rotate to the next generation. *)
          let g' = Int64.add snap_gen 1L in
          (g', create_journal_file jpath g', header_len)
        end
        else if Int64.compare g (Int64.add snap_gen 1L) > 0 then
          recovery_error jpath 8 0
            (Printf.sprintf "journal generation %Ld skips snapshot generation %Ld" g snap_gen)
        else begin
          let records, end_pos, status = scan buf header_len in
          (match status with
          | `Clean -> ()
          | `Torn -> stats.torn_bytes_dropped <- String.length buf - end_pos
          | `Corrupt _ when tolerate_corruption ->
              stats.torn_bytes_dropped <- String.length buf - end_pos
          | `Corrupt msg -> recovery_error jpath end_pos (List.length records) msg);
          apply_all jpath records;
          (* drop the torn tail so the next append starts at the end of
             the valid prefix *)
          let fd =
            try Unix.openfile jpath [ Unix.O_WRONLY ] 0o644
            with Unix.Unix_error (e, _, _) -> io_error "journal.open" (Unix.error_message e)
          in
          (try
             if end_pos < String.length buf then Unix.ftruncate fd end_pos;
             ignore (Unix.lseek fd end_pos Unix.SEEK_SET);
             Unix.fsync fd
           with Unix.Unix_error (e, _, _) ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             io_error "journal.open" (Unix.error_message e));
          (g, fd, end_pos)
        end
  in
  stats.recovery_ms <- 1000.0 *. (Unix.gettimeofday () -. t0);
  {
    cfg;
    db;
    fd;
    written;
    synced = written;
    pending = 0;
    generation;
    failed_site = None;
    closed = false;
    attached = false;
    op_decls = !op_decls;
    stats;
  }

(* ---------- appending ---------- *)

let do_sync j =
  fsync_site j "journal.append.sync" j.fd;
  j.synced <- j.written;
  j.pending <- 0;
  j.stats.fsyncs <- j.stats.fsyncs + 1

(* everything reachable from the database right now, as one snapshot
   record stream: declarations the object-file image cannot carry, then
   the image itself *)
let snapshot_records j =
  List.map (fun s -> Declare_hilog s) (Database.hilog_symbols j.db)
  @ List.map
      (fun (m : Database.module_info) ->
        Declare_module { module_name = m.Database.module_name; exports = m.Database.exports })
      (Database.modules j.db)
  @ List.rev j.op_decls
  @ [ Load_image (Obj_file.to_string j.db) ]
  (* tabling modes ride as records after the image: the object-file
     format carries only the tabled flag, and modes are enumerable from
     the predicate registry (unlike op declarations) *)
  @ List.filter_map
      (fun p ->
        match Pred.table_mode p with
        | Pred.Variant -> None
        | mode ->
            Some (Set_table_mode { name = Pred.name p; arity = Pred.arity p; mode }))
      (Database.preds j.db)

let compact j =
  guard_usable j;
  let jpath = journal_path j.cfg and spath = snapshot_path j.cfg in
  (* 1. write the snapshot aside *)
  let stmp = spath ^ ".tmp" in
  let b = Buffer.create 65536 in
  Buffer.add_string b (header snapshot_magic j.generation);
  List.iter (fun m -> Buffer.add_string b (frame (encode_mutation m))) (snapshot_records j);
  let sfd =
    try Unix.openfile stmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) ->
      j.failed_site <- Some "snapshot.write";
      io_error "snapshot.write" (Unix.error_message e)
  in
  (try
     write_site j "snapshot.write" sfd (Buffer.contents b);
     fsync_site j "snapshot.sync" sfd
   with e ->
     (try Unix.close sfd with Unix.Unix_error _ -> ());
     raise e);
  (try Unix.close sfd with Unix.Unix_error _ -> ());
  (* 2. publish it atomically: after this rename, recovery prefers the
     snapshot and ignores the (now stale-generation) journal *)
  rename_site j "snapshot.rename" stmp spath;
  fsync_dir_site j "dir.sync" j.cfg.dir;
  (* 3. rotate the journal to the next generation *)
  let next = Int64.add j.generation 1L in
  let jtmp = jpath ^ ".tmp" in
  let nfd =
    try Unix.openfile jtmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) ->
      j.failed_site <- Some "journal.rotate.write";
      io_error "journal.rotate.write" (Unix.error_message e)
  in
  (try
     write_site j "journal.rotate.write" nfd (header journal_magic next);
     fsync_site j "journal.rotate.sync" nfd
   with e ->
     (try Unix.close nfd with Unix.Unix_error _ -> ());
     raise e);
  rename_site j "journal.rotate.rename" jtmp jpath;
  fsync_dir_site j "dir.sync" j.cfg.dir;
  (try Unix.close j.fd with Unix.Unix_error _ -> ());
  j.fd <- nfd;
  j.generation <- next;
  j.written <- header_len;
  j.synced <- header_len;
  j.pending <- 0;
  j.stats.compactions <- j.stats.compactions + 1

let append j m =
  guard_usable j;
  (match m with Declare_op _ -> j.op_decls <- m :: j.op_decls | _ -> ());
  let bytes = frame (encode_mutation m) in
  write_site j "journal.append.write" j.fd bytes;
  j.written <- j.written + String.length bytes;
  j.pending <- j.pending + 1;
  j.stats.records_appended <- j.stats.records_appended + 1;
  j.stats.bytes_appended <- j.stats.bytes_appended + String.length bytes;
  (match j.cfg.sync with
  | Always -> do_sync j
  | Interval n -> if j.pending >= n then do_sync j
  | Never -> ());
  if j.cfg.compact_bytes > 0 && j.written >= j.cfg.compact_bytes then compact j

let sync j =
  guard_usable j;
  if j.written > j.synced || j.pending > 0 then do_sync j

let close j =
  if not j.closed then begin
    if j.failed_site = None && j.written > j.synced then (try do_sync j with _ -> ());
    j.closed <- true;
    try Unix.close j.fd with Unix.Unix_error _ -> ()
  end

let attach j =
  if not j.attached then begin
    j.attached <- true;
    (* closed journals go quiet (a detached CLI session keeps working);
       failed ones keep raising so the caller can degrade explicitly *)
    Database.on_mutation j.db (fun m -> if not j.closed then append j (of_db_mutation m))
  end

let written_bytes j = j.written
let durable_bytes j = j.synced
let generation j = j.generation
let failed j = j.failed_site
let stats j = j.stats

let stats_json j =
  Xsb_obs.Json.Obj
    [
      ("generation", Xsb_obs.Json.Int (Int64.to_int j.generation));
      ("sync", Xsb_obs.Json.String (sync_policy_to_string j.cfg.sync));
      ("records_appended", Xsb_obs.Json.Int j.stats.records_appended);
      ("bytes_appended", Xsb_obs.Json.Int j.stats.bytes_appended);
      ("fsyncs", Xsb_obs.Json.Int j.stats.fsyncs);
      ("compactions", Xsb_obs.Json.Int j.stats.compactions);
      ("recovered_records", Xsb_obs.Json.Int j.stats.recovered_records);
      ("torn_bytes_dropped", Xsb_obs.Json.Int j.stats.torn_bytes_dropped);
      ("recovery_ms", Xsb_obs.Json.Float j.stats.recovery_ms);
      ("written_bytes", Xsb_obs.Json.Int j.written);
      ("durable_bytes", Xsb_obs.Json.Int j.synced);
    ]

let publish_metrics j reg =
  let module M = Xsb_obs.Metrics in
  let s = j.stats in
  let g help name v =
    M.Gauge.set (M.gauge reg ~help ("xsb_journal_" ^ name)) v
  in
  g "Records appended to the journal." "records_appended_total"
    (Float.of_int s.records_appended);
  g "Payload bytes appended to the journal." "bytes_appended_total"
    (Float.of_int s.bytes_appended);
  g "fsync(2) calls issued by the journal." "fsyncs_total" (Float.of_int s.fsyncs);
  g "Snapshot compactions performed." "compactions_total" (Float.of_int s.compactions);
  g "Records replayed at recovery (snapshot + journal)." "recovered_records"
    (Float.of_int s.recovered_records);
  g "Torn tail bytes dropped at recovery." "torn_bytes_dropped"
    (Float.of_int s.torn_bytes_dropped);
  g "Wall-clock milliseconds spent in the last recovery." "recovery_ms" s.recovery_ms;
  g "Journal file size, including records not yet fsynced." "written_bytes"
    (Float.of_int j.written);
  g "Bytes known durable (covered by the last fsync)." "durable_bytes"
    (Float.of_int j.synced);
  g "Durability lag: written bytes not yet fsynced." "lag_bytes"
    (Float.of_int (j.written - j.synced))

let pp_stats ppf j =
  Format.fprintf ppf
    "journal: generation %Ld, %d records / %d bytes appended, %d fsyncs, %d compactions, %d \
     recovered, recovery %.1f ms, durable %d/%d bytes@."
    j.generation j.stats.records_appended j.stats.bytes_appended j.stats.fsyncs
    j.stats.compactions j.stats.recovered_records j.stats.recovery_ms j.synced j.written
