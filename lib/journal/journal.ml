open Xsb_term
open Xsb_db

(* ---------- sync policies ---------- *)

type sync_policy =
  | Never
  | Interval of int
  | Always
  | Group of { window_us : int; max_batch : int }

let default_group = Group { window_us = 200; max_batch = 256 }

let sync_policy_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let interval n =
    match int_of_string_opt n with Some n when n > 0 -> Some (Interval n) | _ -> None
  in
  let group rest =
    (* "MS" or "MS,BATCH"; the window is given in (possibly fractional)
       milliseconds to match the server's --group-commit-ms flag *)
    let window ms =
      match float_of_string_opt ms with
      | Some ms when ms >= 0.0 -> Some (int_of_float (ms *. 1000.0))
      | _ -> None
    in
    match String.index_opt rest ',' with
    | None -> (
        match window rest with
        | Some w -> Some (Group { window_us = w; max_batch = 256 })
        | None -> None)
    | Some i -> (
        let ms = String.sub rest 0 i
        and batch = String.sub rest (i + 1) (String.length rest - i - 1) in
        match (window ms, int_of_string_opt batch) with
        | Some w, Some b when b > 0 -> Some (Group { window_us = w; max_batch = b })
        | _ -> None)
  in
  match s with
  | "never" -> Some Never
  | "always" -> Some Always
  | "interval" -> Some (Interval 64)
  | "group" -> Some default_group
  | _ -> (
      match String.index_opt s '=' with
      | Some i when String.sub s 0 i = "interval" ->
          interval (String.sub s (i + 1) (String.length s - i - 1))
      | Some i when String.sub s 0 i = "group" ->
          group (String.sub s (i + 1) (String.length s - i - 1))
      | _ -> interval s)

let sync_policy_to_string = function
  | Never -> "never"
  | Always -> "always"
  | Interval n -> Printf.sprintf "interval=%d" n
  | Group { window_us; max_batch } ->
      Printf.sprintf "group=%g,%d" (float_of_int window_us /. 1000.0) max_batch

(* ---------- mutation records ---------- *)

type mutation =
  | Add_clause of {
      name : string;
      arity : int;
      front : bool;
      dynamic : bool;
      clause : Canon.t;
    }
  | Retract_clause of { name : string; arity : int; clause : Canon.t }
  | Remove_pred of { name : string; arity : int }
  | Set_tabled of { name : string; arity : int }
  | Set_table_mode of { name : string; arity : int; mode : Pred.table_mode }
  | Set_dynamic of { name : string; arity : int }
  | Set_index of {
      name : string;
      arity : int;
      spec : Pred.index_spec;
      size_hint : int option;
    }
  | Declare_hilog of string
  | Declare_module of { module_name : string; exports : (string * int) list }
  | Declare_op of { priority : int; fixity : string; op_name : string }
  | Load_image of string

exception Corrupt_record of string

let clause_canon (c : Pred.clause) =
  Canon.of_term (Term.Struct (":-", [| c.Pred.head; c.Pred.body |]))

let of_db_mutation : Database.mutation -> mutation = function
  | Database.Added_clause { pred; clause; front } ->
      Add_clause
        {
          name = Pred.name pred;
          arity = Pred.arity pred;
          front;
          dynamic = Pred.kind pred = Pred.Dynamic;
          clause = clause_canon clause;
        }
  | Database.Retracted_clause { pred; clause } ->
      Retract_clause
        { name = Pred.name pred; arity = Pred.arity pred; clause = clause_canon clause }
  | Database.Removed_pred { name; arity } -> Remove_pred { name; arity }
  | Database.Tabled_pred { name; arity } -> Set_tabled { name; arity }
  | Database.Table_mode_pred { name; arity; mode } -> Set_table_mode { name; arity; mode }
  | Database.Dynamic_pred { name; arity } -> Set_dynamic { name; arity }
  | Database.Indexed_pred { name; arity; spec; size_hint } ->
      Set_index { name; arity; spec; size_hint }
  | Database.Hilog_symbol name -> Declare_hilog name
  | Database.Module_decl { Database.module_name; exports } ->
      Declare_module { module_name; exports }
  | Database.Op_decl { priority; fixity; op_name } ->
      Declare_op { priority; fixity = Xsb_parse.Ops.fixity_to_string fixity; op_name }

(* Replay. The records carry post-encoding clauses, so nothing here
   re-runs HiLog encoding: the database ends up byte-identical to the
   one that produced the stream. Retractions and removals of
   already-gone targets are no-ops, keeping replay deterministic. *)
let apply_mutation db = function
  | Add_clause { name; arity; front; dynamic; clause } -> (
      let kind = if dynamic then Pred.Dynamic else Pred.Static in
      let pred = Database.declare db ~kind name arity in
      if dynamic && Pred.kind pred <> Pred.Dynamic then Pred.set_kind pred Pred.Dynamic;
      match Term.deref (Canon.to_term clause) with
      | Term.Struct (":-", [| head; body |]) ->
          ignore (Database.insert_clause db ~front pred ~head ~body)
      | _ -> raise (Corrupt_record "clause record is not a ':-'/2 term"))
  | Retract_clause { name; arity; clause } -> (
      match Database.find db name arity with
      | None -> ()
      | Some pred ->
          let rec go = function
            | [] -> ()
            | c :: rest ->
                if Canon.equal (clause_canon c) clause then Database.retract_clause db pred c
                else go rest
          in
          go (Pred.clauses pred))
  | Remove_pred { name; arity } -> Database.remove_pred db name arity
  | Set_tabled { name; arity } -> Database.set_tabled db name arity
  | Set_table_mode { name; arity; mode } -> Database.set_table_mode db name arity mode
  | Set_dynamic { name; arity } -> ignore (Database.set_dynamic db name arity)
  | Set_index { name; arity; spec; size_hint } ->
      Database.set_index db ?size_hint name arity spec
  | Declare_hilog name -> Database.declare_hilog db name
  | Declare_module { module_name; exports } -> Database.declare_module db module_name exports
  | Declare_op { priority; fixity; op_name } -> (
      match Xsb_parse.Ops.fixity_of_string fixity with
      | Some f -> Database.add_op db priority f op_name
      | None -> raise (Corrupt_record ("bad operator fixity " ^ fixity)))
  | Load_image image -> ignore (Obj_file.load_string db image)

(* ---------- the record codec ---------- *)

let put_index_spec b spec size_hint =
  (match spec with
  | Pred.Fields combos ->
      Codec.put_u8 b 0;
      Codec.put_u32 b (List.length combos);
      List.iter
        (fun combo ->
          Codec.put_u32 b (List.length combo);
          List.iter (Codec.put_u32 b) combo)
        combos
  | Pred.First_string_index -> Codec.put_u8 b 1
  | Pred.Disc_tree_index -> Codec.put_u8 b 2);
  match size_hint with
  | None -> Codec.put_bool b false
  | Some n ->
      Codec.put_bool b true;
      Codec.put_u32 b n

let get_index_spec c =
  let spec =
    match Codec.get_u8 c with
    | 0 -> Pred.Fields (Codec.get_list c (fun c -> Codec.get_list c Codec.get_u32))
    | 1 -> Pred.First_string_index
    | 2 -> Pred.Disc_tree_index
    | _ -> Codec.decode_error "bad index tag"
  in
  let size_hint = if Codec.get_bool c then Some (Codec.get_u32 c) else None in
  (spec, size_hint)

let table_mode_tag = function
  | Pred.Variant -> 0
  | Pred.Incremental -> 1
  | Pred.Subsumptive op -> (
      match op with
      | Xsb_index.Answer_store.Subsumption.Min -> 2
      | Max -> 3
      | Sum -> 4
      | Count -> 5
      | First -> 6)
  | Pred.Subsumption -> 7

let table_mode_of_tag = function
  | 0 -> Pred.Variant
  | 1 -> Pred.Incremental
  | 2 -> Pred.Subsumptive Xsb_index.Answer_store.Subsumption.Min
  | 3 -> Pred.Subsumptive Max
  | 4 -> Pred.Subsumptive Sum
  | 5 -> Pred.Subsumptive Count
  | 6 -> Pred.Subsumptive First
  | 7 -> Pred.Subsumption
  | _ -> Codec.decode_error "bad table mode tag"

let encode_mutation m =
  let b = Buffer.create 64 in
  (match m with
  | Add_clause { name; arity; front; dynamic; clause } ->
      Codec.put_u8 b 0;
      Codec.put_string b name;
      Codec.put_u32 b arity;
      Codec.put_bool b front;
      Codec.put_bool b dynamic;
      Codec.put_canon b clause
  | Retract_clause { name; arity; clause } ->
      Codec.put_u8 b 1;
      Codec.put_string b name;
      Codec.put_u32 b arity;
      Codec.put_canon b clause
  | Remove_pred { name; arity } ->
      Codec.put_u8 b 2;
      Codec.put_string b name;
      Codec.put_u32 b arity
  | Set_tabled { name; arity } ->
      Codec.put_u8 b 3;
      Codec.put_string b name;
      Codec.put_u32 b arity
  | Set_dynamic { name; arity } ->
      Codec.put_u8 b 4;
      Codec.put_string b name;
      Codec.put_u32 b arity
  | Set_index { name; arity; spec; size_hint } ->
      Codec.put_u8 b 5;
      Codec.put_string b name;
      Codec.put_u32 b arity;
      put_index_spec b spec size_hint
  | Declare_hilog name ->
      Codec.put_u8 b 6;
      Codec.put_string b name
  | Declare_module { module_name; exports } ->
      Codec.put_u8 b 7;
      Codec.put_string b module_name;
      Codec.put_u32 b (List.length exports);
      List.iter
        (fun (n, a) ->
          Codec.put_string b n;
          Codec.put_u32 b a)
        exports
  | Declare_op { priority; fixity; op_name } ->
      Codec.put_u8 b 8;
      Codec.put_u32 b priority;
      Codec.put_string b fixity;
      Codec.put_string b op_name
  | Load_image image ->
      Codec.put_u8 b 9;
      Codec.put_string b image
  | Set_table_mode { name; arity; mode } ->
      Codec.put_u8 b 10;
      Codec.put_string b name;
      Codec.put_u32 b arity;
      Codec.put_u8 b (table_mode_tag mode));
  Buffer.contents b

let decode_mutation payload =
  try
    let c = Codec.cursor payload in
    let name_arity () =
      let name = Codec.get_string c in
      let arity = Codec.get_u32 c in
      (name, arity)
    in
    let m =
      match Codec.get_u8 c with
      | 0 ->
          let name, arity = name_arity () in
          let front = Codec.get_bool c in
          let dynamic = Codec.get_bool c in
          let clause = Codec.get_canon c in
          Add_clause { name; arity; front; dynamic; clause }
      | 1 ->
          let name, arity = name_arity () in
          let clause = Codec.get_canon c in
          Retract_clause { name; arity; clause }
      | 2 ->
          let name, arity = name_arity () in
          Remove_pred { name; arity }
      | 3 ->
          let name, arity = name_arity () in
          Set_tabled { name; arity }
      | 4 ->
          let name, arity = name_arity () in
          Set_dynamic { name; arity }
      | 5 ->
          let name, arity = name_arity () in
          let spec, size_hint = get_index_spec c in
          Set_index { name; arity; spec; size_hint }
      | 6 -> Declare_hilog (Codec.get_string c)
      | 7 ->
          let module_name = Codec.get_string c in
          let exports =
            Codec.get_list c (fun c ->
                let n = Codec.get_string c in
                let a = Codec.get_u32 c in
                (n, a))
          in
          Declare_module { module_name; exports }
      | 8 ->
          let priority = Codec.get_u32 c in
          let fixity = Codec.get_string c in
          let op_name = Codec.get_string c in
          Declare_op { priority; fixity; op_name }
      | 9 -> Load_image (Codec.get_string c)
      | 10 ->
          let name, arity = name_arity () in
          let mode = table_mode_of_tag (Codec.get_u8 c) in
          Set_table_mode { name; arity; mode }
      | _ -> Codec.decode_error "bad record tag"
    in
    if c.Codec.pos <> String.length payload then
      Codec.decode_error "trailing bytes after record";
    m
  with Codec.Decode_error msg -> raise (Corrupt_record msg)

(* ---------- framing ---------- *)

(* must fit any snapshot image record: Obj_file.max_payload + headroom *)
let max_record = (256 * 1024 * 1024) + 4096

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  Codec.put_u32 b (String.length payload);
  Codec.put_u32 b (Crc32.to_int (Crc32.string payload));
  Buffer.add_string b payload;
  Buffer.contents b

let frame_record m = frame (encode_mutation m)

type read_result =
  | Record of mutation * int
  | End_clean
  | End_torn
  | Corrupt of string

let get_be32 buf pos = Int32.to_int (String.get_int32_be buf pos) land 0xffffffff

let read_framed buf pos =
  let len = String.length buf in
  if pos = len then End_clean
  else if len - pos < 8 then End_torn
  else
    let rlen = get_be32 buf pos in
    let crc = get_be32 buf (pos + 4) in
    if rlen > max_record then
      if pos + 8 + rlen > len then End_torn else Corrupt "implausible record length"
    else if pos + 8 + rlen > len then End_torn
    else
      let payload = String.sub buf (pos + 8) rlen in
      if Crc32.to_int (Crc32.string payload) <> crc then
        (* a bad checksum on the very last record is a torn write; one
           with valid data after it cannot be *)
        if pos + 8 + rlen = len then End_torn else Corrupt "record checksum mismatch"
      else
        match decode_mutation payload with
        | m -> Record (m, pos + 8 + rlen)
        | exception Corrupt_record msg -> Corrupt msg

(* records, end-of-valid-prefix offset, how scanning ended *)
let scan buf start =
  let rec go acc pos =
    match read_framed buf pos with
    | Record (m, next) -> go (m :: acc) next
    | End_clean -> (List.rev acc, pos, `Clean)
    | End_torn -> (List.rev acc, pos, `Torn)
    | Corrupt msg -> (List.rev acc, pos, `Corrupt msg)
  in
  go [] start

(* ---------- file headers ---------- *)

let journal_magic = "XSBJNL02"
let snapshot_magic = "XSBSNP02"
let header_len = 24

(* magic (8) | generation (i64 BE) | epoch (i64 BE). The epoch is the
   failover fencing term (DESIGN.md §14): it only ever moves forward,
   at promotion, and every replication frame carries it. *)
let header magic gen epoch =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  Buffer.add_int64_be b gen;
  Buffer.add_int64_be b epoch;
  Buffer.contents b

let header_epoch buf = String.get_int64_be buf 16

(* ---------- the journal ---------- *)

type config = {
  dir : string;
  sync : sync_policy;
  compact_bytes : int;
  keep_generations : int;
}

let default_config ~dir =
  { dir; sync = Always; compact_bytes = 8 * 1024 * 1024; keep_generations = 0 }

type stats = {
  mutable records_appended : int;
  mutable bytes_appended : int;
  mutable fsyncs : int;
  mutable compactions : int;
  mutable recovered_records : int;
  mutable torn_bytes_dropped : int;
  mutable recovery_ms : float;
  mutable group_batches : int;
  mutable group_batch_records : int;
}

let fresh_stats () =
  {
    records_appended = 0;
    bytes_appended = 0;
    fsyncs = 0;
    compactions = 0;
    recovered_records = 0;
    torn_bytes_dropped = 0;
    recovery_ms = 0.0;
    group_batches = 0;
    group_batch_records = 0;
  }

type t = {
  cfg : config;
  db : Database.t;
  mutable fd : Unix.file_descr;
  mutable written : int;
  mutable synced : int;
  mutable pending : int;  (* records appended since the last fsync *)
  mutable generation : int64;
  mutable epoch : int64;
  mutable failed_site : string option;
  mutable closed : bool;
  mutable attached : bool;
  (* operator declarations cannot be enumerated back out of [Ops.t],
     so every one that enters the stream is carried into snapshots *)
  mutable op_decls : mutation list;  (* reversed *)
  stats : stats;
  (* concurrency: [m] guards every mutable field above. Byte offsets
     reset at rotation, so commit barriers wait on the cumulative
     record counters instead — those never go backwards. *)
  m : Mutex.t;
  nonempty : Condition.t;  (* wakes the group committer *)
  acked : Condition.t;  (* durability watermark advanced (or failed) *)
  sync_done : Condition.t;  (* the committer left its unlocked fsync *)
  mutable appended_records : int;  (* cumulative across rotations *)
  mutable synced_records : int;  (* cumulative; includes compaction *)
  mutable syncing : bool;  (* committer is inside fsync with [m] free *)
  mutable commit_error : exn option;  (* committer failure, for waiters *)
  mutable committer : Thread.t option;
  mutable stop_committer : bool;
}

exception Io_error of { site : string; message : string }

exception Recovery_error of {
  file : string;
  offset : int;
  records_ok : int;
  message : string;
}

let io_error site message = raise (Io_error { site; message })

let guard_usable j =
  if j.closed then io_error "journal" "journal is closed";
  match j.failed_site with
  | Some site -> io_error site "journal write path failed earlier; reopen to recover"
  | None -> ()

let write_all fd s =
  let len = String.length s in
  let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
  go 0

(* poisoning must also wake commit-barrier waiters: a journal that will
   never sync again must raise in them, not strand them *)
let mark_failed j site =
  j.failed_site <- Some site;
  Condition.broadcast j.acked;
  Condition.broadcast j.sync_done

(* every I/O primitive passes its named failpoint first; a Unix error
   or an injected [Fail] poisons the journal (typed [Io_error], the
   server's read-only trigger), an injected crash raises
   [Failpoint.Injected_crash] after mimicking the partial effect *)

let write_site j site fd bytes =
  (match Failpoint.check site with
  | Some Failpoint.Fail ->
      mark_failed j site;
      io_error site "injected I/O failure"
  | Some (Failpoint.Short_write n) ->
      mark_failed j site;
      let n = min (max n 0) (String.length bytes) in
      (try write_all fd (String.sub bytes 0 n) with Unix.Unix_error _ -> ());
      raise (Failpoint.Injected_crash site)
  | Some Failpoint.Crash ->
      mark_failed j site;
      raise (Failpoint.Injected_crash site)
  | None -> ());
  try write_all fd bytes
  with Unix.Unix_error (e, _, _) ->
    mark_failed j site;
    io_error site (Unix.error_message e)

let fsync_site j site fd =
  (match Failpoint.check site with
  | Some Failpoint.Fail ->
      mark_failed j site;
      io_error site "injected fsync failure"
  | Some (Failpoint.Crash | Failpoint.Short_write _) ->
      mark_failed j site;
      raise (Failpoint.Injected_crash site)
  | None -> ());
  try Unix.fsync fd
  with Unix.Unix_error (e, _, _) ->
    mark_failed j site;
    io_error site (Unix.error_message e)

let rename_site j site src dst =
  (match Failpoint.check site with
  | Some Failpoint.Fail ->
      mark_failed j site;
      io_error site "injected rename failure"
  | Some (Failpoint.Crash | Failpoint.Short_write _) ->
      mark_failed j site;
      raise (Failpoint.Injected_crash site)
  | None -> ());
  try Unix.rename src dst
  with Unix.Unix_error (e, _, _) ->
    mark_failed j site;
    io_error site (Unix.error_message e)

(* directory fsync: makes a rename durable. Some filesystems refuse
   fsync on directories; that is not a data-loss signal. *)
let fsync_dir_raw dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let fsync_dir_site j site dir =
  (match Failpoint.check site with
  | Some Failpoint.Fail ->
      mark_failed j site;
      io_error site "injected directory fsync failure"
  | Some (Failpoint.Crash | Failpoint.Short_write _) ->
      mark_failed j site;
      raise (Failpoint.Injected_crash site)
  | None -> ());
  fsync_dir_raw dir

(* ---------- recovery ---------- *)

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let journal_path cfg = Filename.concat cfg.dir "journal.log"
let snapshot_path cfg = Filename.concat cfg.dir "snapshot.bin"
let epochs_path cfg = Filename.concat cfg.dir "epochs.log"

(* a fresh journal containing only its header, published atomically
   (tmp + rename) so a crash can never leave a torn header behind.
   The returned fd stays valid across the rename and is positioned at
   the end of the header. *)
let create_journal_file jpath gen epoch =
  let tmp = jpath ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     write_all fd (header journal_magic gen epoch);
     Unix.fsync fd;
     Unix.rename tmp jpath
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     io_error "journal.open" (Unix.error_message e));
  fsync_dir_raw (Filename.dirname jpath);
  fd

(* ---------- the group committer ---------- *)

(* fsync now (caller holds [m]) and release every barrier waiter *)
let do_sync j =
  fsync_site j "journal.append.sync" j.fd;
  j.synced <- j.written;
  j.synced_records <- j.appended_records;
  j.pending <- 0;
  j.stats.fsyncs <- j.stats.fsyncs + 1;
  Condition.broadcast j.acked

(* wait (holding [m]) until the cumulative durable-record watermark
   covers [target], re-raising a committer failure into the waiter *)
let rec await_records j target =
  if j.synced_records >= target then ()
  else
    match j.commit_error with
    | Some e -> raise e
    | None -> (
        match j.failed_site with
        | Some site -> io_error site "journal write path failed; record not durable"
        | None ->
            Condition.wait j.acked j.m;
            await_records j target)

(* The dedicated group-commit thread: writers enqueue records and block
   on [acked]; this thread performs one fsync covering the whole batch.
   After each ack it waits a settle window (yield-based — stdlib
   [Condition] has no timed wait) for the just-released writers to get
   their next record in, so batches converge on the writer count
   instead of alternating 1 / w-1. *)
let committer_loop j window_us max_batch =
  let window_s = float_of_int window_us *. 1e-6 in
  let quiet_s = Float.min 25e-6 (Float.max 5e-6 (window_s *. 0.25)) in
  Mutex.lock j.m;
  while not j.stop_committer do
    while
      (not j.stop_committer)
      && (j.written = j.synced || j.failed_site <> None || j.commit_error <> None)
    do
      Condition.wait j.nonempty j.m
    done;
    if not j.stop_committer then begin
      (if window_us > 0 then
         let deadline = Xsb_obs.Mclock.now () +. window_s in
         let last = ref j.appended_records in
         let last_growth = ref (Xsb_obs.Mclock.now ()) in
         let continue = ref true in
         while !continue do
           if
             j.stop_committer || j.failed_site <> None
             || j.appended_records - j.synced_records >= max_batch
           then continue := false
           else begin
             Mutex.unlock j.m;
             Thread.yield ();
             Mutex.lock j.m;
             let t = Xsb_obs.Mclock.now () in
             if j.appended_records > !last then begin
               last := j.appended_records;
               last_growth := t
             end;
             if t >= deadline || t -. !last_growth >= quiet_s then continue := false
           end
         done);
      if j.failed_site = None && j.written > j.synced then begin
        let upto_bytes = j.written and upto_records = j.appended_records in
        (* fsync with [m] released so writers keep enqueueing the next
           batch; [syncing] keeps compaction from swapping the fd away
           underneath the in-flight fsync *)
        j.syncing <- true;
        Mutex.unlock j.m;
        let failure =
          try
            fsync_site j "journal.append.sync" j.fd;
            None
          with e -> Some e
        in
        Mutex.lock j.m;
        j.syncing <- false;
        (match failure with
        | None ->
            if upto_bytes > j.synced then begin
              j.stats.group_batches <- j.stats.group_batches + 1;
              j.stats.group_batch_records <-
                j.stats.group_batch_records + (upto_records - j.synced_records);
              j.synced <- upto_bytes;
              j.synced_records <- max j.synced_records upto_records;
              j.pending <- j.appended_records - upto_records;
              j.stats.fsyncs <- j.stats.fsyncs + 1
            end
        | Some e -> if j.commit_error = None then j.commit_error <- Some e);
        Condition.broadcast j.acked;
        Condition.broadcast j.sync_done
      end
    end
  done;
  Mutex.unlock j.m

let start_committer j =
  match j.cfg.sync with
  | Group { window_us; max_batch } ->
      j.committer <- Some (Thread.create (fun () -> committer_loop j window_us max_batch) ())
  | Never | Interval _ | Always -> ()

let open_common ~replay ~tolerate_corruption cfg db =
  let t0 = Unix.gettimeofday () in
  mkdir_p cfg.dir;
  let jpath = journal_path cfg and spath = snapshot_path cfg in
  let stats = fresh_stats () in
  let op_decls = ref [] in
  let recovery_error file offset records_ok message =
    raise (Recovery_error { file; offset; records_ok; message })
  in
  let apply_all file records =
    List.iteri
      (fun i m ->
        (match m with Declare_op _ -> op_decls := m :: !op_decls | _ -> ());
        if replay then
          try apply_mutation db m with
          | Corrupt_record msg | Obj_file.Bad_object_file msg ->
              recovery_error file (-1) i ("record failed to apply: " ^ msg))
      records;
    if replay then stats.recovered_records <- stats.recovered_records + List.length records
  in
  (* 1. the snapshot. It is published atomically, so unlike the journal
     it has no legitimate torn tail: anything short of clean is
     corruption (recoverable as a prefix only under
     [~tolerate_corruption]). *)
  let snap_gen, snap_epoch =
    match read_file spath with
    | None -> (0L, 1L)
    | Some buf ->
        if String.length buf < header_len || String.sub buf 0 8 <> snapshot_magic then
          recovery_error spath 0 0 "bad snapshot header";
        let gen = String.get_int64_be buf 8 in
        let records, end_pos, status = scan buf header_len in
        (match status with
        | `Clean -> ()
        | (`Torn | `Corrupt _) when tolerate_corruption -> ()
        | `Torn -> recovery_error spath end_pos (List.length records) "truncated snapshot"
        | `Corrupt msg -> recovery_error spath end_pos (List.length records) msg);
        apply_all spath records;
        (gen, header_epoch buf)
  in
  (* 2. the journal tail *)
  let generation, epoch, fd, written =
    match read_file jpath with
    | None ->
        let g = Int64.add snap_gen 1L in
        (g, snap_epoch, create_journal_file jpath g snap_epoch, header_len)
    | Some buf when String.length buf < header_len ->
        (* crashed while the very first header was being written: no
           record can ever have followed it *)
        let g = Int64.add snap_gen 1L in
        (g, snap_epoch, create_journal_file jpath g snap_epoch, header_len)
    | Some buf ->
        if String.sub buf 0 8 <> journal_magic then
          recovery_error jpath 0 0 "bad journal magic";
        let g = String.get_int64_be buf 8 in
        let e =
          let je = header_epoch buf in
          if Int64.compare je snap_epoch > 0 then je else snap_epoch
        in
        if Int64.compare g snap_gen <= 0 then begin
          (* stale: the crash hit compaction after the snapshot rename
             but before the journal rotation — every record here is
             already inside the snapshot, so replaying would double
             them. Rotate to the next generation. *)
          let g' = Int64.add snap_gen 1L in
          (g', e, create_journal_file jpath g' e, header_len)
        end
        else if Int64.compare g (Int64.add snap_gen 1L) > 0 then
          recovery_error jpath 8 0
            (Printf.sprintf "journal generation %Ld skips snapshot generation %Ld" g snap_gen)
        else begin
          let records, end_pos, status = scan buf header_len in
          (match status with
          | `Clean -> ()
          | `Torn -> stats.torn_bytes_dropped <- String.length buf - end_pos
          | `Corrupt _ when tolerate_corruption ->
              stats.torn_bytes_dropped <- String.length buf - end_pos
          | `Corrupt msg -> recovery_error jpath end_pos (List.length records) msg);
          apply_all jpath records;
          (* drop the torn tail so the next append starts at the end of
             the valid prefix *)
          let fd =
            try Unix.openfile jpath [ Unix.O_WRONLY ] 0o644
            with Unix.Unix_error (e, _, _) -> io_error "journal.open" (Unix.error_message e)
          in
          (try
             if end_pos < String.length buf then Unix.ftruncate fd end_pos;
             ignore (Unix.lseek fd end_pos Unix.SEEK_SET);
             Unix.fsync fd
           with Unix.Unix_error (e, _, _) ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             io_error "journal.open" (Unix.error_message e));
          (g, e, fd, end_pos)
        end
  in
  stats.recovery_ms <- 1000.0 *. (Unix.gettimeofday () -. t0);
  let j =
    {
      cfg;
      db;
      fd;
      written;
      synced = written;
      pending = 0;
      generation;
      epoch;
      failed_site = None;
      closed = false;
      attached = false;
      op_decls = !op_decls;
      stats;
      m = Mutex.create ();
      nonempty = Condition.create ();
      acked = Condition.create ();
      sync_done = Condition.create ();
      appended_records = 0;
      synced_records = 0;
      syncing = false;
      commit_error = None;
      committer = None;
      stop_committer = false;
    }
  in
  start_committer j;
  j

let open_ ?(tolerate_corruption = false) cfg db =
  open_common ~replay:true ~tolerate_corruption cfg db

(* recovery bookkeeping without replay: for a standby whose database is
   already live (it applied the stream as it arrived), promotion needs a
   writable journal positioned at the end of the mirrored file — minus
   any torn tail — with the op-declaration list snapshots will need. *)
let resume ?(tolerate_corruption = false) cfg db =
  open_common ~replay:false ~tolerate_corruption cfg db

(* ---------- appending ---------- *)

(* everything reachable from the database right now, as one snapshot
   record stream: declarations the object-file image cannot carry, then
   the image itself *)
let snapshot_records j =
  List.map (fun s -> Declare_hilog s) (Database.hilog_symbols j.db)
  @ List.map
      (fun (m : Database.module_info) ->
        Declare_module { module_name = m.Database.module_name; exports = m.Database.exports })
      (Database.modules j.db)
  @ List.rev j.op_decls
  @ [ Load_image (Obj_file.to_string j.db) ]
  (* tabling modes ride as records after the image: the object-file
     format carries only the tabled flag, and modes are enumerable from
     the predicate registry (unlike op declarations) *)
  @ List.filter_map
      (fun p ->
        match Pred.table_mode p with
        | Pred.Variant -> None
        | mode ->
            Some (Set_table_mode { name = Pred.name p; arity = Pred.arity p; mode }))
      (Database.preds j.db)

(* ---------- generation archives ---------- *)

let archive_journal_path cfg gen =
  Filename.concat cfg.dir (Printf.sprintf "journal.%Ld.log" gen)

let archive_snapshot_path cfg gen =
  Filename.concat cfg.dir (Printf.sprintf "snapshot.%Ld.bin" gen)

(* archive by hard link: the rotation rename then replaces the
   directory entry while the old inode lives on under the archive name
   — no data is copied. Best-effort: a crash in between just leaves an
   archive that the next compaction overwrites. *)
let link_replace src dst =
  (try Unix.unlink dst with Unix.Unix_error _ -> ());
  try Unix.link src dst with Unix.Unix_error _ -> ()

(* keep the newest [keep_generations] archived journals (plus the
   snapshots needed to replay them: journal.<g>.log replays on top of
   snapshot.<g-1>.bin) *)
let prune_archives cfg ~next_gen =
  if cfg.keep_generations > 0 then
    match Sys.readdir cfg.dir with
    | exception Sys_error _ -> ()
    | entries ->
        let keep_from = Int64.sub next_gen (Int64.of_int cfg.keep_generations) in
        Array.iter
          (fun name ->
            let unlink () =
              try Unix.unlink (Filename.concat cfg.dir name) with Unix.Unix_error _ -> ()
            in
            match Scanf.sscanf_opt name "journal.%Ld.log%!" (fun g -> g) with
            | Some g when Int64.compare g keep_from < 0 -> unlink ()
            | Some _ -> ()
            | None -> (
                match Scanf.sscanf_opt name "snapshot.%Ld.bin%!" (fun g -> g) with
                | Some g when Int64.compare g (Int64.pred keep_from) < 0 -> unlink ()
                | _ -> ()))
          entries

let compact_locked j =
  guard_usable j;
  (* never swap the fd away underneath the committer's in-flight fsync *)
  while j.syncing do
    Condition.wait j.sync_done j.m
  done;
  guard_usable j;
  let jpath = journal_path j.cfg and spath = snapshot_path j.cfg in
  let archiving = j.cfg.keep_generations > 0 in
  (* 0. when archiving, settle the outgoing generation onto disk so the
     archived file is complete, and set aside the snapshot the rename
     below would otherwise overwrite (it is the replay base for the
     oldest archived journal) *)
  if archiving then begin
    if j.written > j.synced then do_sync j;
    if Sys.file_exists spath then
      link_replace spath (archive_snapshot_path j.cfg (Int64.pred j.generation))
  end;
  (* 1. write the snapshot aside *)
  let stmp = spath ^ ".tmp" in
  let b = Buffer.create 65536 in
  Buffer.add_string b (header snapshot_magic j.generation j.epoch);
  List.iter (fun m -> Buffer.add_string b (frame (encode_mutation m))) (snapshot_records j);
  let sfd =
    try Unix.openfile stmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) ->
      mark_failed j "snapshot.write";
      io_error "snapshot.write" (Unix.error_message e)
  in
  (try
     write_site j "snapshot.write" sfd (Buffer.contents b);
     fsync_site j "snapshot.sync" sfd
   with e ->
     (try Unix.close sfd with Unix.Unix_error _ -> ());
     raise e);
  (try Unix.close sfd with Unix.Unix_error _ -> ());
  (* 2. publish it atomically: after this rename, recovery prefers the
     snapshot and ignores the (now stale-generation) journal *)
  rename_site j "snapshot.rename" stmp spath;
  fsync_dir_site j "dir.sync" j.cfg.dir;
  (* everything enqueued so far is now durable through the snapshot,
     whether or not its journal bytes were ever fsynced *)
  j.synced_records <- j.appended_records;
  Condition.broadcast j.acked;
  (* 2b. keep the outgoing generation around for point-in-time recovery
     and standby catch-up *)
  if archiving then link_replace jpath (archive_journal_path j.cfg j.generation);
  (* 3. rotate the journal to the next generation *)
  let next = Int64.add j.generation 1L in
  let jtmp = jpath ^ ".tmp" in
  let nfd =
    try Unix.openfile jtmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) ->
      mark_failed j "journal.rotate.write";
      io_error "journal.rotate.write" (Unix.error_message e)
  in
  (try
     write_site j "journal.rotate.write" nfd (header journal_magic next j.epoch);
     fsync_site j "journal.rotate.sync" nfd
   with e ->
     (try Unix.close nfd with Unix.Unix_error _ -> ());
     raise e);
  rename_site j "journal.rotate.rename" jtmp jpath;
  fsync_dir_site j "dir.sync" j.cfg.dir;
  (try Unix.close j.fd with Unix.Unix_error _ -> ());
  j.fd <- nfd;
  j.generation <- next;
  j.written <- header_len;
  j.synced <- header_len;
  j.pending <- 0;
  j.stats.compactions <- j.stats.compactions + 1;
  prune_archives j.cfg ~next_gen:next

let with_lock j f =
  Mutex.lock j.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock j.m) f

let compact j = with_lock j (fun () -> compact_locked j)

(* the shared append path: write [ms] (pre-framed into [bytes]) as one
   [write(2)], then apply the sync policy. Under [Group], [wait] decides
   whether to block on the commit barrier here ([append]/[append_batch])
   or leave that to a later {!barrier} ([enqueue], used by the server so
   the fsync wait happens outside its session lock). *)
let append_k j ~wait ms =
  match ms with
  | [] -> ()
  | ms ->
      let bytes = String.concat "" (List.map (fun m -> frame (encode_mutation m)) ms) in
      let n = List.length ms in
      with_lock j @@ fun () ->
      guard_usable j;
      List.iter
        (fun m -> match m with Declare_op _ -> j.op_decls <- m :: j.op_decls | _ -> ())
        ms;
      write_site j "journal.append.write" j.fd bytes;
      j.written <- j.written + String.length bytes;
      j.pending <- j.pending + n;
      j.appended_records <- j.appended_records + n;
      j.stats.records_appended <- j.stats.records_appended + n;
      j.stats.bytes_appended <- j.stats.bytes_appended + String.length bytes;
      (match j.cfg.sync with
      | Always -> do_sync j
      | Interval k -> if j.pending >= k then do_sync j
      | Never -> ()
      | Group _ ->
          Condition.signal j.nonempty;
          if wait then await_records j j.appended_records);
      if j.cfg.compact_bytes > 0 && j.written >= j.cfg.compact_bytes then compact_locked j

let append j m = append_k j ~wait:true [ m ]
let append_batch j ms = append_k j ~wait:true ms
let enqueue j m = append_k j ~wait:false [ m ]

let barrier j =
  with_lock j @@ fun () ->
  match j.cfg.sync with
  | Group _ when j.synced_records < j.appended_records ->
      guard_usable j;
      Condition.signal j.nonempty;
      await_records j j.appended_records
  | _ -> ()

let sync j =
  with_lock j @@ fun () ->
  guard_usable j;
  match j.cfg.sync with
  | Group _ ->
      if j.synced_records < j.appended_records || j.written > j.synced then begin
        Condition.signal j.nonempty;
        await_records j j.appended_records;
        (* record watermarks can be satisfied by a compaction while raw
           bytes still trail; settle those directly *)
        if j.written > j.synced && not j.syncing then do_sync j
      end
  | Never | Interval _ | Always -> if j.written > j.synced || j.pending > 0 then do_sync j

let close j =
  Mutex.lock j.m;
  if j.closed then Mutex.unlock j.m
  else begin
    (* retire the committer first so the final sync below is ours *)
    j.stop_committer <- true;
    Condition.broadcast j.nonempty;
    let committer = j.committer in
    Mutex.unlock j.m;
    (match committer with Some th -> Thread.join th | None -> ());
    Mutex.lock j.m;
    if not j.closed then begin
      if j.failed_site = None && j.written > j.synced then (try do_sync j with _ -> ());
      j.synced_records <- max j.synced_records j.appended_records;
      j.closed <- true;
      (try Unix.close j.fd with Unix.Unix_error _ -> ());
      Condition.broadcast j.acked
    end;
    Mutex.unlock j.m
  end

let attach ?(deferred = false) j =
  if not j.attached then begin
    j.attached <- true;
    (* closed journals go quiet (a detached CLI session keeps working);
       failed ones keep raising so the caller can degrade explicitly.
       [deferred] skips the group-commit barrier inside the hook — the
       caller promises to call {!barrier} before acknowledging. *)
    let record m = if not j.closed then append_k j ~wait:(not deferred) [ of_db_mutation m ] in
    Database.on_mutation j.db record
  end

let written_bytes j = with_lock j (fun () -> j.written)
let durable_bytes j = with_lock j (fun () -> j.synced)
let generation j = with_lock j (fun () -> j.generation)
let position j = with_lock j (fun () -> (j.generation, j.written))
let durable_position j = with_lock j (fun () -> (j.generation, j.synced))
let failed j = j.failed_site
let stats j = j.stats

(* ---------- epochs (failover fencing) ---------- *)

let epoch j = with_lock j (fun () -> j.epoch)

(* Promotion: retire the current epoch, recording where its authority
   ends (the fence), and stamp the next epoch into the live journal
   header. The fence line in epochs.log is what lets this node — as a
   future primary — accept a stale-epoch standby that stayed within the
   old epoch's replicated prefix, and refuse one that diverged past it
   (a deposed primary with unshipped writes). *)
let bump_epoch j =
  with_lock j @@ fun () ->
  guard_usable j;
  (* settle the outgoing epoch on disk so the fence position is final *)
  while j.syncing do
    Condition.wait j.sync_done j.m
  done;
  guard_usable j;
  if j.written > j.synced then do_sync j;
  let old = j.epoch in
  let next = Int64.add old 1L in
  let epath = epochs_path j.cfg in
  (match
     Unix.openfile epath [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
   with
  | exception Unix.Unix_error (e, _, _) -> io_error "epoch.fence" (Unix.error_message e)
  | fd ->
      (try
         write_all fd (Printf.sprintf "%Ld %Ld %d\n" old j.generation j.synced);
         Unix.fsync fd
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         io_error "epoch.fence" (Unix.error_message e));
      (try Unix.close fd with Unix.Unix_error _ -> ()));
  (* rewrite the 8 epoch bytes of the live header in place: the rest of
     the file is untouched, so mirrors remain byte-prefixes everywhere
     except this one fenced field *)
  (match Unix.openfile (journal_path j.cfg) [ Unix.O_WRONLY ] 0o644 with
  | exception Unix.Unix_error (e, _, _) -> io_error "epoch.stamp" (Unix.error_message e)
  | fd ->
      (try
         ignore (Unix.lseek fd 16 Unix.SEEK_SET);
         let b = Buffer.create 8 in
         Buffer.add_int64_be b next;
         write_all fd (Buffer.contents b);
         Unix.fsync fd
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         io_error "epoch.stamp" (Unix.error_message e));
      (try Unix.close fd with Unix.Unix_error _ -> ()));
  fsync_dir_raw j.cfg.dir;
  j.epoch <- next;
  next

(* where [epoch]'s authority ended on this node, from epochs.log *)
let epoch_fence j e =
  match read_file (epochs_path j.cfg) with
  | None -> None
  | Some buf ->
      List.fold_left
        (fun acc line ->
          match Scanf.sscanf_opt line " %Ld %Ld %d" (fun ep g o -> (ep, g, o)) with
          | Some (ep, g, o) when Int64.equal ep e -> Some (g, o)
          | _ -> acc)
        None
        (String.split_on_char '\n' buf)

(* ---------- streaming reads (the replication feed) ---------- *)

type chunk =
  | Chunk of string  (** raw framed bytes starting at the given offset *)
  | Rotated  (** past the end of an archived generation: advance *)
  | At_tip  (** caller is at the durable frontier of the live file *)
  | Gone  (** that generation is not on disk (pruned or never existed) *)

let read_range path off len =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let size = (Unix.fstat fd).Unix.st_size in
          if off >= size then Some ""
          else begin
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            let len = min len (size - off) in
            let buf = Bytes.create len in
            let rec go got =
              if got >= len then len
              else
                match Unix.read fd buf got (len - got) with 0 -> got | n -> go (got + n)
            in
            let got = go 0 in
            Some (Bytes.sub_string buf 0 got)
          end)

(* only bytes covered by an fsync are ever handed out: a standby must
   never hold bytes its primary could still lose in a crash *)
let read_chunk j ~gen ~off ~max_bytes =
  with_lock j @@ fun () ->
  let c = Int64.compare gen j.generation in
  if c > 0 then Gone
  else if c = 0 then begin
    if off >= j.synced then At_tip
    else
      match read_range (journal_path j.cfg) off (min max_bytes (j.synced - off)) with
      | Some "" | None -> At_tip
      | Some data -> Chunk data
  end
  else begin
    match read_range (archive_journal_path j.cfg gen) off max_bytes with
    | None -> Gone
    | Some "" -> Rotated
    | Some data -> Chunk data
  end

let snapshot_blob j =
  with_lock j @@ fun () ->
  match read_file (snapshot_path j.cfg) with
  | Some buf when String.length buf >= header_len -> Some (String.get_int64_be buf 8, buf)
  | Some _ | None -> None

(* the snapshot covering exactly [gen]: the live one if it is current,
   else the archived copy kept alongside the archived journals — what a
   standby needs at each generation boundary to keep its local
   (snapshot, journal) pair consistent *)
let snapshot_blob_for j gen =
  with_lock j @@ fun () ->
  let covering path =
    match read_file path with
    | Some buf when String.length buf >= header_len && Int64.equal (String.get_int64_be buf 8) gen
      ->
        Some buf
    | Some _ | None -> None
  in
  match covering (snapshot_path j.cfg) with
  | Some buf -> Some buf
  | None -> covering (archive_snapshot_path j.cfg gen)

(* ---------- point-in-time recovery from the archives ---------- *)

let recover_at ?(upto = max_int) ~dir ~generation:gen db =
  let cfg = default_config ~dir in
  let recovery_error file offset records_ok message =
    raise (Recovery_error { file; offset; records_ok; message })
  in
  let scan_file ~magic ~want_gen path buf =
    if String.length buf < header_len || String.sub buf 0 8 <> magic then
      recovery_error path 0 0 "bad file header";
    let g = String.get_int64_be buf 8 in
    if Int64.compare g want_gen <> 0 then
      recovery_error path 8 0
        (Printf.sprintf "file covers generation %Ld, wanted %Ld" g want_gen);
    let records, end_pos, status = scan buf header_len in
    (match status with
    | `Clean | `Torn -> ()  (* a torn tail is still a valid prefix *)
    | `Corrupt msg -> recovery_error path end_pos (List.length records) msg);
    records
  in
  (* 1. the base state: the snapshot taken when generation [gen] began *)
  let base = Int64.pred gen in
  if Int64.compare base 0L > 0 then begin
    let path =
      let archived = archive_snapshot_path cfg base in
      if Sys.file_exists archived then archived else snapshot_path cfg
    in
    match read_file path with
    | None -> recovery_error path 0 0 (Printf.sprintf "no snapshot for generation %Ld" base)
    | Some buf ->
        List.iter (apply_mutation db) (scan_file ~magic:snapshot_magic ~want_gen:base path buf)
  end;
  (* 2. replay the generation itself, up to the requested record *)
  let path =
    let archived = archive_journal_path cfg gen in
    if Sys.file_exists archived then archived else journal_path cfg
  in
  match read_file path with
  | None -> recovery_error path 0 0 (Printf.sprintf "no journal for generation %Ld" gen)
  | Some buf ->
      let records = scan_file ~magic:journal_magic ~want_gen:gen path buf in
      let applied = ref 0 in
      List.iter
        (fun m ->
          if !applied < upto then begin
            apply_mutation db m;
            incr applied
          end)
        records;
      !applied

let stats_json j =
  with_lock j @@ fun () ->
  Xsb_obs.Json.Obj
    [
      ("generation", Xsb_obs.Json.Int (Int64.to_int j.generation));
      ("epoch", Xsb_obs.Json.Int (Int64.to_int j.epoch));
      ("sync", Xsb_obs.Json.String (sync_policy_to_string j.cfg.sync));
      ("records_appended", Xsb_obs.Json.Int j.stats.records_appended);
      ("bytes_appended", Xsb_obs.Json.Int j.stats.bytes_appended);
      ("fsyncs", Xsb_obs.Json.Int j.stats.fsyncs);
      ("compactions", Xsb_obs.Json.Int j.stats.compactions);
      ("recovered_records", Xsb_obs.Json.Int j.stats.recovered_records);
      ("torn_bytes_dropped", Xsb_obs.Json.Int j.stats.torn_bytes_dropped);
      ("recovery_ms", Xsb_obs.Json.Float j.stats.recovery_ms);
      ("written_bytes", Xsb_obs.Json.Int j.written);
      ("durable_bytes", Xsb_obs.Json.Int j.synced);
      ("group_batches", Xsb_obs.Json.Int j.stats.group_batches);
      ("group_batch_records", Xsb_obs.Json.Int j.stats.group_batch_records);
    ]

let publish_metrics j reg =
  let module M = Xsb_obs.Metrics in
  with_lock j @@ fun () ->
  let s = j.stats in
  let g help name v =
    M.Gauge.set (M.gauge reg ~help ("xsb_journal_" ^ name)) v
  in
  g "Records appended to the journal." "records_appended_total"
    (Float.of_int s.records_appended);
  g "Payload bytes appended to the journal." "bytes_appended_total"
    (Float.of_int s.bytes_appended);
  g "fsync(2) calls issued by the journal." "fsyncs_total" (Float.of_int s.fsyncs);
  g "Snapshot compactions performed." "compactions_total" (Float.of_int s.compactions);
  g "Records replayed at recovery (snapshot + journal)." "recovered_records"
    (Float.of_int s.recovered_records);
  g "Torn tail bytes dropped at recovery." "torn_bytes_dropped"
    (Float.of_int s.torn_bytes_dropped);
  g "Wall-clock milliseconds spent in the last recovery." "recovery_ms" s.recovery_ms;
  g "Journal file size, including records not yet fsynced." "written_bytes"
    (Float.of_int j.written);
  g "Bytes known durable (covered by the last fsync)." "durable_bytes"
    (Float.of_int j.synced);
  g "Durability lag: written bytes not yet fsynced." "lag_bytes"
    (Float.of_int (j.written - j.synced));
  g "Group-commit batches fsynced." "group_batches_total" (Float.of_int s.group_batches);
  g "Records acknowledged by group-commit batches." "group_batch_records_total"
    (Float.of_int s.group_batch_records);
  g "Failover fencing epoch stamped in the journal header." "epoch" (Int64.to_float j.epoch)

let pp_stats ppf j =
  Format.fprintf ppf
    "journal: generation %Ld, %d records / %d bytes appended, %d fsyncs, %d compactions, %d \
     recovered, recovery %.1f ms, durable %d/%d bytes@."
    j.generation j.stats.records_appended j.stats.bytes_appended j.stats.fsyncs
    j.stats.compactions j.stats.recovered_records j.stats.recovery_ms j.synced j.written
