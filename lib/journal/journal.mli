(** Crash-safe persistence for the dynamic database: a write-ahead
    journal of {!Xsb_db.Database} mutations plus snapshot/replay
    recovery.

    On-disk layout (inside one data directory):

    - [journal.log] — header (magic ["XSBJNL02"] + i64 generation +
      i64 failover epoch), then CRC32-framed, length-prefixed mutation
      records: [u32 length | u32 crc32(payload) | payload]. Payloads
      use the same validated codec as object files ([Xsb_db.Codec]) —
      no [Marshal] anywhere on the recovery path.
    - [snapshot.bin] — header (magic ["XSBSNP02"] + i64 covered
      generation + i64 epoch), then the same record framing:
      declaration records followed by one whole-database object-file
      image.
    - [epochs.log] — one text line [<epoch> <gen> <off>] per retired
      epoch: the fence position where that epoch's authority ended
      (written by {!bump_epoch} at promotion).

    Recovery replays [snapshot + journal tail]. A torn or corrupt
    {e final} journal record is a clean EOF (the file is truncated back
    to the valid prefix); corruption {e before} the tail raises a typed
    {!Recovery_error} whose valid prefix can still be recovered with
    [~tolerate_corruption:true]. Compaction writes a fresh snapshot via
    write-temp + rename + fsync-dir, then atomically rotates the
    journal; generation numbers make a crash at any point in that
    sequence safe (a journal whose generation the snapshot already
    covers is ignored, never replayed twice).

    Durability contract, by {!sync_policy}: after [append] returns
    under [Always], the record is fsynced — a crash (even [kill -9])
    loses nothing acknowledged. Under [Interval n]/[Never], a crash may
    lose un-fsynced acknowledged records, but recovery always yields a
    {e prefix} of the acknowledged stream, never a reordering or a
    phantom. *)

open Xsb_db

type sync_policy =
  | Never  (** leave syncing to the OS page cache *)
  | Interval of int  (** fsync every [n] records (and on {!sync}/{!close}) *)
  | Always  (** fsync before every append acknowledges *)
  | Group of { window_us : int; max_batch : int }
      (** group commit: concurrent appenders block on a commit barrier
          while a dedicated committer thread issues one fsync for the
          whole batch. [window_us] bounds how long the committer waits
          for the batch to stop growing (its settle window);
          [max_batch] forces an early fsync once that many records are
          pending. Durability contract on return from [append] is the
          same as [Always] — only the fsyncs are shared. *)

val default_group : sync_policy
(** [Group { window_us = 200; max_batch = 256 }]. *)

val sync_policy_of_string : string -> sync_policy option
(** ["never"], ["always"], ["interval"] (= every 64 records),
    ["interval=N"], a bare record count [N], ["group"],
    ["group=MS"] (window in fractional milliseconds), or
    ["group=MS,BATCH"]. *)

val sync_policy_to_string : sync_policy -> string

(** {1 Mutation records} *)

type mutation =
  | Add_clause of {
      name : string;
      arity : int;
      front : bool;
      dynamic : bool;
      clause : Xsb_term.Canon.t;  (** [':-'(Head, Body)], HiLog-encoded *)
    }
  | Retract_clause of { name : string; arity : int; clause : Xsb_term.Canon.t }
  | Remove_pred of { name : string; arity : int }
  | Set_tabled of { name : string; arity : int }
  | Set_table_mode of { name : string; arity : int; mode : Pred.table_mode }
  | Set_dynamic of { name : string; arity : int }
  | Set_index of {
      name : string;
      arity : int;
      spec : Pred.index_spec;
      size_hint : int option;
    }
  | Declare_hilog of string
  | Declare_module of { module_name : string; exports : (string * int) list }
  | Declare_op of { priority : int; fixity : string; op_name : string }
  | Load_image of string
      (** a whole-database object-file image (snapshot records only) *)

val of_db_mutation : Database.mutation -> mutation
(** The journal-record rendering of a database mutation. *)

val apply_mutation : Database.t -> mutation -> unit
(** Replay one record into a database (recovery path). Applying a
    [Retract_clause]/[Remove_pred] whose target is already gone is a
    no-op, so replay is deterministic. Raises {!Corrupt_record} for a
    structurally impossible record (e.g. a clause that is not
    [':-'/2]). *)

(** {1 The record codec} (exposed for the property tests) *)

exception Corrupt_record of string

val encode_mutation : mutation -> string
(** Payload bytes (unframed). *)

val decode_mutation : string -> mutation
(** Raises {!Corrupt_record} on anything [encode_mutation] cannot have
    produced; never [Marshal]s, never reads out of bounds. *)

val frame_record : mutation -> string
(** [u32 length | u32 crc | payload] — what [append] writes. *)

type read_result =
  | Record of mutation * int  (** the decoded record and the next offset *)
  | End_clean  (** exactly at end of input *)
  | End_torn  (** an incomplete frame, or a bad CRC on the final record *)
  | Corrupt of string
      (** a bad CRC (or an undecodable CRC-valid payload) with more
          data after it — not explicable as a torn tail *)

val read_framed : string -> int -> read_result
(** Read one framed record at the given offset. *)

(** {1 The journal} *)

type config = {
  dir : string;  (** the data directory; created if missing *)
  sync : sync_policy;
  compact_bytes : int;
      (** auto-compact when the journal exceeds this many bytes;
          [0] disables auto-compaction ({!compact} still works) *)
  keep_generations : int;
      (** archive this many rotated journal generations (as
          [journal.<gen>.log], with their base snapshots as
          [snapshot.<gen>.bin]) instead of discarding them, enabling
          point-in-time recovery ({!recover_at}) and standby catch-up
          across compactions. [0] (the default) keeps none. *)
}

val default_config : dir:string -> config
(** [sync = Always], [compact_bytes = 8 MiB], [keep_generations = 0]. *)

type t

exception Io_error of { site : string; message : string }
(** The disk write path failed (or a failpoint injected a failure) at
    the named site. The journal is poisoned: every later [append]
    re-raises, so a caller can degrade to read-only service. *)

exception Recovery_error of {
  file : string;
  offset : int;
  records_ok : int;
  message : string;
}
(** Corruption before the journal tail (or anywhere in a snapshot).
    [records_ok] records up to [offset] are valid and recoverable with
    [~tolerate_corruption:true]. *)

val open_ : ?tolerate_corruption:bool -> config -> Database.t -> t
(** Open the data directory, recovering [snapshot + journal tail] into
    the database (which should already hold any non-durable program,
    e.g. server preloads — recovery replays on top). Creates the
    directory and an empty journal on first use. Does {e not} attach
    the mutation hook — call {!attach} after a successful open, so
    recovery itself is never re-journaled. *)

val resume : ?tolerate_corruption:bool -> config -> Database.t -> t
(** Like {!open_} but without replaying anything into the database:
    scans the snapshot and journal only for bookkeeping (generation,
    end-of-valid-prefix position, operator declarations) and truncates
    a torn tail. For promoting a standby whose database is already
    live — its session applied the records as they streamed in, so
    replaying them again would double every clause. *)

val attach : ?deferred:bool -> t -> unit
(** Subscribe to the database's mutation hook: from now on every
    mutation is appended (and fsynced per the policy) before the
    mutator's call returns. Idempotent. With [~deferred:true] and a
    {!Group} policy the hook only enqueues — the caller promises to
    call {!barrier} before acknowledging, so the fsync wait happens
    outside whatever lock guards the database. *)

val append : t -> mutation -> unit
(** Explicit append (normally the hook calls this). Raises {!Io_error}
    on write failure; the record is durable on return iff the policy
    says so (under {!Group} it blocks on the commit barrier).
    Thread-safe, as is the whole interface. *)

val append_batch : t -> mutation list -> unit
(** Append several records as one transaction: a single [write(2)] and
    a single commit-barrier wait. The batch is acknowledged as a whole,
    which is what lets group commit amortize one fsync over many
    records even from a single writer. *)

val enqueue : t -> mutation -> unit
(** [append] without the group-commit wait: the record is written and
    the committer is poked, but durability is only guaranteed after a
    later {!barrier}/{!sync}. Identical to [append] under non-group
    policies. *)

val barrier : t -> unit
(** Block until every record enqueued so far is durable (no-op under
    non-group policies, where [append] already was). Raises {!Io_error}
    if the write path failed with records still unacknowledged. *)

val sync : t -> unit
(** fsync the journal now (the server's [SYNC] op). *)

val compact : t -> unit
(** Write a new snapshot covering everything, then atomically start a
    fresh journal generation. Crash-safe at every intermediate point. *)

val close : t -> unit
(** Final sync (unless poisoned) and close. Further appends raise;
    the attached hook goes quiet instead of raising. *)

val written_bytes : t -> int
(** Journal file size, including records not yet fsynced. *)

val durable_bytes : t -> int
(** Journal bytes known to have reached stable storage. *)

val generation : t -> int64

val header_len : int
(** Size of the [journal.log] / [snapshot.bin] file header (24 bytes:
    magic, generation, epoch). The first record starts here. *)

val journal_magic : string
val snapshot_magic : string

val epoch : t -> int64
(** The failover fencing epoch stamped in the live journal header.
    Starts at 1 in a fresh directory; moves forward only at
    {!bump_epoch}. *)

val bump_epoch : t -> int64
(** Retire the current epoch and return the next one (promotion).
    Settles pending bytes, appends the fence line
    [<old_epoch> <generation> <durable_off>] to [epochs.log] (fsynced),
    and rewrites the epoch field of the live journal header in place.
    Raises {!Io_error} if any of that fails. *)

val epoch_fence : t -> int64 -> (int64 * int) option
(** Where the given (retired) epoch's authority ended on this node, as
    [(generation, offset)] from [epochs.log] — the acceptance bound for
    a stale-epoch standby trying to resume: positions at or before the
    fence are prefixes of the replicated stream, positions past it
    diverged. [None] when this node never retired that epoch. *)

val position : t -> int64 * int
(** [(generation, written_bytes)], read atomically. *)

val durable_position : t -> int64 * int
(** [(generation, durable_bytes)], read atomically — the watermark a
    replication streamer may ship up to. *)

val failed : t -> string option
(** The poisoned-journal reason, if the write path has failed. *)

(** {1 Streaming reads and archives} (the replication feed) *)

type chunk =
  | Chunk of string  (** raw framed bytes starting at the given offset *)
  | Rotated  (** past the end of an archived generation: advance *)
  | At_tip  (** at the durable frontier of the live generation *)
  | Gone  (** that generation is not on disk (pruned or never existed) *)

val read_chunk : t -> gen:int64 -> off:int -> max_bytes:int -> chunk
(** Read up to [max_bytes] raw journal bytes of generation [gen]
    starting at byte offset [off] (offsets include the {!header_len}
    file header, so a fresh reader starts at 0). Only fsync-covered bytes of
    the live generation are ever returned — a standby must never hold
    bytes its primary could still lose. Archived generations
    ([keep_generations]) are complete, so [Rotated] at their end means
    "continue with [gen+1] at offset 0". *)

val snapshot_blob : t -> (int64 * string) option
(** The current snapshot file, verbatim with its header, and the
    generation it covers — a fresh standby's bootstrap image. [None]
    before the first compaction (replay generation 1 from scratch
    instead). *)

val snapshot_blob_for : t -> int64 -> string option
(** The snapshot covering exactly that generation — the live
    [snapshot.bin] if it is current, else the archived
    [snapshot.<gen>.bin]. What a replication streamer hands a standby
    at a generation boundary. *)

val archive_journal_path : config -> int64 -> string
val archive_snapshot_path : config -> int64 -> string

val prune_archives : config -> next_gen:int64 -> unit
(** Delete archived generations older than
    [next_gen - keep_generations] (and the snapshots below their replay
    base). The journal prunes automatically at each compaction; exposed
    so a standby mirroring the primary's rotations can apply the same
    retention to its own copies. *)

val recover_at : ?upto:int -> dir:string -> generation:int64 -> Database.t -> int
(** Point-in-time recovery from the archives: rebuild the state the
    database had within generation [generation] — its base snapshot
    ([snapshot.<gen-1>.bin]) plus the first [upto] records of
    [journal.<gen>.log] (default: all of them; the live files are used
    when the generation has not rotated away yet). Returns the number
    of journal records applied. Raises {!Recovery_error} if the needed
    archives were pruned. *)

(** {1 Metrics} *)

type stats = {
  mutable records_appended : int;
  mutable bytes_appended : int;
  mutable fsyncs : int;
  mutable compactions : int;
  mutable recovered_records : int;  (** snapshot + journal records replayed *)
  mutable torn_bytes_dropped : int;  (** truncated-away torn tail bytes *)
  mutable recovery_ms : float;
  mutable group_batches : int;  (** fsyncs issued by the group committer *)
  mutable group_batch_records : int;  (** records those batches covered *)
}

val stats : t -> stats
val stats_json : t -> Xsb_obs.Json.t
val pp_stats : Format.formatter -> t -> unit

val publish_metrics : t -> Xsb_obs.Metrics.t -> unit
(** Snapshot durability state into a metrics registry as
    [xsb_journal_*] gauges: append/fsync/compaction counts, recovery
    figures, and the written/durable byte watermarks with their lag.
    Values are sampled at call time — callers refresh per scrape. *)
