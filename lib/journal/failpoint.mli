(** Test-only fault injection for the journal's I/O sites.

    Every write, fsync and rename in {!Journal} passes through a named
    failpoint. Arming a site makes its next (or [after]-th next) hit
    fail or "crash"; the kill-and-recover property test walks every
    site in turn and asserts recovery yields exactly the acknowledged
    mutation prefix.

    Armed failpoints are one-shot: once triggered, the site disarms
    itself, so the recovery that follows a simulated crash runs clean.
    The registry is global and mutex-protected (the server tests arm
    sites from the test thread while workers write). Production code
    never arms anything, so the cost of an unarmed site is one mutex
    cycle and a hash lookup on the journal's I/O path only. *)

type action =
  | Fail  (** the operation fails with a typed [Journal.Io_error] — models EIO/ENOSPC *)
  | Crash  (** raise {!Injected_crash} before the operation — models [kill -9] *)
  | Short_write of int
      (** write only the first [n] bytes, then raise {!Injected_crash} —
          models a torn write (power loss mid-[write]) *)

exception Injected_crash of string
(** The simulated process death; carries the site name. Harnesses catch
    it, abandon the journal value, and recover from disk. *)

val arm : ?after:int -> string -> action -> unit
(** [arm site action] triggers on the next hit of [site];
    [~after:n] skips the first [n] hits. Re-arming replaces. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm everything and zero the hit counters. *)

val hits : string -> int
(** How many times [site] was passed since the last {!reset}. *)

val all_hits : unit -> (string * int) list
(** Every site hit since the last {!reset}, with counts (sorted by
    name). Lets a harness enumerate the crash points of a workload. *)

val check : string -> action option
(** Used by {!Journal} at each I/O site: records a hit and returns the
    armed action if the countdown expired (disarming the site). *)
