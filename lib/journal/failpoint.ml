type action = Fail | Crash | Short_write of int

exception Injected_crash of string

type armed = { mutable remaining : int; action : action }

let armed_sites : (string, armed) Hashtbl.t = Hashtbl.create 8
let hit_counts : (string, int) Hashtbl.t = Hashtbl.create 16
let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let arm ?(after = 0) site action =
  locked (fun () -> Hashtbl.replace armed_sites site { remaining = after; action })

let disarm site = locked (fun () -> Hashtbl.remove armed_sites site)

let reset () =
  locked (fun () ->
      Hashtbl.reset armed_sites;
      Hashtbl.reset hit_counts)

let hits site = locked (fun () -> Option.value ~default:0 (Hashtbl.find_opt hit_counts site))

let all_hits () =
  locked (fun () -> Hashtbl.fold (fun site n acc -> (site, n) :: acc) hit_counts [])
  |> List.sort compare

let check site =
  locked (fun () ->
      Hashtbl.replace hit_counts site
        (1 + Option.value ~default:0 (Hashtbl.find_opt hit_counts site));
      match Hashtbl.find_opt armed_sites site with
      | None -> None
      | Some a ->
          if a.remaining > 0 then begin
            a.remaining <- a.remaining - 1;
            None
          end
          else begin
            (* one-shot: the recovery after a simulated crash must run clean *)
            Hashtbl.remove armed_sites site;
            Some a.action
          end)
