(** Answer-clause storage with duplicate detection (paper §4.5).

    Answers returned for a tabled subgoal are copied to table space in
    canonical form; inserting an answer that is a variant of an existing
    one fails the inserting derivation path, which is how SLG avoids
    duplicate computation. Answers retain insertion order so that
    consumers can resume incrementally from the position they have
    already consumed.

    Two interchangeable implementations are provided: [Hash] — "a hash
    index that includes all arguments of the answer", XSB's shipping
    mechanism — and [Trie] — the trie-based answer index the paper
    describes as under development, which integrates the index with the
    storage of the answers. *)

open Xsb_term

module type S = sig
  type t

  val create : ?size_hint:int -> unit -> t

  val insert : t -> Canon.t -> bool
  (** [true] if the answer is new; [false] for a duplicate (variant). *)

  val mem : t -> Canon.t -> bool

  val size : t -> int

  val get : t -> int -> Canon.t
  (** Answer by insertion position, [0 .. size-1]. *)

  val iter : (Canon.t -> unit) -> t -> unit
  (** In insertion order. *)

  val to_list : t -> Canon.t list
end

module Hash : S
module Trie : S

(** The trie variant extended for the SLG machine's answer tables: the
    index and the storage of the answer clauses are one structure, and the
    trie is searchable by the bound-argument skeleton of a call, so a
    bound call retrieves only the candidate answers whose token prefix can
    unify instead of scanning the whole table (paper §4.5). Entries carry
    an arbitrary payload ['a] (the machine stores its answer records); the
    same key may be added several times — the machine keeps one entry per
    (template, delay list) answer clause. *)
module Index : sig
  type 'a t

  val create : ?size_hint:int -> unit -> 'a t

  val size : 'a t -> int
  (** Number of entries (answer clauses, not distinct templates). *)

  val get : 'a t -> int -> 'a
  (** Entry by insertion position, [0 .. size-1]; consumers resume
      incrementally from the position they have already consumed. *)

  val iter : ('a -> unit) -> 'a t -> unit
  (** In insertion order. *)

  val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

  val add : 'a t -> Canon.t -> 'a -> int
  (** Append an entry under [key]; returns its insertion position.
      Duplicate-answer detection is the caller's business, via {!find}. *)

  val find : 'a t -> Canon.t -> 'a list
  (** Entries stored under exactly this key (variant lookup), in
      insertion order. *)

  val lookup : 'a t -> Canon.t -> (int * 'a) list
  (** Candidate entries for a call skeleton, sorted by insertion
      position: every stored key that could unify with the skeleton is
      returned (skeleton variables match any stored subterm; stored
      variables match any skeleton subterm). A superset of the truly
      unifying answers — non-linear variable constraints are not
      checked — so callers still unify, but only against candidates. *)

  val iter_matching : ?from:int -> 'a t -> Canon.t -> (int -> 'a -> unit) -> unit
  (** [iter_matching ~from t skel f] applies [f pos entry] to candidates
      with insertion position [>= from], in insertion order. The trie is
      time-stamped — every node records the newest insertion position in
      its subtree — so branches holding nothing at or after [from] are
      skipped entirely: a late-arriving consumer that polls with its
      last-seen stamp pays for the new answers, not a rescan. *)

  val footprint : ('a -> int) -> 'a t -> int
  (** [footprint payload_bytes t]: estimated heap bytes of the whole
      index — trie nodes, edges (with their token payloads), entry
      cells, the insertion-order vector, and every stored payload
      through [payload_bytes]. An upper-bound estimate on the same
      model as [Canon.size_bytes], for table-space accounting. *)

  val retrieve_subsuming : 'a t -> Canon.t -> (int * 'a) list
  (** Call-subsumption retrieval (Cruz & Rocha, "Efficient Instance
      Retrieval of Subgoals for Subsumptive Tabled Evaluation"): the
      entries whose stored key {e subsumes} [probe] — the probe is an
      instance of the key under one-sided unification — sorted by
      insertion position. Unlike {!lookup} this is exact, not a
      candidate superset: stored variables are matched through a binding
      environment, so non-linear keys (e.g. [p(X,X)]) only match probes
      whose corresponding subterms coincide. Variant keys subsume their
      own variants, so an exact hit is included. *)
end

(** Answer subsumption (lattice tabling): the column algebra for tables
    declared [:- table p/N as subsumptive(Op)]. Such a table keeps one
    answer per combination of its first N-1 ("key") arguments; the last
    argument is the value column, folded under [Op] when another answer
    with the same key arrives. The SLG machine owns the per-table
    bookkeeping (which answer holds each key, rewinding consumers when a
    value improves); the key/value factoring and the lattice operations
    live here. *)
module Subsumption : sig
  type op = Min | Max | Sum | Count | First

  val op_of_string : string -> op option
  val op_to_string : op -> string

  exception Not_numeric of Canon.t
  (** Raised by [Sum] (and [Count] on a corrupted store) when a value
      column is not a number. *)

  val split : Canon.t -> (Canon.t * Canon.t) option
  (** Factor an answer template into its key part (a [$subsume_key]
      struct over all arguments but the last) and its value column.
      [None] for templates that are not structs of arity >= 1. *)

  val rebuild : string -> Canon.t -> Canon.t -> Canon.t
  (** [rebuild functor_name key value] reassembles an answer template
      from a key produced by {!split} and a value column. *)

  val compare_values : Canon.t -> Canon.t -> int
  (** Numeric comparison when both sides are numbers (ints and floats
      compare by value), standard order of canonical terms otherwise. *)

  val initial : op -> Canon.t -> Canon.t
  (** The stored value column for the very first answer of a key. *)

  val fold : op -> current:Canon.t -> Canon.t -> Canon.t option
  (** Fold an incoming value into the current one; [None] means the
      stored answer already subsumes the new one (no change). *)
end

include S
(** The default implementation (currently [Hash], as in XSB 1.3). *)
