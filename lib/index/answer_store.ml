open Xsb_term

(* Pre-order token string of a canonical term. Variables are tokens too
   (they are canonically numbered), so each answer has exactly one
   terminal node in a trie built over these strings. *)
type tok = TVar of int | TAtom of string | TInt of int | TFloat of float | TStruct of string * int

module Tok_tbl = Hashtbl.Make (struct
  type t = tok

  let equal (a : t) (b : t) = a = b
  let hash (t : t) = Hashtbl.hash t
end)

let tokens answer =
  let acc = ref [] in
  let rec go = function
    | Canon.CVar n -> acc := TVar n :: !acc
    | Canon.CAtom a -> acc := TAtom a :: !acc
    | Canon.CInt i -> acc := TInt i :: !acc
    | Canon.CFloat x -> acc := TFloat x :: !acc
    | Canon.CStruct (f, args) ->
        acc := TStruct (f, Array.length args) :: !acc;
        Array.iter go args
  in
  go answer;
  List.rev !acc

(* arity of the subterm a token opens: how many further subterms must be
   consumed before this one is complete *)
let opens = function TVar _ | TAtom _ | TInt _ | TFloat _ -> 0 | TStruct (_, n) -> n

module type S = sig
  type t

  val create : ?size_hint:int -> unit -> t
  val insert : t -> Canon.t -> bool
  val mem : t -> Canon.t -> bool
  val size : t -> int
  val get : t -> int -> Canon.t
  val iter : (Canon.t -> unit) -> t -> unit
  val to_list : t -> Canon.t list
end

module Hash : S = struct
  type t = { index : unit Canon.Tbl.t; order : Canon.t Vec.t }

  let create ?(size_hint = 32) () = { index = Canon.Tbl.create size_hint; order = Vec.create () }

  let mem t answer = Canon.Tbl.mem t.index answer

  let insert t answer =
    if mem t answer then false
    else begin
      Canon.Tbl.add t.index answer ();
      Vec.push t.order answer;
      true
    end

  let size t = Vec.length t.order
  let get t i = Vec.get t.order i
  let iter f t = Vec.iter f t.order
  let to_list t = Vec.to_list t.order
end

module Trie : S = struct
  (* Discrimination trie over the pre-order token string of the canonical
     answer. Unlike first-string indexing, variables are tokens too, so
     each answer has exactly one terminal node; storage and index are one
     structure. *)
  type node = { mutable terminal : bool; children : node Tok_tbl.t }

  type t = { root : node; order : Canon.t Vec.t }

  let fresh_node () = { terminal = false; children = Tok_tbl.create 4 }

  let create ?size_hint:_ () = { root = fresh_node (); order = Vec.create () }

  let mem t answer =
    let rec go node = function
      | [] -> node.terminal
      | tok :: rest -> (
          match Tok_tbl.find_opt node.children tok with
          | Some child -> go child rest
          | None -> false)
    in
    go t.root (tokens answer)

  let insert t answer =
    let rec go node = function
      | [] ->
          if node.terminal then false
          else begin
            node.terminal <- true;
            true
          end
      | tok :: rest ->
          let child =
            match Tok_tbl.find_opt node.children tok with
            | Some child -> child
            | None ->
                let child = fresh_node () in
                Tok_tbl.add node.children tok child;
                child
          in
          go child rest
    in
    let fresh = go t.root (tokens answer) in
    if fresh then Vec.push t.order answer;
    fresh

  let size t = Vec.length t.order
  let get t i = Vec.get t.order i
  let iter f t = Vec.iter f t.order
  let to_list t = Vec.to_list t.order
end

module Index = struct
  (* The trie variant extended for the SLG machine's answer tables: each
     terminal keeps a payload per answer *clause* (the same template can
     be stored several times, e.g. under different delay lists), and the
     trie supports retrieval by the bound-argument skeleton of a call:
     [lookup] walks only the branches whose token prefix can unify with
     the skeleton, so a bound call retrieves candidates without scanning
     the whole table (paper §4.5). *)
  type 'a node = {
    mutable entries : (int * 'a) list;  (* in reverse insertion order *)
    mutable latest : int;
        (* time stamp: the largest insertion position anywhere in this
           subtree, [-1] when empty.  Lets a stamped retrieval skip whole
           branches that hold nothing newer than the consumer's last
           poll. *)
    children : 'a node Tok_tbl.t;
  }

  type 'a t = { root : 'a node; order : 'a Vec.t }

  let fresh_node () = { entries = []; latest = -1; children = Tok_tbl.create 4 }

  let create ?size_hint:_ () = { root = fresh_node (); order = Vec.create () }

  let size t = Vec.length t.order
  let get t i = Vec.get t.order i
  let iter f t = Vec.iter f t.order
  let fold_left f acc t = Vec.fold_left f acc t.order

  let add t key payload =
    let pos = Vec.length t.order in
    let rec go node toks =
      node.latest <- pos;
      match toks with
      | [] -> node
      | tok :: rest ->
          let child =
            match Tok_tbl.find_opt node.children tok with
            | Some child -> child
            | None ->
                let child = fresh_node () in
                Tok_tbl.add node.children tok child;
                child
          in
          go child rest
    in
    let node = go t.root (tokens key) in
    node.entries <- (pos, payload) :: node.entries;
    Vec.push t.order payload;
    pos

  let find t key =
    let rec go node = function
      | [] -> List.rev_map snd node.entries
      | tok :: rest -> (
          match Tok_tbl.find_opt node.children tok with
          | Some child -> go child rest
          | None -> [])
    in
    go t.root (tokens key)

  (* all nodes reachable from [node] by consuming exactly [k] whole
     stored subterms (used when the skeleton has a variable); branches
     whose time stamp is older than [from] are pruned *)
  let rec skip ~from node k acc =
    if k = 0 then if node.latest >= from then node :: acc else acc
    else
      Tok_tbl.fold
        (fun tok child acc ->
          if child.latest < from then acc else skip ~from child (k - 1 + opens tok) acc)
        node.children acc

  let lookup_from ~from t skeleton =
    let acc = ref [] in
    let rec go node agenda =
      if node.latest >= from then
        match agenda with
        | [] -> List.iter (fun (i, x) -> if i >= from then acc := (i, x) :: !acc) node.entries
        | q :: rest -> (
            match q with
            | Canon.CVar _ ->
                (* skeleton variable: matches one whole stored subterm
                   along every branch (including stored variables) *)
                List.iter (fun n -> go n rest) (skip ~from node 1 [])
            | _ ->
                (* a stored variable absorbs the whole skeleton subterm *)
                Tok_tbl.iter
                  (fun tok child -> match tok with TVar _ -> go child rest | _ -> ())
                  node.children;
                let descend tok sub =
                  match Tok_tbl.find_opt node.children tok with
                  | Some child -> go child (sub @ rest)
                  | None -> ()
                in
                (match q with
                | Canon.CVar _ -> assert false
                | Canon.CAtom a -> descend (TAtom a) []
                | Canon.CInt i -> descend (TInt i) []
                | Canon.CFloat x -> descend (TFloat x) []
                | Canon.CStruct (f, args) ->
                    descend (TStruct (f, Array.length args)) (Array.to_list args)))
    in
    go t.root [ skeleton ];
    List.sort_uniq (fun (i, _) (j, _) -> Int.compare i j) !acc

  let lookup t skeleton = lookup_from ~from:0 t skeleton

  let iter_matching ?(from = 0) t skeleton f =
    List.iter (fun (i, x) -> f i x) (lookup_from ~from t skeleton)

  (* Call-subsumption retrieval (Cruz & Rocha): the entries whose stored
     key is at least as general as [probe] — i.e. [probe] is an instance
     of the key.  The walk is exact, not a candidate superset: stored
     variables absorb whole probe subterms through a persistent binding
     environment, so a non-linear stored key like p(X,X) only matches
     probes whose corresponding subterms are equal. *)
  (* Estimated heap bytes of the whole index: trie nodes, edges (with
     their token payloads), entry cells, the insertion-order vector, and
     the stored payloads through the caller's sizer. An estimate on the
     same model as [Canon.size_bytes] — an upper bound that tracks
     growth, for table-space accounting. *)
  let footprint payload_bytes t =
    let word = 8 in
    let str s = word + (((String.length s / word) + 1) * word) in
    let tok_bytes = function
      | TVar _ | TInt _ | TFloat _ -> 2 * word
      | TAtom s -> (2 * word) + str s
      | TStruct (s, _) -> (3 * word) + str s
    in
    let total = ref 0 in
    let rec node n =
      (* the node record, its child table header, one cons + pair per entry *)
      total := !total + (4 * word) + (4 * word) + (List.length n.entries * 6 * word);
      Tok_tbl.iter
        (fun tok child ->
          (* one bucket binding per edge, plus the token itself *)
          total := !total + (4 * word) + tok_bytes tok;
          node child)
        n.children
    in
    node t.root;
    total := !total + (3 * word) + (Vec.length t.order * word);
    Vec.iter (fun p -> total := !total + payload_bytes p) t.order;
    !total

  let retrieve_subsuming t probe =
    let acc = ref [] in
    let rec go node bindings agenda =
      match agenda with
      | [] -> acc := List.rev_append node.entries !acc
      | q :: rest ->
          (* a stored variable generalizes the whole probe subterm,
             consistently across repeated occurrences *)
          Tok_tbl.iter
            (fun tok child ->
              match tok with
              | TVar n -> (
                  match List.assoc_opt n bindings with
                  | Some prev -> if Canon.equal prev q then go child bindings rest
                  | None -> go child ((n, q) :: bindings) rest)
              | _ -> ())
            node.children;
          let descend tok sub =
            match Tok_tbl.find_opt node.children tok with
            | Some child -> go child bindings (sub @ rest)
            | None -> ()
          in
          (match q with
          | Canon.CVar _ ->
              (* only a stored variable is at least as general as a
                 probe variable; handled above *)
              ()
          | Canon.CAtom a -> descend (TAtom a) []
          | Canon.CInt i -> descend (TInt i) []
          | Canon.CFloat x -> descend (TFloat x) []
          | Canon.CStruct (f, args) ->
              descend (TStruct (f, Array.length args)) (Array.to_list args))
    in
    go t.root [] [ probe ];
    List.sort_uniq (fun (i, _) (j, _) -> Int.compare i j) !acc
end

(* ------------------------------------------------------------------ *)

module Subsumption = struct
  (* Answer subsumption (lattice tabling): a table declared
     [:- table p/N as subsumptive(Op)] keeps one answer per combination
     of its first N-1 ("key") arguments; the last argument is the value
     column, folded under [Op] when another answer with the same key
     arrives. [split]/[rebuild] factor a canonical answer template into
     its key part and value column; [fold] is the lattice operation. The
     SLG machine owns the per-table bookkeeping (which answer holds each
     key, consumer rewinds when a value improves); the column algebra
     lives here with the rest of the answer-store machinery. *)

  type op = Min | Max | Sum | Count | First

  let op_of_string = function
    | "min" -> Some Min
    | "max" -> Some Max
    | "sum" -> Some Sum
    | "count" -> Some Count
    | "first" -> Some First
    | _ -> None

  let op_to_string = function
    | Min -> "min"
    | Max -> "max"
    | Sum -> "sum"
    | Count -> "count"
    | First -> "first"

  exception Not_numeric of Canon.t

  (* the key of an answer: its functor and all arguments but the last,
     wrapped so arity-1 answers (empty key) still make a hashable term *)
  let split template =
    match template with
    | Canon.CStruct (_, args) when Array.length args >= 1 ->
        let n = Array.length args in
        Some (Canon.CStruct ("$subsume_key", Array.sub args 0 (n - 1)), args.(n - 1))
    | _ -> None

  let rebuild functor_name key value =
    match key with
    | Canon.CStruct ("$subsume_key", prefix) ->
        Canon.CStruct (functor_name, Array.append prefix [| value |])
    | _ -> invalid_arg "Subsumption.rebuild: not a key"

  (* numeric comparison when both sides are numbers, standard order of
     canonical terms otherwise (so min/max also work over atoms) *)
  let compare_values a b =
    match (a, b) with
    | Canon.CInt x, Canon.CInt y -> Int.compare x y
    | Canon.CFloat x, Canon.CFloat y -> Float.compare x y
    | Canon.CInt x, Canon.CFloat y -> Float.compare (float_of_int x) y
    | Canon.CFloat x, Canon.CInt y -> Float.compare x (float_of_int y)
    | _ -> Canon.compare a b

  let add_values a b =
    match (a, b) with
    | Canon.CInt x, Canon.CInt y -> Canon.CInt (x + y)
    | Canon.CFloat x, Canon.CFloat y -> Canon.CFloat (x +. y)
    | Canon.CInt x, Canon.CFloat y -> Canon.CFloat (float_of_int x +. y)
    | Canon.CFloat x, Canon.CInt y -> Canon.CFloat (x +. float_of_int y)
    | (Canon.CInt _ | Canon.CFloat _), other | other, _ -> raise (Not_numeric other)

  (* the value column of the very first answer for a key *)
  let initial op value =
    match op with
    | Min | Max | First -> value
    | Count -> Canon.CInt 1
    | Sum -> add_values (Canon.CInt 0) value

  (* fold an incoming value into the current one; [None] means the
     stored answer already subsumes the new one (no change) *)
  let fold op ~current value =
    match op with
    | First -> None
    | Min -> if compare_values value current < 0 then Some value else None
    | Max -> if compare_values value current > 0 then Some value else None
    | Count -> Some (add_values current (Canon.CInt 1))
    | Sum ->
        let sum = add_values current value in
        if Canon.equal sum current then None else Some sum
end

include Hash
