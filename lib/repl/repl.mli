(** Journal-shipping replication: a primary streams its write-ahead
    journal — the same framed bytes crash recovery trusts — to
    standbys, which mirror them byte-for-byte into their own data
    directory and apply each record to a live session as it arrives
    (DESIGN.md §13).

    Wire protocol (one TCP connection per standby):
    {v
    standby -> primary   XSBR1 HELLO <gen> <off>
    primary -> standby   SNAP <gen> <len>      + <len> snapshot bytes
                         DATA <gen> <off> <len> + <len> journal bytes
                         HB <gen> <off>
                         ERR <message>
    v}

    Only fsync-covered bytes are ever shipped, so a standby can never
    hold state its primary could still lose; the surviving state after
    any failover is a prefix of the acknowledged mutation stream. A
    snapshot travels at bootstrap ([HELLO 0 0]) and at every
    generation boundary, keeping the standby's local
    [(snapshot.bin, journal.log)] pair valid for its own crash
    recovery — and for promotion via {!Xsb.Journal.resume}. *)

exception Protocol_error of string

(** The primary side: a listener that serves the journal feed. *)
module Primary : sig
  type t

  val start :
    ?host:string ->
    ?registry:Xsb.Metrics.t ->
    port:int ->
    journal:Xsb.Journal.t ->
    unit ->
    t
  (** Bind (port 0 picks an ephemeral one) and serve. Each accepted
      standby gets its own streamer thread reading
      {!Xsb.Journal.read_chunk} /
      {!Xsb.Journal.snapshot_blob_for}. With [?registry], publishes
      [xsb_repl_standbys], [xsb_repl_shipped_bytes_total] and
      [xsb_repl_snapshots_shipped_total] gauges. The journal should
      archive at least one generation ([keep_generations >= 1]) so a
      standby can follow across a compaction. *)

  val port : t -> int
  val standbys : t -> int
  val shipped_bytes : t -> int

  val stop : t -> unit
  (** Close the listener and every feed; joins all threads. *)
end

(** The standby side: connect, mirror, decode, apply. *)
module Standby : sig
  type t

  type status = {
    connected : bool;
    generation : int64;  (** local journal generation being mirrored *)
    applied_off : int;  (** frame-aligned applied frontier (file offset) *)
    applied_records : int;
    primary_generation : int64;  (** primary durable watermark, from heartbeats *)
    primary_off : int;
    lag_bytes : int;
        (** bytes behind the primary's durable watermark; a sentinel
            ~1e9 while a whole generation behind *)
    snapshots_received : int;
    fatal : string option;
        (** set when the applier parked: stale position or a corrupt
            stream — reconnecting cannot help, re-seed the standby *)
  }

  val start :
    ?registry:Xsb.Metrics.t ->
    primary_host:string ->
    primary_port:int ->
    dir:string ->
    generation:int64 ->
    offset:int ->
    keep_generations:int ->
    apply:(Xsb.Journal.mutation -> unit) ->
    unit ->
    t
  (** Spawn the applier thread. [generation]/[offset] is the local
      journal position after recovery ({!Xsb.Journal.position}) — the
      standby resumes the stream there, or asks to be seeded when it
      has no state. [apply] receives each replicated record (and each
      bootstrap-snapshot record) and must do its own locking against
      concurrent readers. Reconnects with backoff until {!stop}. With
      [?registry], publishes [xsb_repl_lag_bytes],
      [xsb_repl_connected], [xsb_repl_applied_records_total],
      [xsb_repl_generation] and [xsb_repl_snapshots_received_total]. *)

  val status : t -> status

  val stop : t -> unit
  (** Disconnect, fsync the mirrored journal and join the applier —
      after which the data directory is quiescent and
      {!Xsb.Journal.resume} can take over (promotion). *)
end
