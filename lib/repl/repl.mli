(** Journal-shipping replication: a primary streams its write-ahead
    journal — the same framed bytes crash recovery trusts — to
    standbys, which mirror them byte-for-byte into their own data
    directory and apply each record to a live session as it arrives
    (DESIGN.md §13–§14).

    Wire protocol (one TCP connection per standby, full-duplex after
    the handshake):
    {v
    standby -> primary   XSBR2 HELLO <epoch> <gen> <off>
                         ACK <epoch> <gen> <off>            (repeated)
    primary -> standby   EPOCH <epoch>                      (first frame)
                         SNAP <gen> <len>       + <len> snapshot bytes
                         DATA <gen> <off> <len> + <len> journal bytes
                         HB <epoch> <gen> <off>
                         ERR <message>
    v}

    Only fsync-covered bytes are ever shipped, so a standby can never
    hold state its primary could still lose; the surviving state after
    any failover is a prefix of the acknowledged mutation stream. A
    snapshot travels at bootstrap ([HELLO .. 0 0]) and at every
    generation boundary, keeping the standby's local
    [(snapshot.bin, journal.log)] pair valid for its own crash
    recovery — and for promotion via {!Xsb.Journal.resume}.

    Failover safety rests on the monotonic {e epoch}
    ({!Xsb.Journal.epoch}): a promotion bumps it, and the handshake
    fences on it — a deposed primary that comes back is refused unless
    its position lies inside the prefix the new timeline shares with
    the old one ({!Xsb.Journal.epoch_fence}), so a split brain cannot
    merge silently. The ACK stream feeds the semi-synchronous commit
    barrier ({!Primary.wait_synced}): with [--sync-standby=K] a write
    is acknowledged to the client only once K standbys hold it. *)

exception Protocol_error of string

(** The primary side: a listener that serves the journal feed. *)
module Primary : sig
  type t

  val start :
    ?host:string ->
    ?registry:Xsb.Metrics.t ->
    ?on_deposed:(int64 -> unit) ->
    port:int ->
    journal:Xsb.Journal.t ->
    unit ->
    t
  (** Bind (port 0 picks an ephemeral one) and serve. Each accepted
      standby gets its own streamer thread (reading
      {!Xsb.Journal.read_chunk} / {!Xsb.Journal.snapshot_blob_for})
      plus an ack-reader thread feeding {!wait_synced}. [?on_deposed]
      fires when a peer connects with a {e higher} epoch — this node
      was failed over away from and should stop accepting writes. With
      [?registry], publishes [xsb_repl_standbys],
      [xsb_repl_shipped_bytes_total],
      [xsb_repl_snapshots_shipped_total], [xsb_repl_sync_degraded],
      and per-slot [xsb_repl_standby_connected{standby=N}],
      [xsb_repl_standby_lag_bytes{standby=N}] and
      [xsb_repl_standby_acked_off{standby=N}] gauges (slots are
      reused, so cardinality is bounded by peak concurrency). The
      journal should archive at least one generation
      ([keep_generations >= 1]) so a standby can follow across a
      compaction. *)

  val port : t -> int
  val standbys : t -> int
  val shipped_bytes : t -> int

  val wait_synced : t -> k:int -> gen:int64 -> off:int -> timeout_s:float -> bool
  (** The semi-synchronous commit barrier: block until [k] standbys
      have acknowledged journal position [(gen, off)] as persisted and
      applied, or [timeout_s] elapses. [true] means the write is
      provably on [k] standbys; [false] means the wait degraded to
      asynchronous (the write is still durable locally). [k <= 0]
      returns [true] immediately. *)

  val degraded : t -> bool
  (** [true] after a {!wait_synced} timed out, until a later wait
      succeeds in time — mirrored by the [xsb_repl_sync_degraded]
      gauge. *)

  val stop : t -> unit
  (** Close the listener and every feed; joins all threads. *)
end

(** The standby side: connect, mirror, decode, apply, ack. *)
module Standby : sig
  type t

  type status = {
    connected : bool;
    generation : int64;  (** local journal generation being mirrored *)
    applied_off : int;  (** frame-aligned applied frontier (file offset) *)
    applied_records : int;
    primary_generation : int64;  (** primary durable watermark, from heartbeats *)
    primary_off : int;
    lag_bytes : int;
        (** bytes behind the primary's durable watermark; a sentinel
            ~1e9 while a whole generation behind *)
    snapshots_received : int;
    epoch : int64;  (** highest failover epoch seen (start value or adopted) *)
    seconds_since_contact : float;
        (** monotonic seconds since any frame arrived — the failover
            monitor's heartbeat-loss signal *)
    fatal : string option;
        (** set when the applier parked: stale position, stale-epoch
            primary, or a corrupt stream — reconnecting cannot help *)
  }

  val start :
    ?registry:Xsb.Metrics.t ->
    primary_host:string ->
    primary_port:int ->
    dir:string ->
    generation:int64 ->
    offset:int ->
    epoch:int64 ->
    keep_generations:int ->
    apply:(Xsb.Journal.mutation -> unit) ->
    unit ->
    t
  (** Spawn the applier thread. [generation]/[offset] is the local
      journal position after recovery ({!Xsb.Journal.position}) — the
      standby resumes the stream there, or asks to be seeded when it
      has no state. [epoch] is the local journal's fencing epoch
      ({!Xsb.Journal.epoch}); the standby adopts any higher epoch the
      primary announces and parks fatally on a lower one. [apply]
      receives each replicated record (and each bootstrap-snapshot
      record) and must do its own locking against concurrent readers.
      Reconnects with backoff until {!stop}. With [?registry],
      publishes [xsb_repl_lag_bytes], [xsb_repl_connected],
      [xsb_repl_applied_records_total], [xsb_repl_generation],
      [xsb_repl_epoch], [xsb_repl_seconds_since_contact] and
      [xsb_repl_snapshots_received_total]. *)

  val status : t -> status

  val stop : t -> unit
  (** Disconnect, fsync the mirrored journal and join the applier —
      after which the data directory is quiescent and
      {!Xsb.Journal.resume} can take over (promotion). *)
end
