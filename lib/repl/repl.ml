(* Journal-shipping replication (DESIGN.md §13–§14).

   The primary streams its journal — the exact framed bytes the crash
   recovery path already trusts — to standbys over a small wire
   protocol; a standby mirrors those bytes into its own data directory
   (so its files are byte-for-byte a prefix of the primary's) and
   applies each record to its live session as it decodes. Only bytes
   the primary has fsynced are ever shipped, so a standby can never
   hold state its primary could still lose.

   Wire protocol (one TCP connection per standby; the standby speaks
   first, then both sides talk full-duplex — the primary streams, the
   standby acks):

     standby -> primary   XSBR2 HELLO <epoch> <gen> <off>\n
                          ACK <epoch> <gen> <off>\n        (repeated)
     primary -> standby   EPOCH <epoch>\n                  (first frame)
                          SNAP <gen> <len>\n  <len raw snapshot bytes>
                          DATA <gen> <off> <len>\n  <len raw journal bytes>
                          HB <epoch> <gen> <off>\n
                          ERR <message>\n

   HELLO carries the standby's failover epoch and durable position
   ([0 0] for a brand-new standby, which asks to be seeded). The
   primary fences the handshake: a HELLO from a *higher* epoch means
   this node was deposed (it stops accepting and tells its owner via
   [on_deposed]); a HELLO from a *lower* epoch is admitted only when
   its position is inside the prefix recorded for that epoch in
   epochs.log — anything past the fence diverged on the old timeline
   and must re-seed. EPOCH is the primary's first frame; a standby
   adopts a higher epoch (stamping its mirrored header, since in-place
   epoch rewrites are never re-shipped) and refuses a lower one.

   SNAP is a verbatim snapshot file covering <gen>; it appears at
   bootstrap and at every generation boundary, so the standby's
   (snapshot.bin, journal.log) pair stays consistent for its own crash
   recovery. DATA is a verbatim byte range of generation <gen> (offset
   0 includes the file header). HB carries the primary's durable
   watermark — the standby's lag reference. ACK reports the standby's
   persisted-and-applied frontier; the primary's semi-synchronous
   commit barrier ({!Primary.wait_synced}) counts them. ERR is
   terminal (fencing, or the standby fell behind every retained
   archive). *)

let proto_tag = "XSBR2"
let header_len = Xsb.Journal.header_len
let chunk_bytes = 256 * 1024
let max_blob = 256 * 1024 * 1024
let poll_interval = 0.005
let hb_interval = 0.25
let reconnect_delay = 0.2
let max_line = 256

exception Protocol_error of string

let proto_error fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* [input_line] would buffer an unbounded header from a hostile peer *)
let read_line_bounded ic =
  let buf = Buffer.create 64 in
  let rec go n =
    if n > max_line then proto_error "replication header line longer than %d bytes" max_line;
    match input_char ic with
    | '\n' -> Buffer.contents buf
    | c ->
        Buffer.add_char buf c;
        go (n + 1)
  in
  go 0

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_len s =
  match int_of_string_opt s with
  | Some n when n >= 0 && n <= max_blob -> n
  | _ -> proto_error "bad length %S" s

let parse_pos g o =
  match (Int64.of_string_opt g, int_of_string_opt o) with
  | Some g, Some o when Int64.compare g 0L >= 0 && o >= 0 -> (g, o)
  | _ -> proto_error "bad position %S %S" g o

let parse_epoch e =
  match Int64.of_string_opt e with
  | Some e when Int64.compare e 0L >= 0 -> e
  | _ -> proto_error "bad epoch %S" e

let write_all fd s =
  let len = String.length s in
  let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
  go 0

let link_replace src dst =
  (try Unix.unlink dst with Unix.Unix_error _ -> ());
  try Unix.link src dst with Unix.Unix_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* (gen, off) ordering: generations are totally ordered and offsets
   within one generation are byte offsets of the same file bytes *)
let pos_ge (g1, o1) (g2, o2) =
  Int64.compare g1 g2 > 0 || (Int64.equal g1 g2 && o1 >= o2)

(* the streamer's failpoint site: [Short_write n] ships the first [n]
   bytes of the frame (header line included) and then "crashes" the
   connection — a torn DATA/SNAP the standby must survive *)
let send_frame oc payload =
  match Xsb.Failpoint.check "repl.stream.send" with
  | None ->
      output_string oc payload;
      flush oc
  | Some (Xsb.Failpoint.Short_write n) ->
      let n = min (max n 0) (String.length payload) in
      (try
         output_string oc (String.sub payload 0 n);
         flush oc
       with Sys_error _ -> ());
      raise (Xsb.Failpoint.Injected_crash "repl.stream.send")
  | Some _ -> raise (Xsb.Failpoint.Injected_crash "repl.stream.send")

(* --- the primary: one listener, streamer + ack-reader per standby --- *)

module Primary = struct
  (* per-connection standby bookkeeping, held in a reusable [slot] so
     the per-standby gauge cardinality is bounded by the peak number of
     concurrent standbys, not by the churn of reconnects *)
  type standby_info = {
    si_slot : int;
    mutable si_ack_gen : int64;
    mutable si_ack_off : int;
  }

  type t = {
    journal : Xsb.Journal.t;
    listen_fd : Unix.file_descr;
    port : int;
    stop_rd : Unix.file_descr;  (* self-pipe waking the acceptor's select *)
    stop_wr : Unix.file_descr;
    stopped : bool Atomic.t;
    conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
    conns_m : Mutex.t;
    conn_counter : int Atomic.t;
    shipped_bytes : int Atomic.t;
    snapshots_shipped : int Atomic.t;
    registry : Xsb.Metrics.t option;
    on_deposed : (int64 -> unit) option;
    slots : (int, standby_info option ref) Hashtbl.t;
    slots_m : Mutex.t;
    mutable degraded : bool;  (* sticky until a semi-sync wait succeeds again *)
    mutable acceptor : Thread.t option;
  }

  let port t = t.port

  let standbys t =
    Mutex.lock t.conns_m;
    let n = Hashtbl.length t.conns in
    Mutex.unlock t.conns_m;
    n

  let shipped_bytes t = Atomic.get t.shipped_bytes
  let degraded t = t.degraded

  let register_slot_gauges t reg slot cell =
    let labels = [ ("standby", string_of_int slot) ] in
    Xsb.Metrics.gauge_fn reg ~labels
      ~help:"1 while this standby slot has a live replication connection."
      "xsb_repl_standby_connected" (fun () ->
        match !cell with Some _ -> 1.0 | None -> 0.0);
    Xsb.Metrics.gauge_fn reg ~labels
      ~help:"Bytes between the primary's durable watermark and this standby's acked frontier."
      "xsb_repl_standby_lag_bytes" (fun () ->
        match !cell with
        | None -> 0.0
        | Some si -> (
            match Xsb.Journal.durable_position t.journal with
            | exception _ -> 0.0
            | pg, po ->
                if Int64.equal pg si.si_ack_gen then float_of_int (max 0 (po - si.si_ack_off))
                else if Int64.compare pg si.si_ack_gen > 0 then 1e9
                else 0.0));
    Xsb.Metrics.gauge_fn reg ~labels
      ~help:"Journal offset this standby last acknowledged as persisted and applied."
      "xsb_repl_standby_acked_off" (fun () ->
        match !cell with None -> 0.0 | Some si -> float_of_int si.si_ack_off)

  let claim_slot t =
    Mutex.lock t.slots_m;
    let rec free n =
      match Hashtbl.find_opt t.slots n with
      | Some r when !r <> None -> free (n + 1)
      | _ -> n
    in
    let slot = free 0 in
    let si = { si_slot = slot; si_ack_gen = 0L; si_ack_off = 0 } in
    let fresh_cell =
      match Hashtbl.find_opt t.slots slot with
      | Some r ->
          r := Some si;
          None
      | None ->
          let r = ref (Some si) in
          Hashtbl.add t.slots slot r;
          Some r
    in
    Mutex.unlock t.slots_m;
    (* gauge registration takes the registry lock; never hold slots_m
       across it (a scrape samples these callbacks under that lock) *)
    (match (fresh_cell, t.registry) with
    | Some cell, Some reg -> register_slot_gauges t reg slot cell
    | _ -> ());
    si

  let release_slot t si =
    Mutex.lock t.slots_m;
    (match Hashtbl.find_opt t.slots si.si_slot with
    | Some r -> ( match !r with Some cur when cur == si -> r := None | _ -> ())
    | None -> ());
    Mutex.unlock t.slots_m

  let acked_count t ~gen ~off =
    (* caller holds slots_m *)
    Hashtbl.fold
      (fun _ r n ->
        match !r with
        | Some si when pos_ge (si.si_ack_gen, si.si_ack_off) (gen, off) -> n + 1
        | _ -> n)
      t.slots 0

  (* The semi-synchronous commit barrier: block until [k] standbys have
     acked (gen, off) or [timeout_s] elapses. Stdlib [Condition] has no
     timed wait, so this polls — a short yield-spin for the common
     sub-millisecond ack, then 0.5 ms naps. The [degraded] flag is
     sticky across timeouts and clears on the next in-time success. *)
  let wait_synced t ~k ~gen ~off ~timeout_s =
    if k <= 0 then true
    else begin
      let deadline = Xsb.Mclock.now () +. timeout_s in
      Mutex.lock t.slots_m;
      let ok = ref (acked_count t ~gen ~off >= k) in
      let spins = ref 0 in
      while (not !ok) && (not (Atomic.get t.stopped)) && Xsb.Mclock.now () < deadline do
        Mutex.unlock t.slots_m;
        if !spins < 64 then begin
          incr spins;
          Thread.yield ()
        end
        else Thread.delay 0.0005;
        Mutex.lock t.slots_m;
        ok := acked_count t ~gen ~off >= k
      done;
      t.degraded <- not !ok;
      Mutex.unlock t.slots_m;
      !ok
    end

  let send_snap t oc gen blob =
    let hdr = Printf.sprintf "SNAP %Ld %d\n" gen (String.length blob) in
    send_frame oc (hdr ^ blob);
    Atomic.incr t.snapshots_shipped

  (* the connection's read half: ACK lines from the standby. Runs until
     the peer closes or the streamer shuts the socket down. *)
  let ack_loop t si ic =
    try
      while not (Atomic.get t.stopped) do
        match words (read_line_bounded ic) with
        | [ "ACK"; e; g; o ] ->
            ignore (parse_epoch e);
            (* the handshake already fenced the epoch for this connection *)
            let g, o = parse_pos g o in
            Mutex.lock t.slots_m;
            if pos_ge (g, o) (si.si_ack_gen, si.si_ack_off) then begin
              si.si_ack_gen <- g;
              si.si_ack_off <- o
            end;
            Mutex.unlock t.slots_m
        | ws -> proto_error "unexpected frame from standby %S" (String.concat " " ws)
      done
    with End_of_file | Sys_error _ | Unix.Unix_error _ | Protocol_error _ -> ()

  let stream t oc ~my_epoch ~gen ~off =
    let gen = ref gen and off = ref off in
    (* HELLO 0 0: a standby with no state at all. Seed it from the
       latest snapshot when one exists; otherwise it replays generation
       1 from its header, like recovery would. *)
    if Int64.equal !gen 0L then begin
      (match Xsb.Journal.snapshot_blob t.journal with
      | Some (covered, blob) ->
          send_snap t oc covered blob;
          gen := Int64.succ covered
      | None -> gen := 1L);
      off := 0
    end;
    let last_hb = ref neg_infinity in
    let heartbeat () =
      let now = Xsb.Mclock.now () in
      if now -. !last_hb >= hb_interval then begin
        let pg, po = Xsb.Journal.durable_position t.journal in
        Printf.fprintf oc "HB %Ld %Ld %d\n" my_epoch pg po;
        flush oc;
        last_hb := now
      end
    in
    while not (Atomic.get t.stopped) do
      match Xsb.Journal.read_chunk t.journal ~gen:!gen ~off:!off ~max_bytes:chunk_bytes with
      | Xsb.Journal.Chunk data ->
          let hdr = Printf.sprintf "DATA %Ld %d %d\n" !gen !off (String.length data) in
          send_frame oc (hdr ^ data);
          off := !off + String.length data;
          ignore (Atomic.fetch_and_add t.shipped_bytes (String.length data));
          heartbeat ()
      | Xsb.Journal.Rotated -> (
          (* the standby now holds all of [gen]; hand it the snapshot
             covering [gen] so its local pair stays recoverable, then
             continue with the next generation from its header *)
          match Xsb.Journal.snapshot_blob_for t.journal !gen with
          | Some blob ->
              send_snap t oc !gen blob;
              gen := Int64.succ !gen;
              off := 0
          | None ->
              Printf.fprintf oc "ERR snapshot covering generation %Ld was pruned\n" !gen;
              flush oc;
              raise Exit)
      | Xsb.Journal.Gone ->
          Printf.fprintf oc
            "ERR generation %Ld is gone (standby too far behind the retained archives; re-seed \
             it from an empty data directory)\n"
            !gen;
          flush oc;
          raise Exit
      | Xsb.Journal.At_tip ->
          heartbeat ();
          Thread.delay poll_interval
    done

  (* The handshake fence (DESIGN.md §14). Three cases, checked against
     this primary's epoch E and epochs.log:
       - HELLO epoch > E: *we* are the stale node. Tell the owner via
         [on_deposed] (the server flips read-only) and refuse.
       - HELLO epoch = E, or a fresh standby (0/0): admit.
       - HELLO epoch < E: admit only when the offered position is
         inside the fenced prefix of that epoch — bytes both timelines
         share. Past the fence the standby wrote journal bytes this
         primary never had: it must re-seed. *)
  let fence t oc ~hello_epoch ~hello_gen ~hello_off ~my_epoch =
    if Int64.compare hello_epoch my_epoch > 0 then begin
      (match t.on_deposed with Some f -> f hello_epoch | None -> ());
      Printf.fprintf oc "ERR deposed: peer speaks epoch %Ld, this node is at epoch %Ld\n"
        hello_epoch my_epoch;
      flush oc;
      raise Exit
    end;
    if
      Int64.compare hello_epoch my_epoch < 0
      && not (Int64.equal hello_gen 0L && hello_off = 0)
    then begin
      let inside_fence =
        match Xsb.Journal.epoch_fence t.journal hello_epoch with
        | Some (fg, fo) ->
            Int64.compare hello_gen fg < 0 || (Int64.equal hello_gen fg && hello_off <= fo)
        | None -> false
      in
      if not inside_fence then begin
        Printf.fprintf oc
          "ERR fenced: epoch %Ld position %Ld/%d diverged from this primary's history; re-seed \
           the standby from an empty data directory\n"
          hello_epoch hello_gen hello_off;
        flush oc;
        raise Exit
      end
    end

  let handle t id fd =
    let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
    let si = ref None in
    let acker = ref None in
    (try
       let hello_epoch, hello_gen, hello_off =
         match words (read_line_bounded ic) with
         | [ tag; "HELLO"; e; g; o ] when tag = proto_tag ->
             let e = parse_epoch e in
             let g, o = parse_pos g o in
             (e, g, o)
         | _ ->
             proto_error "bad replication handshake (expected %s HELLO <epoch> <gen> <off>)"
               proto_tag
       in
       let my_epoch = Xsb.Journal.epoch t.journal in
       fence t oc ~hello_epoch ~hello_gen ~hello_off ~my_epoch;
       Printf.fprintf oc "EPOCH %Ld\n" my_epoch;
       flush oc;
       let info = claim_slot t in
       si := Some info;
       acker := Some (Thread.create (fun () -> ack_loop t info ic) ());
       stream t oc ~my_epoch ~gen:hello_gen ~off:hello_off
     with
    | Exit | End_of_file | Sys_error _ | Unix.Unix_error _ -> ()
    | Xsb.Failpoint.Injected_crash _ -> ()  (* simulated stream death: drop the connection *)
    | Protocol_error msg -> (
        try
          Printf.fprintf oc "ERR %s\n" msg;
          flush oc
        with Sys_error _ | Unix.Unix_error _ -> ())
    | Xsb.Journal.Io_error _ -> ());
    (* unblock the ack reader before joining it *)
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match !acker with Some th -> Thread.join th | None -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (match !si with Some info -> release_slot t info | None -> ());
    Mutex.lock t.conns_m;
    Hashtbl.remove t.conns id;
    Mutex.unlock t.conns_m

  let acceptor_loop t =
    let rec loop () =
      if Atomic.get t.stopped then ()
      else
        match Unix.select [ t.listen_fd; t.stop_rd ] [] [] (-1.0) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | ready, _, _ ->
            if List.mem t.stop_rd ready || Atomic.get t.stopped then ()
            else begin
              (match Unix.accept ~cloexec:true t.listen_fd with
              | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EAGAIN | Unix.EINTR), _, _)
                ->
                  ()
              | fd, _ ->
                  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
                  let id = Atomic.fetch_and_add t.conn_counter 1 in
                  Mutex.lock t.conns_m;
                  let th = Thread.create (fun () -> handle t id fd) () in
                  Hashtbl.replace t.conns id (fd, th);
                  Mutex.unlock t.conns_m);
              loop ()
            end
    in
    loop ()

  let start ?(host = "127.0.0.1") ?registry ?on_deposed ~port ~journal () =
    let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
    (try
       Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
       Unix.listen listen_fd 16
     with e ->
       (try Unix.close listen_fd with Unix.Unix_error _ -> ());
       raise e);
    let bound = match Unix.getsockname listen_fd with Unix.ADDR_INET (_, p) -> p | _ -> port in
    let stop_rd, stop_wr = Unix.pipe ~cloexec:true () in
    let t =
      {
        journal;
        listen_fd;
        port = bound;
        stop_rd;
        stop_wr;
        stopped = Atomic.make false;
        conns = Hashtbl.create 4;
        conns_m = Mutex.create ();
        conn_counter = Atomic.make 0;
        shipped_bytes = Atomic.make 0;
        snapshots_shipped = Atomic.make 0;
        registry;
        on_deposed;
        slots = Hashtbl.create 4;
        slots_m = Mutex.create ();
        degraded = false;
        acceptor = None;
      }
    in
    (match registry with
    | Some reg ->
        Xsb.Metrics.gauge_fn reg ~help:"Connected replication standbys." "xsb_repl_standbys"
          (fun () -> float_of_int (standbys t));
        Xsb.Metrics.gauge_fn reg ~help:"Raw journal bytes shipped to standbys."
          "xsb_repl_shipped_bytes_total" (fun () -> float_of_int (Atomic.get t.shipped_bytes));
        Xsb.Metrics.gauge_fn reg
          ~help:"Snapshots shipped to standbys (bootstrap and generation boundaries)."
          "xsb_repl_snapshots_shipped_total" (fun () ->
            float_of_int (Atomic.get t.snapshots_shipped));
        Xsb.Metrics.gauge_fn reg
          ~help:
            "1 while semi-synchronous commit is degraded to async (the last sync wait timed \
             out)."
          "xsb_repl_sync_degraded" (fun () -> if t.degraded then 1.0 else 0.0)
    | None -> ());
    t.acceptor <- Some (Thread.create (fun () -> acceptor_loop t) ());
    t

  let stop t =
    if not (Atomic.exchange t.stopped true) then begin
      (try ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1) with Unix.Unix_error _ -> ());
      (match t.acceptor with Some th -> Thread.join th | None -> ());
      let conns =
        Mutex.lock t.conns_m;
        let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
        Mutex.unlock t.conns_m;
        cs
      in
      List.iter
        (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        conns;
      List.iter (fun (_, th) -> Thread.join th) conns;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.close t.stop_rd with Unix.Unix_error _ -> ());
      try Unix.close t.stop_wr with Unix.Unix_error _ -> ()
    end
end

(* --- the standby: connect, mirror, decode, apply, ack --- *)

module Standby = struct
  type status = {
    connected : bool;
    generation : int64;
    applied_off : int;
    applied_records : int;
    primary_generation : int64;
    primary_off : int;
    lag_bytes : int;
    snapshots_received : int;
    epoch : int64;
    seconds_since_contact : float;
    fatal : string option;
  }

  type t = {
    dir : string;
    keep_generations : int;
    primary_host : string;
    primary_port : int;
    apply : Xsb.Journal.mutation -> unit;
    stopped : bool Atomic.t;
    m : Mutex.t;
    mutable gen : int64;  (* local journal generation *)
    mutable applied_off : int;  (* frame-aligned persisted+applied frontier *)
    mutable primary_gen : int64;  (* from HB/DATA *)
    mutable primary_off : int;
    mutable applied_records : int;
    mutable snapshots_received : int;
    mutable epoch : int64;  (* highest epoch seen, from start + EPOCH/HB *)
    mutable last_contact : float;  (* monotonic; any frame from the primary *)
    mutable connected : bool;
    mutable fatal : string option;
    mutable conn_fd : Unix.file_descr option;
    mutable thread : Thread.t option;
  }

  (* unrecoverable by reconnecting (stale position, corrupt stream):
     the applier parks with the reason instead of retrying forever *)
  exception Fatal of string

  let fatal fmt = Printf.ksprintf (fun m -> raise (Fatal m)) fmt
  let journal_file t = Filename.concat t.dir "journal.log"
  let snapshot_file t = Filename.concat t.dir "snapshot.bin"

  let with_lock t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  (* the standby has never applied anything and has no snapshot: ask
     the primary to seed it rather than for generation-1 bytes it may
     long have compacted away *)
  let is_fresh t =
    Int64.equal t.gen 1L && t.applied_off <= header_len
    && not (Sys.file_exists (snapshot_file t))

  let lag_of t =
    if Int64.equal t.primary_gen 0L then 0 (* no heartbeat yet *)
    else if Int64.equal t.primary_gen t.gen then max 0 (t.primary_off - t.applied_off)
    else 1_000_000_000 (* a whole generation behind: effectively infinite *)

  let status t =
    with_lock t (fun () ->
        {
          connected = t.connected;
          generation = t.gen;
          applied_off = t.applied_off;
          applied_records = t.applied_records;
          primary_generation = t.primary_gen;
          primary_off = t.primary_off;
          lag_bytes = lag_of t;
          snapshots_received = t.snapshots_received;
          epoch = t.epoch;
          seconds_since_contact = Xsb.Mclock.now () -. t.last_contact;
          fatal = t.fatal;
        })

  let journal_cfg t =
    { (Xsb.Journal.default_config ~dir:t.dir) with Xsb.Journal.keep_generations = t.keep_generations }

  (* A new primary's first EPOCH frame: stamp the adopted epoch into the
     mirrored journal header. The primary bumped its own header with an
     in-place rewrite that the byte stream never re-ships, so without
     this the standby's header would resurrect the old epoch after a
     local restart. *)
  let stamp_epoch t e =
    match Unix.openfile (journal_file t) [ Unix.O_WRONLY ] 0o644 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        let size = try (Unix.fstat fd).Unix.st_size with Unix.Unix_error _ -> 0 in
        if size >= header_len then
          (try
             ignore (Unix.lseek fd 16 Unix.SEEK_SET);
             let b = Buffer.create 8 in
             Buffer.add_int64_be b e;
             write_all fd (Buffer.contents b);
             Unix.fsync fd
           with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())

  let adopt_epoch t e =
    let local = with_lock t (fun () -> t.epoch) in
    if Int64.compare e local < 0 then
      fatal "primary speaks stale epoch %Ld (this standby already saw epoch %Ld)" e local
    else if Int64.compare e local > 0 then begin
      stamp_epoch t e;
      with_lock t (fun () -> t.epoch <- e)
    end

  (* Install a snapshot covering [covered]: publish it as snapshot.bin
     (archiving the outgoing pair like the primary's compaction does),
     reset journal.log to an empty file awaiting generation covered+1,
     and — only when seeding a fresh standby — replay its records into
     the session. At a rotation boundary the records are already live
     in the session; only the files change. *)
  let install_snapshot t ~covered ~blob ~seed =
    if String.length blob < header_len || String.sub blob 0 8 <> Xsb.Journal.snapshot_magic then
      fatal "bad snapshot blob for generation %Ld" covered;
    if not (Int64.equal (String.get_int64_be blob 8) covered) then
      fatal "snapshot generation mismatch (header %Ld, announced %Ld)"
        (String.get_int64_be blob 8) covered;
    let jpath = journal_file t and spath = snapshot_file t in
    if (not seed) && t.keep_generations > 0 then begin
      (match
         try
           let ic = open_in_bin spath in
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> if in_channel_length ic >= header_len then Some (really_input_string ic header_len) else None)
         with Sys_error _ -> None
       with
      | Some hdr -> link_replace spath (Xsb.Journal.archive_snapshot_path (journal_cfg t) (String.get_int64_be hdr 8))
      | None -> ());
      link_replace jpath (Xsb.Journal.archive_journal_path (journal_cfg t) covered)
    end;
    let stmp = spath ^ ".tmp" in
    (match Unix.openfile stmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
    | exception Unix.Unix_error (e, _, _) -> fatal "snapshot install: %s" (Unix.error_message e)
    | fd ->
        (try
           write_all fd blob;
           Unix.fsync fd
         with Unix.Unix_error (e, _, _) ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           fatal "snapshot install: %s" (Unix.error_message e));
        (try Unix.close fd with Unix.Unix_error _ -> ()));
    (try Unix.rename stmp spath
     with Unix.Unix_error (e, _, _) -> fatal "snapshot install: %s" (Unix.error_message e));
    (* an empty journal.log is a valid crash state: recovery recreates
       the header for generation covered+1, which is exactly what the
       next DATA frame will deliver *)
    (match Unix.openfile jpath [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
    | exception Unix.Unix_error (e, _, _) -> fatal "journal reset: %s" (Unix.error_message e)
    | fd -> ( try Unix.close fd with Unix.Unix_error _ -> ()));
    fsync_dir t.dir;
    if seed then begin
      let pos = ref header_len in
      let continue = ref true in
      while !continue do
        match Xsb.Journal.read_framed blob !pos with
        | Xsb.Journal.Record (m, next) ->
            t.apply m;
            with_lock t (fun () -> t.applied_records <- t.applied_records + 1);
            pos := next
        | Xsb.Journal.End_clean -> continue := false
        | Xsb.Journal.End_torn | Xsb.Journal.Corrupt _ -> fatal "corrupt snapshot stream"
      done
    end;
    with_lock t (fun () ->
        t.gen <- Int64.succ covered;
        t.applied_off <- 0;
        t.snapshots_received <- t.snapshots_received + 1);
    Xsb.Journal.prune_archives (journal_cfg t) ~next_gen:(Int64.succ covered)

  let connect_once t =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string t.primary_host, t.primary_port));
       try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

  let session t fd =
    let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
    let fresh = with_lock t (fun () -> is_fresh t) in
    if fresh then begin
      (* discard the header-only local journal: the stream re-delivers
         generation 1 from byte 0 (or seeds us with a snapshot) *)
      (match Unix.openfile (journal_file t) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
      | exception Unix.Unix_error _ -> ()
      | jfd -> ( try Unix.close jfd with Unix.Unix_error _ -> ()));
      with_lock t (fun () ->
          t.gen <- 1L;
          t.applied_off <- 0)
    end;
    let hello_epoch, hello_gen, hello_off =
      with_lock t (fun () -> if fresh then (t.epoch, 0L, 0) else (t.epoch, t.gen, t.applied_off))
    in
    Printf.fprintf oc "%s HELLO %Ld %Ld %d\n" proto_tag hello_epoch hello_gen hello_off;
    flush oc;
    (* report the persisted+applied frontier back to the primary's
       semi-sync barrier — after every drain and on every heartbeat *)
    let send_ack () =
      (match Xsb.Failpoint.check "repl.standby.ack" with
      | Some _ -> raise (Xsb.Failpoint.Injected_crash "repl.standby.ack")
      | None -> ());
      let e, g, o = with_lock t (fun () -> (t.epoch, t.gen, t.applied_off)) in
      Printf.fprintf oc "ACK %Ld %Ld %d\n" e g o;
      flush oc
    in
    let touch () = with_lock t (fun () -> t.last_contact <- Xsb.Mclock.now ()) in
    (* the mirror fd: raw primary bytes land here, making the local
       journal.log a byte-for-byte prefix of the primary's *)
    let mirror = ref None in
    let close_mirror () =
      match !mirror with
      | Some mfd ->
          (try Unix.fsync mfd with Unix.Unix_error _ -> ());
          (try Unix.close mfd with Unix.Unix_error _ -> ());
          mirror := None
      | None -> ()
    in
    let mirror_fd () =
      match !mirror with
      | Some mfd -> mfd
      | None ->
          let mfd = Unix.openfile (journal_file t) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
          (* drop bytes past the applied frontier: the tail of a frame
             we never finished receiving on the previous connection *)
          (try Unix.ftruncate mfd t.applied_off with Unix.Unix_error _ -> ());
          ignore (Unix.lseek mfd t.applied_off Unix.SEEK_SET);
          mirror := Some mfd;
          mfd
    in
    let pending = Buffer.create 4096 in
    let persist_off = ref (with_lock t (fun () -> t.applied_off)) in
    let expect_seed = ref fresh in
    (* decode complete frames out of [pending] and apply them; the
       applied frontier only ever advances past whole frames (and the
       generation header), so a reconnect resumes cleanly *)
    let drain () =
      let buf = Buffer.contents pending in
      let base = with_lock t (fun () -> t.applied_off) in
      let start =
        if base >= header_len then Some 0
        else if String.length buf >= header_len - base then begin
          if base = 0 && String.sub buf 0 8 <> Xsb.Journal.journal_magic then
            fatal "replicated generation %Ld does not start with a journal header" t.gen;
          Some (header_len - base)
        end
        else None (* mid-header: wait for more bytes *)
      in
      match start with
      | None -> ()
      | Some pos0 ->
          let pos = ref pos0 in
          let continue = ref true in
          while !continue do
            match Xsb.Journal.read_framed buf !pos with
            | Xsb.Journal.Record (m, next) ->
                t.apply m;
                with_lock t (fun () ->
                    t.applied_records <- t.applied_records + 1;
                    t.applied_off <- base + next);
                pos := next
            | Xsb.Journal.End_clean | Xsb.Journal.End_torn -> continue := false
            | Xsb.Journal.Corrupt msg -> fatal "corrupt replicated record: %s" msg
          done;
          if !pos > 0 then begin
            let rest = String.sub buf !pos (String.length buf - !pos) in
            Buffer.clear pending;
            Buffer.add_string pending rest;
            with_lock t (fun () -> t.applied_off <- base + !pos)
          end
    in
    Fun.protect ~finally:close_mirror @@ fun () ->
    while not (Atomic.get t.stopped) do
      let line = read_line_bounded ic in
      touch ();
      match words line with
      | [ "DATA"; g; o; lenw ] ->
          let g, o = parse_pos g o in
          let len = parse_len lenw in
          let data = really_input_string ic len in
          expect_seed := false;
          if not (Int64.equal g t.gen) || o <> !persist_off then
            proto_error "DATA at %Ld/%d but standby expects %Ld/%d" g o t.gen !persist_off;
          (match Xsb.Failpoint.check "repl.standby.apply" with
          | Some _ -> raise (Xsb.Failpoint.Injected_crash "repl.standby.apply")
          | None -> ());
          let mfd = mirror_fd () in
          write_all mfd data;
          (try Unix.fsync mfd with Unix.Unix_error _ -> ());
          persist_off := o + len;
          Buffer.add_string pending data;
          with_lock t (fun () ->
              if Int64.equal t.primary_gen g then t.primary_off <- max t.primary_off (o + len)
              else if Int64.compare t.primary_gen g < 0 then begin
                t.primary_gen <- g;
                t.primary_off <- o + len
              end);
          drain ();
          send_ack ()
      | [ "SNAP"; g; lenw ] ->
          let covered =
            match Int64.of_string_opt g with
            | Some g when Int64.compare g 0L > 0 -> g
            | _ -> proto_error "bad SNAP generation %S" g
          in
          let blob = really_input_string ic (parse_len lenw) in
          close_mirror ();
          if !expect_seed then install_snapshot t ~covered ~blob ~seed:true
          else if
            Int64.equal covered t.gen && Buffer.length pending = 0
            && !persist_off = t.applied_off
          then install_snapshot t ~covered ~blob ~seed:false
          else
            fatal
              "primary compacted past this standby's position (generation %Ld vs local %Ld); \
               re-seed it from an empty data directory"
              covered t.gen;
          expect_seed := false;
          persist_off := 0;
          Buffer.clear pending;
          send_ack ()
      | [ "EPOCH"; e ] ->
          adopt_epoch t (parse_epoch e);
          send_ack ()
      | [ "HB"; e; g; o ] ->
          adopt_epoch t (parse_epoch e);
          let g, o = parse_pos g o in
          with_lock t (fun () ->
              if Int64.compare g t.primary_gen > 0 then begin
                t.primary_gen <- g;
                t.primary_off <- o
              end
              else if Int64.equal g t.primary_gen then t.primary_off <- max t.primary_off o);
          send_ack ()
      | "ERR" :: rest -> fatal "primary refused: %s" (String.concat " " rest)
      | ws -> proto_error "unexpected replication frame %S" (String.concat " " ws)
    done

  let rec nap t s =
    if s > 0.0 && not (Atomic.get t.stopped) then begin
      Thread.delay (Float.min 0.05 s);
      nap t (s -. 0.05)
    end

  let rec run t =
    if (not (Atomic.get t.stopped)) && with_lock t (fun () -> t.fatal) = None then begin
      (match connect_once t with
      | exception (Unix.Unix_error _ | Not_found) -> nap t reconnect_delay
      | fd ->
          with_lock t (fun () ->
              t.conn_fd <- Some fd;
              t.connected <- true);
          (try session t fd with
          | Fatal msg -> with_lock t (fun () -> t.fatal <- Some msg)
          | End_of_file | Sys_error _ | Unix.Unix_error _ | Protocol_error _ -> ()
          | Xsb.Failpoint.Injected_crash _ -> ()  (* simulated death: reconnect and resume *)
          | e ->
              with_lock t (fun () ->
                  t.fatal <- Some ("replication apply failed: " ^ Printexc.to_string e)));
          with_lock t (fun () ->
              t.conn_fd <- None;
              t.connected <- false);
          (try Unix.close fd with Unix.Unix_error _ -> ());
          nap t reconnect_delay);
      run t
    end

  let start ?registry ~primary_host ~primary_port ~dir ~generation ~offset ~epoch
      ~keep_generations ~apply () =
    let t =
      {
        dir;
        keep_generations;
        primary_host;
        primary_port;
        apply;
        stopped = Atomic.make false;
        m = Mutex.create ();
        gen = generation;
        applied_off = offset;
        primary_gen = 0L;
        primary_off = 0;
        applied_records = 0;
        snapshots_received = 0;
        epoch;
        last_contact = Xsb.Mclock.now ();
        connected = false;
        fatal = None;
        conn_fd = None;
        thread = None;
      }
    in
    (match registry with
    | Some reg ->
        Xsb.Metrics.gauge_fn reg
          ~help:"Bytes between the primary's durable watermark and the standby's applied frontier."
          "xsb_repl_lag_bytes" (fun () -> float_of_int (lag_of t));
        Xsb.Metrics.gauge_fn reg ~help:"1 while the replication link to the primary is up."
          "xsb_repl_connected" (fun () ->
            with_lock t (fun () -> if t.connected then 1.0 else 0.0));
        Xsb.Metrics.gauge_fn reg ~help:"Replicated records applied to the live session."
          "xsb_repl_applied_records_total" (fun () ->
            with_lock t (fun () -> float_of_int t.applied_records));
        Xsb.Metrics.gauge_fn reg ~help:"Local journal generation being mirrored."
          "xsb_repl_generation" (fun () ->
            with_lock t (fun () -> Int64.to_float t.gen));
        Xsb.Metrics.gauge_fn reg ~help:"Failover epoch this standby is following."
          "xsb_repl_epoch" (fun () -> with_lock t (fun () -> Int64.to_float t.epoch));
        Xsb.Metrics.gauge_fn reg ~help:"Seconds since the last frame from the primary."
          "xsb_repl_seconds_since_contact" (fun () ->
            with_lock t (fun () -> Xsb.Mclock.now () -. t.last_contact));
        Xsb.Metrics.gauge_fn reg ~help:"Snapshots received (bootstrap and generation boundaries)."
          "xsb_repl_snapshots_received_total" (fun () ->
            with_lock t (fun () -> float_of_int t.snapshots_received))
    | None -> ());
    t.thread <- Some (Thread.create (fun () -> run t) ());
    t

  let stop t =
    if not (Atomic.exchange t.stopped true) then begin
      (match with_lock t (fun () -> t.conn_fd) with
      | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      | None -> ());
      match t.thread with Some th -> Thread.join th | None -> ()
    end
end
