type fixity = XFX | XFY | YFX | FY | FX | XF | YF

type t = {
  prefixes : (string, int * fixity) Hashtbl.t;
  infixes : (string, int * fixity) Hashtbl.t;
  postfixes : (string, int * fixity) Hashtbl.t;
}

let empty () =
  { prefixes = Hashtbl.create 32; infixes = Hashtbl.create 32; postfixes = Hashtbl.create 8 }

let class_table t = function
  | FY | FX -> t.prefixes
  | XFX | XFY | YFX -> t.infixes
  | XF | YF -> t.postfixes

let add t priority fixity name =
  if priority < 0 || priority > 1200 then invalid_arg "Ops.add: priority out of range";
  let table = class_table t fixity in
  if priority = 0 then Hashtbl.remove table name else Hashtbl.replace table name (priority, fixity)

let standard =
  [
    (1200, XFX, ":-");
    (1200, XFX, "-->");
    (1200, FX, ":-");
    (1200, FX, "?-");
    (1150, FX, "table");
    (1150, FX, "dynamic");
    (1150, FX, "hilog");
    (1150, FX, "import");
    (1150, FX, "export");
    (1150, FX, "discontiguous");
    (1100, XFY, ";");
    (1050, XFY, "->");
    (1000, XFY, ",");
    (900, FY, "\\+");
    (900, FY, "tnot");
    (900, FY, "e_tnot");
    (900, FY, "not");
    (* `as` binds table specs to tabling modes: :- table p/2 as incremental. *)
    (700, XFX, "as");
    (700, XFX, "=");
    (700, XFX, "\\=");
    (700, XFX, "==");
    (700, XFX, "\\==");
    (700, XFX, "@<");
    (700, XFX, "@>");
    (700, XFX, "@=<");
    (700, XFX, "@>=");
    (700, XFX, "=..");
    (700, XFX, "is");
    (700, XFX, "=:=");
    (700, XFX, "=\\=");
    (700, XFX, "<");
    (700, XFX, ">");
    (700, XFX, "=<");
    (700, XFX, ">=");
    (500, YFX, "+");
    (500, YFX, "-");
    (500, YFX, "/\\");
    (500, YFX, "\\/");
    (500, YFX, "xor");
    (400, YFX, "*");
    (400, YFX, "/");
    (400, YFX, "//");
    (400, YFX, "mod");
    (400, YFX, "rem");
    (400, YFX, "div");
    (400, YFX, "<<");
    (400, YFX, ">>");
    (200, XFX, "**");
    (200, XFY, "^");
    (200, FY, "-");
    (200, FY, "+");
    (200, FY, "\\");
  ]

let create () =
  let t = empty () in
  List.iter (fun (p, f, name) -> add t p f name) standard;
  t

let prefix t name = Hashtbl.find_opt t.prefixes name
let infix t name = Hashtbl.find_opt t.infixes name
let postfix t name = Hashtbl.find_opt t.postfixes name

let is_op t name =
  Hashtbl.mem t.prefixes name || Hashtbl.mem t.infixes name || Hashtbl.mem t.postfixes name

let fixity_of_string = function
  | "xfx" -> Some XFX
  | "xfy" -> Some XFY
  | "yfx" -> Some YFX
  | "fy" -> Some FY
  | "fx" -> Some FX
  | "xf" -> Some XF
  | "yf" -> Some YF
  | _ -> None

let fixity_to_string = function
  | XFX -> "xfx"
  | XFY -> "xfy"
  | YFX -> "yfx"
  | FY -> "fy"
  | FX -> "fx"
  | XF -> "xf"
  | YF -> "yf"
