type t =
  | CVar of int
  | CAtom of string
  | CInt of int
  | CFloat of float
  | CStruct of string * t array

let of_term term =
  let numbering = Hashtbl.create 8 in
  let rec go term =
    match Term.deref term with
    | Term.Atom a -> CAtom a
    | Term.Int i -> CInt i
    | Term.Float x -> CFloat x
    | Term.Var v -> (
        match Hashtbl.find_opt numbering v.Term.vid with
        | Some n -> CVar n
        | None ->
            let n = Hashtbl.length numbering in
            Hashtbl.add numbering v.Term.vid n;
            CVar n)
    | Term.Struct (f, args) -> CStruct (f, Array.map go args)
  in
  go term

let to_term c =
  let fresh = Hashtbl.create 8 in
  let rec go = function
    | CAtom a -> Term.Atom a
    | CInt i -> Term.Int i
    | CFloat x -> Term.Float x
    | CVar n -> (
        match Hashtbl.find_opt fresh n with
        | Some v -> v
        | None ->
            let v = Term.fresh_var () in
            Hashtbl.add fresh n v;
            v)
    | CStruct (f, args) -> Term.Struct (f, Array.map go args)
  in
  go c

let rec max_var acc = function
  | CVar n -> max acc (n + 1)
  | CAtom _ | CInt _ | CFloat _ -> acc
  | CStruct (_, args) -> Array.fold_left max_var acc args

let nvars c = max_var 0 c

let rec is_ground = function
  | CVar _ -> false
  | CAtom _ | CInt _ | CFloat _ -> true
  | CStruct (_, args) -> Array.for_all is_ground args

let equal (a : t) (b : t) = a = b

(* structural, so orderings built on it (delay-list normalization, answer
   dedup) survive a change of physical representation such as interning *)
let rec compare (a : t) (b : t) =
  match (a, b) with
  | CVar m, CVar n -> Int.compare m n
  | CVar _, _ -> -1
  | _, CVar _ -> 1
  | CAtom x, CAtom y -> String.compare x y
  | CAtom _, _ -> -1
  | _, CAtom _ -> 1
  | CInt i, CInt j -> Int.compare i j
  | CInt _, _ -> -1
  | _, CInt _ -> 1
  | CFloat x, CFloat y -> Float.compare x y
  | CFloat _, _ -> -1
  | _, CFloat _ -> 1
  | CStruct (f, xs), CStruct (g, ys) -> (
      match String.compare f g with
      | 0 -> (
          match Int.compare (Array.length xs) (Array.length ys) with
          | 0 ->
              let rec args i =
                if i = Array.length xs then 0
                else match compare xs.(i) ys.(i) with 0 -> args (i + 1) | c -> c
              in
              args 0
          | c -> c)
      | c -> c)

let hash (c : t) = Hashtbl.hash c

(* Estimated heap footprint in bytes (64-bit words): constructor blocks
   plus string payloads. Atom and functor names are counted in full even
   though the runtime may share them — table-space accounting wants an
   upper bound that tracks growth, not an exact liveness measure. *)
let word = 8

let string_bytes s = word + ((String.length s / word) + 1) * word

let rec size_bytes = function
  | CVar _ | CInt _ -> 2 * word  (* one-field block *)
  | CFloat _ -> 2 * word
  | CAtom a -> (2 * word) + string_bytes a
  | CStruct (f, args) ->
      (* the pair block + the args array + the functor name *)
      (3 * word) + ((Array.length args + 1) * word) + string_bytes f
      + Array.fold_left (fun acc a -> acc + size_bytes a) 0 args

let rec pp ppf = function
  | CVar n -> Fmt.pf ppf "_%d" n
  | CAtom a -> Fmt.string ppf a
  | CInt i -> Fmt.int ppf i
  | CFloat x -> Fmt.float ppf x
  | CStruct (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(array ~sep:(any ",") pp) args

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
