(** Canonical, immutable representation of a term with variables numbered
    by first occurrence. Two terms are variants iff their canonical forms
    are equal, which makes [Canon.t] the right key type for subgoal tables
    and for answer duplicate checks ("copying into table space"). *)

type t =
  | CVar of int  (** 0-based, in order of first occurrence *)
  | CAtom of string
  | CInt of int
  | CFloat of float
  | CStruct of string * t array

val of_term : Term.t -> t
(** Snapshot of the dereferenced term. *)

val to_term : t -> Term.t
(** Rebuild with fresh variables (consistent within one call). *)

val nvars : t -> int
(** Number of distinct variables. *)

val is_ground : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val size_bytes : t -> int
(** Estimated heap footprint in bytes: constructor blocks plus string
    payloads, on a 64-bit runtime. Atom and functor names are counted in
    full even though the runtime may share them — table-space accounting
    wants an upper bound that tracks growth, not exact liveness. *)

val pp : t Fmt.t

module Tbl : Hashtbl.S with type key = t
