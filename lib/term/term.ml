type t =
  | Atom of string
  | Int of int
  | Float of float
  | Var of var
  | Struct of string * t array

and var = { vid : int; mutable binding : t option; vname : string option }

(* atomic: the only process-global mutable state in the engine, and the
   query server allocates variables from concurrent worker threads *)
let counter = Atomic.make 0

let var ?name () = { vid = Atomic.fetch_and_add counter 1 + 1; binding = None; vname = name }

let fresh_var ?name () = Var (var ?name ())
let atom name = Atom name
let int i = Int i

let struct_ name args = if Array.length args = 0 then Atom name else Struct (name, args)

let app name args = struct_ name (Array.of_list args)

let nil = Atom "[]"
let cons h t = Struct (".", [| h; t |])

let list_ elements = List.fold_right cons elements nil

let rec deref t =
  match t with
  | Var { binding = Some t'; _ } -> deref t'
  | _ -> t

let to_list t =
  let rec go acc t =
    match deref t with
    | Atom "[]" -> Some (List.rev acc)
    | Struct (".", [| h; tl |]) -> go (h :: acc) tl
    | _ -> None
  in
  go [] t

let bind trail v t =
  match v.binding with
  | Some _ -> invalid_arg "Term.bind: variable already bound"
  | None ->
      v.binding <- Some t;
      Trail.push trail (fun () -> v.binding <- None)

let rec is_ground t =
  match deref t with
  | Atom _ | Int _ | Float _ -> true
  | Var _ -> false
  | Struct (_, args) ->
      let rec go i = i >= Array.length args || (is_ground args.(i) && go (i + 1)) in
      go 0

let vars t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go t =
    match deref t with
    | Atom _ | Int _ | Float _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v.vid) then begin
          Hashtbl.add seen v.vid ();
          acc := v :: !acc
        end
    | Struct (_, args) -> Array.iter go args
  in
  go t;
  List.rev !acc

let functor_of t =
  match deref t with
  | Atom name -> Some (name, 0)
  | Struct (name, args) -> Some (name, Array.length args)
  | Int _ | Float _ | Var _ -> None

let size t =
  let rec go n t =
    match deref t with
    | Atom _ | Int _ | Float _ | Var _ -> n + 1
    | Struct (_, args) -> Array.fold_left go (n + 1) args
  in
  go 0 t

let copy_with mapping t =
  let rec go t =
    match deref t with
    | (Atom _ | Int _ | Float _) as t -> t
    | Var v -> (
        match Hashtbl.find_opt mapping v.vid with
        | Some fresh -> fresh
        | None ->
            let fresh = fresh_var ?name:v.vname () in
            Hashtbl.add mapping v.vid fresh;
            fresh)
    | Struct (name, args) -> Struct (name, Array.map go args)
  in
  go t

let copy t = copy_with (Hashtbl.create 8) t

let copy2 t u =
  let mapping = Hashtbl.create 8 in
  (copy_with mapping t, copy_with mapping u)

(* Standard order of terms: Var < Number < Atom < Compound. *)
let rec compare t u =
  let rank = function
    | Var _ -> 0
    | Int _ | Float _ -> 1
    | Atom _ -> 2
    | Struct _ -> 3
  in
  let t = deref t and u = deref u in
  match (t, u) with
  | Var v, Var w -> Int.compare v.vid w.vid
  | Int i, Int j -> Int.compare i j
  | Float x, Float y -> Float.compare x y
  | Int i, Float y -> Float.compare (float_of_int i) y
  | Float x, Int j -> Float.compare x (float_of_int j)
  | Atom a, Atom b -> String.compare a b
  | Struct (f, args), Struct (g, brgs) ->
      let c = Int.compare (Array.length args) (Array.length brgs) in
      if c <> 0 then c
      else
        let c = String.compare f g in
        if c <> 0 then c
        else
          let rec go i =
            if i >= Array.length args then 0
            else
              let c = compare args.(i) brgs.(i) in
              if c <> 0 then c else go (i + 1)
          in
          go 0
  | _ -> Int.compare (rank t) (rank u)

let equal t u = compare t u = 0

let atom_needs_quotes name =
  let solo = function "[]" | "{}" | "!" | ";" | "," -> true | _ -> false in
  let symbolic c = String.contains "+-*/\\^<>=~:.?@#&$" c in
  if name = "" then true
  else if solo name then false
  else
    let c0 = name.[0] in
    if c0 >= 'a' && c0 <= 'z' then
      not
        (String.for_all
           (fun c ->
             (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
           name)
    else not (String.for_all symbolic name)

let pp_atom ppf name =
  if atom_needs_quotes name then begin
    let buf = Buffer.create (String.length name + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        match c with
        | '\'' -> Buffer.add_string buf "\\'"
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      name;
    Buffer.add_char buf '\'';
    Fmt.string ppf (Buffer.contents buf)
  end
  else Fmt.string ppf name

let rec pp ppf t =
  match deref t with
  | Atom name -> pp_atom ppf name
  | Int i -> Fmt.int ppf i
  | Float x -> Fmt.float ppf x
  | Var v -> (
      match v.vname with
      | Some name -> Fmt.pf ppf "_%s%d" name v.vid
      | None -> Fmt.pf ppf "_G%d" v.vid)
  | Struct (".", [| _; _ |]) as t -> pp_list ppf t
  | Struct (name, args) ->
      pp_atom ppf name;
      Fmt.pf ppf "(%a)" Fmt.(array ~sep:(Fmt.any ",") pp) args

and pp_list ppf t =
  let rec elements ppf t =
    match deref t with
    | Struct (".", [| h; tl |]) -> (
        pp ppf h;
        match deref tl with
        | Atom "[]" -> ()
        | Struct (".", [| _; _ |]) ->
            Fmt.string ppf ",";
            elements ppf tl
        | rest -> Fmt.pf ppf "|%a" pp rest)
    | _ -> assert false
  in
  Fmt.pf ppf "[%a]" elements t

let to_string t = Fmt.str "%a" pp t
