/* Monotonic time for latency measurement. Unix.gettimeofday is wall
   time: an NTP step mid-request corrupts the measured duration (and a
   deadline computed from it). clock_gettime(CLOCK_MONOTONIC) never
   steps, so durations are always the time that actually elapsed. */

#include <time.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

value xsb_mclock_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
