(* The observability layer of the SLG engine (ISSUE PR 3).

   Three pieces, all engine-agnostic (this library depends only on the
   stdlib and Unix):

   - {!Event}: a typed trace-event record. The engine emits one per
     interesting transition (new subgoal, answer, suspension, SCC
     completion, ...), each carrying the subgoal id, the canonical call
     rendered as text, the evaluation-nesting depth, the engine's
     resolution-step counter, and a per-recorder monotonic sequence
     number.

   - {!Sink} / {!Recorder}: pluggable event consumers. A recorder with
     no sinks is inert — the engine guards every emission on
     {!Recorder.active}, so tracing costs one boolean read when
     disabled. Sinks: pretty printing (human debugging), JSONL (one
     object per line, machine-readable, parsed back by {!Json}), an
     in-memory ring buffer (tests), and a custom callback.

   - {!Metrics}: a per-predicate profiling registry (calls, answers,
     duplicate ratio, suspensions, resolutions, inclusive wall time
     sampled around scheduler tasks, peak answer-table size), rendered
     as a sortable report ([--profile]) or as JSON (bench snapshots). *)

(* ------------------------------------------------------------------ *)

module Event = struct
  type kind =
    | New_subgoal  (** a table was created for a fresh tabled subgoal *)
    | Call  (** a predicate call was selected (tabled or not) *)
    | Answer  (** a new answer entered table space *)
    | Dup_answer  (** a derived answer was already present (dedup hit) *)
    | Suspend  (** a derivation suspended as a consumer of a table *)
    | Resume  (** a suspended derivation was resumed with an answer *)
    | Negation_wait  (** a derivation blocked on an incomplete negative literal *)
    | Scc_complete of int  (** an SCC of [n] subgoals closed incrementally *)
    | Complete  (** one subgoal was marked complete *)
    | Drain  (** queued answers of a table are being delivered to a consumer *)
    | Abolish of int  (** [n] completed tables were abolished *)
    | Invalidate of int
        (** a mutation invalidated [n] dependent incremental tables *)
    | Repair of int  (** [n] stale incremental tables were re-evaluated in place *)
    | Fold  (** an answer was folded into an existing subsumptive answer *)
    | Subsume
        (** a call was served by a subsuming table (call subsumption):
            no new generator, answers filtered through unification *)

  type t = {
    seq : int;  (** per-recorder sequence number, strictly monotonic *)
    step : int;  (** engine resolution-step counter at emission *)
    subgoal : int;  (** subgoal id, 0 when the event has no table *)
    pred : string;  (** ["name/arity"], [""] when unknown *)
    call : string;  (** the canonical call / answer, rendered *)
    depth : int;  (** evaluation nesting depth (0 = top-level) *)
    kind : kind;
  }

  let kind_name = function
    | New_subgoal -> "new_subgoal"
    | Call -> "call"
    | Answer -> "answer"
    | Dup_answer -> "dup_answer"
    | Suspend -> "suspend"
    | Resume -> "resume"
    | Negation_wait -> "negation_wait"
    | Scc_complete _ -> "scc_complete"
    | Complete -> "complete"
    | Drain -> "drain"
    | Abolish _ -> "abolish"
    | Invalidate _ -> "invalidate"
    | Repair _ -> "repair"
    | Fold -> "fold"
    | Subsume -> "subsume"

  let pp ppf e =
    let extra =
      match e.kind with
      | Scc_complete n -> Printf.sprintf " (scc size %d)" n
      | Abolish n | Invalidate n | Repair n -> Printf.sprintf " (%d tables)" n
      | _ -> ""
    in
    Format.fprintf ppf "[%6d @%d sg%d d%d] %-13s %-10s %s%s" e.seq e.step e.subgoal
      e.depth (kind_name e.kind) e.pred e.call extra

  let to_json e =
    let base =
      [
        ("seq", Json.Int e.seq);
        ("step", Json.Int e.step);
        ("event", Json.String (kind_name e.kind));
        ("subgoal", Json.Int e.subgoal);
        ("pred", Json.String e.pred);
        ("call", Json.String e.call);
        ("depth", Json.Int e.depth);
      ]
    in
    let extra =
      match e.kind with
      | Scc_complete n -> [ ("scc_size", Json.Int n) ]
      | Abolish n | Invalidate n | Repair n -> [ ("tables", Json.Int n) ]
      | _ -> []
    in
    Json.Obj (base @ extra)

  let of_json j =
    let ( let* ) = Option.bind in
    let* seq = Option.bind (Json.member "seq" j) Json.as_int in
    let* step = Option.bind (Json.member "step" j) Json.as_int in
    let* name = Option.bind (Json.member "event" j) Json.as_string in
    let* subgoal = Option.bind (Json.member "subgoal" j) Json.as_int in
    let* pred = Option.bind (Json.member "pred" j) Json.as_string in
    let* call = Option.bind (Json.member "call" j) Json.as_string in
    let* depth = Option.bind (Json.member "depth" j) Json.as_int in
    let int_field k = Option.bind (Json.member k j) Json.as_int in
    let* kind =
      match name with
      | "new_subgoal" -> Some New_subgoal
      | "call" -> Some Call
      | "answer" -> Some Answer
      | "dup_answer" -> Some Dup_answer
      | "suspend" -> Some Suspend
      | "resume" -> Some Resume
      | "negation_wait" -> Some Negation_wait
      | "scc_complete" -> Option.map (fun n -> Scc_complete n) (int_field "scc_size")
      | "complete" -> Some Complete
      | "drain" -> Some Drain
      | "abolish" -> Option.map (fun n -> Abolish n) (int_field "tables")
      | "invalidate" -> Option.map (fun n -> Invalidate n) (int_field "tables")
      | "repair" -> Option.map (fun n -> Repair n) (int_field "tables")
      | "fold" -> Some Fold
      | "subsume" -> Some Subsume
      | _ -> None
    in
    Some { seq; step; subgoal; pred; call; depth; kind }
end

(* ------------------------------------------------------------------ *)

module Ring = struct
  (* fixed-capacity event buffer that overwrites its oldest entry: the
     test sink, and a crash-dump buffer ("what were the last N events") *)
  type t = {
    capacity : int;
    mutable length : int;
    mutable next : int;  (* index of the slot the next event goes into *)
    slots : Event.t option array;
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Obs.Ring.create: capacity must be positive";
    { capacity; length = 0; next = 0; slots = Array.make capacity None }

  let add t e =
    t.slots.(t.next) <- Some e;
    t.next <- (t.next + 1) mod t.capacity;
    if t.length < t.capacity then t.length <- t.length + 1

  let length t = t.length
  let capacity t = t.capacity

  let clear t =
    Array.fill t.slots 0 t.capacity None;
    t.length <- 0;
    t.next <- 0

  (* oldest first *)
  let to_list t =
    let start = (t.next - t.length + t.capacity) mod t.capacity in
    List.init t.length (fun i ->
        match t.slots.((start + i) mod t.capacity) with
        | Some e -> e
        | None -> assert false)
end

(* ------------------------------------------------------------------ *)

module Sink = struct
  type t =
    | Null  (** accepts and drops events (overhead measurements) *)
    | Pretty of Format.formatter
    | Jsonl of out_channel  (** one JSON object per line, flushed per event *)
    | Ring of Ring.t
    | Custom of (Event.t -> unit)

  let emit sink e =
    match sink with
    | Null -> ()
    | Pretty ppf -> Format.fprintf ppf "%a@." Event.pp e
    | Jsonl oc ->
        output_string oc (Json.to_string (Event.to_json e));
        output_char oc '\n';
        flush oc
    | Ring r -> Ring.add r e
    | Custom f -> f e
end

module Recorder = struct
  type t = { mutable sinks : Sink.t list; mutable seq : int }

  let create () = { sinks = []; seq = 0 }

  (* the engine's fast-path guard: no sinks, no event construction *)
  let active t = t.sinks <> []

  let attach t sink = t.sinks <- t.sinks @ [ sink ]
  let clear t = t.sinks <- []

  let emit t ~step ~subgoal ~pred ~call ~depth kind =
    t.seq <- t.seq + 1;
    let e = { Event.seq = t.seq; step; subgoal; pred; call; depth; kind } in
    List.iter (fun sink -> Sink.emit sink e) t.sinks
end

(* ------------------------------------------------------------------ *)

module Metrics = struct
  (* Time source for task timing: the process monotonic clock, so an NTP
     step cannot corrupt a measured duration. Injectable for tests. *)
  let clock : (unit -> float) ref = ref Mclock.now

  type cell = {
    mutable m_calls : int;  (* times the predicate was selected as a goal *)
    mutable m_subgoals : int;  (* distinct tabled subgoals (tables created) *)
    mutable m_answers : int;  (* new answers entering its tables *)
    mutable m_dup_answers : int;  (* derived answers already present *)
    mutable m_suspensions : int;  (* consumers registered on its tables *)
    mutable m_resolutions : int;  (* program-clause resolutions *)
    mutable m_time : float;  (* inclusive seconds inside scheduler tasks *)
    mutable m_peak_table : int;  (* largest answer table observed *)
  }

  let fresh_cell () =
    {
      m_calls = 0;
      m_subgoals = 0;
      m_answers = 0;
      m_dup_answers = 0;
      m_suspensions = 0;
      m_resolutions = 0;
      m_time = 0.0;
      m_peak_table = 0;
    }

  type t = {
    cells : (string * int, cell) Hashtbl.t;
    mutable enabled : bool;
  }

  let create () = { cells = Hashtbl.create 32; enabled = false }
  let enabled t = t.enabled
  let set_enabled t flag = t.enabled <- flag
  let reset t = Hashtbl.reset t.cells

  let cell t key =
    match Hashtbl.find_opt t.cells key with
    | Some c -> c
    | None ->
        let c = fresh_cell () in
        Hashtbl.add t.cells key c;
        c

  let find t key = Hashtbl.find_opt t.cells key
  let calls t name arity = match find t (name, arity) with Some c -> c.m_calls | None -> 0

  let note_table_size c n = if n > c.m_peak_table then c.m_peak_table <- n

  let dup_ratio c =
    let total = c.m_answers + c.m_dup_answers in
    if total = 0 then 0.0 else float_of_int c.m_dup_answers /. float_of_int total

  (* internal predicates ($queryN tables, compiler-generated helpers) are
     hidden from reports unless asked for *)
  let internal_pred (name, _) = String.length name > 0 && name.[0] = '$'

  type row = { row_pred : string * int; row_cell : cell }

  (* sorted hottest-first: wall time, then answers, then calls *)
  let rows ?(internal = false) t =
    Hashtbl.fold
      (fun key c acc ->
        if internal || not (internal_pred key) then { row_pred = key; row_cell = c } :: acc
        else acc)
      t.cells []
    |> List.sort (fun a b ->
           match compare b.row_cell.m_time a.row_cell.m_time with
           | 0 -> (
               match compare b.row_cell.m_answers a.row_cell.m_answers with
               | 0 -> (
                   match compare b.row_cell.m_calls a.row_cell.m_calls with
                   | 0 -> compare a.row_pred b.row_pred
                   | c -> c)
               | c -> c)
           | c -> c)

  let pp_report ?internal ppf t =
    let rows = rows ?internal t in
    Format.fprintf ppf "%-20s %8s %8s %8s %6s %6s %8s %6s %10s@." "predicate" "calls"
      "subgoals" "answers" "dups" "dup%" "susp" "peak" "time(ms)";
    List.iter
      (fun { row_pred = name, arity; row_cell = c } ->
        Format.fprintf ppf "%-20s %8d %8d %8d %6d %5.1f%% %8d %6d %10.3f@."
          (Printf.sprintf "%s/%d" name arity)
          c.m_calls c.m_subgoals c.m_answers c.m_dup_answers
          (100.0 *. dup_ratio c)
          c.m_suspensions c.m_peak_table (1000.0 *. c.m_time))
      rows;
    if rows = [] then Format.fprintf ppf "(no samples — was profiling enabled?)@."

  let row_to_json { row_pred = name, arity; row_cell = c } =
    Json.Obj
      [
        ("pred", Json.String (Printf.sprintf "%s/%d" name arity));
        ("calls", Json.Int c.m_calls);
        ("subgoals", Json.Int c.m_subgoals);
        ("answers", Json.Int c.m_answers);
        ("dup_answers", Json.Int c.m_dup_answers);
        ("dup_ratio", Json.Float (dup_ratio c));
        ("suspensions", Json.Int c.m_suspensions);
        ("resolutions", Json.Int c.m_resolutions);
        ("peak_table", Json.Int c.m_peak_table);
        ("time_ms", Json.Float (1000.0 *. c.m_time));
      ]

  let report_to_json ?internal t = Json.List (List.map row_to_json (rows ?internal t))
end
