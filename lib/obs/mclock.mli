(** A monotonic clock ([CLOCK_MONOTONIC]) for latency measurement and
    deadlines: unlike [Unix.gettimeofday] it never steps when the system
    clock is adjusted, so a difference of two readings is always the
    time that actually elapsed. The origin is arbitrary — readings are
    meaningful only as differences, never as timestamps. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary origin, nondecreasing. *)

val now : unit -> float
(** Seconds since an arbitrary origin, nondecreasing. *)
