(* The process monotonic clock (CLOCK_MONOTONIC via a one-line C stub;
   Mtime is not vendored). Durations measured with [now] are immune to
   NTP steps; the origin is arbitrary, so values are only meaningful as
   differences. *)

external now_ns : unit -> int64 = "xsb_mclock_now_ns"

let now () = Int64.to_float (now_ns ()) *. 1e-9
