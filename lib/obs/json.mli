(** A minimal JSON codec — just enough for the JSONL trace sink and for
    tests/CI to parse the emitted lines back (yojson is deliberately not
    a dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with string escaping. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace input is an error. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj], or [None]. *)

val as_int : t -> int option
val as_string : t -> string option

val as_float : t -> float option
(** Also accepts [Int]. *)
