(* The process-wide metrics registry (ISSUE PR 8): counters, gauges and
   log-bucketed latency histograms, rendered in the Prometheus text
   exposition format by a self-contained encoder.

   Distinct from {!Obs.Metrics}, the per-predicate SLG profiler: that
   one answers "which predicate is hot inside one evaluation"; this one
   answers "what is the server doing right now" — request rates, latency
   quantiles, table-space bytes, journal durability lag — and is meant
   to be scraped continuously over the wire (the METRICS op).

   The record path is lock-cheap: a counter bump is one [Atomic.incr]
   behind one boolean read; a histogram observation takes a per-histogram
   mutex around a four-field update (bucket find is a binary search over
   a small immutable array). Registration (find-or-create of a family or
   child) takes the registry mutex, but instrument holders are expected
   to register once and keep the handle. *)

type labels = (string * string) list

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let valid_label_name name =
  String.length name > 0
  && name.[0] <> ':'
  && valid_name name
  (* label names may not use the metric-name-only ':' *)
  && String.for_all (fun c -> c <> ':') name

(* ------------------------------------------------------------------ *)
(* Histograms *)

module Histogram = struct
  (* Log-spaced bucket upper bounds: factor 2 from 1 microsecond to
     ~67 seconds (in seconds). Every request latency this server can
     produce lands inside with <= 2x relative quantile error. *)
  let default_buckets = Array.init 27 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

  type t = {
    bounds : float array;  (* ascending; the +Inf bucket is implicit *)
    counts : int array;  (* length = Array.length bounds + 1 *)
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
    lock : Mutex.t;
    on : bool ref;  (* the owning registry's enabled flag *)
  }

  let make ~on bounds =
    let bounds = Array.copy bounds in
    Array.sort compare bounds;
    if Array.length bounds = 0 then invalid_arg "Metrics.Histogram: no buckets";
    {
      bounds;
      counts = Array.make (Array.length bounds + 1) 0;
      count = 0;
      sum = 0.0;
      vmin = Float.infinity;
      vmax = Float.neg_infinity;
      lock = Mutex.create ();
      on = on;
    }

  let create ?(buckets = default_buckets) () = make ~on:(ref true) buckets

  (* index of the first bound >= v, or the +Inf slot *)
  let bucket_index bounds v =
    let n = Array.length bounds in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo

  let observe h v =
    if !(h.on) then begin
      Mutex.lock h.lock;
      h.counts.(bucket_index h.bounds v) <- h.counts.(bucket_index h.bounds v) + 1;
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.vmin then h.vmin <- v;
      if v > h.vmax then h.vmax <- v;
      Mutex.unlock h.lock
    end

  let count h = h.count
  let sum h = h.sum
  let min_value h = if h.count = 0 then 0.0 else h.vmin
  let max_value h = if h.count = 0 then 0.0 else h.vmax

  (* cumulative (upper_bound, count) pairs, +Inf last *)
  let cumulative h =
    Mutex.lock h.lock;
    let acc = ref 0 in
    let rows =
      Array.to_list
        (Array.mapi
           (fun i c ->
             acc := !acc + c;
             ((if i < Array.length h.bounds then h.bounds.(i) else Float.infinity), !acc))
           h.counts)
    in
    Mutex.unlock h.lock;
    rows

  (* Quantile by linear interpolation inside the target bucket (the
     same estimate Prometheus' histogram_quantile computes), clamped to
     the exact observed min/max so q=0/q=1 are exact. *)
  let quantile h q =
    if h.count = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = q *. float_of_int h.count in
      let rec find prev_cum prev_bound = function
        | [] -> max_value h
        | (bound, cum) :: rest ->
            if float_of_int cum >= rank && cum > prev_cum then begin
              let lo = Float.max prev_bound (min_value h) in
              let hi = if bound = Float.infinity then max_value h else Float.min bound (max_value h) in
              let inside = float_of_int (cum - prev_cum) in
              let frac = (rank -. float_of_int prev_cum) /. inside in
              lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 frac))
            end
            else find cum bound rest
      in
      find 0 0.0 (cumulative h)
    end

  let percentile h p = quantile h (p /. 100.0)
end

(* ------------------------------------------------------------------ *)
(* The registry *)

type counter = { c_value : int Atomic.t; c_on : bool ref }
type gauge = { g_value : float Atomic.t; g_on : bool ref }

type value_ =
  | Vcounter of counter
  | Vgauge of gauge
  | Vgauge_fn of (unit -> float)
  | Vhistogram of Histogram.t

type kind = Counter | Gauge | Histo

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histo -> "histogram"

type child = { ch_labels : labels; ch_value : value_ }

type family = {
  fam_name : string;
  fam_help : string;
  fam_kind : kind;
  mutable fam_children : child list;  (* insertion order *)
}

type t = { mutable families : family list; lock : Mutex.t; on : bool ref }

let create () = { families = []; lock = Mutex.create (); on = ref true }
let enabled t = !(t.on)
let set_enabled t flag = t.on := flag

let check_labels labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then invalid_arg ("Metrics: bad label name " ^ k))
    labels;
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* find-or-create, under the registry lock *)
let child t ~name ~help ~kind ~labels make =
  if not (valid_name name) then invalid_arg ("Metrics: bad metric name " ^ name);
  let labels = check_labels labels in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let fam =
        match List.find_opt (fun f -> f.fam_name = name) t.families with
        | Some f ->
            if f.fam_kind <> kind then
              invalid_arg
                (Printf.sprintf "Metrics: %s re-registered as a %s (was a %s)" name
                   (kind_name kind) (kind_name f.fam_kind));
            f
        | None ->
            let f = { fam_name = name; fam_help = help; fam_kind = kind; fam_children = [] } in
            t.families <- t.families @ [ f ];
            f
      in
      match List.find_opt (fun c -> c.ch_labels = labels) fam.fam_children with
      | Some c -> c.ch_value
      | None ->
          let v = make () in
          fam.fam_children <- fam.fam_children @ [ { ch_labels = labels; ch_value = v } ];
          v)

let counter t ?(labels = []) ~help name =
  match
    child t ~name ~help ~kind:Counter ~labels (fun () ->
        Vcounter { c_value = Atomic.make 0; c_on = t.on })
  with
  | Vcounter c -> c
  | _ -> assert false

let gauge t ?(labels = []) ~help name =
  match
    child t ~name ~help ~kind:Gauge ~labels (fun () ->
        Vgauge { g_value = Atomic.make 0.0; g_on = t.on })
  with
  | Vgauge g -> g
  | _ -> assert false

(* sampled at scrape time: the cheapest way to expose a value the
   instrumented code already maintains (queue depth, table bytes) *)
let gauge_fn t ?(labels = []) ~help name f =
  ignore (child t ~name ~help ~kind:Gauge ~labels (fun () -> Vgauge_fn f))

let histogram t ?(buckets = Histogram.default_buckets) ?(labels = []) ~help name =
  match
    child t ~name ~help ~kind:Histo ~labels (fun () ->
        Vhistogram (Histogram.make ~on:t.on buckets))
  with
  | Vhistogram h -> h
  | _ -> assert false

module Counter = struct
  type t = counter

  let incr c = if !(c.c_on) then ignore (Atomic.fetch_and_add c.c_value 1)
  let add c n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    if !(c.c_on) then ignore (Atomic.fetch_and_add c.c_value n)

  let value c = Atomic.get c.c_value
end

module Gauge = struct
  type t = gauge

  let set g v = if !(g.g_on) then Atomic.set g.g_value v
  let value g = Atomic.get g.g_value

  let rec add g d =
    if !(g.g_on) then begin
      let v = Atomic.get g.g_value in
      if not (Atomic.compare_and_set g.g_value v (v +. d)) then add g d
    end

  let incr g = add g 1.0
  let decr g = add g (-1.0)
end

(* ------------------------------------------------------------------ *)
(* The Prometheus text exposition encoder *)

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_text labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
    ^ "}"

let float_text f =
  if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* shortest representation that still round-trips, so a scraped
       value parses back to exactly what was recorded *)
    let short = Printf.sprintf "%.9g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let render_family buf fam =
  Printf.bprintf buf "# HELP %s %s\n" fam.fam_name (escape_help fam.fam_help);
  Printf.bprintf buf "# TYPE %s %s\n" fam.fam_name (kind_name fam.fam_kind);
  List.iter
    (fun { ch_labels = labels; ch_value } ->
      match ch_value with
      | Vcounter c ->
          Printf.bprintf buf "%s%s %d\n" fam.fam_name (label_text labels) (Atomic.get c.c_value)
      | Vgauge g ->
          Printf.bprintf buf "%s%s %s\n" fam.fam_name (label_text labels)
            (float_text (Atomic.get g.g_value))
      | Vgauge_fn f ->
          let v = try f () with _ -> Float.nan in
          Printf.bprintf buf "%s%s %s\n" fam.fam_name (label_text labels) (float_text v)
      | Vhistogram h ->
          List.iter
            (fun (bound, cum) ->
              Printf.bprintf buf "%s_bucket%s %d\n" fam.fam_name
                (label_text (labels @ [ ("le", float_text bound) ]))
                cum)
            (Histogram.cumulative h);
          Printf.bprintf buf "%s_sum%s %s\n" fam.fam_name (label_text labels)
            (float_text (Histogram.sum h));
          Printf.bprintf buf "%s_count%s %d\n" fam.fam_name (label_text labels)
            (Histogram.count h))
    fam.fam_children

let to_text t =
  Mutex.lock t.lock;
  let families = t.families in
  Mutex.unlock t.lock;
  let buf = Buffer.create 4096 in
  List.iter (render_family buf) families;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The parse-back checker: reads an exposition back and verifies its
   shape, so tests, the client and CI can reject a malformed scrape
   without a real Prometheus server. *)

module Exposition = struct
  type sample = { s_name : string; s_labels : labels; s_value : float }

  exception Bad of string

  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

  let parse_value text =
    match text with
    | "+Inf" -> Float.infinity
    | "-Inf" -> Float.neg_infinity
    | "NaN" -> Float.nan
    | _ -> (
        match float_of_string_opt text with
        | Some f -> f
        | None -> fail "bad sample value %S" text)

  (* name{k="v",...} with escaped label values *)
  let parse_sample lineno line =
    let len = String.length line in
    let rec name_end i =
      if i < len then
        match line.[i] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> name_end (i + 1)
        | _ -> i
      else i
    in
    let ne = name_end 0 in
    if ne = 0 then fail "line %d: no metric name" lineno;
    let s_name = String.sub line 0 ne in
    let labels = ref [] in
    let i = ref ne in
    if !i < len && line.[!i] = '{' then begin
      incr i;
      let rec one () =
        let ks = !i in
        while !i < len && line.[!i] <> '=' do incr i done;
        if !i >= len then fail "line %d: unterminated label" lineno;
        let key = String.sub line ks (!i - ks) in
        if not (valid_label_name key) then fail "line %d: bad label name %S" lineno key;
        incr i;
        if !i >= len || line.[!i] <> '"' then fail "line %d: expected quoted label value" lineno;
        incr i;
        let buf = Buffer.create 16 in
        let rec value () =
          if !i >= len then fail "line %d: unterminated label value" lineno
          else
            match line.[!i] with
            | '"' -> incr i
            | '\\' ->
                if !i + 1 >= len then fail "line %d: dangling escape" lineno;
                (match line.[!i + 1] with
                | '\\' -> Buffer.add_char buf '\\'
                | '"' -> Buffer.add_char buf '"'
                | 'n' -> Buffer.add_char buf '\n'
                | c -> fail "line %d: bad escape \\%c" lineno c);
                i := !i + 2;
                value ()
            | c ->
                Buffer.add_char buf c;
                incr i;
                value ()
        in
        value ();
        labels := (key, Buffer.contents buf) :: !labels;
        if !i < len && line.[!i] = ',' then begin
          incr i;
          one ()
        end
        else if !i < len && line.[!i] = '}' then incr i
        else fail "line %d: expected ',' or '}' in labels" lineno
      in
      if !i < len && line.[!i] = '}' then incr i else one ()
    end;
    if !i >= len || line.[!i] <> ' ' then fail "line %d: expected ' ' before value" lineno;
    let value_text = String.sub line (!i + 1) (len - !i - 1) in
    { s_name; s_labels = List.rev !labels; s_value = parse_value (String.trim value_text) }

  (* the family a sample belongs to: histogram series drop their
     _bucket/_sum/_count suffix *)
  let family_of types sample =
    let strip suffix name =
      let n = String.length name and m = String.length suffix in
      if n > m && String.sub name (n - m) m = suffix then Some (String.sub name 0 (n - m))
      else None
    in
    let histo base = match Hashtbl.find_opt types base with Some "histogram" -> true | _ -> false in
    match strip "_bucket" sample.s_name with
    | Some base when histo base -> base
    | _ -> (
        match strip "_sum" sample.s_name with
        | Some base when histo base -> base
        | _ -> (
            match strip "_count" sample.s_name with
            | Some base when histo base -> base
            | _ -> sample.s_name))

  let check text =
    let lines = String.split_on_char '\n' text in
    let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
    let helps : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let samples = ref [] in
    let seen_series : (string * labels, unit) Hashtbl.t = Hashtbl.create 64 in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        if line = "" then ()
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
          match String.index_from_opt line 7 ' ' with
          | None -> fail "line %d: HELP without text" lineno
          | Some sp ->
              let name = String.sub line 7 (sp - 7) in
              if not (valid_name name) then fail "line %d: bad HELP name %S" lineno name;
              if Hashtbl.mem helps name then fail "line %d: duplicate HELP for %s" lineno name;
              Hashtbl.add helps name ()
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.index_from_opt line 7 ' ' with
          | None -> fail "line %d: TYPE without kind" lineno
          | Some sp ->
              let name = String.sub line 7 (sp - 7) in
              let kind = String.sub line (sp + 1) (String.length line - sp - 1) in
              if not (valid_name name) then fail "line %d: bad TYPE name %S" lineno name;
              if Hashtbl.mem types name then fail "line %d: duplicate TYPE for %s" lineno name;
              if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
              then fail "line %d: unknown kind %S" lineno kind;
              Hashtbl.add types name kind
        end
        else if line.[0] = '#' then ()  (* plain comment *)
        else begin
          let s = parse_sample lineno line in
          let key = (s.s_name, s.s_labels) in
          if Hashtbl.mem seen_series key then
            fail "line %d: duplicate series %s%s" lineno s.s_name (label_text s.s_labels);
          Hashtbl.add seen_series key ();
          let fam = family_of types s in
          if not (Hashtbl.mem types fam) then
            fail "line %d: sample %s has no TYPE declaration" lineno s.s_name;
          (match Hashtbl.find_opt types fam with
          | Some "counter" ->
              if Float.is_nan s.s_value || s.s_value < 0.0 then
                fail "line %d: counter %s has value %s" lineno s.s_name (float_text s.s_value)
          | _ -> ());
          samples := (fam, s) :: !samples
        end)
      lines;
    let samples = List.rev !samples in
    (* every declared family has at least one sample *)
    Hashtbl.iter
      (fun name _ ->
        if not (List.exists (fun (fam, _) -> fam = name) samples) then
          fail "family %s declared but has no samples" name)
      types;
    (* histogram shape: per label set, buckets sorted by le with
       nondecreasing cumulative counts, ending at le="+Inf" whose count
       equals the _count sample; a _sum sample exists *)
    Hashtbl.iter
      (fun name kind ->
        if kind = "histogram" then begin
          let of_suffix suffix =
            List.filter_map
              (fun (fam, s) -> if fam = name && s.s_name = name ^ suffix then Some s else None)
              samples
          in
          let buckets = of_suffix "_bucket" in
          let counts = of_suffix "_count" in
          let sums = of_suffix "_sum" in
          if buckets = [] then fail "histogram %s has no buckets" name;
          let base_labels s = List.filter (fun (k, _) -> k <> "le") s.s_labels in
          let groups = List.sort_uniq compare (List.map base_labels buckets) in
          List.iter
            (fun g ->
              let series =
                List.filter_map
                  (fun s ->
                    if base_labels s = g then
                      match List.assoc_opt "le" s.s_labels with
                      | Some le -> Some (parse_value le, s.s_value)
                      | None -> fail "histogram %s bucket without le" name
                    else None)
                  buckets
              in
              let sorted = List.sort (fun (a, _) (b, _) -> compare a b) series in
              if sorted <> series then fail "histogram %s buckets not in le order" name;
              ignore
                (List.fold_left
                   (fun prev (_, c) ->
                     if c < prev then fail "histogram %s bucket counts not cumulative" name;
                     c)
                   0.0 sorted);
              (match List.rev sorted with
              | (le, last) :: _ ->
                  if le <> Float.infinity then fail "histogram %s missing +Inf bucket" name;
                  (match List.find_opt (fun s -> base_labels s = g) counts with
                  | None -> fail "histogram %s has no _count" name
                  | Some c ->
                      if c.s_value <> last then
                        fail "histogram %s: +Inf bucket %s <> _count %s" name (float_text last)
                          (float_text c.s_value))
              | [] -> fail "histogram %s has an empty bucket group" name);
              if not (List.exists (fun s -> base_labels s = g) sums) then
                fail "histogram %s has no _sum" name)
            groups
        end)
      types;
    samples

  let validate text =
    match check text with samples -> Ok samples | exception Bad msg -> Error msg

  (* the value of one series, e.g. [find samples "xsb_requests_total"
     ~labels:[("op","QUERY")]]; labels must match exactly *)
  let find ?(labels = []) samples name =
    let labels = List.sort compare labels in
    List.find_map
      (fun (_, s) ->
        if s.s_name = name && List.sort compare s.s_labels = labels then Some s.s_value else None)
      samples

  (* sum of every series of a family (e.g. a labeled counter total) *)
  let sum_family samples name =
    List.fold_left
      (fun acc (fam, s) -> if fam = name && s.s_name = name then acc +. s.s_value else acc)
      0.0 samples
end
