(** Observability for the SLG engine: a typed trace-event stream with
    pluggable sinks, and a per-predicate profiling registry.

    The engine owns one {!Recorder.t} (events) and one {!Metrics.t}
    (profiling counters) per environment; both are inert until a sink is
    attached / profiling is enabled, so the disabled-path cost is a
    single boolean read per emission site. *)

(** {1 Events} *)

module Event : sig
  type kind =
    | New_subgoal  (** a table was created for a fresh tabled subgoal *)
    | Call  (** a predicate call was selected (tabled or not) *)
    | Answer  (** a new answer entered table space *)
    | Dup_answer  (** a derived answer was already present (dedup hit) *)
    | Suspend  (** a derivation suspended as a consumer of a table *)
    | Resume  (** a suspended derivation was resumed with an answer *)
    | Negation_wait
        (** a derivation blocked on an incomplete negative literal (or a
            [tfindall/3] wait) *)
    | Scc_complete of int  (** an SCC of [n] subgoals closed incrementally *)
    | Complete  (** one subgoal was marked complete *)
    | Drain  (** queued answers are being delivered to a consumer *)
    | Abolish of int  (** [n] completed tables were abolished *)
    | Invalidate of int
        (** a mutation invalidated [n] dependent incremental tables *)
    | Repair of int  (** [n] stale incremental tables were re-evaluated in place *)
    | Fold  (** an answer was folded into an existing subsumptive answer *)
    | Subsume
        (** a call was served by a subsuming table (call subsumption):
            no new generator, answers filtered through unification *)

  type t = {
    seq : int;  (** per-recorder sequence number, strictly monotonic *)
    step : int;  (** engine resolution-step counter at emission *)
    subgoal : int;  (** subgoal id, 0 when the event has no table *)
    pred : string;  (** ["name/arity"], [""] when unknown *)
    call : string;  (** the canonical call / answer, rendered as text *)
    depth : int;  (** evaluation nesting depth (0 = top-level) *)
    kind : kind;
  }

  val kind_name : kind -> string
  val pp : Format.formatter -> t -> unit

  val to_json : t -> Json.t
  val of_json : Json.t -> t option
end

(** {1 The ring buffer} *)

module Ring : sig
  type t

  val create : int -> t
  (** Fixed capacity (positive); the buffer overwrites its oldest entry
      once full. *)

  val add : t -> Event.t -> unit
  val length : t -> int
  val capacity : t -> int
  val clear : t -> unit

  val to_list : t -> Event.t list
  (** Oldest first. *)
end

(** {1 Sinks and the recorder} *)

module Sink : sig
  type t =
    | Null  (** accepts and drops events (overhead measurements) *)
    | Pretty of Format.formatter
    | Jsonl of out_channel  (** one JSON object per line, flushed per event *)
    | Ring of Ring.t
    | Custom of (Event.t -> unit)

  val emit : t -> Event.t -> unit
end

module Recorder : sig
  type t

  val create : unit -> t

  val active : t -> bool
  (** [false] iff no sink is attached — the engine's fast-path guard;
      emission sites must not even construct events when inactive. *)

  val attach : t -> Sink.t -> unit
  (** Sinks stack: every attached sink receives every event. *)

  val clear : t -> unit

  val emit :
    t ->
    step:int ->
    subgoal:int ->
    pred:string ->
    call:string ->
    depth:int ->
    Event.kind ->
    unit
  (** Assigns the next sequence number and fans the event out to every
      attached sink. *)
end

(** {1 Per-predicate metrics} *)

module Metrics : sig
  val clock : (unit -> float) ref
  (** Time source for task timing, seconds. Defaults to the monotonic
      {!Mclock.now} (durations survive NTP steps); injectable for
      tests. *)

  type cell = {
    mutable m_calls : int;
    mutable m_subgoals : int;
    mutable m_answers : int;
    mutable m_dup_answers : int;
    mutable m_suspensions : int;
    mutable m_resolutions : int;
    mutable m_time : float;  (** inclusive seconds inside scheduler tasks *)
    mutable m_peak_table : int;
  }

  type t

  val create : unit -> t

  val enabled : t -> bool
  (** The engine's fast-path guard for all metric updates. *)

  val set_enabled : t -> bool -> unit
  val reset : t -> unit

  val cell : t -> string * int -> cell
  (** Find-or-create the counters of a predicate. *)

  val find : t -> string * int -> cell option

  val calls : t -> string -> int -> int
  (** [m_calls] of a predicate, 0 when never sampled. *)

  val note_table_size : cell -> int -> unit
  (** Raise [m_peak_table] to [n] if larger. *)

  val dup_ratio : cell -> float
  (** Duplicate answers as a fraction of all derived answers. *)

  type row = { row_pred : string * int; row_cell : cell }

  val rows : ?internal:bool -> t -> row list
  (** Sorted hottest-first (time, then answers, then calls). Predicates
      whose name starts with ['$'] (private query tables) are dropped
      unless [~internal:true]. *)

  val pp_report : ?internal:bool -> Format.formatter -> t -> unit
  (** The [--profile] table. *)

  val report_to_json : ?internal:bool -> t -> Json.t
end
