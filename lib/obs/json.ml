(* A minimal JSON value type with an emitter and a recursive-descent
   parser. The tracing layer emits JSONL (one object per line); tests and
   CI parse the lines back to check well-formedness, and yojson is not a
   dependency of this repository, so we carry our own ~150-line codec. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/inf; clamp to null as emitters conventionally do *)
      if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected %c at %d, found %c" ch c.pos x
  | None -> parse_error "expected %c at %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at %d" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents buf
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' ->
            Buffer.add_char buf '"';
            advance c;
            go ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            advance c;
            go ()
        | Some '/' ->
            Buffer.add_char buf '/';
            advance c;
            go ()
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance c;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance c;
            go ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            advance c;
            go ()
        | Some 'b' ->
            Buffer.add_char buf '\b';
            advance c;
            go ()
        | Some 'f' ->
            Buffer.add_char buf '\012';
            advance c;
            go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then parse_error "truncated \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> parse_error "invalid \\u escape %S" hex
            in
            (* we only emit \u00XX for control characters; decode the
               Latin-1 range and replace anything beyond it *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            go ()
        | _ -> parse_error "invalid escape at %d" c.pos)
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_error "invalid number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> parse_error "invalid number %S" text

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> parse_error "expected , or } at %d" c.pos
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> parse_error "expected , or ] at %d" c.pos
        in
        List (items [])
      end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected character %c at %d" ch c.pos

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then Error (Printf.sprintf "trailing input at %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_int = function Int i -> Some i | _ -> None
let as_string = function String s -> Some s | _ -> None
let as_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
