(** The process-wide metrics registry: counters, gauges and log-bucketed
    latency histograms, rendered in the Prometheus text exposition
    format by a self-contained encoder (and parsed back by
    {!Exposition} so tests and CI can reject a malformed scrape).

    Distinct from {!Obs.Metrics}, the per-predicate SLG profiler: this
    registry holds operational signals — request rates, latency
    quantiles, table-space bytes, journal durability lag — meant to be
    scraped continuously (the server's METRICS op).

    The record path is lock-cheap: a counter bump is one atomic add
    behind one boolean read; a histogram observation takes a
    per-histogram mutex around a four-field update. Registration takes
    the registry mutex — register once, keep the handle. *)

type labels = (string * string) list
(** Label pairs; stored sorted by name, so two label sets are the same
    series iff they are equal as sorted lists. *)

type t
(** A registry: an ordered collection of metric families. *)

val create : unit -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** A disabled registry turns every record path into a boolean read
    (used to measure instrumentation overhead); scrapes still render
    whatever was recorded. *)

(** {1 Instruments} *)

module Histogram : sig
  type t

  val default_buckets : float array
  (** Log-spaced upper bounds, factor 2 from 1 microsecond to about 67
      seconds (in seconds) — every latency this server can produce
      lands inside with at most 2x relative quantile error. *)

  val create : ?buckets:float array -> unit -> t
  (** A standalone histogram outside any registry (bench percentile
      computations share quantile math with the server this way). *)

  val observe : t -> float -> unit

  val count : t -> int
  val sum : t -> float
  (** Exact: the histogram keeps the exact observation count and sum
      alongside the bucketed distribution. *)

  val min_value : t -> float
  val max_value : t -> float
  (** Exact observed extremes; [0.0] when empty. *)

  val cumulative : t -> (float * int) list
  (** Cumulative [(upper_bound, count)] rows, the [+Inf] bucket last. *)

  val quantile : t -> float -> float
  (** [quantile h 0.95]: linear interpolation inside the target bucket
      (the estimate [histogram_quantile] computes), clamped to the
      exact observed min/max. [0.0] when empty. *)

  val percentile : t -> float -> float
  (** [percentile h 95.0 = quantile h 0.95]. *)
end

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** Raises [Invalid_argument] on a negative increment — counters are
      monotone by contract. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val incr : t -> unit
  val decr : t -> unit
  val value : t -> float
end

(** {1 Registration}

    Find-or-create: registering the same name (and label set) again
    returns the existing instrument; re-registering a name as a
    different kind raises [Invalid_argument]. *)

val counter : t -> ?labels:labels -> help:string -> string -> Counter.t
val gauge : t -> ?labels:labels -> help:string -> string -> Gauge.t

val gauge_fn : t -> ?labels:labels -> help:string -> string -> (unit -> float) -> unit
(** A gauge sampled at scrape time — the cheapest way to expose a value
    the instrumented code already maintains (queue depth, table-space
    bytes). The callback must not raise; if it does, the sample renders
    as NaN. *)

val histogram :
  t -> ?buckets:float array -> ?labels:labels -> help:string -> string -> Histogram.t

(** {1 Exposition} *)

val to_text : t -> string
(** The Prometheus text exposition: per family one [# HELP] and one
    [# TYPE] line followed by its samples; histograms render cumulative
    [_bucket{le=...}] series plus [_sum] and [_count]. *)

module Exposition : sig
  type sample = { s_name : string; s_labels : labels; s_value : float }

  val validate : string -> ((string * sample) list, string) result
  (** Parse an exposition back and verify its shape: names and labels
      well-formed, HELP/TYPE unique and declared for every sample, no
      duplicate series, counters finite and non-negative, histogram
      buckets in [le] order with cumulative counts ending at a [+Inf]
      bucket equal to [_count], and a [_sum] present. Returns the
      samples as [(family_name, sample)] pairs. *)

  val find : ?labels:labels -> (string * sample) list -> string -> float option
  (** The value of one series (exact label match). *)

  val sum_family : (string * sample) list -> string -> float
  (** Sum of every series of a family (e.g. a labeled counter total). *)
end
