(** A blocking client for the query service — the library behind
    [bin/xsb_client.ml], the server tests and [bench server]. One
    {!t} is one TCP connection, i.e. one private server-side session. *)

type t

val connect : ?host:string -> int -> t
(** [connect ?host port]. Raises [Unix.Unix_error] on refusal. *)

val close : t -> unit

type reply_error = { code : Protocol.err_code; message : string }

val ping : t -> (string, reply_error) result
(** ["pong"] on success. *)

val consult : ?fmt:Protocol.consult_fmt -> t -> string -> (string, reply_error) result
(** Load program text (or, with [~fmt], bulk facts / an object-file
    image) into the connection's session. *)

val assert_ : t -> string -> (string, reply_error) result
(** Assert one clause, e.g. ["edge(1,2)"] or ["p(X) :- q(X)"]. *)

val statistics : t -> (string, reply_error) result
(** The engine's [statistics/0] report for this session. *)

val abolish : ?pred:string -> t -> (string, reply_error) result
(** With no [?pred]: abolish the session's completed tables. With
    [~pred:"name/arity"]: remove that predicate (clauses, table/index
    registrations) from the database. *)

val sync : t -> (string, reply_error) result
(** Ask a durable server ([--data-dir]) to fsync its journal now;
    [BAD_REQUEST] from an in-memory server. *)

val metrics : t -> (string, reply_error) result
(** The server's Prometheus text exposition: request counters and
    latency histograms, table-space byte gauges, journal durability
    metrics. *)

val promote : t -> (string, reply_error) result
(** Promote a replication standby to a writable primary (failover);
    [BAD_REQUEST] from a server that is not a replica. *)

(** {1 Failover discovery (the ROLE op)} *)

type role = Primary_role | Standby_role

type role_info = {
  role : role;
  epoch : int64;  (** failover fencing epoch of the node's timeline *)
  generation : int64;  (** journal position: durable (primary) or applied (standby) *)
  offset : int;
  repl_port : int option;  (** the replication feed, when serving one *)
  priority : int;  (** [--promote-priority]; lower promotes first *)
  read_only : bool;
  peers : (string * int) list;  (** the node's [--peers] topology list *)
  fatal : string option;
      (** standby only: why its applier parked (e.g. fenced after a
          split brain) *)
}

val role : t -> (role_info, reply_error) result
(** Ask the node who it is. Never refused for being read-only — fenced
    and deposed nodes answer too, which is how a client finds its way
    to the new primary. *)

val role_payload : t -> (string, reply_error) result
(** The raw ROLE payload ("key: value" lines) — what [xsb_client --role]
    prints, greppable by scripts. *)

val role_info_of_payload : string -> role_info
(** Parse a raw ROLE payload ("key: value" lines); unknown keys are
    ignored. *)

val probe_role : ?host:string -> int -> role_info option
(** Connect, ask {!role}, close — [None] on any failure (refused,
    unreachable, malformed). Safe against dead nodes by construction. *)

val discover_primary : (string * int) list -> ((string * int) * role_info) option
(** Probe every endpoint and return the writable primary with the
    highest epoch, with the endpoint it answered on — the node a
    failed-over client should re-dial. [None] when no writable primary
    answered (election still in progress: retry). *)

type query_outcome =
  | Rows of { rows : string list; truncated : bool }
      (** rendered solutions, in answer-arrival order; [truncated] when
          the row limit stopped the evaluation *)
  | Query_timeout of string list
      (** deadline or step budget exceeded; carries the rows streamed
          before the [TIMEOUT] terminator *)
  | Query_error of reply_error

val query : ?limit:int -> ?timeout_ms:int -> ?max_steps:int -> t -> string -> query_outcome
(** Run a goal, e.g. ["path(1,X)"]. Raises {!Protocol.Bad_frame} /
    [End_of_file] only on a broken connection. *)

(** {1 Bounded retry}

    Exponential backoff with full jitter: before attempt [k+1] the
    client sleeps a uniform-random duration in
    [\[0, min (max_backoff_ms, backoff_ms * 2{^k})\]] milliseconds.
    Only {e idempotent} requests ([PING], [QUERY], [STATISTICS],
    [METRICS]) and the initial connect are ever retried — re-sending a
    mutation after an ambiguous failure could apply it twice. *)

type retry = {
  retries : int;  (** additional attempts after the first *)
  backoff_ms : float;
  max_backoff_ms : float;
  max_elapsed_ms : float;
      (** total-elapsed budget across attempts, measured on [clock];
          once spent, the next retryable failure is final. 0 = no cap *)
  rand : float -> float;  (** jitter source; [Random.float] in production *)
  sleep : float -> unit;  (** seconds; injectable for deterministic tests *)
  clock : unit -> float;
      (** monotonic seconds ({!Xsb.Mclock.now} in production — an NTP
          step must not distort the elapsed budget); injectable *)
}

val default_retry : retry
(** 3 retries, 100 ms base, 5 s cap, no elapsed cap, real randomness,
    sleeping and the monotonic clock. *)

val retry :
  ?retries:int ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?max_elapsed_ms:float ->
  ?rand:(float -> float) ->
  ?sleep:(float -> unit) ->
  ?clock:(unit -> float) ->
  unit ->
  retry
(** {!default_retry} with overrides. *)

val with_retry : retry -> (unit -> [ `Ok of 'a | `Retry of 'e ]) -> ('a, 'e) result
(** Run an attempt thunk until it returns [`Ok], backing off after each
    [`Retry]; [Error] carries the last retryable failure once the
    budget is spent. *)

val idempotent : Protocol.op -> bool
(** Whether an op is safe to re-send
    ([PING]/[QUERY]/[STATISTICS]/[METRICS]/[ROLE]). *)

val connect_with_retry : ?retry:retry -> ?host:string -> int -> (t, string) result
(** {!connect}, retrying [ECONNREFUSED] (a server still coming up). *)

val ping_retry : ?retry:retry -> ?follow_primary:bool -> t -> (string, reply_error) result
(** {!ping}, retrying [OVERLOADED] refusals. With [~follow_primary:true]
    a [READONLY] refusal is also retried: it clears when the standby is
    promoted (or a degraded primary repaired), so a caller waiting out a
    failover keeps asking instead of giving up. *)

val statistics_retry : ?retry:retry -> ?follow_primary:bool -> t -> (string, reply_error) result
val metrics_retry : ?retry:retry -> ?follow_primary:bool -> t -> (string, reply_error) result

val query_retry :
  ?retry:retry ->
  ?follow_primary:bool ->
  ?limit:int ->
  ?timeout_ms:int ->
  ?max_steps:int ->
  t ->
  string ->
  query_outcome
(** {!query}, retrying [OVERLOADED] refusals (the queue was full; the
    query never started executing, so re-sending is safe) — and, with
    [~follow_primary:true], [READONLY] ones. *)
