(** A blocking client for the query service — the library behind
    [bin/xsb_client.ml], the server tests and [bench server]. One
    {!t} is one TCP connection, i.e. one private server-side session. *)

type t

val connect : ?host:string -> int -> t
(** [connect ?host port]. Raises [Unix.Unix_error] on refusal. *)

val close : t -> unit

type reply_error = { code : Protocol.err_code; message : string }

val ping : t -> (string, reply_error) result
(** ["pong"] on success. *)

val consult : ?fmt:Protocol.consult_fmt -> t -> string -> (string, reply_error) result
(** Load program text (or, with [~fmt], bulk facts / an object-file
    image) into the connection's session. *)

val assert_ : t -> string -> (string, reply_error) result
(** Assert one clause, e.g. ["edge(1,2)"] or ["p(X) :- q(X)"]. *)

val statistics : t -> (string, reply_error) result
(** The engine's [statistics/0] report for this session. *)

val abolish : t -> (string, reply_error) result
(** Abolish the session's completed tables. *)

type query_outcome =
  | Rows of { rows : string list; truncated : bool }
      (** rendered solutions, in answer-arrival order; [truncated] when
          the row limit stopped the evaluation *)
  | Query_timeout of string list
      (** deadline or step budget exceeded; carries the rows streamed
          before the [TIMEOUT] terminator *)
  | Query_error of reply_error

val query : ?limit:int -> ?timeout_ms:int -> ?max_steps:int -> t -> string -> query_outcome
(** Run a goal, e.g. ["path(1,X)"]. Raises {!Protocol.Bad_frame} /
    [End_of_file] only on a broken connection. *)
