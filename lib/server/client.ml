type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(host = "127.0.0.1") port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

type reply_error = { code : Protocol.err_code; message : string }

(* ops with a single-frame reply *)
let simple t req =
  Protocol.write_request t.oc req;
  match Protocol.read_reply t.ic with
  | Protocol.Ok_ payload -> Ok payload
  | Protocol.Err (code, message) -> Error { code; message }
  | Protocol.Answer _ | Protocol.Done _ ->
      raise (Protocol.Bad_frame "unexpected answer frame outside a query")

let ping t = simple t (Protocol.request Protocol.Ping "")
let consult ?fmt t text = simple t (Protocol.request ?fmt Protocol.Consult text)
let assert_ t clause = simple t (Protocol.request Protocol.Assert clause)
let statistics t = simple t (Protocol.request Protocol.Statistics "")
let abolish ?(pred = "") t = simple t (Protocol.request Protocol.Abolish pred)
let sync t = simple t (Protocol.request Protocol.Sync "")
let metrics t = simple t (Protocol.request Protocol.Metrics "")
let promote t = simple t (Protocol.request Protocol.Promote "")

(* --- bounded retry with exponential backoff and full jitter --- *)

type retry = {
  retries : int;
  backoff_ms : float;
  max_backoff_ms : float;
  max_elapsed_ms : float;
  rand : float -> float;
  sleep : float -> unit;
  clock : unit -> float;
}

let default_retry =
  {
    retries = 3;
    backoff_ms = 100.0;
    max_backoff_ms = 5_000.0;
    max_elapsed_ms = 0.0;
    rand = Random.float;
    sleep = Unix.sleepf;
    (* the monotonic clock: an NTP step while we back off must not
       stretch or collapse the elapsed-time budget *)
    clock = Xsb.Mclock.now;
  }

let retry ?(retries = default_retry.retries) ?(backoff_ms = default_retry.backoff_ms)
    ?(max_backoff_ms = default_retry.max_backoff_ms)
    ?(max_elapsed_ms = default_retry.max_elapsed_ms) ?(rand = default_retry.rand)
    ?(sleep = default_retry.sleep) ?(clock = default_retry.clock) () =
  { retries; backoff_ms; max_backoff_ms; max_elapsed_ms; rand; sleep; clock }

let with_retry r f =
  let started = r.clock () in
  let budget_spent () =
    r.max_elapsed_ms > 0.0 && (r.clock () -. started) *. 1000.0 >= r.max_elapsed_ms
  in
  let rec go attempt =
    match f () with
    | `Ok v -> Ok v
    | `Retry e ->
        if attempt >= r.retries || budget_spent () then Error e
        else begin
          (* full jitter: uniform in [0, min(max, base * 2^attempt)] *)
          let cap = Float.min r.max_backoff_ms (r.backoff_ms *. (2.0 ** float_of_int attempt)) in
          let delay_ms = if cap > 0.0 then r.rand cap else 0.0 in
          if delay_ms > 0.0 then r.sleep (delay_ms /. 1000.0);
          go (attempt + 1)
        end
  in
  go 0

(* only requests that are safe to re-send after an ambiguous failure:
   re-running a mutation could apply it twice *)
let idempotent = function
  | Protocol.Ping | Protocol.Query | Protocol.Statistics | Protocol.Metrics -> true
  | Protocol.Consult | Protocol.Assert | Protocol.Abolish | Protocol.Sync | Protocol.Promote ->
      false

let connect_with_retry ?(retry = default_retry) ?host port =
  with_retry retry (fun () ->
      match connect ?host port with
      | t -> `Ok t
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
          `Retry (Printf.sprintf "connection refused on port %d" port))

(* [READONLY] is only retryable on request: it clears when a standby is
   promoted (or a degraded primary is repaired), which a caller that
   "follows the primary" is waiting out. Only idempotent reads go
   through these wrappers, so re-sending is always safe. *)
let retryable ~follow_primary code =
  match code with
  | Protocol.Overloaded -> true
  | Protocol.Readonly -> follow_primary
  | _ -> false

let retry_transient ~follow_primary retry run =
  match
    with_retry retry (fun () ->
        match run () with
        | Error ({ code; _ } as e) when retryable ~follow_primary code -> `Retry e
        | r -> `Ok r)
  with
  | Ok r -> r
  | Error e -> Error e

let ping_retry ?(retry = default_retry) ?(follow_primary = false) t =
  retry_transient ~follow_primary retry (fun () -> ping t)

let statistics_retry ?(retry = default_retry) ?(follow_primary = false) t =
  retry_transient ~follow_primary retry (fun () -> statistics t)

let metrics_retry ?(retry = default_retry) ?(follow_primary = false) t =
  retry_transient ~follow_primary retry (fun () -> metrics t)

type query_outcome =
  | Rows of { rows : string list; truncated : bool }
  | Query_timeout of string list
  | Query_error of reply_error

let query ?limit ?timeout_ms ?max_steps t goal =
  Protocol.write_request t.oc (Protocol.request ?limit ?timeout_ms ?max_steps Protocol.Query goal);
  let rec collect acc =
    match Protocol.read_reply t.ic with
    | Protocol.Answer row -> collect (row :: acc)
    | Protocol.Done { more; _ } -> Rows { rows = List.rev acc; truncated = more }
    | Protocol.Err (Protocol.Timeout, _) -> Query_timeout (List.rev acc)
    | Protocol.Err (code, message) -> Query_error { code; message }
    | Protocol.Ok_ _ -> raise (Protocol.Bad_frame "unexpected OK frame inside a query")
  in
  collect []

let query_retry ?(retry = default_retry) ?(follow_primary = false) ?limit ?timeout_ms ?max_steps t
    goal =
  match
    with_retry retry (fun () ->
        match query ?limit ?timeout_ms ?max_steps t goal with
        | Query_error ({ code; _ } as e) when retryable ~follow_primary code -> `Retry e
        | outcome -> `Ok outcome)
  with
  | Ok outcome -> outcome
  | Error e -> Query_error e
