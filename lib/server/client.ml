type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(host = "127.0.0.1") port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

type reply_error = { code : Protocol.err_code; message : string }

(* ops with a single-frame reply *)
let simple t req =
  Protocol.write_request t.oc req;
  match Protocol.read_reply t.ic with
  | Protocol.Ok_ payload -> Ok payload
  | Protocol.Err (code, message) -> Error { code; message }
  | Protocol.Answer _ | Protocol.Done _ ->
      raise (Protocol.Bad_frame "unexpected answer frame outside a query")

let ping t = simple t (Protocol.request Protocol.Ping "")
let consult ?fmt t text = simple t (Protocol.request ?fmt Protocol.Consult text)
let assert_ t clause = simple t (Protocol.request Protocol.Assert clause)
let statistics t = simple t (Protocol.request Protocol.Statistics "")
let abolish t = simple t (Protocol.request Protocol.Abolish "")

type query_outcome =
  | Rows of { rows : string list; truncated : bool }
  | Query_timeout of string list
  | Query_error of reply_error

let query ?limit ?timeout_ms ?max_steps t goal =
  Protocol.write_request t.oc (Protocol.request ?limit ?timeout_ms ?max_steps Protocol.Query goal);
  let rec collect acc =
    match Protocol.read_reply t.ic with
    | Protocol.Answer row -> collect (row :: acc)
    | Protocol.Done { more; _ } -> Rows { rows = List.rev acc; truncated = more }
    | Protocol.Err (Protocol.Timeout, _) -> Query_timeout (List.rev acc)
    | Protocol.Err (code, message) -> Query_error { code; message }
    | Protocol.Ok_ _ -> raise (Protocol.Bad_frame "unexpected OK frame inside a query")
  in
  collect []
