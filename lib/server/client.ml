type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(host = "127.0.0.1") port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

type reply_error = { code : Protocol.err_code; message : string }

(* ops with a single-frame reply *)
let simple t req =
  Protocol.write_request t.oc req;
  match Protocol.read_reply t.ic with
  | Protocol.Ok_ payload -> Ok payload
  | Protocol.Err (code, message) -> Error { code; message }
  | Protocol.Answer _ | Protocol.Done _ ->
      raise (Protocol.Bad_frame "unexpected answer frame outside a query")

let ping t = simple t (Protocol.request Protocol.Ping "")
let consult ?fmt t text = simple t (Protocol.request ?fmt Protocol.Consult text)
let assert_ t clause = simple t (Protocol.request Protocol.Assert clause)
let statistics t = simple t (Protocol.request Protocol.Statistics "")
let abolish ?(pred = "") t = simple t (Protocol.request Protocol.Abolish pred)
let sync t = simple t (Protocol.request Protocol.Sync "")
let metrics t = simple t (Protocol.request Protocol.Metrics "")
let promote t = simple t (Protocol.request Protocol.Promote "")

(* --- failover discovery (the ROLE op) --- *)

type role = Primary_role | Standby_role

type role_info = {
  role : role;
  epoch : int64;
  generation : int64;
  offset : int;
  repl_port : int option;
  priority : int;
  read_only : bool;
  peers : (string * int) list;
  fatal : string option;  (* standby only: why the applier parked *)
}

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when host <> "" && port > 0 && port < 65536 -> Some (host, port)
      | _ -> None)

(* one "key: value" line per row; unknown keys are ignored so the
   payload can grow without breaking old clients *)
let role_info_of_payload payload =
  let kv =
    String.split_on_char '\n' payload
    |> List.filter_map (fun line ->
           match String.index_opt line ':' with
           | None -> None
           | Some i ->
               let k = String.sub line 0 i in
               let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
               Some (k, v))
  in
  let get k = List.assoc_opt k kv in
  let int64_of k d = match get k with Some v -> Option.value (Int64.of_string_opt v) ~default:d | None -> d in
  let int_of k d = match get k with Some v -> Option.value (int_of_string_opt v) ~default:d | None -> d in
  {
    role = (match get "role" with Some "primary" -> Primary_role | _ -> Standby_role);
    epoch = int64_of "epoch" 0L;
    generation = int64_of "generation" 0L;
    offset = int_of "offset" 0;
    repl_port =
      (match get "repl_port" with
      | Some v when v <> "-" -> int_of_string_opt v
      | _ -> None);
    priority = int_of "priority" 0;
    read_only = get "read_only" = Some "yes";
    peers =
      (match get "peers" with
      | Some v -> String.split_on_char ',' v |> List.filter_map parse_hostport
      | None -> []);
    fatal = (match get "fatal" with Some "-" | None -> None | Some m -> Some m);
  }

let role_payload t = simple t (Protocol.request Protocol.Role "")

let role t =
  match role_payload t with
  | Ok payload -> Ok (role_info_of_payload payload)
  | Error e -> Error e

(* connect, ask ROLE, close — [None] on any failure. The failover
   monitor and endpoint discovery probe dead nodes constantly; a probe
   must never raise. *)
let probe_role ?host port =
  match connect ?host port with
  | exception _ -> None
  | t ->
      Fun.protect ~finally:(fun () -> close t) @@ fun () ->
      (match role t with
      | Ok info -> Some info
      | Error _ | (exception _) -> None)

(* Probe every endpoint and pick the writable primary on the highest
   epoch — the node a failed-over client should talk to. *)
let discover_primary endpoints =
  List.filter_map
    (fun (host, port) ->
      match probe_role ~host port with
      | Some info when info.role = Primary_role && not info.read_only ->
          Some ((host, port), info)
      | _ -> None)
    endpoints
  |> List.fold_left
       (fun best ((_, info) as cand) ->
         match best with
         | Some (_, b) when Int64.compare b.epoch info.epoch >= 0 -> best
         | _ -> Some cand)
       None

(* --- bounded retry with exponential backoff and full jitter --- *)

type retry = {
  retries : int;
  backoff_ms : float;
  max_backoff_ms : float;
  max_elapsed_ms : float;
  rand : float -> float;
  sleep : float -> unit;
  clock : unit -> float;
}

let default_retry =
  {
    retries = 3;
    backoff_ms = 100.0;
    max_backoff_ms = 5_000.0;
    max_elapsed_ms = 0.0;
    rand = Random.float;
    sleep = Unix.sleepf;
    (* the monotonic clock: an NTP step while we back off must not
       stretch or collapse the elapsed-time budget *)
    clock = Xsb.Mclock.now;
  }

let retry ?(retries = default_retry.retries) ?(backoff_ms = default_retry.backoff_ms)
    ?(max_backoff_ms = default_retry.max_backoff_ms)
    ?(max_elapsed_ms = default_retry.max_elapsed_ms) ?(rand = default_retry.rand)
    ?(sleep = default_retry.sleep) ?(clock = default_retry.clock) () =
  { retries; backoff_ms; max_backoff_ms; max_elapsed_ms; rand; sleep; clock }

let with_retry r f =
  let started = r.clock () in
  let budget_spent () =
    r.max_elapsed_ms > 0.0 && (r.clock () -. started) *. 1000.0 >= r.max_elapsed_ms
  in
  let rec go attempt =
    match f () with
    | `Ok v -> Ok v
    | `Retry e ->
        if attempt >= r.retries || budget_spent () then Error e
        else begin
          (* full jitter: uniform in [0, min(max, base * 2^attempt)] *)
          let cap = Float.min r.max_backoff_ms (r.backoff_ms *. (2.0 ** float_of_int attempt)) in
          let delay_ms = if cap > 0.0 then r.rand cap else 0.0 in
          if delay_ms > 0.0 then r.sleep (delay_ms /. 1000.0);
          go (attempt + 1)
        end
  in
  go 0

(* only requests that are safe to re-send after an ambiguous failure:
   re-running a mutation could apply it twice *)
let idempotent = function
  | Protocol.Ping | Protocol.Query | Protocol.Statistics | Protocol.Metrics | Protocol.Role ->
      true
  | Protocol.Consult | Protocol.Assert | Protocol.Abolish | Protocol.Sync | Protocol.Promote ->
      false

let connect_with_retry ?(retry = default_retry) ?host port =
  with_retry retry (fun () ->
      match connect ?host port with
      | t -> `Ok t
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
          `Retry (Printf.sprintf "connection refused on port %d" port))

(* [READONLY] is only retryable on request: it clears when a standby is
   promoted (or a degraded primary is repaired), which a caller that
   "follows the primary" is waiting out. Only idempotent reads go
   through these wrappers, so re-sending is always safe. *)
let retryable ~follow_primary code =
  match code with
  | Protocol.Overloaded -> true
  | Protocol.Readonly -> follow_primary
  | _ -> false

let retry_transient ~follow_primary retry run =
  match
    with_retry retry (fun () ->
        match run () with
        | Error ({ code; _ } as e) when retryable ~follow_primary code -> `Retry e
        | r -> `Ok r)
  with
  | Ok r -> r
  | Error e -> Error e

let ping_retry ?(retry = default_retry) ?(follow_primary = false) t =
  retry_transient ~follow_primary retry (fun () -> ping t)

let statistics_retry ?(retry = default_retry) ?(follow_primary = false) t =
  retry_transient ~follow_primary retry (fun () -> statistics t)

let metrics_retry ?(retry = default_retry) ?(follow_primary = false) t =
  retry_transient ~follow_primary retry (fun () -> metrics t)

type query_outcome =
  | Rows of { rows : string list; truncated : bool }
  | Query_timeout of string list
  | Query_error of reply_error

let query ?limit ?timeout_ms ?max_steps t goal =
  Protocol.write_request t.oc (Protocol.request ?limit ?timeout_ms ?max_steps Protocol.Query goal);
  let rec collect acc =
    match Protocol.read_reply t.ic with
    | Protocol.Answer row -> collect (row :: acc)
    | Protocol.Done { more; _ } -> Rows { rows = List.rev acc; truncated = more }
    | Protocol.Err (Protocol.Timeout, _) -> Query_timeout (List.rev acc)
    | Protocol.Err (code, message) -> Query_error { code; message }
    | Protocol.Ok_ _ -> raise (Protocol.Bad_frame "unexpected OK frame inside a query")
  in
  collect []

let query_retry ?(retry = default_retry) ?(follow_primary = false) ?limit ?timeout_ms ?max_steps t
    goal =
  match
    with_retry retry (fun () ->
        match query ?limit ?timeout_ms ?max_steps t goal with
        | Query_error ({ code; _ } as e) when retryable ~follow_primary code -> `Retry e
        | outcome -> `Ok outcome)
  with
  | Ok outcome -> outcome
  | Error e -> Query_error e
