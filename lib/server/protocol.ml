exception Bad_frame of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad_frame msg)) fmt

let max_payload = 16 * 1024 * 1024
let max_header = 4096

type consult_fmt = Text | Fast | Obj
type op =
  | Ping
  | Consult
  | Assert
  | Query
  | Statistics
  | Abolish
  | Sync
  | Metrics
  | Promote
  | Role

type request = {
  op : op;
  fmt : consult_fmt;
  payload : string;
  limit : int option;
  timeout_ms : int option;
  max_steps : int option;
}

let request ?(fmt = Text) ?limit ?timeout_ms ?max_steps op payload =
  { op; fmt; payload; limit; timeout_ms; max_steps }

type err_code =
  | Bad_request
  | Parse_error
  | Exec_error
  | Timeout
  | Overloaded
  | Shutting_down
  | Readonly

let err_code_name = function
  | Bad_request -> "BAD_REQUEST"
  | Parse_error -> "PARSE"
  | Exec_error -> "EXEC"
  | Timeout -> "TIMEOUT"
  | Overloaded -> "OVERLOADED"
  | Shutting_down -> "SHUTTING_DOWN"
  | Readonly -> "READONLY"

let err_code_of_name = function
  | "BAD_REQUEST" -> Some Bad_request
  | "PARSE" -> Some Parse_error
  | "EXEC" -> Some Exec_error
  | "TIMEOUT" -> Some Timeout
  | "OVERLOADED" -> Some Overloaded
  | "SHUTTING_DOWN" -> Some Shutting_down
  | "READONLY" -> Some Readonly
  | _ -> None

type reply =
  | Ok_ of string
  | Answer of string
  | Done of { count : int; more : bool }
  | Err of err_code * string

let op_name = function
  | Ping -> "PING"
  | Consult -> "CONSULT"
  | Assert -> "ASSERT"
  | Query -> "QUERY"
  | Statistics -> "STATISTICS"
  | Abolish -> "ABOLISH"
  | Sync -> "SYNC"
  | Metrics -> "METRICS"
  | Promote -> "PROMOTE"
  | Role -> "ROLE"

let op_of_name = function
  | "PING" -> Some Ping
  | "CONSULT" -> Some Consult
  | "ASSERT" -> Some Assert
  | "QUERY" -> Some Query
  | "STATISTICS" -> Some Statistics
  | "ABOLISH" -> Some Abolish
  | "SYNC" -> Some Sync
  | "METRICS" -> Some Metrics
  | "PROMOTE" -> Some Promote
  | "ROLE" -> Some Role
  | _ -> None

let fmt_name = function Text -> "text" | Fast -> "fast" | Obj -> "obj"

let fmt_of_name = function
  | "text" -> Some Text
  | "fast" -> Some Fast
  | "obj" -> Some Obj
  | _ -> None

(* --- low-level framing --- *)

(* [input_line] would buffer an unbounded header from a hostile peer;
   read at most [max_header] bytes ourselves *)
let read_line_bounded ic =
  let buf = Buffer.create 64 in
  let rec go n =
    if n > max_header then bad "header line longer than %d bytes" max_header;
    match input_char ic with
    | '\n' -> Buffer.contents buf
    | c ->
        Buffer.add_char buf c;
        go (n + 1)
  in
  let line = go 0 in
  (* tolerate CRLF clients *)
  if String.length line > 0 && line.[String.length line - 1] = '\r' then
    String.sub line 0 (String.length line - 1)
  else line

let parse_len s =
  match int_of_string_opt s with
  | Some n when n >= 0 && n <= max_payload -> n
  | Some n -> bad "implausible payload length %d" n
  | None -> bad "bad payload length %S" s

let read_payload ic len =
  try really_input_string ic len with End_of_file -> bad "truncated payload (wanted %d bytes)" len

let split_words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_int_field key v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> n
  | _ -> bad "bad value %S for key %s" v key

(* --- requests --- *)

let write_request oc (r : request) =
  let b = Buffer.create 64 in
  Buffer.add_string b "XSB1 ";
  Buffer.add_string b (op_name r.op);
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int (String.length r.payload));
  if r.fmt <> Text then Buffer.add_string b (" fmt=" ^ fmt_name r.fmt);
  (match r.limit with Some n -> Buffer.add_string b (Printf.sprintf " limit=%d" n) | None -> ());
  (match r.timeout_ms with
  | Some n -> Buffer.add_string b (Printf.sprintf " timeout_ms=%d" n)
  | None -> ());
  (match r.max_steps with
  | Some n -> Buffer.add_string b (Printf.sprintf " max_steps=%d" n)
  | None -> ());
  Buffer.add_char b '\n';
  output_string oc (Buffer.contents b);
  output_string oc r.payload;
  flush oc

let read_request ic =
  let line = read_line_bounded ic in
  match split_words line with
  | "XSB1" :: opw :: lenw :: fields ->
      let op = match op_of_name opw with Some op -> op | None -> bad "unknown op %S" opw in
      let len = parse_len lenw in
      let req = ref (request op "") in
      List.iter
        (fun field ->
          match String.index_opt field '=' with
          | None -> bad "bad request field %S" field
          | Some i -> (
              let key = String.sub field 0 i in
              let v = String.sub field (i + 1) (String.length field - i - 1) in
              match key with
              | "fmt" -> (
                  match fmt_of_name v with
                  | Some f -> req := { !req with fmt = f }
                  | None -> bad "unknown consult format %S" v)
              | "limit" -> req := { !req with limit = Some (parse_int_field key v) }
              | "timeout_ms" -> req := { !req with timeout_ms = Some (parse_int_field key v) }
              | "max_steps" -> req := { !req with max_steps = Some (parse_int_field key v) }
              | _ -> bad "unknown request key %S" key))
        fields;
      { !req with payload = read_payload ic len }
  | [] -> bad "empty request header"
  | w :: _ when w <> "XSB1" -> bad "bad protocol tag %S (expected XSB1)" w
  | _ -> bad "short request header %S" line

(* --- replies --- *)

let write_reply oc reply =
  (match reply with
  | Ok_ payload ->
      output_string oc (Printf.sprintf "OK %d\n" (String.length payload));
      output_string oc payload
  | Answer payload ->
      output_string oc (Printf.sprintf "ANSWER %d\n" (String.length payload));
      output_string oc payload
  | Done { count; more } -> output_string oc (Printf.sprintf "DONE %d %d\n" count (Bool.to_int more))
  | Err (code, msg) ->
      output_string oc (Printf.sprintf "ERR %s %d\n" (err_code_name code) (String.length msg));
      output_string oc msg);
  flush oc

let read_reply ic =
  let line = read_line_bounded ic in
  match split_words line with
  | [ "OK"; lenw ] -> Ok_ (read_payload ic (parse_len lenw))
  | [ "ANSWER"; lenw ] -> Answer (read_payload ic (parse_len lenw))
  | [ "DONE"; countw; morew ] -> (
      match (int_of_string_opt countw, morew) with
      | Some count, "0" -> Done { count; more = false }
      | Some count, "1" -> Done { count; more = true }
      | _ -> bad "bad DONE frame %S" line)
  | [ "ERR"; codew; lenw ] -> (
      let msg = read_payload ic (parse_len lenw) in
      match err_code_of_name codew with
      | Some code -> Err (code, msg)
      | None -> bad "unknown error code %S" codew)
  | _ -> bad "bad reply header %S" line
