(** The wire protocol of the query service: length-prefixed,
    line-oriented frames over a byte stream (paper §4 positions XSB as a
    data *server*, not just a REPL; this is the server's contract).

    Every frame is one ASCII header line terminated by ['\n'], followed
    by exactly the number of raw payload bytes the header announces —
    so payloads can hold arbitrary program text (or binary object-file
    images) without quoting, and a reader never scans for a terminator
    inside data.

    Requests: [XSB1 <OP> <len>[ <key>=<val>]...\n<payload>] with ops
    [PING], [CONSULT], [ASSERT], [QUERY], [STATISTICS], [ABOLISH],
    [SYNC], [METRICS], [PROMOTE], [ROLE] and optional keys [fmt]
    (consult format), [limit], [timeout_ms], [max_steps].

    Replies: [OK <len>\n<payload>], a stream of [ANSWER <len>\n<payload>]
    frames closed by [DONE <count> <more01>\n], or a typed
    [ERR <CODE> <len>\n<payload>]. *)

exception Bad_frame of string
(** A malformed frame (bad header, implausible length, truncated
    payload). The connection cannot be resynchronized afterwards. *)

val max_payload : int
(** Hard cap on a frame payload (16 MiB); longer announcements are
    rejected as {!Bad_frame} before any allocation. *)

type consult_fmt =
  | Text  (** full program text through the general reader *)
  | Fast  (** ground facts through the formatted-read bulk loader *)
  | Obj  (** a binary object-file image (paper §4.6) *)

type op =
  | Ping
  | Consult
  | Assert
  | Query
  | Statistics
  | Abolish  (** empty payload: reset tables; ["name/arity"]: remove a predicate *)
  | Sync  (** fsync the durable journal now (needs [--data-dir]) *)
  | Metrics
      (** Prometheus text exposition of server, engine and journal
          metrics (empty payload) *)
  | Promote
      (** promote a replication standby to a writable primary (empty
          payload); [BAD_REQUEST] on a non-replica *)
  | Role
      (** failover discovery (empty payload): one [key: value] line per
          row — [role] (primary|standby), [epoch], [generation],
          [offset], [repl_port], [priority], [read_only], [peers]
          (comma-separated [host:port] list) and, on a standby,
          [fatal]. Never refused: clients use it to find the writable
          primary after a failover *)

type request = {
  op : op;
  fmt : consult_fmt;  (** [Consult] only; [Text] otherwise *)
  payload : string;
  limit : int option;  (** [Query]: stop after this many answers *)
  timeout_ms : int option;  (** [Query]: per-request wall-clock deadline *)
  max_steps : int option;  (** [Query]: per-request resolution-step budget *)
}

val request :
  ?fmt:consult_fmt ->
  ?limit:int ->
  ?timeout_ms:int ->
  ?max_steps:int ->
  op ->
  string ->
  request

type err_code =
  | Bad_request  (** malformed frame or argument; the connection closes *)
  | Parse_error  (** the payload failed to parse / load *)
  | Exec_error  (** the engine raised during evaluation *)
  | Timeout  (** deadline or step budget exceeded (after partial answers) *)
  | Overloaded  (** the request queue is full — retry later *)
  | Shutting_down  (** the server is draining and accepts no new work *)
  | Readonly
      (** the server refuses mutations and serves reads only: it is a
          replication standby, or the durable journal's write path
          failed *)

val err_code_name : err_code -> string
val err_code_of_name : string -> err_code option

type reply =
  | Ok_ of string
  | Answer of string
  | Done of { count : int; more : bool }
      (** closes an answer stream; [more] when a row limit truncated it *)
  | Err of err_code * string

val op_name : op -> string

val write_request : out_channel -> request -> unit
(** Write and flush one request frame. *)

val read_request : in_channel -> request
(** Raises {!Bad_frame} on malformed input, [End_of_file] on a cleanly
    closed peer. *)

val write_reply : out_channel -> reply -> unit
val read_reply : in_channel -> reply
