(* The concurrent query service. One acceptor thread; one handler
   thread per connection (frames in, replies out, one request at a time
   per connection so its private session is never shared); a fixed pool
   of workers pulling from a bounded queue. See server.mli and
   DESIGN.md §8 for the architecture. *)

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  default_timeout_ms : int;
  max_timeout_ms : int;
  default_max_steps : int;
  max_steps_cap : int;
  max_answers : int;
  preload : string list;
  scheduling : Xsb.Machine.scheduling option;
  access_log : out_channel option;
  profile : bool;
  data_dir : string option;
  sync : Xsb.Journal.sync_policy;
  compact_bytes : int;
  keep_generations : int;
  repl_port : int option;
  replica_of : (string * int) option;
  sync_standbys : int;
  sync_timeout_ms : int;
  auto_promote : bool;
  promote_priority : int;
  failover_timeout_ms : int;
  peers : (string * int) list;
  metrics_enabled : bool;
  slow_ms : int;
  slow_log : out_channel option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    queue_capacity = 64;
    default_timeout_ms = 5_000;
    max_timeout_ms = 0;
    default_max_steps = 10_000_000;
    max_steps_cap = 0;
    max_answers = 0;
    preload = [];
    scheduling = None;
    access_log = None;
    profile = false;
    data_dir = None;
    sync = Xsb.Journal.Always;
    compact_bytes = 8 * 1024 * 1024;
    keep_generations = 0;
    repl_port = None;
    replica_of = None;
    sync_standbys = 0;
    sync_timeout_ms = 1_000;
    auto_promote = false;
    promote_priority = 0;
    failover_timeout_ms = 3_000;
    peers = [];
    metrics_enabled = true;
    slow_ms = 0;
    slow_log = None;
  }

(* the journal config a data directory gets; replication needs at least
   one archived generation so a standby can follow across a compaction *)
let journal_config cfg dir =
  let keep =
    if cfg.repl_port <> None || cfg.replica_of <> None then max 1 cfg.keep_generations
    else cfg.keep_generations
  in
  { Xsb.Journal.dir; sync = cfg.sync; compact_bytes = cfg.compact_bytes; keep_generations = keep }

(* --- the bounded request queue ---

   Backpressure lives here: [push] refuses instead of growing past
   [cap], and once [stop]ped refuses everything, so workers can drain
   to empty and exit knowing no job will ever be added behind them. *)
module Bqueue = struct
  type 'a t = {
    q : 'a Queue.t;
    cap : int;
    m : Mutex.t;
    nonempty : Condition.t;
    mutable stopping : bool;
  }

  type push_result = Pushed | Full | Stopping

  let create cap = { q = Queue.create (); cap; m = Mutex.create (); nonempty = Condition.create (); stopping = false }

  let push t x =
    Mutex.lock t.m;
    let r =
      if t.stopping then Stopping
      else if Queue.length t.q >= t.cap then Full
      else begin
        Queue.add x t.q;
        Condition.signal t.nonempty;
        Pushed
      end
    in
    Mutex.unlock t.m;
    r

  (* blocks; [None] once stopped and drained *)
  let pop t =
    Mutex.lock t.m;
    let rec wait () =
      match Queue.take_opt t.q with
      | Some x -> Some x
      | None ->
          if t.stopping then None
          else begin
            Condition.wait t.nonempty t.m;
            wait ()
          end
    in
    let r = wait () in
    Mutex.unlock t.m;
    r

  let stop t =
    Mutex.lock t.m;
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m

  let length t =
    Mutex.lock t.m;
    let n = Queue.length t.q in
    Mutex.unlock t.m;
    n
end

(* --- connections and jobs --- *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_ic : in_channel;
  c_oc : out_channel;
  c_session : Xsb.Session.t;
  (* one-slot completion latch: a connection has at most one request in
     flight, the handler waits on it before reading the next frame *)
  c_m : Mutex.t;
  c_done : Condition.t;
  mutable c_job_done : bool;
  (* group commit defers the ack: while [Some], replies buffer here and
     flush only after the commit barrier says the batch is durable *)
  mutable c_defer : Protocol.reply list option;
}

type job = {
  j_id : int;
  j_conn : conn;
  j_req : Protocol.request;
  j_received : float;  (* monotonic seconds *)
  j_deadline : float option;  (* absolute, monotonic seconds *)
}

(* with --data-dir every connection shares ONE durable session backed
   by the journal; [sh_m] serializes request execution against it
   (without a data dir each connection keeps its private session and
   requests run concurrently, as before) *)
type shared = {
  sh_session : Xsb.Session.t;
  mutable sh_journal : Xsb.Journal.t;  (* swapped once, at promotion *)
  sh_m : Mutex.t;
  mutable sh_read_only : string option;  (* why mutations are refused *)
}

(* per-key (predicate or op) server-side aggregation for --profile *)
type agg_cell = {
  mutable g_requests : int;
  mutable g_answers : int;
  mutable g_steps : int;
  mutable g_wall : float;
}

type t = {
  cfg : config;
  shared : shared option;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_rd : Unix.file_descr;  (* self-pipe waking the acceptor's select *)
  stop_wr : Unix.file_descr;
  queue : job Bqueue.t;
  preload_texts : string list;
  conns : (int, conn * Thread.t) Hashtbl.t;
  conns_m : Mutex.t;
  stopped : bool Atomic.t;
  req_counter : int Atomic.t;
  conn_counter : int Atomic.t;
  served : int Atomic.t;
  log_m : Mutex.t;
  agg : (string, agg_cell) Hashtbl.t;
  agg_m : Mutex.t;
  registry : Xsb.Metrics.t;
  requests_total : Xsb.Metrics.Counter.t;
  op_hists : (string * Xsb.Metrics.Histogram.t) list;
  outcome_counters : (string * Xsb.Metrics.Counter.t) list;
  in_flight : int Atomic.t;
  mutable worker_threads : Thread.t list;
  mutable acceptor_thread : Thread.t option;
  (* replication roles; a standby may move from one to the other at
     promotion, serialized by [promote_m] *)
  promote_m : Mutex.t;
  mutable repl_primary : Xsb_repl.Repl.Primary.t option;
  mutable repl_standby : Xsb_repl.Repl.Standby.t option;
  mutable failover_thread : Thread.t option;
}

let port t = t.bound_port
let requests_served t = Atomic.get t.served
let journal t = Option.map (fun sh -> sh.sh_journal) t.shared
let read_only t = match t.shared with Some sh -> sh.sh_read_only | None -> None
let repl_listen_port t = Option.map Xsb_repl.Repl.Primary.port t.repl_primary
let replica_status t = Option.map Xsb_repl.Repl.Standby.status t.repl_standby
let registry t = t.registry

(* a standby's live epoch moves with the stream (adopted from EPOCH
   frames); a primary's lives in the journal *)
let epoch t =
  match t.repl_standby with
  | Some s -> Some (Xsb_repl.Repl.Standby.status s).Xsb_repl.Repl.Standby.epoch
  | None -> Option.map (fun sh -> Xsb.Journal.epoch sh.sh_journal) t.shared
let now () = Unix.gettimeofday ()

(* Latency measurement and deadlines run on the monotonic clock, so an
   NTP step cannot corrupt wall_us or fire (or defer) a timeout; the
   wall clock survives only in log timestamps. A ref so tests can
   inject a fake clock. *)
let monotonic : (unit -> float) ref = ref Xsb.Mclock.now

(* --- the metrics registry (scraped by the METRICS op) --- *)

let duration_help = "Request service time in seconds, by protocol op (queue wait excluded)."
let outcome_help = "Requests finished, by access-log outcome."

(* handles for the known ops and outcomes are precreated at [start], so
   the per-request record path is an assoc-list probe, no registry lock *)
let request_hist t op =
  match List.assoc_opt op t.op_hists with
  | Some h -> h
  | None ->
      Xsb.Metrics.histogram t.registry ~labels:[ ("op", op) ] ~help:duration_help
        "xsb_request_duration_seconds"

let outcome_counter t outcome =
  match List.assoc_opt outcome t.outcome_counters with
  | Some c -> c
  | None ->
      Xsb.Metrics.counter t.registry ~labels:[ ("outcome", outcome) ] ~help:outcome_help
        "xsb_requests_by_outcome_total"

(* one self-contained exposition per scrape: the server's persistent
   registry plus a fresh snapshot of engine and journal state (family
   names are disjoint, so the concatenation is a valid exposition) *)
let metrics_text t conn =
  let snap = Xsb.Metrics.create () in
  Xsb.Engine.publish_metrics (Xsb.Session.engine conn.c_session) snap;
  (match t.shared with
  | Some sh -> Xsb.Journal.publish_metrics sh.sh_journal snap
  | None -> ());
  Xsb.Metrics.to_text t.registry ^ Xsb.Metrics.to_text snap

(* --- the access log (JSONL through lib/obs's codec) --- *)

let log_request t ~id ~conn_id ~op ~pred ~answers ~steps ~wall ~outcome =
  Atomic.incr t.served;
  (* one increment per log line, so xsb_requests_total always equals
     the access-log line count *)
  Xsb.Metrics.Counter.incr t.requests_total;
  Xsb.Metrics.Counter.incr (outcome_counter t outcome);
  Xsb.Metrics.Histogram.observe (request_hist t op) wall;
  (match t.cfg.access_log with
  | None -> ()
  | Some oc ->
      let record =
        Xsb.Json.Obj
          [
            (* microseconds since the epoch: the codec renders floats
               with %.6g, far too coarse for a timestamp *)
            ("ts_us", Xsb.Json.Int (int_of_float (now () *. 1e6)));
            ("id", Xsb.Json.Int id);
            ("conn", Xsb.Json.Int conn_id);
            ("op", Xsb.Json.String op);
            ("pred", Xsb.Json.String pred);
            ("answers", Xsb.Json.Int answers);
            ("steps", Xsb.Json.Int steps);
            ("wall_us", Xsb.Json.Int (int_of_float (wall *. 1e6)));
            ("outcome", Xsb.Json.String outcome);
          ]
      in
      Mutex.lock t.log_m;
      output_string oc (Xsb.Json.to_string record);
      output_char oc '\n';
      flush oc;
      Mutex.unlock t.log_m);
  if t.cfg.profile then begin
    let key = if pred = "" then "op:" ^ op else pred in
    Mutex.lock t.agg_m;
    let cell =
      match Hashtbl.find_opt t.agg key with
      | Some c -> c
      | None ->
          let c = { g_requests = 0; g_answers = 0; g_steps = 0; g_wall = 0.0 } in
          Hashtbl.add t.agg key c;
          c
    in
    cell.g_requests <- cell.g_requests + 1;
    cell.g_answers <- cell.g_answers + answers;
    cell.g_steps <- cell.g_steps + steps;
    cell.g_wall <- cell.g_wall +. wall;
    Mutex.unlock t.agg_m
  end

let agg_rows t =
  Mutex.lock t.agg_m;
  let rows = Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.agg [] in
  Mutex.unlock t.agg_m;
  List.sort
    (fun (_, a) (_, b) ->
      match compare b.g_wall a.g_wall with 0 -> compare b.g_requests a.g_requests | c -> c)
    rows

let pp_profile ppf t =
  let rows = agg_rows t in
  Format.fprintf ppf "%-32s %10s %10s %12s %12s@." "predicate/op" "requests" "answers" "steps"
    "wall-ms";
  List.iter
    (fun (key, c) ->
      Format.fprintf ppf "%-32s %10d %10d %12d %12.3f@." key c.g_requests c.g_answers c.g_steps
        (1000.0 *. c.g_wall))
    rows

let profile_json t =
  Xsb.Json.List
    (List.map
       (fun (key, c) ->
         Xsb.Json.Obj
           [
             ("key", Xsb.Json.String key);
             ("requests", Xsb.Json.Int c.g_requests);
             ("answers", Xsb.Json.Int c.g_answers);
             ("steps", Xsb.Json.Int c.g_steps);
             ("wall_ms", Xsb.Json.Float (1000.0 *. c.g_wall));
           ])
       (agg_rows t))

(* --- request execution (worker side) --- *)

let clamp cap n = if cap > 0 then min cap n else n

let pred_of_goal goal =
  match Xsb.Term.deref goal with
  | Xsb.Term.Struct (f, args) -> Printf.sprintf "%s/%d" f (Array.length args)
  | Xsb.Term.Atom a -> a ^ "/0"
  | _ -> ""

let engine_steps conn = (Xsb.Session.stats conn.c_session).Xsb.Machine.st_steps

(* --- promotion: replication standby -> writable primary --- *)

(* a peer announced a higher failover epoch: this node was failed over
   away from while it was alive (or partitioned). Stop accepting writes
   — the new timeline wins, and clients discover it via ROLE. *)
let deposed t e =
  match t.shared with
  | None -> ()
  | Some sh ->
      if sh.sh_read_only = None then
        sh.sh_read_only <-
          Some (Printf.sprintf "deposed by epoch %Ld (a newer primary exists; PROMOTE refused)" e)

let start_primary t j =
  match t.cfg.repl_port with
  | Some p when t.repl_primary = None -> (
      try
        t.repl_primary <-
          Some
            (Xsb_repl.Repl.Primary.start ~host:t.cfg.host ~registry:t.registry
               ~on_deposed:(fun e -> deposed t e) ~port:p ~journal:j ())
      with Unix.Unix_error _ -> ())
  | _ -> ()

let spawn_standby t sh ~primary_host ~primary_port ~generation ~offset ~epoch =
  let dir = Option.get t.cfg.data_dir in
  let keep = (journal_config t.cfg dir).Xsb.Journal.keep_generations in
  let apply m =
    Mutex.lock sh.sh_m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sh.sh_m)
      (fun () -> Xsb.Journal.apply_mutation (Xsb.Session.db sh.sh_session) m)
  in
  Xsb_repl.Repl.Standby.start ~primary_host ~primary_port ~dir ~generation ~offset ~epoch
    ~keep_generations:keep ~apply ()

let promote t =
  match t.shared with
  | None -> Protocol.Err (Protocol.Bad_request, "server has no journal (start with --data-dir)")
  | Some sh -> (
      Mutex.lock t.promote_m;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.promote_m) @@ fun () ->
      match t.repl_standby with
      | None -> Protocol.Err (Protocol.Bad_request, "not a replica (nothing to promote)")
      | Some standby -> (
          (* quiesce the applier: after [stop] returns, nothing else
             touches the mirrored files, and the database already holds
             every applied record — [resume] only rebuilds journal
             bookkeeping (and drops a torn tail), it replays nothing *)
          Xsb_repl.Repl.Standby.stop standby;
          let dir = Option.get t.cfg.data_dir in
          match Xsb.Journal.resume (journal_config t.cfg dir) (Xsb.Session.db sh.sh_session) with
          | exception e ->
              Protocol.Err (Protocol.Exec_error, "promotion failed: " ^ Printexc.to_string e)
          | j ->
              t.repl_standby <- None;
              (* a new timeline: bump the fencing epoch so the deposed
                 primary (and any standby that followed it past this
                 point) can never silently re-join *)
              let e = try Xsb.Journal.bump_epoch j with Xsb.Journal.Io_error _ -> Xsb.Journal.epoch j in
              Xsb.Journal.attach ~deferred:true j;
              let old = sh.sh_journal in
              Mutex.lock sh.sh_m;
              sh.sh_journal <- j;
              sh.sh_read_only <- None;
              Mutex.unlock sh.sh_m;
              (try Xsb.Journal.close old with _ -> ());
              (* a promoted node with --repl-port starts feeding its own
                 standbys *)
              start_primary t j;
              Protocol.Ok_
                (Printf.sprintf "promoted (generation %Ld, epoch %Ld)"
                   (Xsb.Journal.generation j) e)))

(* --- automatic failover (standby side) ---

   A monitor thread watches the standby's last-contact clock. Once the
   primary has been silent for [failover_timeout_ms] plus a
   priority-staggered grace (0.5 s per priority step, so replicas don't
   race), the standby probes every configured peer's ROLE:

     - a live, writable primary with an epoch >= ours exists: the old
       primary address is stale, not the primary itself — retarget the
       stream at the survivor instead of promoting (split-brain
       avoidance);
     - a peer standby is strictly ahead of us, or tied with a lower
       priority number: defer — it will promote, and we will discover
       it on a later round;
     - otherwise: self-promote (which bumps the epoch and fences the
       old timeline). *)

let pos_cmp (g1, o1) (g2, o2) =
  match Int64.compare g1 g2 with 0 -> compare o1 o2 | c -> c

let retarget t ~host ~repl_port =
  Mutex.lock t.promote_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.promote_m) @@ fun () ->
  match (t.repl_standby, t.shared) with
  | Some s, Some sh ->
      Xsb_repl.Repl.Standby.stop s;
      let st = Xsb_repl.Repl.Standby.status s in
      t.repl_standby <-
        Some
          (spawn_standby t sh ~primary_host:host ~primary_port:repl_port
             ~generation:st.Xsb_repl.Repl.Standby.generation
             ~offset:st.Xsb_repl.Repl.Standby.applied_off ~epoch:st.Xsb_repl.Repl.Standby.epoch);
      sh.sh_read_only <-
        Some (Printf.sprintf "replica of %s:%d (PROMOTE to accept writes)" host repl_port)
  | _ -> ()

let consider_failover t standby =
  let st = Xsb_repl.Repl.Standby.status standby in
  let open Xsb_repl.Repl.Standby in
  let peers =
    List.filter (fun (h, p) -> not (h = t.cfg.host && p = t.bound_port)) t.cfg.peers
  in
  let infos =
    List.filter_map
      (fun (h, p) -> Option.map (fun i -> (h, i)) (Client.probe_role ~host:h p))
      peers
  in
  let live_primary =
    List.find_opt
      (fun ((_, i) : string * Client.role_info) ->
        i.Client.role = Client.Primary_role && (not i.Client.read_only)
        && Int64.compare i.Client.epoch st.epoch >= 0)
      infos
  in
  match live_primary with
  | Some (h, i) -> (
      match i.Client.repl_port with
      | Some rp -> retarget t ~host:h ~repl_port:rp
      | None -> ())
  | None ->
      let better ((_, i) : string * Client.role_info) =
        i.Client.role = Client.Standby_role
        && (Int64.compare i.Client.epoch st.epoch > 0
           || (let c =
                 pos_cmp (i.Client.generation, i.Client.offset) (st.generation, st.applied_off)
               in
               c > 0 || (c = 0 && i.Client.priority < t.cfg.promote_priority)))
      in
      if List.exists better infos then () (* the better candidate promotes; re-check next tick *)
      else ignore (promote t)

let failover_monitor t =
  let threshold =
    (float_of_int t.cfg.failover_timeout_ms /. 1000.0)
    +. (0.5 *. float_of_int t.cfg.promote_priority)
  in
  let rec loop () =
    if Atomic.get t.stopped then ()
    else begin
      (match t.repl_standby with
      | Some s ->
          let st = Xsb_repl.Repl.Standby.status s in
          if
            st.Xsb_repl.Repl.Standby.fatal = None
            && st.Xsb_repl.Repl.Standby.seconds_since_contact > threshold
          then ( try consider_failover t s with _ -> ())
      | None -> ());
      Thread.delay 0.1;
      loop ()
    end
  in
  loop ()

(* "name/arity" for the targeted ABOLISH form *)
let pred_indicator s =
  let s = String.trim s in
  match String.rindex_opt s '/' with
  | None | Some 0 -> None
  | Some i -> (
      let name = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some arity when arity >= 0 -> Some (name, arity)
      | _ -> None)

(* write a reply, tolerating a peer that vanished mid-stream: the
   request still completes (and is logged); the handler sees EOF on its
   next read and closes the connection *)
let try_write conn reply =
  match conn.c_defer with
  | Some acc ->
      (* deferred-ack mode: hold the reply until the commit barrier
         confirms the batch is durable *)
      conn.c_defer <- Some (reply :: acc);
      true
  | None -> (
      try
        Protocol.write_reply conn.c_oc reply;
        true
      with Sys_error _ | Unix.Unix_error _ -> false)

let execute t (job : job) =
  let conn = job.j_conn in
  let req = job.j_req in
  let t0 = !monotonic () in
  let stats0 =
    let s = Xsb.Session.stats conn.c_session in
    (s.Xsb.Machine.st_subgoals, s.Xsb.Machine.st_answers, s.Xsb.Machine.st_subsumption_hits)
  in
  let steps0 = engine_steps conn in
  let eng = Xsb.Session.engine conn.c_session in
  let parse_goal text = Xsb.Parser.term_of_string ~ops:(Xsb.Database.ops (Xsb.Session.db conn.c_session)) text in
  (* (outcome, pred, answers) for the access log *)
  let dispatch () =
    match req.Protocol.op with
    | Protocol.Ping ->
        ignore (try_write conn (Protocol.Ok_ "pong"));
        ("ok", "", 0)
    | Protocol.Statistics ->
        let text = Fmt.str "%a" Xsb.Machine.pp_stats (Xsb.Engine.stats eng) in
        let text =
          match t.shared with
          | Some sh -> text ^ Fmt.str "%a" Xsb.Journal.pp_stats sh.sh_journal
          | None -> text
        in
        ignore (try_write conn (Protocol.Ok_ text));
        ("ok", "", 0)
    | Protocol.Metrics ->
        ignore (try_write conn (Protocol.Ok_ (metrics_text t conn)));
        ("ok", "", 0)
    | Protocol.Role ->
        (* failover discovery: who am I, which timeline, how far along,
           and who else is in the topology. Never refused — a client
           re-dialing after a failover needs it from every node,
           including read-only and fenced ones. *)
        let b = Buffer.create 128 in
        (match t.repl_standby with
        | Some s ->
            let st = Xsb_repl.Repl.Standby.status s in
            let open Xsb_repl.Repl.Standby in
            Buffer.add_string b "role: standby\n";
            Buffer.add_string b (Printf.sprintf "epoch: %Ld\n" st.epoch);
            Buffer.add_string b (Printf.sprintf "generation: %Ld\n" st.generation);
            Buffer.add_string b (Printf.sprintf "offset: %d\n" st.applied_off);
            Buffer.add_string b
              (Printf.sprintf "fatal: %s\n" (Option.value st.fatal ~default:"-"))
        | None -> (
            Buffer.add_string b "role: primary\n";
            match t.shared with
            | Some sh -> (
                match
                  ( Xsb.Journal.epoch sh.sh_journal,
                    Xsb.Journal.durable_position sh.sh_journal )
                with
                | exception _ -> Buffer.add_string b "epoch: 0\ngeneration: 0\noffset: 0\n"
                | e, (g, o) ->
                    Buffer.add_string b (Printf.sprintf "epoch: %Ld\n" e);
                    Buffer.add_string b (Printf.sprintf "generation: %Ld\n" g);
                    Buffer.add_string b (Printf.sprintf "offset: %d\n" o))
            | None -> Buffer.add_string b "epoch: 0\ngeneration: 0\noffset: 0\n"));
        (match repl_listen_port t with
        | Some p -> Buffer.add_string b (Printf.sprintf "repl_port: %d\n" p)
        | None -> Buffer.add_string b "repl_port: -\n");
        Buffer.add_string b (Printf.sprintf "priority: %d\n" t.cfg.promote_priority);
        Buffer.add_string b
          (Printf.sprintf "read_only: %s\n" (if read_only t <> None then "yes" else "no"));
        Buffer.add_string b
          (Printf.sprintf "peers: %s\n"
             (String.concat ","
                (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) t.cfg.peers)));
        ignore (try_write conn (Protocol.Ok_ (Buffer.contents b)));
        ("ok", "", 0)
    | Protocol.Promote ->
        (* handled before the shared lock (see [finishing]); reaching
           the dispatcher means there is no shared state to promote *)
        ignore
          (try_write conn
             (Protocol.Err (Protocol.Bad_request, "server has no journal (start with --data-dir)")));
        ("bad_request", "", 0)
    | Protocol.Sync -> (
        match t.shared with
        | None ->
            ignore
              (try_write conn
                 (Protocol.Err
                    (Protocol.Bad_request, "server has no journal (start with --data-dir)")));
            ("bad_request", "", 0)
        | Some sh ->
            Xsb.Journal.sync sh.sh_journal;
            ignore
              (try_write conn
                 (Protocol.Ok_
                    (Printf.sprintf "synced %d" (Xsb.Journal.durable_bytes sh.sh_journal))));
            ("ok", "", 0))
    | Protocol.Abolish when req.Protocol.payload <> "" -> (
        match pred_indicator req.Protocol.payload with
        | None ->
            ignore
              (try_write conn
                 (Protocol.Err
                    ( Protocol.Bad_request,
                      Printf.sprintf "bad predicate indicator %S (expected name/arity)"
                        req.Protocol.payload )));
            ("bad_request", "", 0)
        | Some (name, arity) ->
            Xsb.Database.remove_pred (Xsb.Session.db conn.c_session) name arity;
            ignore (try_write conn (Protocol.Ok_ "removed"));
            ("ok", Printf.sprintf "%s/%d" name arity, 0))
    | Protocol.Abolish ->
        Xsb.Engine.reset_tables eng;
        ignore (try_write conn (Protocol.Ok_ "abolished"));
        ("ok", "", 0)
    | Protocol.Consult -> (
        let loaded verb n =
          ignore (try_write conn (Protocol.Ok_ (Printf.sprintf "%s %d" verb n)));
          ("ok", "", n)
        in
        let parse_failed msg =
          ignore (try_write conn (Protocol.Err (Protocol.Parse_error, msg)));
          ("parse_error", "", 0)
        in
        try
          match req.Protocol.fmt with
          | Protocol.Text ->
              loaded "consulted" (Xsb.Engine.consult_string_count eng req.Protocol.payload)
          | Protocol.Fast ->
              loaded "loaded" (Xsb.Fast_load.string_ (Xsb.Session.db conn.c_session) req.Protocol.payload)
          | Protocol.Obj ->
              loaded "loaded" (Xsb.Obj_file.load_string (Xsb.Session.db conn.c_session) req.Protocol.payload)
        with
        | Xsb.Parser.Error (msg, pos) -> parse_failed (Printf.sprintf "syntax error at %d: %s" pos msg)
        | Xsb.Lexer.Error (msg, pos) -> parse_failed (Printf.sprintf "lexical error at %d: %s" pos msg)
        | Xsb.Loader.Load_error msg -> parse_failed msg
        | Xsb.Fast_load.Syntax (msg, pos) -> parse_failed (Printf.sprintf "fast-load error at %d: %s" pos msg)
        | Xsb.Obj_file.Bad_object_file msg -> parse_failed ("bad object file: " ^ msg)
        | Failure msg -> parse_failed msg)
    | Protocol.Assert -> (
        try
          let db = Xsb.Session.db conn.c_session in
          let clause = parse_goal req.Protocol.payload in
          (* a runtime ASSERT creates a dynamic predicate, like
             assert/1 — so incremental tables can track it precisely
             instead of conservatively invalidating on every write *)
          let head, _ = Xsb.Database.clause_parts clause in
          (match Xsb.Term.deref head with
          | Xsb.Term.Atom name -> ignore (Xsb.Database.set_dynamic db name 0)
          | Xsb.Term.Struct (name, args) ->
              ignore (Xsb.Database.set_dynamic db name (Array.length args))
          | _ -> ());
          ignore (Xsb.Database.add_clause db clause);
          ignore (try_write conn (Protocol.Ok_ "asserted"));
          let head, _ = Xsb.Database.clause_parts clause in
          ("ok", pred_of_goal head, 0)
        with
        | Xsb.Parser.Error (msg, pos) | Xsb.Lexer.Error (msg, pos) ->
            ignore
              (try_write conn
                 (Protocol.Err (Protocol.Parse_error, Printf.sprintf "syntax error at %d: %s" pos msg)));
            ("parse_error", "", 0)
        | Failure msg ->
            ignore (try_write conn (Protocol.Err (Protocol.Parse_error, msg)));
            ("parse_error", "", 0))
    | Protocol.Query -> (
        match parse_goal req.Protocol.payload with
        | exception (Xsb.Parser.Error (msg, pos) | Xsb.Lexer.Error (msg, pos)) ->
            ignore
              (try_write conn
                 (Protocol.Err (Protocol.Parse_error, Printf.sprintf "syntax error at %d: %s" pos msg)));
            ("parse_error", "", 0)
        | goal -> (
            let pred = pred_of_goal goal in
            let deadline_passed () =
              match job.j_deadline with Some d -> !monotonic () >= d | None -> false
            in
            if deadline_passed () then begin
              (* spent its whole deadline waiting in the queue *)
              ignore (try_write conn (Protocol.Err (Protocol.Timeout, "deadline exceeded in queue")));
              ("timeout", pred, 0)
            end
            else begin
              let budget =
                match req.Protocol.max_steps with
                | Some n when n > 0 -> clamp t.cfg.max_steps_cap n
                | _ -> t.cfg.default_max_steps
              in
              let limit =
                match req.Protocol.limit with
                | Some n when n > 0 -> clamp t.cfg.max_answers n
                | _ -> t.cfg.max_answers
              in
              let stream_answers solutions =
                List.fold_left
                  (fun n s ->
                    let text = Fmt.str "%a" (Xsb.Session.pp_solution conn.c_session) s in
                    if try_write conn (Protocol.Answer text) then n + 1 else n)
                  0 solutions
              in
              match
                Xsb.Engine.run_bounded
                  ?max_steps:(if budget > 0 then Some budget else None)
                  ?stop:(if job.j_deadline = None then None else Some deadline_passed)
                  ?limit:(if limit > 0 then Some limit else None)
                  eng goal
              with
              | `Answers solutions ->
                  let n = stream_answers solutions in
                  ignore (try_write conn (Protocol.Done { count = n; more = false }));
                  ("ok", pred, n)
              | `Truncated solutions ->
                  (* the stop poll can overshoot by a few answers; hold
                     the stream to the requested row count *)
                  let solutions =
                    if limit > 0 then List.filteri (fun i _ -> i < limit) solutions else solutions
                  in
                  let n = stream_answers solutions in
                  ignore (try_write conn (Protocol.Done { count = n; more = true }));
                  ("truncated", pred, n)
              | `Timeout solutions ->
                  let n = stream_answers solutions in
                  let reason = if deadline_passed () then "deadline exceeded" else "step budget exhausted" in
                  ignore (try_write conn (Protocol.Err (Protocol.Timeout, reason)));
                  ("timeout", pred, n)
              | exception Xsb.Machine.Step_limit ->
                  (* an engine-wide set_max_steps bound, not ours *)
                  ignore (try_write conn (Protocol.Err (Protocol.Timeout, "engine step limit")));
                  ("timeout", pred, 0)
              | exception (Xsb.Journal.Io_error _ as e) ->
                  (* an assert/1 inside the query hit the dead journal;
                     let the read-only degradation below handle it *)
                  raise e
              | exception e ->
                  ignore (try_write conn (Protocol.Err (Protocol.Exec_error, Printexc.to_string e)));
                  ("exec_error", pred, 0)
            end))
  in
  let mutating =
    match req.Protocol.op with
    | Protocol.Assert | Protocol.Consult | Protocol.Sync -> true
    | Protocol.Abolish -> req.Protocol.payload <> ""
    | Protocol.Ping | Protocol.Query | Protocol.Statistics | Protocol.Metrics
    | Protocol.Promote | Protocol.Role ->
        false
  in
  let refuse_readonly reason =
    ignore (try_write conn (Protocol.Err (Protocol.Readonly, "server is read-only: " ^ reason)));
    ("readonly", "", 0)
  in
  let finishing =
    match req.Protocol.op with
    | Protocol.Promote ->
        (* promotion joins the standby applier, which itself takes
           [sh_m] per record — run it outside the shared lock *)
        let reply = promote t in
        let outcome =
          match reply with
          | Protocol.Ok_ _ -> "ok"
          | Protocol.Err (Protocol.Exec_error, _) -> "exec_error"
          | _ -> "bad_request"
        in
        ignore (try_write conn reply);
        (outcome, "", 0)
    | _ -> (
        match t.shared with
        | None -> dispatch ()
        | Some sh -> (
            match sh.sh_read_only with
            | Some reason when mutating -> refuse_readonly reason
            | _ -> (
                (* Under a group-commit policy a mutation's ack must not
                   leave before its batch's fsync — but the fsync wait
                   must happen OUTSIDE the session lock, or batches
                   could never span connections. So: buffer the replies,
                   run the mutation (the journal hook only enqueues),
                   release [sh_m], then block on the commit barrier and
                   flush the ack. *)
                (* semi-synchronous commit rides the same deferred-ack
                   machinery as group commit: the reply waits behind the
                   local fsync barrier AND K standby acks *)
                let semi_sync = t.cfg.sync_standbys > 0 && t.repl_primary <> None in
                let defer =
                  mutating
                  && ((match t.cfg.sync with Xsb.Journal.Group _ -> true | _ -> false)
                     || semi_sync)
                in
                if defer then conn.c_defer <- Some [];
                let degrade site message =
                  conn.c_defer <- None;
                  (* the disk write path is gone; keep serving reads *)
                  let reason = Printf.sprintf "journal write failed at %s: %s" site message in
                  sh.sh_read_only <- Some reason;
                  refuse_readonly reason
                in
                (* one durable session for every connection: serialize *)
                Mutex.lock sh.sh_m;
                match Fun.protect ~finally:(fun () -> Mutex.unlock sh.sh_m) dispatch with
                | finishing ->
                    if defer then begin
                      match Xsb.Journal.barrier sh.sh_journal with
                      | () ->
                          (* locally durable; now wait for K standbys
                             (or degrade to async on timeout — writers
                             must never freeze on a dead standby) *)
                          (match (t.repl_primary, semi_sync) with
                          | Some prim, true ->
                              let g, o = Xsb.Journal.durable_position sh.sh_journal in
                              ignore
                                (Xsb_repl.Repl.Primary.wait_synced prim ~k:t.cfg.sync_standbys
                                   ~gen:g ~off:o
                                   ~timeout_s:(float_of_int t.cfg.sync_timeout_ms /. 1000.0))
                          | _ -> ());
                          let held = List.rev (Option.value conn.c_defer ~default:[]) in
                          conn.c_defer <- None;
                          List.iter (fun reply -> ignore (try_write conn reply)) held;
                          finishing
                      | exception Xsb.Journal.Io_error { site; message } ->
                          (* the batch never became durable: withdraw
                             the buffered ack and report the demotion *)
                          degrade site message
                    end
                    else finishing
                | exception Xsb.Journal.Io_error { site; message } -> degrade site message)))
  in
  let outcome, pred, answers = finishing in
  let wall = !monotonic () -. t0 in
  let steps = engine_steps conn - steps0 in
  log_request t ~id:job.j_id ~conn_id:conn.c_id
    ~op:(Protocol.op_name req.Protocol.op)
    ~pred ~answers ~steps ~wall ~outcome;
  (* the slow-query log: a structured line per request over --slow-ms,
     correlated to the access log by request id, carrying the engine's
     per-request work delta *)
  if t.cfg.slow_ms > 0 && wall *. 1000.0 >= float_of_int t.cfg.slow_ms then
    match t.cfg.slow_log with
    | None -> ()
    | Some oc ->
        let subgoals0, answers0, subs0 = stats0 in
        let s = Xsb.Session.stats conn.c_session in
        let goal = req.Protocol.payload in
        let goal =
          if String.length goal > 512 then String.sub goal 0 512 ^ "..." else goal
        in
        let record =
          Xsb.Json.Obj
            [
              ("ts_us", Xsb.Json.Int (int_of_float (now () *. 1e6)));
              ("id", Xsb.Json.Int job.j_id);
              ("conn", Xsb.Json.Int conn.c_id);
              ("op", Xsb.Json.String (Protocol.op_name req.Protocol.op));
              ("goal", Xsb.Json.String goal);
              ("pred", Xsb.Json.String pred);
              ("outcome", Xsb.Json.String outcome);
              ("wall_us", Xsb.Json.Int (int_of_float (wall *. 1e6)));
              ("steps", Xsb.Json.Int steps);
              ("subgoals", Xsb.Json.Int (s.Xsb.Machine.st_subgoals - subgoals0));
              ("engine_answers", Xsb.Json.Int (s.Xsb.Machine.st_answers - answers0));
              ( "subsumption_hits",
                Xsb.Json.Int (s.Xsb.Machine.st_subsumption_hits - subs0) );
              ("answers", Xsb.Json.Int answers);
            ]
        in
        Mutex.lock t.log_m;
        output_string oc (Xsb.Json.to_string record);
        output_char oc '\n';
        flush oc;
        Mutex.unlock t.log_m

(* catch-all so one poisoned request can never kill a worker *)
let execute_safe t job =
  Atomic.incr t.in_flight;
  (try Fun.protect ~finally:(fun () -> Atomic.decr t.in_flight) (fun () -> execute t job)
   with e ->
     ignore
       (try_write job.j_conn
          (Protocol.Err (Protocol.Exec_error, "internal error: " ^ Printexc.to_string e)));
     log_request t ~id:job.j_id ~conn_id:job.j_conn.c_id
       ~op:(Protocol.op_name job.j_req.Protocol.op)
       ~pred:"" ~answers:0 ~steps:0
       ~wall:(!monotonic () -. job.j_received)
       ~outcome:"exec_error");
  let conn = job.j_conn in
  Mutex.lock conn.c_m;
  conn.c_job_done <- true;
  Condition.signal conn.c_done;
  Mutex.unlock conn.c_m

let worker_loop t =
  let rec loop () =
    match Bqueue.pop t.queue with
    | Some job ->
        execute_safe t job;
        loop ()
    | None -> ()
  in
  loop ()

(* --- the per-connection handler --- *)

let close_conn t conn =
  (* the per-connection table space dies with the session; abolish it
     explicitly so a reused engine can never leak answers across
     connections. The shared durable session outlives its connections:
     leave its tables alone. *)
  (if t.shared = None then
     try Xsb.Engine.reset_tables (Xsb.Session.engine conn.c_session) with _ -> ());
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns conn.c_id;
  Mutex.unlock t.conns_m

let refuse t conn req code msg outcome =
  ignore (try_write conn (Protocol.Err (code, msg)));
  log_request t
    ~id:(Atomic.fetch_and_add t.req_counter 1 + 1)
    ~conn_id:conn.c_id
    ~op:(Protocol.op_name req.Protocol.op)
    ~pred:"" ~answers:0 ~steps:0 ~wall:0.0 ~outcome

let handler_loop t conn =
  let rec loop () =
    match Protocol.read_request conn.c_ic with
    | exception End_of_file -> ()
    | exception Protocol.Bad_frame msg ->
        (* framing is broken: reply if possible, then drop the link *)
        ignore (try_write conn (Protocol.Err (Protocol.Bad_request, msg)));
        log_request t
          ~id:(Atomic.fetch_and_add t.req_counter 1 + 1)
          ~conn_id:conn.c_id ~op:"?" ~pred:"" ~answers:0 ~steps:0 ~wall:0.0 ~outcome:"bad_request"
    | exception (Sys_error _ | Unix.Unix_error _) -> ()
    | req ->
        let received = !monotonic () in
        let timeout_ms =
          match req.Protocol.timeout_ms with
          | Some n when n > 0 -> clamp t.cfg.max_timeout_ms n
          | _ -> t.cfg.default_timeout_ms
        in
        let deadline =
          if timeout_ms > 0 then Some (received +. (float_of_int timeout_ms /. 1000.0)) else None
        in
        let job =
          {
            j_id = Atomic.fetch_and_add t.req_counter 1 + 1;
            j_conn = conn;
            j_req = req;
            j_received = received;
            j_deadline = deadline;
          }
        in
        conn.c_job_done <- false;
        (match Bqueue.push t.queue job with
        | Bqueue.Pushed ->
            Mutex.lock conn.c_m;
            while not conn.c_job_done do
              Condition.wait conn.c_done conn.c_m
            done;
            Mutex.unlock conn.c_m
        | Bqueue.Full -> refuse t conn req Protocol.Overloaded "request queue is full" "overloaded"
        | Bqueue.Stopping ->
            refuse t conn req Protocol.Shutting_down "server is draining" "shutting_down");
        loop ()
  in
  loop ();
  close_conn t conn

(* --- accepting --- *)

let make_conn t fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let session =
    match t.shared with
    | Some sh -> sh.sh_session
    | None ->
        let session = Xsb.Session.create ?scheduling:t.cfg.scheduling () in
        List.iter (fun text -> Xsb.Session.consult session text) t.preload_texts;
        session
  in
  {
    c_id = Atomic.fetch_and_add t.conn_counter 1 + 1;
    c_fd = fd;
    c_ic = Unix.in_channel_of_descr fd;
    c_oc = Unix.out_channel_of_descr fd;
    c_session = session;
    c_m = Mutex.create ();
    c_done = Condition.create ();
    c_job_done = true;
    c_defer = None;
  }

let acceptor_loop t =
  let rec loop () =
    if Atomic.get t.stopped then ()
    else
      match Unix.select [ t.listen_fd; t.stop_rd ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
          if List.mem t.stop_rd ready || Atomic.get t.stopped then ()
          else if List.mem t.listen_fd ready then begin
            (match Unix.accept ~cloexec:true t.listen_fd with
            | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EAGAIN | Unix.EINTR), _, _) ->
                ()
            | fd, _ -> (
                match make_conn t fd with
                | exception _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
                | conn ->
                    (* register before spawning: [stop] joins the
                       acceptor first, so the registry is complete when
                       it snapshots the handlers to drain *)
                    Mutex.lock t.conns_m;
                    let th = Thread.create (fun () -> handler_loop t conn) () in
                    Hashtbl.replace t.conns conn.c_id (conn, th);
                    Mutex.unlock t.conns_m));
            loop ()
          end
          else loop ()
  in
  loop ()

(* --- lifecycle --- *)

let read_preloads paths =
  List.map
    (fun path ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))
    paths

let start cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers < 1";
  if cfg.queue_capacity < 1 then invalid_arg "Server.start: queue_capacity < 1";
  (* a peer that disappears mid-write must surface as EPIPE, not kill
     the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let preload_texts = read_preloads cfg.preload in
  (* parse errors in preloads should fail [start], not every connection *)
  List.iter
    (fun text ->
      let probe = Xsb.Session.create ?scheduling:cfg.scheduling () in
      Xsb.Session.consult probe text)
    preload_texts;
  if cfg.replica_of <> None && cfg.data_dir = None then
    invalid_arg "Server.start: replica_of requires data_dir";
  if cfg.repl_port <> None && cfg.data_dir = None then
    invalid_arg "Server.start: repl_port requires data_dir";
  let shared =
    match cfg.data_dir with
    | None -> None
    | Some dir ->
        (* preloads go in BEFORE the journal opens: they are program
           text, not journaled state, and recovery replays on top *)
        let session = Xsb.Session.create ?scheduling:cfg.scheduling () in
        List.iter (fun text -> Xsb.Session.consult session text) preload_texts;
        let journal = Xsb.Journal.open_ (journal_config cfg dir) (Xsb.Session.db session) in
        let read_only =
          match cfg.replica_of with
          | Some (host, port) ->
              (* a standby's journal is written by the replication
                 applier, never by local mutations — don't attach *)
              Some (Printf.sprintf "replica of %s:%d (PROMOTE to accept writes)" host port)
          | None ->
              Xsb.Journal.attach ~deferred:true journal;
              None
        in
        Some
          {
            sh_session = session;
            sh_journal = journal;
            sh_m = Mutex.create ();
            sh_read_only = read_only;
          }
  in
  let close_shared () =
    match shared with
    | Some sh -> ( try Xsb.Journal.close sh.sh_journal with _ -> ())
    | None -> ()
  in
  let listen_fd =
    try Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0
    with e ->
      close_shared ();
      raise e
  in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port))
   with e ->
     Unix.close listen_fd;
     close_shared ();
     raise e);
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with Unix.ADDR_INET (_, p) -> p | _ -> cfg.port
  in
  let stop_rd, stop_wr = Unix.pipe ~cloexec:true () in
  let registry = Xsb.Metrics.create () in
  Xsb.Metrics.set_enabled registry cfg.metrics_enabled;
  let requests_total =
    Xsb.Metrics.counter registry
      ~help:"Requests finished (one per access-log line, refusals included)."
      "xsb_requests_total"
  in
  let op_hists =
    List.map
      (fun op ->
        ( op,
          Xsb.Metrics.histogram registry ~labels:[ ("op", op) ] ~help:duration_help
            "xsb_request_duration_seconds" ))
      [
        "PING"; "CONSULT"; "ASSERT"; "QUERY"; "STATISTICS"; "ABOLISH"; "SYNC"; "METRICS";
        "PROMOTE"; "ROLE"; "?";
      ]
  in
  let outcome_counters =
    List.map
      (fun o ->
        ( o,
          Xsb.Metrics.counter registry ~labels:[ ("outcome", o) ] ~help:outcome_help
            "xsb_requests_by_outcome_total" ))
      [
        "ok"; "truncated"; "timeout"; "parse_error"; "exec_error"; "bad_request"; "readonly";
        "overloaded"; "shutting_down";
      ]
  in
  let t =
    {
      cfg;
      shared;
      listen_fd;
      bound_port;
      stop_rd;
      stop_wr;
      queue = Bqueue.create cfg.queue_capacity;
      preload_texts;
      conns = Hashtbl.create 16;
      conns_m = Mutex.create ();
      stopped = Atomic.make false;
      req_counter = Atomic.make 0;
      conn_counter = Atomic.make 0;
      served = Atomic.make 0;
      log_m = Mutex.create ();
      agg = Hashtbl.create 16;
      agg_m = Mutex.create ();
      registry;
      requests_total;
      op_hists;
      outcome_counters;
      in_flight = Atomic.make 0;
      worker_threads = [];
      acceptor_thread = None;
      promote_m = Mutex.create ();
      repl_primary = None;
      repl_standby = None;
      failover_thread = None;
    }
  in
  (try
     (match (shared, cfg.replica_of) with
     | Some sh, Some (primary_host, primary_port) ->
         let generation, offset = Xsb.Journal.position sh.sh_journal in
         let ep = Xsb.Journal.epoch sh.sh_journal in
         t.repl_standby <-
           Some (spawn_standby t sh ~primary_host ~primary_port ~generation ~offset ~epoch:ep);
         (* standby gauges live on the server, looked up through
            [t.repl_standby] at scrape time — so a retarget (which
            replaces the Standby value) can't strand stale closures in
            the find-or-create registry *)
         let status_gauge name help f =
           Xsb.Metrics.gauge_fn registry ~help name (fun () ->
               match t.repl_standby with
               | Some s -> ( try f (Xsb_repl.Repl.Standby.status s) with _ -> 0.0)
               | None -> 0.0)
         in
         let open Xsb_repl.Repl.Standby in
         status_gauge "xsb_repl_lag_bytes"
           "Bytes between the primary's durable watermark and the standby's applied frontier."
           (fun st -> float_of_int st.lag_bytes);
         status_gauge "xsb_repl_connected" "1 while the replication link to the primary is up."
           (fun st -> if st.connected then 1.0 else 0.0);
         status_gauge "xsb_repl_applied_records_total"
           "Replicated records applied to the live session." (fun st ->
             float_of_int st.applied_records);
         status_gauge "xsb_repl_generation" "Local journal generation being mirrored." (fun st ->
             Int64.to_float st.generation);
         status_gauge "xsb_repl_epoch" "Failover epoch this standby is following." (fun st ->
             Int64.to_float st.epoch);
         status_gauge "xsb_repl_seconds_since_contact"
           "Seconds since the last frame from the primary." (fun st ->
             st.seconds_since_contact);
         status_gauge "xsb_repl_snapshots_received_total"
           "Snapshots received (bootstrap and generation boundaries)." (fun st ->
             float_of_int st.snapshots_received)
     | _ -> ());
     match (shared, cfg.repl_port) with
     | Some sh, Some p when cfg.replica_of = None ->
         t.repl_primary <-
           Some
             (Xsb_repl.Repl.Primary.start ~host:cfg.host ~registry
                ~on_deposed:(fun e -> deposed t e)
                ~port:p ~journal:sh.sh_journal ())
     | _ -> ()
   with e ->
     (match t.repl_standby with
     | Some s -> ( try Xsb_repl.Repl.Standby.stop s with _ -> ())
     | None -> ());
     (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
     (try Unix.close t.stop_rd with Unix.Unix_error _ -> ());
     (try Unix.close t.stop_wr with Unix.Unix_error _ -> ());
     close_shared ();
     raise e);
  (* liveness gauges, sampled at scrape time *)
  Xsb.Metrics.gauge_fn registry ~help:"Requests currently executing on a worker."
    "xsb_in_flight_requests" (fun () -> Float.of_int (Atomic.get t.in_flight));
  Xsb.Metrics.gauge_fn registry ~help:"Requests waiting in the bounded queue."
    "xsb_queue_depth" (fun () -> Float.of_int (Bqueue.length t.queue));
  Xsb.Metrics.gauge_fn registry ~help:"Open client connections." "xsb_connections"
    (fun () ->
      Mutex.lock t.conns_m;
      let n = Hashtbl.length t.conns in
      Mutex.unlock t.conns_m;
      Float.of_int n);
  Xsb.Metrics.gauge_fn registry ~help:"Configured worker threads." "xsb_workers"
    (fun () -> Float.of_int t.cfg.workers);
  t.worker_threads <- List.init cfg.workers (fun _ -> Thread.create (fun () -> worker_loop t) ());
  t.acceptor_thread <- Some (Thread.create (fun () -> acceptor_loop t) ());
  if cfg.auto_promote && t.repl_standby <> None then
    t.failover_thread <- Some (Thread.create (fun () -> failover_monitor t) ());
  t

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* 1. no new submissions: handlers now answer SHUTTING_DOWN *)
    Bqueue.stop t.queue;
    (* 2. no new connections *)
    (try ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1) with Unix.Unix_error _ -> ());
    (match t.acceptor_thread with Some th -> Thread.join th | None -> ());
    (* 3. drain: workers exit only once the queue is empty, so every
       request accepted before (1) completes — zero dropped in flight *)
    List.iter Thread.join t.worker_threads;
    (* 4. wake handlers blocked reading the next frame, and join them *)
    let handlers =
      Mutex.lock t.conns_m;
      let hs = Hashtbl.fold (fun _ (conn, th) acc -> (conn, th) :: acc) t.conns [] in
      Mutex.unlock t.conns_m;
      hs
    in
    List.iter
      (fun (conn, _) ->
        try Unix.shutdown conn.c_fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      handlers;
    List.iter (fun (_, th) -> Thread.join th) handlers;
    (* the failover monitor may be mid-probe or mid-promotion; join it
       before the replication components and journal come down *)
    (match t.failover_thread with
    | Some th ->
        Thread.join th;
        t.failover_thread <- None
    | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_rd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_wr with Unix.Unix_error _ -> ());
    (* workers and handlers are joined: no request (or promotion) is in
       flight, so the replication components can come down cleanly *)
    (match t.repl_standby with
    | Some s ->
        (try Xsb_repl.Repl.Standby.stop s with _ -> ());
        t.repl_standby <- None
    | None -> ());
    (match t.repl_primary with
    | Some p ->
        (try Xsb_repl.Repl.Primary.stop p with _ -> ());
        t.repl_primary <- None
    | None -> ());
    (* every in-flight mutation has been drained; final sync and close *)
    (match t.shared with
    | Some sh -> ( try Xsb.Journal.close sh.sh_journal with _ -> ())
    | None -> ());
    (match t.cfg.access_log with Some oc -> ( try flush oc with Sys_error _ -> ()) | None -> ());
    match t.cfg.slow_log with Some oc -> ( try flush oc with Sys_error _ -> ()) | None -> ()
  end
