(** The concurrent query service: a TCP server speaking {!Protocol}
    with a fixed worker pool, a bounded request queue (backpressure),
    per-request deadlines, per-connection {!Xsb.Session} isolation, and
    a JSONL access log.

    Architecture (DESIGN.md §8): one acceptor thread; one handler
    thread per connection that reads frames and waits for each
    submitted request to finish (so a connection's requests execute in
    order against its private session); [workers] worker threads
    pulling requests from a queue of at most [queue_capacity] entries —
    a submit against a full queue is answered [OVERLOADED] immediately,
    never buffered without bound. Deadlines are enforced twice: a
    wall-clock check polled inside the engine and a resolution-step
    budget ({!Xsb.Engine.run_bounded}), so a runaway derivation returns
    [TIMEOUT] instead of wedging its worker. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;
  queue_capacity : int;  (** queued (not yet executing) request cap *)
  default_timeout_ms : int;  (** per-request wall deadline; 0 = none *)
  max_timeout_ms : int;  (** clamp on client-supplied deadlines; 0 = no clamp *)
  default_max_steps : int;  (** per-request step budget; 0 = none *)
  max_steps_cap : int;  (** clamp on client-supplied budgets; 0 = no clamp *)
  max_answers : int;  (** hard per-query row cap; 0 = none *)
  preload : string list;  (** program files consulted into every fresh session *)
  scheduling : Xsb.Machine.scheduling option;
  access_log : out_channel option;
      (** one JSON object per request: ts, id, conn, op, pred, answers,
          steps, wall_us, outcome *)
  profile : bool;  (** aggregate per-predicate server-side (see {!pp_profile}) *)
  data_dir : string option;
      (** durable mode: every connection shares ONE session whose
          mutations are journaled here and recovered on restart.
          Requests are serialized against it. [None] (the default)
          keeps the per-connection in-memory sessions. *)
  sync : Xsb.Journal.sync_policy;  (** journal fsync policy (durable mode) *)
  compact_bytes : int;  (** journal auto-compaction threshold; 0 disables *)
  keep_generations : int;
      (** archive this many rotated journal generations (plus their
          snapshots) on compaction, for point-in-time recovery and for
          standbys following across a rotation; forced to at least 1
          when replication is configured; 0 = delete rotated files *)
  repl_port : int option;
      (** serve the replication feed (journal shipping) on this port;
          0 picks an ephemeral one (see {!repl_listen_port}); requires
          [data_dir] *)
  replica_of : (string * int) option;
      (** run as a read-only standby of this primary's replication
          endpoint: mirror + apply its journal continuously, refuse
          mutations with [READONLY], accept [PROMOTE]; requires
          [data_dir] *)
  sync_standbys : int;
      (** semi-synchronous commit: a mutation's ack additionally waits
          for this many standby acknowledgements (on top of the local
          fsync barrier); 0 = asynchronous replication. On timeout the
          write degrades to async ([xsb_repl_sync_degraded] flips)
          rather than freezing writers *)
  sync_timeout_ms : int;  (** semi-sync wait budget per commit (default 1000) *)
  auto_promote : bool;
      (** standby only: promote automatically after
          [failover_timeout_ms] of primary silence, unless a probed
          peer is a live primary (then retarget the stream at it) or a
          better-positioned standby exists (then defer to it) *)
  promote_priority : int;
      (** failover tie-break: lower numbers promote first; each step
          also adds 0.5 s of detection grace so replicas don't race *)
  failover_timeout_ms : int;
      (** primary-silence threshold before the failover monitor acts
          (default 3000) *)
  peers : (string * int) list;
      (** client endpoints ([host:port]) of the other nodes in the
          topology — probed via ROLE during failover, and served back
          to clients for [--endpoints] discovery *)
  metrics_enabled : bool;
      (** [false] turns every metrics record path into a boolean read —
          the control arm when measuring instrumentation overhead *)
  slow_ms : int;  (** slow-query threshold in milliseconds; 0 disables *)
  slow_log : out_channel option;
      (** one JSON object per request slower than [slow_ms]: ts, id
          (correlates with the access log), conn, op, goal, outcome,
          wall_us, and the per-request engine-stats delta (steps,
          subgoals, engine answers, subsumption hits) *)
}

val default_config : config
(** Loopback, port 0, 4 workers, queue 64, 5 s / 10 M step budgets,
    no preload, no log, no profile; metrics on, slow-query log off. *)

type t

val start : config -> t
(** Bind, listen and spawn the pool. Raises [Unix.Unix_error] if the
    address is unavailable, [Sys_error]/[Xsb.Loader.Load_error] if a
    preload file is unreadable or malformed. *)

val port : t -> int
(** The bound port (useful with [config.port = 0]). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, refuse new submissions with
    [SHUTTING_DOWN], drain every queued and executing request, then
    close every connection and join every thread. Idempotent; blocks
    until the drain completes. *)

val requests_served : t -> int
(** Total requests executed or refused so far. *)

val journal : t -> Xsb.Journal.t option
(** The durable journal, when running with [data_dir]. *)

val read_only : t -> string option
(** Why the server is refusing mutations (a replication standby, or a
    journal write failed), or [None] while writes are healthy. *)

val repl_listen_port : t -> int option
(** The bound replication-feed port (useful with [repl_port = Some 0]),
    when this server is serving standbys. *)

val replica_status : t -> Xsb_repl.Repl.Standby.status option
(** Live standby telemetry (connection, generation, applied frontier,
    lag), when running with [replica_of] — [None] once promoted. *)

val epoch : t -> int64 option
(** The failover fencing epoch: the standby's live (adopted) epoch, or
    the journal's on a primary; [None] without [data_dir]. *)

val registry : t -> Xsb.Metrics.t
(** The server's persistent metrics registry: [xsb_requests_total] (one
    increment per access-log line), [xsb_requests_by_outcome_total],
    per-op [xsb_request_duration_seconds] histograms, and the
    [xsb_in_flight_requests] / [xsb_queue_depth] / [xsb_connections]
    liveness gauges. The METRICS wire op renders this registry plus a
    fresh engine/journal snapshot as one Prometheus text exposition. *)

val monotonic : (unit -> float) ref
(** The clock used for latency measurement and deadlines —
    {!Xsb.Mclock.now} by default, a ref so tests can inject a fake.
    Wall-clock time is used only for log timestamps. *)

val pp_profile : Format.formatter -> t -> unit
(** The [--profile] aggregate: per predicate (queries) and per op,
    request count, answers, steps and wall time, hottest first. *)

val profile_json : t -> Xsb.Json.t
