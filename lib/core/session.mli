(** A convenient front end bundling a database with an SLG engine: the
    programmatic equivalent of XSB's read-eval-print loop. *)

open Xsb_slg

type t

val create : ?mode:Machine.mode -> ?scheduling:Machine.scheduling -> unit -> t

val db : t -> Xsb_db.Database.t
val engine : t -> Engine.t

val consult : t -> string -> unit
(** Load program text. *)

val consult_file : t -> string -> unit

val query : t -> string -> Engine.solution list
val query_first : t -> string -> Engine.solution option
val succeeds : t -> string -> bool
val count : t -> string -> int

val pp_solution : t -> Engine.solution Fmt.t
(** ["X = f(Y), Z = 3"]-style rendering using the session's operators. *)

val show : t -> string -> unit
(** Run a query and print its solutions, REPL-style, to stdout. *)

val wfs_query : t -> string -> Xsb_wfs.Residual.solution list
(** Three-valued query (sessions created with
    [~mode:Machine.Well_founded]). *)

val stats : t -> Machine.stats
(** The engine's evaluation counters (live record). *)
