(** A convenient front end bundling a database with an SLG engine: the
    programmatic equivalent of XSB's read-eval-print loop. *)

open Xsb_slg

type t

val create : ?mode:Machine.mode -> ?scheduling:Machine.scheduling -> unit -> t

val db : t -> Xsb_db.Database.t
val engine : t -> Engine.t

val consult : t -> string -> unit
(** Load program text. *)

val consult_file : t -> string -> unit

val query : t -> string -> Engine.solution list
val query_first : t -> string -> Engine.solution option
val succeeds : t -> string -> bool
val count : t -> string -> int

val pp_solution : t -> Engine.solution Fmt.t
(** ["X = f(Y), Z = 3"]-style rendering using the session's operators. *)

val show : t -> string -> unit
(** Run a query and print its solutions, REPL-style, to stdout. *)

val wfs_query : t -> string -> Xsb_wfs.Residual.solution list
(** Three-valued query (sessions created with
    [~mode:Machine.Well_founded]). *)

val stats : t -> Machine.stats
(** The engine's evaluation counters (live record; reset by an engine
    reset / [abolish_all_tables]). *)

(** {1 Observability} *)

val recorder : t -> Xsb_obs.Obs.Recorder.t

val add_sink : t -> Xsb_obs.Obs.Sink.t -> unit
(** Attach a trace sink (pretty / JSONL / ring buffer / custom); the
    engine then emits typed {!Xsb_obs.Obs.Event.t}s for new subgoals,
    answers, suspensions/resumptions, negation waits, SCC completions,
    drains and abolishes. *)

val clear_sinks : t -> unit

val metrics : t -> Xsb_obs.Obs.Metrics.t

val set_profiling : t -> bool -> unit
(** Enable per-predicate profiling (the [--profile] report). *)

val pp_profile : ?internal:bool -> Format.formatter -> t -> unit
val pp_table_dump : Format.formatter -> t -> unit

val sink_of_spec : out:out_channel -> string -> Xsb_obs.Obs.Sink.t option
(** Build the sink named by a [--trace]/[XSB_TRACE] spec — ["pretty"],
    ["jsonl"] (or ["json"]), ["null"] — writing to [out]. [None] for an
    unknown spec. *)
