open Xsb_slg

type t = { database : Xsb_db.Database.t; eng : Engine.t }

let create ?mode ?scheduling () =
  let database = Xsb_db.Database.create () in
  { database; eng = Engine.create ?mode ?scheduling database }

let db t = t.database
let engine t = t.eng

let consult t source = Engine.consult_string t.eng source
let consult_file t path = Engine.consult_file t.eng path

let query t text = Engine.query_string t.eng text
let query_first t text = Engine.query_first_string t.eng text
let succeeds t text = Engine.succeeds t.eng text
let count t text = Engine.count_solutions t.eng text

let pp_solution t ppf (s : Engine.solution) =
  let ops = Xsb_db.Database.ops t.database in
  let pp_term = Xsb_parse.Pretty.pp ~ops () in
  if s.Engine.bindings = [] then Fmt.string ppf "true"
  else
    Fmt.pf ppf "%a"
      Fmt.(list ~sep:(any ", ") (fun ppf (n, v) -> Fmt.pf ppf "%s = %a" n pp_term v))
      s.Engine.bindings;
  if s.Engine.conditional then Fmt.string ppf " (undefined)"

let show t text =
  match query t text with
  | [] -> Fmt.pr "no@."
  | solutions ->
      List.iter (fun s -> Fmt.pr "%a@." (pp_solution t) s) solutions;
      Fmt.pr "yes (%d solution%s)@." (List.length solutions)
        (if List.length solutions = 1 then "" else "s")

let wfs_query t text = Xsb_wfs.Residual.query_string t.eng text

let stats t = Engine.stats t.eng

(* --- observability (ISSUE PR 3) --- *)

let recorder t = Engine.recorder t.eng
let add_sink t sink = Engine.add_sink t.eng sink
let clear_sinks t = Engine.clear_sinks t.eng
let metrics t = Engine.metrics t.eng
let set_profiling t flag = Engine.set_profiling t.eng flag
let pp_profile ?internal ppf t = Engine.pp_profile ?internal ppf t.eng
let pp_table_dump ppf t = Engine.pp_table_dump ppf t.eng

(* the sink named by --trace / XSB_TRACE; [out] is the --trace-out
   destination shared by both formats *)
let sink_of_spec ~out spec =
  match String.lowercase_ascii spec with
  | "pretty" -> Some (Xsb_obs.Obs.Sink.Pretty (Format.formatter_of_out_channel out))
  | "jsonl" | "json" -> Some (Xsb_obs.Obs.Sink.Jsonl out)
  | "null" -> Some Xsb_obs.Obs.Sink.Null
  | _ -> None

