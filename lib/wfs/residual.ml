open Xsb_term
open Xsb_slg

let of_tables engine =
  let env = Engine.env engine in
  let ground = Ground.create () in
  Canon.Tbl.iter
    (fun _ (sub : Machine.subgoal) ->
      Machine.iter_answers
        (fun (a : Machine.answer) ->
          if a.Machine.a_delays = [] then Ground.add_fact ground a.Machine.a_template
          else
            let pos =
              List.filter_map
                (function Machine.Dpos (_, t) -> Some t | Machine.Dneg _ -> None)
                a.Machine.a_delays
            in
            let neg =
              List.filter_map
                (function Machine.Dneg k -> Some k | Machine.Dpos _ -> None)
                a.Machine.a_delays
            in
            Ground.add_rule ground a.Machine.a_template ~pos ~neg)
        sub)
    env.Machine.tables;
  ground

let truth_and a b =
  match (a, b) with
  | Ground.False, _ | _, Ground.False -> Ground.False
  | Ground.Undefined, _ | _, Ground.Undefined -> Ground.Undefined
  | Ground.True, Ground.True -> Ground.True

let truth_not = function
  | Ground.True -> Ground.False
  | Ground.False -> Ground.True
  | Ground.Undefined -> Ground.Undefined

let delay_truth ground delays =
  List.fold_left
    (fun acc d ->
      let v =
        match d with
        | Machine.Dpos (_, t) -> Ground.wfs ground t
        | Machine.Dneg k -> truth_not (Ground.wfs ground k)
      in
      truth_and acc v)
    Ground.True delays

type solution = { bindings : (string * Term.t) list; truth : Ground.truth }

let query engine goal =
  let answers = Engine.query engine goal in
  let ground = of_tables engine in
  (* an answer template may be supported by several answer clauses with
     different delay lists: merge them, taking the strongest truth. Key
     on the structural binding list, not its printed form — printing is
     lossy (1 and 1.0 both print as "1"), so distinct solutions could
     collide *)
  let merged : solution Canon.Tbl.t = Canon.Tbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Engine.solution) ->
      match delay_truth ground s.Engine.delays with
      | Ground.False -> ()
      | truth -> (
          let key = Canon.of_term (Term.list_ (List.map snd s.Engine.bindings)) in
          match Canon.Tbl.find_opt merged key with
          | None ->
              Canon.Tbl.add merged key { bindings = s.Engine.bindings; truth };
              order := key :: !order
          | Some existing ->
              if existing.truth = Ground.Undefined && truth = Ground.True then
                Canon.Tbl.replace merged key { existing with truth }))
    answers;
  List.rev_map (fun key -> Canon.Tbl.find merged key) !order

let query_string engine text =
  query engine
    (Xsb_parse.Parser.term_of_string ~ops:(Xsb_db.Database.ops (Engine.db engine)) text)

let stable_models ?max_unknowns engine = Ground.stable_models ?max_unknowns (of_tables engine)
