open Xsb_term
open Xsb_parse

type result = {
  clauses_loaded : int;
  deferred_goals : Term.t list;
  defined : (string * int) list;
  table_all_requested : bool;
}

exception Load_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Load_error s)) fmt

(* A conjunction, disjunction or list of items, flattened. *)
let rec items_of term =
  match Term.deref term with
  | Term.Struct ((("," | ";") as _c), [| l; r |]) -> items_of l @ items_of r
  | t -> ( match Term.to_list t with Some l -> List.concat_map items_of l | None -> [ t ])

let pred_indicator term =
  match Term.deref term with
  | Term.Struct ("/", [| n; a |]) -> (
      match (Term.deref n, Term.deref a) with
      | Term.Atom name, Term.Int arity when arity >= 0 -> (name, arity)
      | _ -> fail "bad predicate indicator: %a" Term.pp term)
  | t -> fail "bad predicate indicator: %a" Term.pp t

(* Index specifications: an integer field, [1,2,3+5]-style lists, or the
   atoms [str] / [first_string] / [trie] for first-string indexing. *)
let index_spec_of term =
  let combo_of item =
    let rec fields t =
      match Term.deref t with
      | Term.Int f -> [ f ]
      | Term.Struct ("+", [| l; r |]) -> fields l @ fields r
      | t -> fail "bad index field: %a" Term.pp t
    in
    fields item
  in
  match Term.deref term with
  | Term.Int f -> Pred.Fields [ [ f ] ]
  | Term.Atom ("str" | "first_string" | "trie") -> Pred.First_string_index
  | Term.Atom ("disc" | "dtree" | "disc_tree") -> Pred.Disc_tree_index
  | t -> (
      match Term.to_list t with
      | Some combos -> Pred.Fields (List.map combo_of combos)
      | None -> fail "bad index specification: %a" Term.pp t)

(* A tabling mode annotation: [:- table p/2 as incremental],
   [:- table p/2 as subsumption], or [:- table p/3 as subsumptive(min)]. *)
let table_mode_of term =
  match Term.deref term with
  | Term.Atom ("incremental" | "opaque") -> Pred.Incremental
  | Term.Atom "variant" -> Pred.Variant
  | Term.Atom "subsumption" -> Pred.Subsumption
  | Term.Struct ("subsumptive", [| op |]) -> (
      match Term.deref op with
      | Term.Atom name -> (
          match Xsb_index.Answer_store.Subsumption.op_of_string name with
          | Some op -> Pred.Subsumptive op
          | None -> fail "unknown subsumption operation: %s" name)
      | t -> fail "bad subsumption operation: %a" Term.pp t)
  | t -> fail "bad tabling mode: %a" Term.pp t

let process_directive db directive =
  match Term.deref directive with
  | Term.Atom "table_all" -> `Table_all
  | Term.Struct ("table", [| spec |]) ->
      List.iter
        (fun item ->
          match Term.deref item with
          | Term.Struct ("as", [| pi; mode |]) ->
              let name, arity = pred_indicator pi in
              Database.set_table_mode db name arity (table_mode_of mode)
          | pi ->
              let name, arity = pred_indicator pi in
              Database.set_tabled db name arity)
        (items_of spec);
      `Handled
  | Term.Struct ("dynamic", [| spec |]) ->
      List.iter
        (fun pi ->
          let name, arity = pred_indicator pi in
          ignore (Database.set_dynamic db name arity))
        (items_of spec);
      `Handled
  | Term.Struct ("hilog", [| spec |]) ->
      List.iter
        (fun s ->
          match Term.deref s with
          | Term.Atom name -> Database.declare_hilog db name
          | t -> fail "bad hilog declaration: %a" Term.pp t)
        (items_of spec);
      `Handled
  | Term.Struct ("index", [| pi; spec |]) ->
      let name, arity = pred_indicator pi in
      Database.set_index db name arity (index_spec_of spec);
      `Handled
  | Term.Struct ("index", [| pi; spec; size |]) ->
      let name, arity = pred_indicator pi in
      let size_hint =
        match Term.deref size with
        | Term.Int n when n > 0 -> Some n
        | t -> fail "bad index hash size: %a" Term.pp t
      in
      Database.set_index db ?size_hint name arity (index_spec_of spec);
      `Handled
  | Term.Struct ("op", [| p; f; names |]) -> (
      match (Term.deref p, Term.deref f) with
      | Term.Int priority, Term.Atom fixity -> (
          match Ops.fixity_of_string fixity with
          | Some fixity ->
              List.iter
                (fun name ->
                  match Term.deref name with
                  | Term.Atom name -> Database.add_op db priority fixity name
                  | t -> fail "bad operator name: %a" Term.pp t)
                (items_of names);
              `Handled
          | None -> fail "bad operator fixity: %s" fixity)
      | _ -> fail "bad op/3 directive")
  | Term.Struct ("module", [| name; exports |]) -> (
      match Term.deref name with
      | Term.Atom m ->
          let exports =
            match Term.to_list (Term.deref exports) with
            | Some l -> List.map pred_indicator l
            | None -> []
          in
          Database.declare_module db m exports;
          Database.set_current_module db m;
          `Handled
      | t -> fail "bad module name: %a" Term.pp t)
  | Term.Struct (("import" | "export" | "discontiguous"), _) ->
      (* recorded for compatibility; predicates live in one global space *)
      `Handled
  | goal -> `Deferred goal

let consult_lexer db lexer =
  let deferred = ref [] in
  let defined = ref [] in
  let count = ref 0 in
  let table_all = ref false in
  let note_defined key = if not (List.mem key !defined) then defined := key :: !defined in
  let rec go () =
    match Parser.read_term ~ops:(Database.ops db) lexer with
    | None -> ()
    | Some (term, _) ->
        (match Term.deref term with
        | Term.Struct (":-", [| directive |]) -> (
            match process_directive db directive with
            | `Handled -> ()
            | `Table_all -> table_all := true
            | `Deferred goal -> deferred := goal :: !deferred)
        | Term.Struct ("?-", [| goal |]) -> deferred := Database.encode db goal :: !deferred
        | clause ->
            let clause = if Dcg.is_dcg_rule clause then Dcg.translate clause else clause in
            let pred, _ = Database.add_clause db clause in
            note_defined (Pred.name pred, Pred.arity pred);
            incr count);
        go ()
  in
  go ();
  let defined = List.rev !defined in
  if !table_all then Table_all.apply db ~scope:defined;
  {
    clauses_loaded = !count;
    deferred_goals = List.rev !deferred;
    defined;
    table_all_requested = !table_all;
  }

let consult_string db source = consult_lexer db (Lexer.of_string source)

let consult_file db path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> consult_lexer db (Lexer.of_channel ic))
