open Xsb_term
open Xsb_parse

type module_info = { module_name : string; exports : (string * int) list }

type mutation =
  | Added_clause of { pred : Pred.t; clause : Pred.clause; front : bool }
  | Retracted_clause of { pred : Pred.t; clause : Pred.clause }
  | Removed_pred of { name : string; arity : int }
  | Tabled_pred of { name : string; arity : int }
  | Table_mode_pred of { name : string; arity : int; mode : Pred.table_mode }
  | Dynamic_pred of { name : string; arity : int }
  | Indexed_pred of {
      name : string;
      arity : int;
      spec : Pred.index_spec;
      size_hint : int option;
    }
  | Hilog_symbol of string
  | Module_decl of module_info
  | Op_decl of { priority : int; fixity : Ops.fixity; op_name : string }

type t = {
  preds : (string * int, Pred.t) Hashtbl.t;
  ops : Ops.t;
  hilog : (string, unit) Hashtbl.t;
  module_table : (string, module_info) Hashtbl.t;
  mutable current : string;
  mutable hooks : (mutation -> unit) list;
}

let create () =
  {
    preds = Hashtbl.create 64;
    ops = Ops.create ();
    hilog = Hashtbl.create 16;
    module_table = Hashtbl.create 8;
    current = "usermod";
    hooks = [];
  }

(* Subscribers run after the mutation is applied, in subscription
   order. A subscriber that raises (the journal's disk-failure path)
   aborts the remaining subscribers and propagates to the mutator — the
   in-memory change has already happened, so callers that must stay
   consistent with stable storage (the durable server) treat that
   exception as "stop accepting writes". *)
let on_mutation t f = t.hooks <- t.hooks @ [ f ]
let notify t m = List.iter (fun f -> f m) t.hooks

let ops t = t.ops
let find t name arity = Hashtbl.find_opt t.preds (name, arity)

let declare t ?kind name arity =
  match find t name arity with
  | Some p -> p
  | None ->
      let p = Pred.create ?kind name arity in
      Hashtbl.replace t.preds (name, arity) p;
      p

let preds t = Hashtbl.fold (fun _ p acc -> p :: acc) t.preds []

let remove_pred t name arity =
  let existed = Hashtbl.mem t.preds (name, arity) in
  Hashtbl.remove t.preds (name, arity);
  (* a HiLog declaration must not outlive the last predicate with that
     name: re-declaring p/N after abolishing it would otherwise still
     encode p(..) calls as apply(p, ..) against an empty database *)
  let name_in_use =
    Hashtbl.fold (fun (n, _) _ acc -> acc || String.equal n name) t.preds false
  in
  let hilog_dropped =
    if Hashtbl.mem t.hilog name && not name_in_use then begin
      Hashtbl.remove t.hilog name;
      true
    end
    else false
  in
  if existed || hilog_dropped then notify t (Removed_pred { name; arity })

let declare_hilog t name =
  if not (Hashtbl.mem t.hilog name) then begin
    Hashtbl.replace t.hilog name ();
    notify t (Hilog_symbol name)
  end

let is_hilog t name = Hashtbl.mem t.hilog name
let hilog_symbols t = Hashtbl.fold (fun name () acc -> name :: acc) t.hilog []

let encode t term = Xsb_hilog.Encode.encode_term ~is_hilog:(is_hilog t) term

let clause_parts term =
  match Term.deref term with
  | Term.Struct (":-", [| h; b |]) -> (h, b)
  | t -> (t, Term.Atom "true")

let head_key head =
  match Term.deref head with
  | Term.Atom name -> (name, 0)
  | Term.Struct (name, args) -> (name, Array.length args)
  | t -> Fmt.failwith "ill-formed clause head: %a" Term.pp t

let insert_clause t ?(front = false) pred ~head ~body =
  let stored = if front then Pred.asserta pred ~head ~body else Pred.assertz pred ~head ~body in
  notify t (Added_clause { pred; clause = stored; front });
  stored

let add_clause t ?(front = false) clause =
  let clause = encode t clause in
  let head, body = clause_parts clause in
  let name, arity = head_key head in
  let pred = declare t name arity in
  let stored = insert_clause t ~front pred ~head ~body in
  (pred, stored)

let retract_clause t pred clause =
  let before = Pred.clause_count pred in
  Pred.remove pred clause;
  if Pred.clause_count pred < before then notify t (Retracted_clause { pred; clause })

let set_tabled t name arity =
  let pred = declare t name arity in
  if not (Pred.tabled pred) then begin
    Pred.set_tabled pred true;
    notify t (Tabled_pred { name; arity })
  end

exception
  Table_mode_conflict of {
    name : string;
    arity : int;
    existing : Pred.table_mode;
    requested : Pred.table_mode;
  }

let set_table_mode t name arity mode =
  set_tabled t name arity;
  let pred = declare t name arity in
  let existing = Pred.table_mode pred in
  if existing <> mode then begin
    (* a contradictory redeclaration is an error, not last-write-wins:
       the mode pins the semantics of clauses already loaded under it *)
    if existing <> Pred.Variant then
      raise (Table_mode_conflict { name; arity; existing; requested = mode });
    Pred.set_table_mode pred mode;
    notify t (Table_mode_pred { name; arity; mode })
  end

let set_dynamic t name arity =
  match find t name arity with
  | Some pred when Pred.kind pred = Pred.Dynamic -> pred
  | Some pred ->
      Pred.set_kind pred Pred.Dynamic;
      notify t (Dynamic_pred { name; arity });
      pred
  | None ->
      let pred = declare t ~kind:Pred.Dynamic name arity in
      notify t (Dynamic_pred { name; arity });
      pred

let set_index t ?size_hint name arity spec =
  let pred = declare t name arity in
  Pred.set_index pred ?size_hint spec;
  notify t (Indexed_pred { name; arity; spec; size_hint })

let add_op t priority fixity op_name =
  Ops.add t.ops priority fixity op_name;
  notify t (Op_decl { priority; fixity; op_name })

let declare_module t name exports =
  Hashtbl.replace t.module_table name { module_name = name; exports };
  notify t (Module_decl { module_name = name; exports })

let current_module t = t.current
let set_current_module t name = t.current <- name
let module_info t name = Hashtbl.find_opt t.module_table name
let modules t = Hashtbl.fold (fun _ m acc -> m :: acc) t.module_table []
