(** Object files (paper §4.6): pre-compiled predicate images that load
    without parsing. "Since object files contain precompiled code,
    loading an object file is about 12x faster than loading through the
    formatted read and assert."

    Our object files store the clause store of a set of predicates in a
    canonical, pre-parsed binary form with a versioned header; loading
    rebuilds the predicates and their indexes directly. *)

exception Bad_object_file of string

val save : Database.t -> (string * int) list -> string -> unit
(** [save db preds path] writes the given predicates to [path]. *)

val save_all : Database.t -> string -> unit

val to_string : Database.t -> string
(** The whole database as in-memory image bytes (same format as
    {!save_all} writes). Used by the journal's snapshot compaction. *)

val load : Database.t -> string -> int
(** Load an object file into the database; returns the clause count.
    Existing predicates with the same name/arity are replaced. Raises
    {!Bad_object_file} — never [Failure] or [End_of_file] — on
    truncated or corrupt images. Decoding uses an explicit validated
    codec, not [Marshal], so arbitrary (even adversarial) bytes are
    safe to feed in: the worst outcome is the typed error. *)

val load_string : Database.t -> string -> int
(** {!load} from in-memory image bytes (the server's [CONSULT fmt=obj]
    path, where the bytes are untrusted network input). Same safety and
    typed-error guarantees. *)
