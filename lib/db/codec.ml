open Xsb_term

exception Decode_error of string

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let put_u32 b n = Buffer.add_int32_be b (Int32.of_int n)
let put_i64 b v = Buffer.add_int64_be b v

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_bool b v = put_u8 b (if v then 1 else 0)

let rec put_canon b = function
  | Canon.CVar n ->
      put_u8 b 0;
      put_u32 b n
  | Canon.CAtom a ->
      put_u8 b 1;
      put_string b a
  | Canon.CInt i ->
      put_u8 b 2;
      put_i64 b (Int64.of_int i)
  | Canon.CFloat x ->
      put_u8 b 3;
      put_i64 b (Int64.bits_of_float x)
  | Canon.CStruct (f, args) ->
      put_u8 b 4;
      put_string b f;
      put_u32 b (Array.length args);
      Array.iter (put_canon b) args

type cursor = { buf : string; mutable pos : int }

let cursor ?(pos = 0) buf = { buf; pos }

let decode_error msg = raise (Decode_error msg)

let need c n = if c.pos + n > String.length c.buf then decode_error "truncated image data"

let get_u8 c =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.buf c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let get_i64 c =
  need c 8;
  let v = String.get_int64_be c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let get_int c =
  let v = get_i64 c in
  if Int64.of_int (Int64.to_int v) <> v then decode_error "integer out of range";
  Int64.to_int v

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_bool c =
  match get_u8 c with 0 -> false | 1 -> true | _ -> decode_error "bad boolean"

(* a forged count cannot make us allocate past the payload: every
   encoded element is at least one byte *)
let get_count c =
  let n = get_u32 c in
  if n > String.length c.buf - c.pos then decode_error "implausible element count";
  n

(* iterative (explicit work list, mutual tail calls), so a forged
   deeply-nested term cannot blow the OCaml stack *)
let get_canon c =
  let rec build pending leaf =
    match pending with
    | [] -> leaf
    | (f, args, idx) :: rest ->
        args.(idx) <- leaf;
        if idx + 1 = Array.length args then build rest (Canon.CStruct (f, args))
        else fill ((f, args, idx + 1) :: rest)
  and fill pending =
    match get_u8 c with
    | 0 -> build pending (Canon.CVar (get_u32 c))
    | 1 -> build pending (Canon.CAtom (get_string c))
    | 2 -> build pending (Canon.CInt (get_int c))
    | 3 -> build pending (Canon.CFloat (Int64.float_of_bits (get_i64 c)))
    | 4 ->
        let f = get_string c in
        let n = get_count c in
        if n = 0 then build pending (Canon.CStruct (f, [||]))
        else fill ((f, Array.make n (Canon.CVar 0), 0) :: pending)
    | _ -> decode_error "bad term tag"
  in
  fill []

(* an explicit loop: [List.init]'s evaluation order is unspecified,
   which matters with a stateful cursor *)
let get_list c get =
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (get c :: acc) in
  go (get_count c) []
