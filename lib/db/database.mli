(** The in-memory deductive database: predicate registry, operator table,
    HiLog symbol declarations, and the light-weight module registry.

    Every state change goes through a wrapper here that fires the
    {!mutation} hook, so subscribers (the write-ahead journal, the SLG
    engine's stale-table invalidation) observe a complete mutation
    stream. *)

open Xsb_term
open Xsb_parse

type t

type module_info = { module_name : string; exports : (string * int) list }

(** {1 Mutation hook} *)

type mutation =
  | Added_clause of { pred : Pred.t; clause : Pred.clause; front : bool }
  | Retracted_clause of { pred : Pred.t; clause : Pred.clause }
  | Removed_pred of { name : string; arity : int }
  | Tabled_pred of { name : string; arity : int }
  | Table_mode_pred of { name : string; arity : int; mode : Pred.table_mode }
  | Dynamic_pred of { name : string; arity : int }
  | Indexed_pred of {
      name : string;
      arity : int;
      spec : Pred.index_spec;
      size_hint : int option;
    }
  | Hilog_symbol of string
  | Module_decl of module_info
  | Op_decl of { priority : int; fixity : Ops.fixity; op_name : string }

val on_mutation : t -> (mutation -> unit) -> unit
(** Subscribe. Subscribers run after the mutation is applied, in
    subscription order; an exception from a subscriber propagates to
    the mutator (the journal's disk-failure path relies on this). *)

val create : unit -> t
val ops : t -> Ops.t

(** {1 Predicates} *)

val find : t -> string -> int -> Pred.t option

val declare : t -> ?kind:Pred.kind -> string -> int -> Pred.t
(** Find or create. The kind is only used at creation. *)

val preds : t -> Pred.t list

val remove_pred : t -> string -> int -> unit
(** [abolish]: drop the predicate entirely. Also drops the HiLog
    declaration for [name] when no predicate of that name remains, so
    re-declaring the predicate behaves like a fresh one. Fires
    [Removed_pred] (subscribing engines drop that predicate's completed
    tables). *)

val set_tabled : t -> string -> int -> unit
(** Declare (if needed) and mark tabled; fires [Tabled_pred] once. *)

exception
  Table_mode_conflict of {
    name : string;
    arity : int;
    existing : Pred.table_mode;
    requested : Pred.table_mode;
  }
(** Raised by {!set_table_mode} on a contradictory redeclaration:
    semantics already pinned to one non-default mode cannot silently
    become another (last-write-wins would change the meaning of already
    loaded clauses). Re-declaring the {e same} mode stays idempotent, so
    journal replay and repeated consults are unaffected. *)

val set_table_mode : t -> string -> int -> Pred.table_mode -> unit
(** Declare (if needed), mark tabled, and set the tabling mode; fires
    [Tabled_pred] and then [Table_mode_pred] when either changes. Raises
    {!Table_mode_conflict} when the predicate already has a different
    non-default mode. *)

val set_dynamic : t -> string -> int -> Pred.t
(** Declare (if needed) and mark dynamic; fires [Dynamic_pred] when the
    kind actually changes. *)

val set_index : t -> ?size_hint:int -> string -> int -> Pred.index_spec -> unit

val add_op : t -> int -> Ops.fixity -> string -> unit
(** [op/3]: declare an operator in the database's table. *)

(** {1 HiLog symbols} *)

val declare_hilog : t -> string -> unit
val is_hilog : t -> string -> bool

val hilog_symbols : t -> string list
(** Every declared HiLog symbol, in no particular order. *)

val encode : t -> Term.t -> Term.t
(** HiLog-encode a term under the database's declarations. *)

(** {1 Clause interface} *)

val add_clause : t -> ?front:bool -> Term.t -> Pred.t * Pred.clause
(** Add a clause term ([H :- B] or a fact). The term is HiLog-encoded
    first. Raises [Failure] on ill-formed heads. *)

val insert_clause : t -> ?front:bool -> Pred.t -> head:Term.t -> body:Term.t -> Pred.clause
(** Insert an already-encoded, already-split clause into [pred]. The
    hook-firing version of [Pred.assertz]/[asserta] — every clause
    insertion (loader, builtins, bulk loaders, replay) goes through
    here. *)

val retract_clause : t -> Pred.t -> Pred.clause -> unit
(** Retract one clause by identity; fires [Retracted_clause] only if
    the clause was live. *)

val clause_parts : Term.t -> (Term.t * Term.t)
(** Split a clause term into head and body ([true] for facts). *)

val head_key : Term.t -> string * int
(** Predicate name/arity of a (dereferenced, encoded) head. Raises
    [Failure] for variables or numbers. *)

(** {1 Modules (term-based, §4.2)} *)

val declare_module : t -> string -> (string * int) list -> unit
val current_module : t -> string
val set_current_module : t -> string -> unit
val module_info : t -> string -> module_info option
val modules : t -> module_info list
