open Xsb_term

let rec body_calls body =
  match Term.deref body with
  | Term.Struct ((("," | ";" | "->")), [| l; r |]) -> body_calls l @ body_calls r
  | Term.Struct (("\\+" | "tnot" | "e_tnot" | "not" | "call"), [| g |]) -> body_calls g
  | Term.Struct (("findall" | "bagof" | "setof" | "tfindall"), [| _; g; _ |]) -> body_calls g
  | Term.Atom name -> [ (name, 0) ]
  | Term.Struct (name, args) -> [ (name, Array.length args) ]
  | Term.Int _ | Term.Float _ | Term.Var _ -> []

(* Tarjan's strongly-connected components over the call graph. *)
let cyclic_preds db ~scope =
  let in_scope = Hashtbl.create 16 in
  List.iter (fun key -> Hashtbl.replace in_scope key ()) scope;
  let succs key =
    match Database.find db (fst key) (snd key) with
    | None -> []
    | Some pred ->
        List.concat_map (fun c -> body_calls c.Pred.body) (Pred.clauses pred)
        |> List.filter (Hashtbl.mem in_scope)
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    let self_loop = ref false in
    List.iter
      (fun w ->
        if w = v then self_loop := true;
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* v is the root of an SCC; pop it *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      let scc = pop [] in
      match scc with
      | [ single ] -> if !self_loop then result := single :: !result
      | _ :: _ :: _ -> result := scc @ !result
      | [] -> ()
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) scope;
  !result

let apply db ~scope =
  List.iter
    (fun (name, arity) ->
      match Database.find db name arity with
      | Some _ -> Database.set_tabled db name arity
      | None -> ())
    (cyclic_preds db ~scope)
