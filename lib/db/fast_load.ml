open Xsb_term

exception Syntax of string * int

(* A hand-rolled scanner over the whole buffer: no operators, no
   variables, no comments inside facts (line comments between facts are
   allowed), which is what makes it fast. *)
type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Syntax (msg, cur.pos))

let at_end cur = cur.pos >= String.length cur.src
let peek cur = cur.src.[cur.pos]

let skip_layout cur =
  let n = String.length cur.src in
  let rec go () =
    if cur.pos < n then
      match cur.src.[cur.pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          cur.pos <- cur.pos + 1;
          go ()
      | '%' ->
          while cur.pos < n && cur.src.[cur.pos] <> '\n' do
            cur.pos <- cur.pos + 1
          done;
          go ()
      | _ -> ()
  in
  go ()

let is_lower c = c >= 'a' && c <= 'z'
let is_digit c = c >= '0' && c <= '9'
let is_alnum c =
  is_lower c || is_digit c || (c >= 'A' && c <= 'Z') || c = '_'

let scan_while cur pred =
  let start = cur.pos in
  let n = String.length cur.src in
  while cur.pos < n && pred cur.src.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  String.sub cur.src start (cur.pos - start)

let scan_quoted cur =
  cur.pos <- cur.pos + 1;
  let buf = Buffer.create 16 in
  let n = String.length cur.src in
  let rec go () =
    if cur.pos >= n then fail cur "unterminated quoted atom"
    else
      match cur.src.[cur.pos] with
      | '\'' ->
          if cur.pos + 1 < n && cur.src.[cur.pos + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            cur.pos <- cur.pos + 2;
            go ()
          end
          else cur.pos <- cur.pos + 1
      | '\\' when cur.pos + 1 < n ->
          (let c =
             match cur.src.[cur.pos + 1] with
             | 'n' -> '\n'
             | 't' -> '\t'
             | c -> c
           in
           Buffer.add_char buf c);
          cur.pos <- cur.pos + 2;
          go ()
      | c ->
          Buffer.add_char buf c;
          cur.pos <- cur.pos + 1;
          go ()
  in
  go ();
  Buffer.contents buf

let rec scan_term cur =
  skip_layout cur;
  if at_end cur then fail cur "unexpected end of input"
  else
    match peek cur with
    | '\'' ->
        let name = scan_quoted cur in
        maybe_args cur name
    | '[' ->
        cur.pos <- cur.pos + 1;
        scan_list cur
    | c when is_lower c ->
        let name = scan_while cur is_alnum in
        maybe_args cur name
    | c when is_digit c || c = '-' -> scan_number cur
    | c -> fail cur (Printf.sprintf "unexpected character %C" c)

and scan_number cur =
  let start = cur.pos in
  if peek cur = '-' then cur.pos <- cur.pos + 1;
  let _ = scan_while cur is_digit in
  let is_float =
    (not (at_end cur))
    && peek cur = '.'
    && cur.pos + 1 < String.length cur.src
    && is_digit cur.src.[cur.pos + 1]
  in
  if is_float then begin
    cur.pos <- cur.pos + 1;
    let _ = scan_while cur is_digit in
    Term.Float (float_of_string (String.sub cur.src start (cur.pos - start)))
  end
  else
    match int_of_string_opt (String.sub cur.src start (cur.pos - start)) with
    | Some i -> Term.Int i
    | None -> fail cur "bad number"

and maybe_args cur name =
  if (not (at_end cur)) && peek cur = '(' then begin
    cur.pos <- cur.pos + 1;
    let args = scan_args cur [] in
    Term.struct_ name (Array.of_list args)
  end
  else Term.Atom name

and scan_args cur acc =
  let arg = scan_term cur in
  skip_layout cur;
  if at_end cur then fail cur "unterminated argument list"
  else
    match peek cur with
    | ',' ->
        cur.pos <- cur.pos + 1;
        scan_args cur (arg :: acc)
    | ')' ->
        cur.pos <- cur.pos + 1;
        List.rev (arg :: acc)
    | c -> fail cur (Printf.sprintf "expected , or ) but found %C" c)

and scan_list cur =
  skip_layout cur;
  if at_end cur then fail cur "unterminated list"
  else if peek cur = ']' then begin
    cur.pos <- cur.pos + 1;
    Term.nil
  end
  else
    let rec elements acc =
      let e = scan_term cur in
      skip_layout cur;
      if at_end cur then fail cur "unterminated list"
      else
        match peek cur with
        | ',' ->
            cur.pos <- cur.pos + 1;
            skip_layout cur;
            elements (e :: acc)
        | ']' ->
            cur.pos <- cur.pos + 1;
            List.fold_left (fun tl h -> Term.cons h tl) Term.nil (e :: acc)
        | c -> fail cur (Printf.sprintf "expected , or ] but found %C" c)
    in
    elements []

let string_ db src =
  let cur = { src; pos = 0 } in
  let count = ref 0 in
  let rec go () =
    skip_layout cur;
    if not (at_end cur) then begin
      let start = cur.pos in
      let fact = scan_term cur in
      skip_layout cur;
      if at_end cur || peek cur <> '.' then fail cur "expected '.' after fact"
      else begin
        cur.pos <- cur.pos + 1;
        (* an ill-formed head (a bare number, a list) is a data error of
           this row, not a [Failure] for the caller *)
        (match fact with
        | Term.Struct (".", _) | Term.Atom "[]" ->
            raise (Syntax ("a list cannot be a fact", start))
        | _ -> ());
        (try ignore (Database.add_clause db fact)
         with Failure msg -> raise (Syntax (msg, start)));
        incr count;
        go ()
      end
    end
  in
  go ();
  !count

let file db path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      string_ db src)
