open Xsb_term

exception Bad_object_file of string

(* version 03 replaces [Marshal] with an explicit binary codec (now
   shared with the write-ahead journal, see [Codec]). The digest in the
   header detects accidental corruption, but it is computed from the
   payload itself, so it proves integrity, not origin: anyone can forge
   a "valid" image (the server accepts them over CONSULT fmt=obj).
   Unmarshalling such bytes could crash the runtime or build
   type-confused values; the explicit decoder instead validates every
   tag, length and count, so untrusted image bytes can at worst produce
   a typed [Bad_object_file]. *)
let magic = "XSBOBJ03"

(* The on-disk image: everything is canonical (immutable, no variable
   cells), so the encoding is stable. *)
type pred_image = {
  p_name : string;
  p_arity : int;
  p_dynamic : bool;
  p_tabled : bool;
  p_index : [ `Fields of int list list | `First_string | `Disc_tree ];
  p_clauses : Canon.t list;  (* each is ':-'(Head, Body) *)
}

type image = pred_image list

let image_of_pred pred =
  {
    p_name = Pred.name pred;
    p_arity = Pred.arity pred;
    p_dynamic = Pred.kind pred = Pred.Dynamic;
    p_tabled = Pred.tabled pred;
    p_index =
      (match Pred.index_spec pred with
      | Pred.Fields combos -> `Fields combos
      | Pred.First_string_index -> `First_string
      | Pred.Disc_tree_index -> `Disc_tree);
    p_clauses =
      List.map
        (fun c -> Canon.of_term (Term.Struct (":-", [| c.Pred.head; c.Pred.body |])))
        (Pred.clauses pred);
  }

let put_images b images =
  Codec.put_u32 b (List.length images);
  List.iter
    (fun img ->
      Codec.put_string b img.p_name;
      Codec.put_u32 b img.p_arity;
      Codec.put_bool b img.p_dynamic;
      Codec.put_bool b img.p_tabled;
      (match img.p_index with
      | `Fields combos ->
          Codec.put_u8 b 0;
          Codec.put_u32 b (List.length combos);
          List.iter
            (fun combo ->
              Codec.put_u32 b (List.length combo);
              List.iter (Codec.put_u32 b) combo)
            combos
      | `First_string -> Codec.put_u8 b 1
      | `Disc_tree -> Codec.put_u8 b 2);
      Codec.put_u32 b (List.length img.p_clauses);
      List.iter (Codec.put_canon b) img.p_clauses)
    images

let get_images c : image =
  Codec.get_list c (fun c ->
      let p_name = Codec.get_string c in
      let p_arity = Codec.get_u32 c in
      let p_dynamic = Codec.get_bool c in
      let p_tabled = Codec.get_bool c in
      let p_index =
        match Codec.get_u8 c with
        | 0 -> `Fields (Codec.get_list c (fun c -> Codec.get_list c Codec.get_u32))
        | 1 -> `First_string
        | 2 -> `Disc_tree
        | _ -> Codec.decode_error "bad index tag"
      in
      let p_clauses = Codec.get_list c Codec.get_canon in
      { p_name; p_arity; p_dynamic; p_tabled; p_index; p_clauses })

let image_bytes db keys =
  let images =
    List.filter_map
      (fun (name, arity) -> Option.map image_of_pred (Database.find db name arity))
      keys
  in
  let payload =
    let b = Buffer.create 4096 in
    put_images b images;
    Buffer.contents b
  in
  let b = Buffer.create (String.length payload + 32) in
  Buffer.add_string b magic;
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

let to_string db =
  let keys = List.map (fun p -> (Pred.name p, Pred.arity p)) (Database.preds db) in
  image_bytes db keys

let save db keys path =
  let bytes = image_bytes db keys in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc bytes)

let save_all db path =
  let keys = List.map (fun p -> (Pred.name p, Pred.arity p)) (Database.preds db) in
  save db keys path

(* 256 MiB: far above any real image, far below an allocation that a
   corrupt length field could use to take the process down *)
let max_payload = 256 * 1024 * 1024

let load_string db image_bytes =
  let fail msg = raise (Bad_object_file msg) in
  let total = String.length image_bytes in
  let magic_len = String.length magic in
  if total < magic_len then fail "truncated header";
  if String.sub image_bytes 0 magic_len <> magic then fail "bad magic header";
  if total < magic_len + 4 + 16 then fail "truncated header";
  let len =
    let b i = Char.code image_bytes.[magic_len + i] in
    (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  in
  if len < 0 || len > max_payload then fail "implausible payload length";
  if total < magic_len + 4 + 16 + len then fail "truncated payload";
  let digest = String.sub image_bytes (magic_len + 4) 16 in
  let payload = String.sub image_bytes (magic_len + 4 + 16) len in
  if not (Digest.equal (Digest.string payload) digest) then fail "payload digest mismatch";
  let images : image =
    (* the digest above only proves the payload matches its own
       checksum — it can be forged, so the decoder must (and does)
       validate the structure itself *)
    try
      let c = Codec.cursor payload in
      let images = get_images c in
      if c.Codec.pos <> String.length payload then fail "trailing bytes after image";
      images
    with Codec.Decode_error msg -> fail msg
  in
  let count = ref 0 in
  List.iter
    (fun img ->
      Database.remove_pred db img.p_name img.p_arity;
      let kind = if img.p_dynamic then Pred.Dynamic else Pred.Static in
      let pred = Database.declare db ~kind img.p_name img.p_arity in
      if img.p_tabled then Database.set_tabled db img.p_name img.p_arity;
      (match img.p_index with
      | `Fields combos -> Database.set_index db img.p_name img.p_arity (Pred.Fields combos)
      | `First_string -> Database.set_index db img.p_name img.p_arity Pred.First_string_index
      | `Disc_tree -> Database.set_index db img.p_name img.p_arity Pred.Disc_tree_index);
      List.iter
        (fun canon ->
          match Term.deref (Canon.to_term canon) with
          | Term.Struct (":-", [| head; body |]) ->
              ignore (Database.insert_clause db pred ~head ~body);
              incr count
          | _ -> raise (Bad_object_file "corrupt clause"))
        img.p_clauses)
    images;
  !count

let load db path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len > max_payload + 1024 then raise (Bad_object_file "implausible file size");
      let image_bytes =
        try really_input_string ic len
        with End_of_file -> raise (Bad_object_file "truncated file")
      in
      load_string db image_bytes)
