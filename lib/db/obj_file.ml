open Xsb_term

exception Bad_object_file of string

(* version 03 replaces [Marshal] with an explicit binary codec. The
   digest in the header detects accidental corruption, but it is
   computed from the payload itself, so it proves integrity, not
   origin: anyone can forge a "valid" image (the server accepts them
   over CONSULT fmt=obj). Unmarshalling such bytes could crash the
   runtime or build type-confused values; the explicit decoder instead
   validates every tag, length and count, so untrusted image bytes can
   at worst produce a typed [Bad_object_file]. *)
let magic = "XSBOBJ03"

(* The on-disk image: everything is canonical (immutable, no variable
   cells), so the encoding is stable. *)
type pred_image = {
  p_name : string;
  p_arity : int;
  p_dynamic : bool;
  p_tabled : bool;
  p_index : [ `Fields of int list list | `First_string | `Disc_tree ];
  p_clauses : Canon.t list;  (* each is ':-'(Head, Body) *)
}

type image = pred_image list

let image_of_pred pred =
  {
    p_name = Pred.name pred;
    p_arity = Pred.arity pred;
    p_dynamic = Pred.kind pred = Pred.Dynamic;
    p_tabled = Pred.tabled pred;
    p_index =
      (match Pred.index_spec pred with
      | Pred.Fields combos -> `Fields combos
      | Pred.First_string_index -> `First_string
      | Pred.Disc_tree_index -> `Disc_tree);
    p_clauses =
      List.map
        (fun c -> Canon.of_term (Term.Struct (":-", [| c.Pred.head; c.Pred.body |])))
        (Pred.clauses pred);
  }

(* --- the payload codec ---

   Multi-byte integers are big-endian; strings are length-prefixed;
   every variant carries a tag byte. Nothing here is clever — the point
   is that decoding is a total function from bytes to
   [image-or-Bad_object_file], with no [Marshal] and no [Obj]. *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let put_u32 b n = Buffer.add_int32_be b (Int32.of_int n)
let put_i64 b v = Buffer.add_int64_be b v

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_bool b v = put_u8 b (if v then 1 else 0)

let rec put_canon b = function
  | Canon.CVar n ->
      put_u8 b 0;
      put_u32 b n
  | Canon.CAtom a ->
      put_u8 b 1;
      put_string b a
  | Canon.CInt i ->
      put_u8 b 2;
      put_i64 b (Int64.of_int i)
  | Canon.CFloat x ->
      put_u8 b 3;
      put_i64 b (Int64.bits_of_float x)
  | Canon.CStruct (f, args) ->
      put_u8 b 4;
      put_string b f;
      put_u32 b (Array.length args);
      Array.iter (put_canon b) args

let put_images b images =
  put_u32 b (List.length images);
  List.iter
    (fun img ->
      put_string b img.p_name;
      put_u32 b img.p_arity;
      put_bool b img.p_dynamic;
      put_bool b img.p_tabled;
      (match img.p_index with
      | `Fields combos ->
          put_u8 b 0;
          put_u32 b (List.length combos);
          List.iter
            (fun combo ->
              put_u32 b (List.length combo);
              List.iter (put_u32 b) combo)
            combos
      | `First_string -> put_u8 b 1
      | `Disc_tree -> put_u8 b 2);
      put_u32 b (List.length img.p_clauses);
      List.iter (put_canon b) img.p_clauses)
    images

type cursor = { buf : string; mutable pos : int }

let decode_error msg = raise (Bad_object_file msg)

let need c n = if c.pos + n > String.length c.buf then decode_error "truncated image data"

let get_u8 c =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.buf c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let get_i64 c =
  need c 8;
  let v = String.get_int64_be c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let get_int c =
  let v = get_i64 c in
  if Int64.of_int (Int64.to_int v) <> v then decode_error "integer out of range";
  Int64.to_int v

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_bool c =
  match get_u8 c with 0 -> false | 1 -> true | _ -> decode_error "bad boolean"

(* a forged count cannot make us allocate past the payload: every
   encoded element is at least one byte *)
let get_count c =
  let n = get_u32 c in
  if n > String.length c.buf - c.pos then decode_error "implausible element count";
  n

(* iterative (explicit work list, mutual tail calls), so a forged
   deeply-nested term cannot blow the OCaml stack *)
let get_canon c =
  let rec build pending leaf =
    match pending with
    | [] -> leaf
    | (f, args, idx) :: rest ->
        args.(idx) <- leaf;
        if idx + 1 = Array.length args then build rest (Canon.CStruct (f, args))
        else fill ((f, args, idx + 1) :: rest)
  and fill pending =
    match get_u8 c with
    | 0 -> build pending (Canon.CVar (get_u32 c))
    | 1 -> build pending (Canon.CAtom (get_string c))
    | 2 -> build pending (Canon.CInt (get_int c))
    | 3 -> build pending (Canon.CFloat (Int64.float_of_bits (get_i64 c)))
    | 4 ->
        let f = get_string c in
        let n = get_count c in
        if n = 0 then build pending (Canon.CStruct (f, [||]))
        else fill ((f, Array.make n (Canon.CVar 0), 0) :: pending)
    | _ -> decode_error "bad term tag"
  in
  fill []

(* an explicit loop: [List.init]'s evaluation order is unspecified,
   which matters with a stateful cursor *)
let get_list c get =
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (get c :: acc) in
  go (get_count c) []

let get_images c : image =
  get_list c (fun c ->
      let p_name = get_string c in
      let p_arity = get_u32 c in
      let p_dynamic = get_bool c in
      let p_tabled = get_bool c in
      let p_index =
        match get_u8 c with
        | 0 -> `Fields (get_list c (fun c -> get_list c get_u32))
        | 1 -> `First_string
        | 2 -> `Disc_tree
        | _ -> decode_error "bad index tag"
      in
      let p_clauses = get_list c get_canon in
      { p_name; p_arity; p_dynamic; p_tabled; p_index; p_clauses })

let save db keys path =
  let images =
    List.filter_map
      (fun (name, arity) -> Option.map image_of_pred (Database.find db name arity))
      keys
  in
  let payload =
    let b = Buffer.create 4096 in
    put_images b images;
    Buffer.contents b
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc (String.length payload);
      output_string oc (Digest.string payload);
      output_string oc payload)

let save_all db path =
  let keys = List.map (fun p -> (Pred.name p, Pred.arity p)) (Database.preds db) in
  save db keys path

(* 256 MiB: far above any real image, far below an allocation that a
   corrupt length field could use to take the process down *)
let max_payload = 256 * 1024 * 1024

let load_string db image_bytes =
  let fail msg = raise (Bad_object_file msg) in
  let total = String.length image_bytes in
  let magic_len = String.length magic in
  if total < magic_len then fail "truncated header";
  if String.sub image_bytes 0 magic_len <> magic then fail "bad magic header";
  if total < magic_len + 4 + 16 then fail "truncated header";
  let len =
    let b i = Char.code image_bytes.[magic_len + i] in
    (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  in
  if len < 0 || len > max_payload then fail "implausible payload length";
  if total < magic_len + 4 + 16 + len then fail "truncated payload";
  let digest = String.sub image_bytes (magic_len + 4) 16 in
  let payload = String.sub image_bytes (magic_len + 4 + 16) len in
  if not (Digest.equal (Digest.string payload) digest) then fail "payload digest mismatch";
  let images : image =
    (* the digest above only proves the payload matches its own
       checksum — it can be forged, so the decoder must (and does)
       validate the structure itself *)
    let c = { buf = payload; pos = 0 } in
    let images = get_images c in
    if c.pos <> String.length payload then fail "trailing bytes after image";
    images
  in
  let count = ref 0 in
  List.iter
    (fun img ->
      Database.remove_pred db img.p_name img.p_arity;
      let kind = if img.p_dynamic then Pred.Dynamic else Pred.Static in
      let pred = Database.declare db ~kind img.p_name img.p_arity in
      Pred.set_tabled pred img.p_tabled;
      (match img.p_index with
      | `Fields combos -> Pred.set_index pred (Pred.Fields combos)
      | `First_string -> Pred.set_index pred Pred.First_string_index
      | `Disc_tree -> Pred.set_index pred Pred.Disc_tree_index);
      List.iter
        (fun canon ->
          match Term.deref (Canon.to_term canon) with
          | Term.Struct (":-", [| head; body |]) ->
              ignore (Pred.assertz pred ~head ~body);
              incr count
          | _ -> raise (Bad_object_file "corrupt clause"))
        img.p_clauses)
    images;
  !count

let load db path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len > max_payload + 1024 then raise (Bad_object_file "implausible file size");
      let image_bytes =
        try really_input_string ic len
        with End_of_file -> raise (Bad_object_file "truncated file")
      in
      load_string db image_bytes)
