open Xsb_term

exception Bad_object_file of string

(* version 02 adds a payload length and digest after the magic, so a
   truncated or bit-flipped image is detected before [Marshal] ever
   sees it (unmarshalling attacker-controlled bytes can crash the
   runtime; a digest-checked payload can only be one we wrote) *)
let magic = "XSBOBJ02"

(* The on-disk image: everything is canonical (immutable, no variable
   cells), so marshalling is stable. *)
type pred_image = {
  p_name : string;
  p_arity : int;
  p_dynamic : bool;
  p_tabled : bool;
  p_index : [ `Fields of int list list | `First_string | `Disc_tree ];
  p_clauses : Canon.t list;  (* each is ':-'(Head, Body) *)
}

type image = pred_image list

let image_of_pred pred =
  {
    p_name = Pred.name pred;
    p_arity = Pred.arity pred;
    p_dynamic = Pred.kind pred = Pred.Dynamic;
    p_tabled = Pred.tabled pred;
    p_index =
      (match Pred.index_spec pred with
      | Pred.Fields combos -> `Fields combos
      | Pred.First_string_index -> `First_string
      | Pred.Disc_tree_index -> `Disc_tree);
    p_clauses =
      List.map
        (fun c -> Canon.of_term (Term.Struct (":-", [| c.Pred.head; c.Pred.body |])))
        (Pred.clauses pred);
  }

let save db keys path =
  let images =
    List.filter_map
      (fun (name, arity) -> Option.map image_of_pred (Database.find db name arity))
      keys
  in
  let payload = Marshal.to_string (images : image) [] in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc (String.length payload);
      output_string oc (Digest.string payload);
      output_string oc payload)

let save_all db path =
  let keys = List.map (fun p -> (Pred.name p, Pred.arity p)) (Database.preds db) in
  save db keys path

(* 256 MiB: far above any real image, far below an allocation that a
   corrupt length field could use to take the process down *)
let max_payload = 256 * 1024 * 1024

let load_string db image_bytes =
  let fail msg = raise (Bad_object_file msg) in
  let total = String.length image_bytes in
  let magic_len = String.length magic in
  if total < magic_len then fail "truncated header";
  if String.sub image_bytes 0 magic_len <> magic then fail "bad magic header";
  if total < magic_len + 4 + 16 then fail "truncated header";
  let len =
    let b i = Char.code image_bytes.[magic_len + i] in
    (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  in
  if len < 0 || len > max_payload then fail "implausible payload length";
  if total < magic_len + 4 + 16 + len then fail "truncated payload";
  let digest = String.sub image_bytes (magic_len + 4) 16 in
  let payload = String.sub image_bytes (magic_len + 4 + 16) len in
  if not (Digest.equal (Digest.string payload) digest) then fail "payload digest mismatch";
  let images : image =
    (* digest-checked, so this can only be bytes [save] produced; the
       handler still turns an unmarshalling failure into a typed error *)
    try Marshal.from_string payload 0
    with Failure msg -> fail ("corrupt image: " ^ msg)
  in
  let count = ref 0 in
  List.iter
    (fun img ->
      Database.remove_pred db img.p_name img.p_arity;
      let kind = if img.p_dynamic then Pred.Dynamic else Pred.Static in
      let pred = Database.declare db ~kind img.p_name img.p_arity in
      Pred.set_tabled pred img.p_tabled;
      (match img.p_index with
      | `Fields combos -> Pred.set_index pred (Pred.Fields combos)
      | `First_string -> Pred.set_index pred Pred.First_string_index
      | `Disc_tree -> Pred.set_index pred Pred.Disc_tree_index);
      List.iter
        (fun canon ->
          match Term.deref (Canon.to_term canon) with
          | Term.Struct (":-", [| head; body |]) ->
              ignore (Pred.assertz pred ~head ~body);
              incr count
          | _ -> raise (Bad_object_file "corrupt clause"))
        img.p_clauses)
    images;
  !count

let load db path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len > max_payload + 1024 then raise (Bad_object_file "implausible file size");
      let image_bytes =
        try really_input_string ic len
        with End_of_file -> raise (Bad_object_file "truncated file")
      in
      load_string db image_bytes)
