(** The validated binary codec shared by the object-file format and the
    write-ahead journal.

    Multi-byte integers are big-endian; strings are length-prefixed;
    every variant carries a tag byte. Decoding is a total function from
    bytes to [value-or-Decode_error]: every tag, length and count is
    checked, and no [Marshal] or [Obj] is involved, so untrusted bytes
    can at worst produce a typed error. *)

open Xsb_term

exception Decode_error of string

(** {1 Encoding} *)

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_i64 : Buffer.t -> int64 -> unit
val put_string : Buffer.t -> string -> unit
val put_bool : Buffer.t -> bool -> unit
val put_canon : Buffer.t -> Canon.t -> unit

(** {1 Decoding} *)

type cursor = { buf : string; mutable pos : int }

val cursor : ?pos:int -> string -> cursor

val decode_error : string -> 'a
(** Raise {!Decode_error}. *)

val need : cursor -> int -> unit
(** Fail unless [n] more bytes are available. *)

val get_u8 : cursor -> int
val get_u32 : cursor -> int

val get_i64 : cursor -> int64

val get_int : cursor -> int
(** An [i64] that must fit in an OCaml [int]. *)

val get_string : cursor -> string
val get_bool : cursor -> bool

val get_count : cursor -> int
(** A [u32] element count, rejected when it exceeds the remaining
    bytes (every encoded element is at least one byte), so a forged
    count cannot drive a huge allocation. *)

val get_canon : cursor -> Canon.t
(** Iterative (explicit work list), so a forged deeply-nested term
    cannot blow the OCaml stack. *)

val get_list : cursor -> (cursor -> 'a) -> 'a list
