(** One predicate: clause storage plus its indexes.

    XSB distinguishes static predicates (compiled, fixed) from dynamic
    ones (modifiable one tuple at a time; the normal representation of
    the extensional database). Both support hash indexing on argument
    combinations; static predicates additionally support first-string
    indexing (paper §4.2, §4.5). *)

open Xsb_term
(* for Arg_hash, First_string *)

open Xsb_index

type kind = Static | Dynamic

type table_mode =
  | Variant  (** plain variant tabling (the default) *)
  | Incremental
      (** completed tables record the dynamic predicates and tables they
          read; a mutation invalidates — or, for pure additions to
          definite programs, repairs — only the dependent tables *)
  | Subsumptive of Answer_store.Subsumption.op
      (** answers sharing key columns (all arguments but the last) fold
          into a single answer under the lattice operation *)
  | Subsumption
      (** call-subsumption tabling: a call whose subgoal is an instance
          of an existing table's subgoal becomes a {e subsumed consumer}
          of that table — no new generator — with answers filtered
          through unification with the more specific call *)

val table_mode_to_string : table_mode -> string

type clause = {
  id : int;  (** position key: clauses are returned in increasing id order *)
  head : Term.t;
  body : Term.t;  (** conjunction term; [true] for facts *)
}

type index_spec =
  | Fields of int list list
      (** [:- index(p/5,[1,2,3+5])]: one hash index per element, tried in
          order; each element indexes on up to three fields. *)
  | First_string_index  (** trie indexing on the pre-order head string *)
  | Disc_tree_index
      (** full discrimination tree: first-string indexing "across
          variables" (§4.5's in-development variant) *)

type t

val create : ?kind:kind -> string -> int -> t
val name : t -> string
val arity : t -> int
val kind : t -> kind
val set_kind : t -> kind -> unit
val tabled : t -> bool
val set_tabled : t -> bool -> unit
val table_mode : t -> table_mode
val set_table_mode : t -> table_mode -> unit

val set_index : t -> ?size_hint:int -> index_spec -> unit
(** Declare the indexing for this predicate; existing clauses are
    re-indexed. The default is a hash index on the first argument. *)

val index_spec : t -> index_spec

val assertz : t -> head:Term.t -> body:Term.t -> clause
val asserta : t -> head:Term.t -> body:Term.t -> clause

val remove : t -> clause -> unit
(** Retract one clause by identity. *)

val remove_all : t -> unit
(** Predicate-level retraction: drop every clause. *)

val clause_count : t -> int

val clauses : t -> clause list
(** All live clauses in order. *)

val lookup : t -> Term.t array -> clause list
(** Candidate clauses for a call with the given (possibly unbound)
    arguments, using the best applicable index; a superset of the
    unifiable clauses, in clause order. *)
