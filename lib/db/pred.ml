open Xsb_term
open Xsb_index

type kind = Static | Dynamic

(* How a tabled predicate's tables behave across database mutations and
   duplicate-key answers:
   - [Variant]: plain variant tabling (the default).
   - [Incremental]: completed tables record what they read; a mutation
     of a read predicate invalidates (or, for pure additions to definite
     programs, repairs) only the dependent tables.
   - [Subsumptive op]: answers sharing key columns (all but the last
     argument) fold into one answer under the lattice operation.
   - [Subsumption]: call-subsumption tabling — a call whose subgoal is
     an instance of an existing table's subgoal consumes that table's
     answers (filtered by unification) instead of creating a new
     generator. *)
type table_mode =
  | Variant
  | Incremental
  | Subsumptive of Answer_store.Subsumption.op
  | Subsumption

let table_mode_to_string = function
  | Variant -> "variant"
  | Incremental -> "incremental"
  | Subsumptive op ->
      Printf.sprintf "subsumptive(%s)" (Answer_store.Subsumption.op_to_string op)
  | Subsumption -> "subsumption"

type clause = { id : int; head : Term.t; body : Term.t }

type index_spec = Fields of int list list | First_string_index | Disc_tree_index

type t = {
  name : string;
  arity : int;
  mutable kind : kind;
  mutable tabled : bool;
  mutable table_mode : table_mode;
  store : clause option Vec.t;
  mutable nlive : int;
  mutable spec : index_spec;
  mutable hash_indexes : Arg_hash.t list;
  mutable first_string : First_string.t option;
  mutable disc_tree : Disc_tree.t option;
  mutable front_id : int;  (* next id for asserta (decreasing) *)
  mutable back_id : int;  (* next id for assertz (increasing) *)
  by_id : (int, clause) Hashtbl.t;
}

let create ?(kind = Static) name arity =
  {
    name;
    arity;
    kind;
    tabled = false;
    table_mode = Variant;
    store = Vec.create ();
    nlive = 0;
    spec = Fields [ [ 1 ] ];
    hash_indexes = (if arity >= 1 then [ Arg_hash.create [ 1 ] ] else []);
    first_string = None;
    disc_tree = None;
    front_id = -1;
    back_id = 0;
    by_id = Hashtbl.create 64;
  }

let name t = t.name
let arity t = t.arity
let kind t = t.kind
let set_kind t kind = t.kind <- kind
let tabled t = t.tabled
let set_tabled t flag = t.tabled <- flag
let table_mode t = t.table_mode
let set_table_mode t mode = t.table_mode <- mode
let index_spec t = t.spec
let clause_count t = t.nlive

let head_args clause =
  match Term.deref clause.head with
  | Term.Struct (_, args) -> args
  | Term.Atom _ | Term.Int _ | Term.Float _ | Term.Var _ -> [||]

let index_insert t clause =
  let args = head_args clause in
  List.iter (fun idx -> Arg_hash.insert idx clause.id args) t.hash_indexes;
  (match t.first_string with
  | Some trie -> First_string.insert trie clause.id args
  | None -> ());
  match t.disc_tree with
  | Some tree -> Disc_tree.insert tree clause.id args
  | None -> ()

let live_clauses t =
  Vec.fold_left (fun acc slot -> match slot with Some c -> c :: acc | None -> acc) [] t.store
  |> List.sort (fun a b -> Int.compare a.id b.id)

let rebuild_indexes t ?size_hint () =
  (match t.spec with
  | Fields combos ->
      t.hash_indexes <-
        List.filter_map
          (fun combo ->
            if List.for_all (fun f -> f >= 1 && f <= t.arity) combo && combo <> [] then
              Some (Arg_hash.create ?size_hint combo)
            else None)
          combos;
      t.first_string <- None;
      t.disc_tree <- None
  | First_string_index ->
      t.hash_indexes <- [];
      t.first_string <- Some (First_string.create ());
      t.disc_tree <- None
  | Disc_tree_index ->
      t.hash_indexes <- [];
      t.first_string <- None;
      t.disc_tree <- Some (Disc_tree.create ()));
  List.iter (fun c -> index_insert t c) (live_clauses t)

let set_index t ?size_hint spec =
  t.spec <- spec;
  rebuild_indexes t ?size_hint ()

let push t clause =
  Vec.push t.store (Some clause);
  Hashtbl.replace t.by_id clause.id clause;
  t.nlive <- t.nlive + 1;
  index_insert t clause;
  clause

let assertz t ~head ~body =
  let id = t.back_id in
  t.back_id <- id + 1;
  push t { id; head; body }

let asserta t ~head ~body =
  let id = t.front_id in
  t.front_id <- id - 1;
  push t { id; head; body }

let remove t clause =
  let removed = ref false in
  Vec.iteri
    (fun i slot ->
      match slot with
      | Some c when c.id = clause.id && not !removed ->
          Vec.set t.store i None;
          removed := true
      | _ -> ())
    t.store;
  if !removed then begin
    Hashtbl.remove t.by_id clause.id;
    t.nlive <- t.nlive - 1;
    let args = head_args clause in
    List.iter (fun idx -> Arg_hash.remove idx clause.id args) t.hash_indexes;
    (* tries do not support removal: static predicates are never
       retracted clause-by-clause; if it ever happens, rebuild *)
    if t.first_string <> None || t.disc_tree <> None then rebuild_indexes t ()
  end

let remove_all t =
  Vec.clear t.store;
  Hashtbl.reset t.by_id;
  t.nlive <- 0;
  t.front_id <- -1;
  t.back_id <- 0;
  rebuild_indexes t ()

let clauses = live_clauses

let by_ids t ids = List.filter_map (fun id -> Hashtbl.find_opt t.by_id id) ids

let lookup t call_args =
  if Array.length call_args <> t.arity then []
  else
    let rec try_hash = function
      | [] -> None
      | idx :: rest -> (
          match Arg_hash.lookup idx call_args with
          | Some ids -> Some ids
          | None -> try_hash rest)
    in
    match try_hash t.hash_indexes with
    | Some ids -> by_ids t ids
    | None -> (
        match (t.first_string, t.disc_tree) with
        | Some trie, _ -> by_ids t (First_string.lookup trie call_args)
        | None, Some tree -> by_ids t (Disc_tree.lookup tree call_args)
        | None, None -> live_clauses t)
