(* The SLG engine: SLD resolution extended with variant-based tabling,
   as described in section 3 of the paper.

   Derivations are run by a depth-first interpreter whose continuation is
   an explicit list of goal terms. When a derivation selects a tabled
   call, it either consumes a completed table's answers inline, or it is
   reified into a *consumer*: a canonicalized snapshot of the call and
   the remaining resolvent ("copying to table space"; this plays the
   role of the SLG-WAM's stack freezing — see DESIGN.md §3). New answers
   resume consumers from their snapshot. An evaluation's scheduler
   drives generator and resumption tasks to fixpoint; completion is
   computed in batch at each fixpoint, excluding subgoals that can still
   receive answers through derivations suspended on negative literals.
   Negative literals over fresh subgoals are evaluated in *nested*
   evaluations, which is also what implements existential negation's
   early termination and table reclamation (e_tnot/tcut, §4.4). *)

open Xsb_term
open Xsb_db
module Answer_index = Xsb_index.Answer_store.Index
module Subsumption = Xsb_index.Answer_store.Subsumption
module Obs = Xsb_obs.Obs

exception Engine_error of string
exception Floundered of Term.t
exception Non_stratified of Canon.t list
exception Step_limit

let error fmt = Fmt.kstr (fun s -> raise (Engine_error s)) fmt

type mode = Stratified | Well_founded

(* Scheduling strategies (Areias & Rocha): [Batched] eagerly drains every
   new answer to all registered consumers; [Local] keeps answers inside
   the producer's strongly-connected component of subgoals until the SCC
   completes, and only then returns them outward. Both compute the same
   answer sets; they differ in answer-arrival order and in how much
   suspension state stays live. *)
type scheduling = Local | Batched

let scheduling_of_string s =
  match String.lowercase_ascii s with
  | "local" -> Some Local
  | "batched" -> Some Batched
  | _ -> None

let scheduling_to_string = function Local -> "local" | Batched -> "batched"

(* the CI matrix sets XSB_SCHEDULING to run every suite under both
   strategies; unset, the historical eager behaviour is the default *)
let default_scheduling () =
  match Sys.getenv_opt "XSB_SCHEDULING" with
  | Some s -> ( match scheduling_of_string s with Some x -> x | None -> Batched)
  | None -> Batched

(* Delayed literals attached to conditional answers (section 3.1): a
   delayed ground negation, or a positive literal that was resolved
   against a conditional answer of some table. *)
type delay = Dneg of Canon.t | Dpos of Canon.t * Canon.t

(* explicit order: delay-list normalization and answer-clause dedup must
   not depend on the physical representation of canonical terms *)
let compare_delay d1 d2 =
  match (d1, d2) with
  | Dneg a, Dneg b -> Canon.compare a b
  | Dneg _, Dpos _ -> -1
  | Dpos _, Dneg _ -> 1
  | Dpos (s1, t1), Dpos (s2, t2) -> (
      match Canon.compare s1 s2 with 0 -> Canon.compare t1 t2 | c -> c)

let compare_delays = List.compare compare_delay

type answer = { mutable a_template : Canon.t; mutable a_delays : delay list }
(* [a_template] is mutable for answer subsumption only: folding a better
   value into an existing answer rewrites the stored template in place,
   so consumers resumed afterwards see the improved value *)

type sstate = Incomplete | Complete

type subgoal = {
  skey : Canon.t;
  s_id : int;
  s_pred : string * int;
  mutable s_state : sstate;
  mutable s_owner_eval : int;
  s_store : answer Answer_index.t;
      (* trie-indexed answer clauses (paper §4.5): SLG keeps distinct
         answer *clauses* — the same template may be supported by several
         delay lists (§3.1) — in insertion order, retrievable by the
         bound-argument skeleton of a consuming call *)
  s_uncond : unit Canon.Tbl.t;  (* templates with an unconditional answer *)
  mutable s_consumers : consumer list;  (* reverse registration order *)
  mutable s_deps : subgoal list;
      (* subgoal dependency graph, out-edges: tables this subgoal's
         suspended derivations consume from (positive) or wait on
         (negative); the SCCs of this graph are the units of incremental
         completion *)
  mutable s_tasks : int;  (* queued scheduler tasks that feed this subgoal *)
  mutable s_scc : int;  (* SCC id from the last Tarjan pass (see refresh_sccs) *)
  s_mode : Pred.table_mode;  (* the predicate's tabling mode at table creation *)
  mutable s_dyn_reads : (string * int) list;
      (* dynamic predicates whose clauses this subgoal's derivations
         resolved against — the leaves of the incremental-tabling
         dependency graph (static-predicate reads are not tracked; a
         static mutation invalidates wholesale) *)
  mutable s_neg_dep : bool;
      (* some derivation feeding this table went through negation,
         if-then-else or aggregation: clause additions are then not
         monotone, so the table can be invalidated but never repaired *)
  mutable s_stale : bool;
      (* completed, but a repairable mutation has happened since: must be
         re-derived in place before the next query reads it *)
  s_seen_raw : unit Canon.Tbl.t;
      (* subsumptive only: raw answers already folded, so re-derivations
         through value cycles terminate *)
  s_agg : (int * answer) Canon.Tbl.t;
      (* subsumptive only: key columns -> (position, holder answer) *)
}

and consumer = {
  c_table : subgoal;
  c_owner : subgoal;
  c_snapshot : Canon.t;  (* $susp(Call, GoalsList, Template) *)
  c_delays : delay list;
  mutable c_consumed : int;
  mutable c_scheduled : bool;  (* a Drain task is already queued *)
  c_filter : Canon.t option;
      (* call subsumption: [Some skel] marks a *subsumed* consumer — its
         call is a proper instance of the producer's subgoal, so a drain
         probes the time-stamped answer index with [skel] (from the
         consumer's last-poll stamp) instead of walking every answer;
         unification with the snapshot call filters the candidates *)
}

type waiter_kind = Wneg | Wgoal

type waiter = {
  w_table : subgoal;
  w_owner : subgoal;
  w_kind : waiter_kind;
  w_snapshot : Canon.t;  (* $susp(BlockedGoal, GoalsList, Template) *)
  w_delays : delay list;
}

type task =
  | Drain of consumer
  | Generate of subgoal
  | Run of run

and run = {
  r_owner : subgoal;
  r_snapshot : Canon.t;  (* $susp(First, GoalsList, Template) *)
  r_delays : delay list;
  r_skip_first : bool;  (* WFS resume: delay the blocked literal instead *)
  r_extra_delay : delay option;
}

type stats = {
  mutable st_subgoals : int;
  mutable st_answers : int;
  mutable st_dup_answers : int;
  mutable st_suspensions : int;
  mutable st_resumptions : int;
  mutable st_resolutions : int;
  mutable st_neg_suspensions : int;
  mutable st_nested_evals : int;
  mutable st_completions : int;
  mutable st_answer_probes : int;  (* indexed answer retrievals *)
  mutable st_answer_candidates : int;  (* candidates those probes returned *)
  mutable st_answer_full_size : int;  (* table sizes a full scan would have visited *)
  mutable st_subsumed_calls : int;  (* bound calls served from a completed subsuming table *)
  mutable st_subsumption_hits : int;
      (* calls that found a live subsuming table through the call index
         (Subsumption mode) and so created no generator of their own *)
  mutable st_answers_filtered : int;
      (* producer answers a subsumed consumer's unification rejected *)
  mutable st_drains_scheduled : int;  (* Drain tasks queued (after dedup) *)
  mutable st_sccs_completed : int;  (* SCCs closed by incremental completion *)
  mutable st_early_completions : int;  (* subgoals completed before the global fixpoint *)
  mutable st_max_scc_size : int;  (* largest SCC closed incrementally *)
  mutable st_invalidations : int;  (* completed tables dropped by a mutation *)
  mutable st_repairs : int;  (* stale incremental tables re-derived in place *)
  mutable st_folds : int;  (* answers folded into an existing subsumptive answer *)
  mutable st_steps : int;
}

let fresh_stats () =
  {
    st_subgoals = 0;
    st_answers = 0;
    st_dup_answers = 0;
    st_suspensions = 0;
    st_resumptions = 0;
    st_resolutions = 0;
    st_neg_suspensions = 0;
    st_nested_evals = 0;
    st_completions = 0;
    st_answer_probes = 0;
    st_answer_candidates = 0;
    st_answer_full_size = 0;
    st_subsumed_calls = 0;
    st_subsumption_hits = 0;
    st_answers_filtered = 0;
    st_drains_scheduled = 0;
    st_sccs_completed = 0;
    st_early_completions = 0;
    st_max_scc_size = 0;
    st_invalidations = 0;
    st_repairs = 0;
    st_folds = 0;
    st_steps = 0;
  }

(* Zero the counters in place (the record is shared by live references —
   [Engine.stats] hands it out once). Called by [abolish_tables], so an
   engine reset between runs cannot leak [st_max_scc_size] and friends
   into the next session's measurements. *)
let reset_stats st =
  st.st_subgoals <- 0;
  st.st_answers <- 0;
  st.st_dup_answers <- 0;
  st.st_suspensions <- 0;
  st.st_resumptions <- 0;
  st.st_resolutions <- 0;
  st.st_neg_suspensions <- 0;
  st.st_nested_evals <- 0;
  st.st_completions <- 0;
  st.st_answer_probes <- 0;
  st.st_answer_candidates <- 0;
  st.st_answer_full_size <- 0;
  st.st_subsumed_calls <- 0;
  st.st_subsumption_hits <- 0;
  st.st_answers_filtered <- 0;
  st.st_drains_scheduled <- 0;
  st.st_sccs_completed <- 0;
  st.st_early_completions <- 0;
  st.st_max_scc_size <- 0;
  st.st_invalidations <- 0;
  st.st_repairs <- 0;
  st.st_folds <- 0;
  st.st_steps <- 0

let pp_stats ppf st =
  Fmt.pf ppf
    "subgoals: %d@.answers: %d (dups %d)@.suspensions: %d@.resumptions: %d@.resolutions: \
     %d@.negative suspensions: %d@.nested evaluations: %d@.completions: %d@.answer index probes: \
     %d@.answer index candidates: %d (of %d stored)@.subsumed calls: %d@.subsumption hits: \
     %d@.answers filtered: %d@.drains scheduled: \
     %d@.sccs completed: %d@.early completions: %d@.max scc size: %d@.invalidations: \
     %d@.repairs: %d@.folds: %d@.steps: %d@."
    st.st_subgoals st.st_answers st.st_dup_answers st.st_suspensions st.st_resumptions
    st.st_resolutions st.st_neg_suspensions st.st_nested_evals st.st_completions
    st.st_answer_probes st.st_answer_candidates st.st_answer_full_size st.st_subsumed_calls
    st.st_subsumption_hits st.st_answers_filtered
    st.st_drains_scheduled st.st_sccs_completed st.st_early_completions st.st_max_scc_size
    st.st_invalidations st.st_repairs st.st_folds st.st_steps

type env = {
  db : Database.t;
  trail : Trail.t;
  tables : subgoal Canon.Tbl.t;
  call_index : (string * int, Canon.t Answer_index.t) Hashtbl.t;
      (* call subsumption: per-predicate discrimination trie over the
         subgoal keys of Subsumption-mode tables, probed with
         [retrieve_subsuming] when a fresh call arrives. Entries are
         never removed (the trie has no deletion); retrieval validates
         every candidate against [tables], so keys of deleted or
         invalidated tables are simply dead entries *)
  mode : mode;
  mutable scheduling : scheduling;
  mutable tabling_enabled : bool;
  mutable next_eval : int;
  mutable next_subgoal : int;
  mutable next_barrier : int;
  mutable max_steps : int;  (* 0 = unlimited *)
  stats : stats;
  mutable out : Format.formatter;
  collectors : (Term.t * Term.t list ref) Stack.t;
  mutable captured_incomplete : subgoal option;
  mutable stop : (unit -> bool) option;
  obs : Obs.Recorder.t;
      (* typed trace-event stream; inert until a sink is attached *)
  metrics : Obs.Metrics.t;
      (* per-predicate profiling registry; inert until enabled *)
}

type eval = {
  e_id : int;
  e_parent : eval option;
  e_depth : int;  (* nesting depth: 0 for top-level evaluations *)
  e_env : env;
  e_tasks : task Queue.t;
      (* FIFO: generators run before the drains they caused, and the
         queue stays O(live consumers) thanks to [c_scheduled] dedup *)
  mutable e_waiters : waiter list;
  mutable e_created : subgoal list;
  mutable e_scc_dirty : bool;
      (* the dependency graph changed since the last Tarjan pass *)
}

exception Cut_signal of int
exception Found
exception Touched_outer of subgoal
exception Stop_eval

(* a thrown Prolog term, copied to table space so it survives
   backtracking (throw/1, catch/3) *)
exception Prolog_ball of Canon.t

let create_env ?(mode = Stratified) ?scheduling db =
  let scheduling =
    match scheduling with Some s -> s | None -> default_scheduling ()
  in
  {
    db;
    trail = Trail.create ();
    tables = Canon.Tbl.create 256;
    call_index = Hashtbl.create 16;
    mode;
    scheduling;
    tabling_enabled = true;
    next_eval = 0;
    next_subgoal = 0;
    next_barrier = 0;
    max_steps = 0;
    stats = fresh_stats ();
    out = Format.std_formatter;
    collectors = Stack.create ();
    captured_incomplete = None;
    stop = None;
    obs = Obs.Recorder.create ();
    metrics = Obs.Metrics.create ();
  }

let new_eval env parent =
  env.next_eval <- env.next_eval + 1;
  (match parent with
  | Some _ -> env.stats.st_nested_evals <- env.stats.st_nested_evals + 1
  | None -> ());
  {
    e_id = env.next_eval;
    e_parent = parent;
    e_depth = (match parent with Some p -> p.e_depth + 1 | None -> 0);
    e_env = env;
    e_tasks = Queue.create ();
    e_waiters = [];
    e_created = [];
    e_scc_dirty = false;
  }

let rec is_ancestor_or_self ev id = ev.e_id = id || (match ev.e_parent with Some p -> is_ancestor_or_self p id | None -> false)

let fresh_barrier env =
  env.next_barrier <- env.next_barrier + 1;
  env.next_barrier

let step env =
  env.stats.st_steps <- env.stats.st_steps + 1;
  if env.max_steps > 0 && env.stats.st_steps > env.max_steps then raise Step_limit;
  (* existential early termination can interrupt a running derivation *)
  if env.stats.st_steps land 15 = 0 then
    match env.stop with Some stop when stop () -> raise Stop_eval | _ -> ()

(* The subgoal a task can produce answers for: within one evaluation, a
   table only ever gains answers through tasks it owns, so a zero
   [s_tasks] count means the subgoal is quiescent — the local condition
   incremental completion builds on. *)
let task_owner = function
  | Generate sub -> sub
  | Drain c -> c.c_owner
  | Run r -> r.r_owner

let push_task ev task =
  let owner = task_owner task in
  owner.s_tasks <- owner.s_tasks + 1;
  Queue.add task ev.e_tasks

(* Drain tasks are deduplicated: a consumer with a drain already queued
   gets no second one, so the task queue stays O(live consumers) instead
   of O(answers x consumers) on cyclic programs. *)
let schedule_drain ev consumer =
  if not consumer.c_scheduled then begin
    consumer.c_scheduled <- true;
    ev.e_env.stats.st_drains_scheduled <- ev.e_env.stats.st_drains_scheduled + 1;
    push_task ev (Drain consumer)
  end

(* ------------------------------------------------------------------ *)
(* Observability: event emission and per-predicate metrics.

   Every emission site is guarded on [Obs.Recorder.active] /
   [Obs.Metrics.enabled] — one boolean read — so the hot path pays
   nothing while tracing and profiling are off. Term rendering (the
   [call] field) happens only on the active path. *)

let pred_str (name, arity) = name ^ "/" ^ string_of_int arity

let obs_on env = Obs.Recorder.active env.obs

(* an event about a table: carries the subgoal id and its predicate *)
let emit_sub env ~depth sub kind call =
  Obs.Recorder.emit env.obs ~step:env.stats.st_steps ~subgoal:sub.s_id
    ~pred:(pred_str sub.s_pred) ~call ~depth kind

(* an event about a plain goal (no table attached) *)
let emit_goal env ~depth pred kind call =
  Obs.Recorder.emit env.obs ~step:env.stats.st_steps ~subgoal:0 ~pred:(pred_str pred)
    ~call ~depth kind

let key_str key = Term.to_string (Canon.to_term key)

let metrics_on env = Obs.Metrics.enabled env.metrics
let mcell env key = Obs.Metrics.cell env.metrics key

(* ------------------------------------------------------------------ *)
(* Snapshots: a suspended derivation copied to table space. *)

let susp_term first goals template =
  Canon.of_term (Term.Struct ("$susp", [| first; Term.list_ goals; template |]))

let open_susp snapshot =
  match Term.deref (Canon.to_term snapshot) with
  | Term.Struct ("$susp", [| first; goals; template |]) -> (
      match Term.to_list goals with
      | Some goals -> (first, goals, template)
      | None -> error "corrupt suspension snapshot")
  | _ -> error "corrupt suspension snapshot"

(* ------------------------------------------------------------------ *)
(* Tables *)

let find_table env key = Canon.Tbl.find_opt env.tables key

let create_table ev key pred_key =
  let env = ev.e_env in
  env.next_subgoal <- env.next_subgoal + 1;
  env.stats.st_subgoals <- env.stats.st_subgoals + 1;
  let mode =
    match Database.find env.db (fst pred_key) (snd pred_key) with
    | Some p -> Pred.table_mode p
    | None -> Pred.Variant  (* private $queryN tables *)
  in
  let sub =
    {
      skey = key;
      s_id = env.next_subgoal;
      s_pred = pred_key;
      s_state = Incomplete;
      s_owner_eval = ev.e_id;
      s_store = Answer_index.create ~size_hint:16 ();
      s_uncond = Canon.Tbl.create 8;
      s_consumers = [];
      s_deps = [];
      s_tasks = 0;
      s_scc = 0;
      s_mode = mode;
      s_dyn_reads = [];
      s_neg_dep = false;
      s_stale = false;
      s_seen_raw = Canon.Tbl.create 4;
      s_agg = Canon.Tbl.create 4;
    }
  in
  Canon.Tbl.replace env.tables key sub;
  (* call subsumption: make this subgoal retrievable by later, more
     specific calls. Re-creations after an invalidation find their key
     already present (the trie has no deletion), so the index stays
     duplicate-free. *)
  (match mode with
  | Pred.Subsumption ->
      let idx =
        match Hashtbl.find_opt env.call_index pred_key with
        | Some idx -> idx
        | None ->
            let idx = Answer_index.create () in
            Hashtbl.add env.call_index pred_key idx;
            idx
      in
      if Answer_index.find idx key = [] then ignore (Answer_index.add idx key key : int)
  | _ -> ());
  ev.e_created <- sub :: ev.e_created;
  ev.e_scc_dirty <- true;
  if metrics_on env then begin
    let c = mcell env pred_key in
    c.Obs.Metrics.m_subgoals <- c.Obs.Metrics.m_subgoals + 1
  end;
  if obs_on env then
    emit_sub env ~depth:ev.e_depth sub Obs.Event.New_subgoal (key_str key);
  sub

let delete_table env sub = Canon.Tbl.remove env.tables sub.skey

(* Drop every completed table whose subgoal predicate is [pred_key].
   Used when the predicate itself is abolished: its tables memoize
   answers derived from clauses that no longer exist, so a later call
   must re-evaluate against the (possibly re-declared) predicate.
   Incomplete tables are retained for the same reason as in
   [abolish_tables] below. *)
let remove_tables_for env pred_key =
  let doomed =
    Canon.Tbl.fold
      (fun key sub acc ->
        if sub.s_pred = pred_key && sub.s_state = Complete then key :: acc else acc)
      env.tables []
  in
  List.iter (Canon.Tbl.remove env.tables) doomed;
  List.length doomed

let has_unconditional sub = Canon.Tbl.length sub.s_uncond > 0

let template_unconditional sub template = Canon.Tbl.mem sub.s_uncond template

let answer_count sub = Answer_index.size sub.s_store
let has_any_answer sub = answer_count sub > 0
let iter_answers f sub = Answer_index.iter f sub.s_store
let fold_answers f acc sub = Answer_index.fold_left f acc sub.s_store

(* Abolish the completed tables. Incomplete tables belong to an
   in-progress evaluation: detaching them would leave [e_created],
   registered consumers and waiters pointing at subgoals the completion
   phase still marks Complete (and let a concurrent variant call build a
   second table for the same subgoal), so they are retained — the safe
   library rendering of XSB's "abolishing a table in use" error. *)
let abolish_tables env =
  let doomed =
    Canon.Tbl.fold
      (fun key sub acc -> if sub.s_state = Complete then key :: acc else acc)
      env.tables []
  in
  List.iter (Canon.Tbl.remove env.tables) doomed;
  Hashtbl.reset env.call_index;
  if obs_on env then
    Obs.Recorder.emit env.obs ~step:env.stats.st_steps ~subgoal:0 ~pred:"" ~call:""
      ~depth:0 (Obs.Event.Abolish (List.length doomed));
  (* an engine reset starts the counters over: measurements of the next
     run must not inherit st_max_scc_size and friends (ISSUE PR 3) *)
  reset_stats env.stats

(* ------------------------------------------------------------------ *)
(* The subgoal dependency graph and incremental SCC completion.

   Edges are recorded when a derivation suspends: a consumer of table T
   owned by subgoal S adds S -> T (positive), a negative waiter likewise
   (negative). A strongly-connected component of incomplete subgoals can
   be completed as soon as (a) no member has a queued task, (b) every
   table a member depends on outside the SCC is already complete, (c) no
   derivation suspended on a negative literal can still feed a member,
   and (d) no member-owned consumer has undelivered answers. This is the
   library rendering of the SLG-WAM's completion instruction: tables
   close as their SCC is exhausted instead of at the global fixpoint, so
   completed-table reuse (inline consumption, subsumption, early tnot
   failure) fires mid-evaluation. *)

let add_dep ev owner table =
  if not (List.memq table owner.s_deps) then begin
    owner.s_deps <- table :: owner.s_deps;
    ev.e_scc_dirty <- true
  end

(* Transitive taint for incremental repair: a table whose derivation
   consumed from a tainted table cannot be repaired either. Run to
   fixpoint over a set being completed, since the set may contain cycles
   and is marked in arbitrary order. *)
let smear_neg_dep members =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun m ->
        if (not m.s_neg_dep) && List.exists (fun d -> d.s_neg_dep) m.s_deps then begin
          m.s_neg_dep <- true;
          changed := true
        end)
      members
  done

let is_subsumptive sub =
  match sub.s_mode with Pred.Subsumptive _ -> true | _ -> false

(* Record that [owner]'s derivations resolved against the clauses of a
   dynamic predicate: the leaf edges of the incremental dependency
   graph. *)
let note_dyn_read owner pred =
  if Pred.kind pred = Pred.Dynamic then begin
    let key = (Pred.name pred, Pred.arity pred) in
    if not (List.mem key owner.s_dyn_reads) then
      owner.s_dyn_reads <- key :: owner.s_dyn_reads
  end

(* Iterative Tarjan over this evaluation's incomplete subgoals; assigns
   [s_scc] ids. Lazy: only re-run when the graph changed. *)
let refresh_sccs ev =
  if ev.e_scc_dirty then begin
    ev.e_scc_dirty <- false;
    let nodes = List.filter (fun s -> s.s_state = Incomplete) ev.e_created in
    let idx = Hashtbl.create 64 and low = Hashtbl.create 64 in
    let onstack = Hashtbl.create 64 in
    let stack = Stack.create () in
    let counter = ref 0 and next_scc = ref 0 in
    let succs s = List.filter (fun d -> d.s_state = Incomplete) s.s_deps in
    let strongconnect v0 =
      let frames = Stack.create () in
      let open_node v =
        Hashtbl.replace idx v.s_id !counter;
        Hashtbl.replace low v.s_id !counter;
        incr counter;
        Stack.push v stack;
        Hashtbl.replace onstack v.s_id ();
        Stack.push (v, ref (succs v)) frames
      in
      open_node v0;
      while not (Stack.is_empty frames) do
        let v, rest = Stack.top frames in
        match !rest with
        | w :: tl ->
            rest := tl;
            if not (Hashtbl.mem idx w.s_id) then open_node w
            else if Hashtbl.mem onstack w.s_id then
              Hashtbl.replace low v.s_id
                (min (Hashtbl.find low v.s_id) (Hashtbl.find idx w.s_id))
        | [] ->
            ignore (Stack.pop frames);
            if Hashtbl.find low v.s_id = Hashtbl.find idx v.s_id then begin
              incr next_scc;
              let rec pop () =
                let w = Stack.pop stack in
                Hashtbl.remove onstack w.s_id;
                w.s_scc <- !next_scc;
                if w != v then pop ()
              in
              pop ()
            end;
            (match Stack.top_opt frames with
            | Some (p, _) ->
                Hashtbl.replace low p.s_id
                  (min (Hashtbl.find low p.s_id) (Hashtbl.find low v.s_id))
            | None -> ())
      done
    in
    List.iter (fun v -> if not (Hashtbl.mem idx v.s_id) then strongconnect v) nodes
  end

let mark_complete ev sub =
  let env = ev.e_env in
  sub.s_state <- Complete;
  env.stats.st_completions <- env.stats.st_completions + 1;
  if obs_on env then emit_sub env ~depth:ev.e_depth sub Obs.Event.Complete (key_str sub.skey)

let run_of_waiter w =
  Run
    {
      r_owner = w.w_owner;
      r_snapshot = w.w_snapshot;
      r_delays = w.w_delays;
      r_skip_first = false;
      r_extra_delay = None;
    }

(* Try to complete the SCC of [sub]. Called whenever a subgoal's queued
   task count drops to zero, and cascaded from completions it enables. *)
let rec try_complete ev sub =
  if sub.s_state = Incomplete && sub.s_tasks = 0 then begin
    refresh_sccs ev;
    let scc = sub.s_scc in
    let members =
      List.filter (fun s -> s.s_state = Incomplete && s.s_scc = scc) ev.e_created
    in
    let in_scc s = s.s_state = Incomplete && s.s_scc = scc in
    let blocked =
      List.exists (fun m -> m.s_tasks > 0) members
      || List.exists
           (fun m ->
             List.exists (fun d -> d.s_state = Incomplete && d.s_scc <> scc) m.s_deps)
           members
      || List.exists (fun w -> in_scc w.w_owner) ev.e_waiters
      || List.exists
           (fun m ->
             List.exists
               (fun c -> in_scc c.c_owner && c.c_consumed < answer_count m)
               m.s_consumers)
           members
    in
    if not blocked then complete_scc ev members
  end

and complete_scc ev members =
  let env = ev.e_env in
  let n = List.length members in
  env.stats.st_sccs_completed <- env.stats.st_sccs_completed + 1;
  env.stats.st_early_completions <- env.stats.st_early_completions + n;
  if n > env.stats.st_max_scc_size then env.stats.st_max_scc_size <- n;
  (if obs_on env then
     match members with
     | first :: _ ->
         emit_sub env ~depth:ev.e_depth first (Obs.Event.Scc_complete n) (key_str first.skey)
     | [] -> ());
  smear_neg_dep members;
  List.iter (mark_complete ev) members;
  ev.e_scc_dirty <- true;
  (* deliver answers deferred by local scheduling to cross-SCC consumers,
     and wake their owners so completion cascades outward *)
  List.iter
    (fun m -> List.iter (fun c -> schedule_drain ev c) m.s_consumers)
    members;
  ignore (resolve_waiters ev : bool)

(* Waiters blocked on now-complete tables resume; negative waiters whose
   (ground) subgoal has acquired an unconditional answer fail outright.
   Returns whether any waiter was resolved. *)
and resolve_waiters ev =
  let resumable, blocked =
    List.partition (fun w -> w.w_table.s_state = Complete) ev.e_waiters
  in
  let failed, blocked =
    List.partition
      (fun w -> w.w_kind = Wneg && template_unconditional w.w_table w.w_table.skey)
      blocked
  in
  ev.e_waiters <- blocked;
  List.iter (fun w -> push_task ev (run_of_waiter w)) resumable;
  (* a dropped waiter no longer pins its owner's SCC open *)
  List.iter (fun w -> try_complete ev w.w_owner) failed;
  resumable <> [] || failed <> []

(* Local scheduling can defer drains across SCC boundaries; before a
   fixpoint judgement every undelivered answer must be scheduled. *)
let flush_deferred_drains ev =
  let any = ref false in
  List.iter
    (fun s ->
      if s.s_state = Incomplete then
        List.iter
          (fun c ->
            if (not c.c_scheduled) && c.c_consumed < answer_count s then begin
              any := true;
              schedule_drain ev c
            end)
          s.s_consumers)
    ev.e_created;
  !any

(* ------------------------------------------------------------------ *)
(* Goal classification *)

let pred_key_of goal =
  match Term.deref goal with
  | Term.Atom name -> (name, 0)
  | Term.Struct (name, args) -> (name, Array.length args)
  | Term.Int _ | Term.Float _ -> error "number used as a goal"
  | Term.Var _ -> error "unbound variable used as a goal"

let args_of goal =
  match Term.deref goal with
  | Term.Struct (_, args) -> args
  | _ -> [||]

(* The fully-open variant of a call: pred(V0,...,Vn-1). When a bound call
   has no variant table but the open call's table is already complete,
   the answers of the bound call are exactly the matching subset of the
   open table — retrieved through the answer index instead of
   re-evaluating the program (subsumptive consumption of completed
   tables; cf. Cruz & Rocha on instance retrieval for subsumptive
   tabling). *)
let open_key_of goal =
  match Term.deref goal with
  | Term.Struct (f, args) when Array.length args > 0 ->
      Some (Canon.CStruct (f, Array.init (Array.length args) (fun i -> Canon.CVar i)))
  | _ -> None

let subsuming_completed env goal key =
  match open_key_of goal with
  | Some okey when not (Canon.equal okey key) -> (
      match find_table env okey with
      | Some sub when sub.s_state = Complete -> Some sub
      | _ -> None)
  | _ -> None

(* Call-subsumption retrieval (Subsumption mode): probe the predicate's
   call index for a live table whose subgoal subsumes [key]. A completed
   table is preferred (inline consumption, no suspension); otherwise an
   incomplete table owned by this evaluation serves, with the new call
   becoming a subsumed consumer. Incomplete tables of *other*
   evaluations are skipped — subsumption is an optimization, and
   declining it avoids any cross-evaluation interaction. *)
let subsuming_live env ev key pred_key =
  match Hashtbl.find_opt env.call_index pred_key with
  | None -> None
  | Some idx ->
      let live =
        List.filter_map
          (fun (_, k) ->
            match find_table env k with
            | Some sub
              when (not sub.s_stale)
                   && (sub.s_state = Complete || sub.s_owner_eval = ev.e_id) ->
                Some sub
            | _ -> None)
          (Answer_index.retrieve_subsuming idx key)
      in
      match List.find_opt (fun sub -> sub.s_state = Complete) live with
      | Some sub -> Some sub
      | None -> ( match live with sub :: _ -> Some sub | [] -> None)

let is_tabled env goal =
  env.tabling_enabled
  &&
  let name, arity = pred_key_of goal in
  match Database.find env.db name arity with Some p -> Pred.tabled p | None -> false

(* ------------------------------------------------------------------ *)
(* Table-space introspection (ISSUE PR 3): the builtins statistics/1,
   table_dump/0, get_calls/1 and get_returns/2 reify the engine's
   internal state as terms queryable from the object language, the
   library rendering of XSB's statistics/1 and table-inspection
   predicates. *)

(* --- table-space memory accounting (ISSUE PR 8) ---

   Estimated bytes per table: the answer trie (nodes, edges, entries and
   the answer payloads — template plus delay list) and the per-table
   bookkeeping hashtables. Estimates on the [Canon.size_bytes] model: an
   upper bound that tracks growth, cheap enough to compute at scrape
   time, precise enough to drive the ROADMAP's table-eviction work. *)

let word = 8

let delay_bytes = function
  | Dneg g -> (2 * word) + Canon.size_bytes g
  | Dpos (sg, ans) -> (3 * word) + Canon.size_bytes sg + Canon.size_bytes ans

let answer_bytes a =
  (3 * word)
  + Canon.size_bytes a.a_template
  + List.fold_left (fun acc d -> acc + (3 * word) + delay_bytes d) 0 a.a_delays

(* a [Canon.Tbl] with unit-ish payloads: header + one binding per key *)
let canon_tbl_bytes keys_bytes tbl =
  (4 * word) + Canon.Tbl.fold (fun k _ acc -> acc + (4 * word) + keys_bytes k) tbl 0

let table_bytes sub =
  Canon.size_bytes sub.skey
  + Answer_index.footprint answer_bytes sub.s_store
  + canon_tbl_bytes Canon.size_bytes sub.s_uncond
  + canon_tbl_bytes Canon.size_bytes sub.s_seen_raw
  + canon_tbl_bytes Canon.size_bytes sub.s_agg

let table_space_bytes env =
  Canon.Tbl.fold (fun _ sub acc -> acc + table_bytes sub) env.tables 0

let call_index_bytes env =
  Hashtbl.fold
    (fun _ idx acc -> acc + Answer_index.footprint Canon.size_bytes idx)
    env.call_index 0

(* estimated bytes per predicate, summed over its tables, largest
   first — the per-table byte gauges of the METRICS exposition *)
let table_bytes_by_pred env =
  let acc : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
  Canon.Tbl.iter
    (fun _ sub ->
      if (fst sub.s_pred).[0] <> '$' then
        let prev = Option.value ~default:0 (Hashtbl.find_opt acc sub.s_pred) in
        Hashtbl.replace acc sub.s_pred (prev + table_bytes sub))
    env.tables;
  Hashtbl.fold (fun pred bytes rows -> (pred, bytes) :: rows) acc []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* the statistics record as a [name = value] list *)
let stats_term env =
  let st = env.stats in
  let pair name v = Term.app "=" [ Term.Atom name; Term.Int v ] in
  Term.list_
    [
      pair "subgoals" st.st_subgoals;
      pair "answers" st.st_answers;
      pair "dup_answers" st.st_dup_answers;
      pair "suspensions" st.st_suspensions;
      pair "resumptions" st.st_resumptions;
      pair "resolutions" st.st_resolutions;
      pair "neg_suspensions" st.st_neg_suspensions;
      pair "nested_evals" st.st_nested_evals;
      pair "completions" st.st_completions;
      pair "subsumed_calls" st.st_subsumed_calls;
      pair "subsumption_hits" st.st_subsumption_hits;
      pair "answers_filtered" st.st_answers_filtered;
      pair "sccs_completed" st.st_sccs_completed;
      pair "early_completions" st.st_early_completions;
      pair "max_scc_size" st.st_max_scc_size;
      pair "invalidations" st.st_invalidations;
      pair "repairs" st.st_repairs;
      pair "folds" st.st_folds;
      pair "steps" st.st_steps;
      pair "tables" (Canon.Tbl.length env.tables);
      pair "table_bytes" (table_space_bytes env);
      pair "call_index_bytes" (call_index_bytes env);
    ]

let sorted_tables env =
  Canon.Tbl.fold (fun _ sub acc -> sub :: acc) env.tables []
  |> List.sort (fun a b -> compare a.s_id b.s_id)

(* private $queryN tables are engine bookkeeping, not program state *)
let user_tables env =
  List.filter (fun sub -> (fst sub.s_pred).[0] <> '$') (sorted_tables env)

let pp_table_dump ppf env =
  let tables = user_tables env in
  Fmt.pf ppf "table space: %d table%s, ~%d bytes (+%d call-index bytes)@." (List.length tables)
    (if List.length tables = 1 then "" else "s")
    (List.fold_left (fun acc sub -> acc + table_bytes sub) 0 tables)
    (call_index_bytes env);
  List.iter
    (fun sub ->
      Fmt.pf ppf "%s  [%s, %d answer%s, ~%d bytes]@." (key_str sub.skey)
        (match sub.s_state with Complete -> "complete" | Incomplete -> "incomplete")
        (answer_count sub)
        (if answer_count sub = 1 then "" else "s")
        (table_bytes sub);
      iter_answers
        (fun a ->
          Fmt.pf ppf "  %s%s@." (key_str a.a_template)
            (if a.a_delays = [] then "" else " (conditional)"))
        sub)
    tables

(* ------------------------------------------------------------------ *)
(* The interpreter.

   [solve ev ~det ~owner ~template ~delays ~barrier goals] explores all
   derivations of [goals]; solutions reaching the empty resolvent emit
   an answer for [owner]. Alternatives are explored depth-first with
   trail-based undo. [det] marks deterministic contexts (conditions of
   if-then-else, \+, findall sub-derivations) where suspension is not
   possible: there, incomplete own-eval tables are consumed by snapshot
   ("capture" semantics, as XSB's findall on incomplete tables) and
   fresh tabled calls are completed in nested evaluations. *)

let rec solve ev ~det ~owner ~template ~delays ~barrier goals =
  let env = ev.e_env in
  step env;
  match goals with
  | [] -> emit_answer ev owner template delays
  | goal :: rest -> (
      match Term.deref goal with
      | Term.Var _ -> error "unbound variable used as a goal"
      | Term.Int _ | Term.Float _ -> error "number used as a goal"
      | Term.Atom name -> solve_atom ev ~det ~owner ~template ~delays ~barrier name goal rest
      | Term.Struct (name, args) ->
          solve_struct ev ~det ~owner ~template ~delays ~barrier name args goal rest)

and continue ev ~det ~owner ~template ~delays ~barrier rest =
  solve ev ~det ~owner ~template ~delays ~barrier rest

and solve_atom ev ~det ~owner ~template ~delays ~barrier name goal rest =
  match name with
  | "true" -> continue ev ~det ~owner ~template ~delays ~barrier rest
  | "fail" | "false" -> ()
  | "!" ->
      continue ev ~det ~owner ~template ~delays ~barrier rest;
      raise (Cut_signal barrier)
  | "tcut" ->
      (* tcut/0 (paper §4.4): behaves as a cut; the freeing of tables cut
         over is performed by the nested-evaluation machinery of e_tnot,
         which abandons (frees) tables with no outside users. Used
         standalone it is the paper's "simple noop" case plus the cut. *)
      continue ev ~det ~owner ~template ~delays ~barrier rest;
      raise (Cut_signal barrier)
  | "nl" ->
      Format.pp_print_newline ev.e_env.out ();
      continue ev ~det ~owner ~template ~delays ~barrier rest
  | "listing" -> continue ev ~det ~owner ~template ~delays ~barrier rest
  | "statistics" ->
      pp_stats ev.e_env.out ev.e_env.stats;
      continue ev ~det ~owner ~template ~delays ~barrier rest
  | "table_dump" ->
      pp_table_dump ev.e_env.out ev.e_env;
      continue ev ~det ~owner ~template ~delays ~barrier rest
  | "profile" ->
      Obs.Metrics.pp_report ev.e_env.out ev.e_env.metrics;
      continue ev ~det ~owner ~template ~delays ~barrier rest
  | "halt" -> error "halt/0 is not available inside the library engine"
  | "abolish_all_tables" ->
      abolish_tables ev.e_env;
      continue ev ~det ~owner ~template ~delays ~barrier rest
  | "$found$" -> raise Found
  | "$collect$" ->
      let tmpl, acc = Stack.top ev.e_env.collectors in
      acc := Term.copy tmpl :: !acc;
      ()
  | "table_all" ->
      let scope = List.map (fun p -> (Pred.name p, Pred.arity p)) (Database.preds ev.e_env.db) in
      Table_all.apply ev.e_env.db ~scope;
      continue ev ~det ~owner ~template ~delays ~barrier rest
  | _ -> solve_call ev ~det ~owner ~template ~delays ~barrier goal rest

and solve_struct ev ~det ~owner ~template ~delays ~barrier name args goal rest =
  let env = ev.e_env in
  let next rest = continue ev ~det ~owner ~template ~delays ~barrier rest in
  match (name, args) with
  | ",", [| a; b |] -> next (a :: b :: rest)
  | ";", [| l; r |] -> (
      match Term.deref l with
      | Term.Struct ("->", [| cond; then_ |]) ->
          solve_ite ev ~det ~owner ~template ~delays ~barrier cond then_ r rest
      | _ ->
          let m = Trail.mark env.trail in
          next (l :: rest);
          Trail.undo_to env.trail m;
          next (r :: rest);
          Trail.undo_to env.trail m)
  | "->", [| cond; then_ |] ->
      solve_ite ev ~det ~owner ~template ~delays ~barrier cond then_ (Term.Atom "fail") rest
  | "$endscope", [| b |] -> (
      match Term.deref b with
      | Term.Int b -> continue ev ~det ~owner ~template ~delays ~barrier:b rest
      | _ -> error "corrupt cut scope marker")
  | ("\\+" | "not"), [| g |] ->
      solve_ite ev ~det ~owner ~template ~delays ~barrier g (Term.Atom "fail") (Term.Atom "true")
        rest
  | "tnot", [| g |] -> solve_tnot ev ~det ~owner ~template ~delays ~barrier ~existential:false g rest
  | "e_tnot", [| g |] ->
      solve_tnot ev ~det ~owner ~template ~delays ~barrier ~existential:true g rest
  | "throw", [| ball |] -> raise (Prolog_ball (Canon.of_term (Term.deref ball)))
  | "catch", [| g; catcher; recovery |] ->
      (* the catch window extends over [g]'s derivations; balls thrown by
         derivations resumed from table space after suspension escape to
         the top (see the manual's tabling restrictions) *)
      let m = Trail.mark env.trail in
      let b = fresh_barrier env in
      (try
         with_cut_catch env b (fun () ->
             continue ev ~det ~owner ~template ~delays ~barrier:b
               (Term.deref g :: Term.Struct ("$endscope", [| Term.Int barrier |]) :: rest))
       with Prolog_ball ball ->
         Trail.undo_to env.trail m;
         let ball_term = Canon.to_term ball in
         let m2 = Trail.mark env.trail in
         if Unify.unify env.trail catcher ball_term then begin
           continue ev ~det ~owner ~template ~delays ~barrier (recovery :: rest);
           Trail.undo_to env.trail m2
         end
         else begin
           Trail.undo_to env.trail m2;
           raise (Prolog_ball ball)
         end)
  | "call", [| g |] ->
      let b = fresh_barrier env in
      with_cut_catch env b (fun () ->
          continue ev ~det ~owner ~template ~delays ~barrier:b
            (Term.deref g :: Term.Struct ("$endscope", [| Term.Int barrier |]) :: rest))
  | "call", _ when Array.length args >= 2 ->
      let g = build_call args in
      next (g :: rest)
  | "findall", [| tmpl; g; out |] ->
      solve_findall ev ~det ~owner ~template ~delays ~barrier ~tabled_wait:false tmpl g out rest
  | "tfindall", [| tmpl; g; out |] ->
      solve_findall ev ~det ~owner ~template ~delays ~barrier ~tabled_wait:true tmpl g out rest
  | "bagof", [| tmpl; g; out |] ->
      let g = strip_carets g in
      solve_findall ev ~det ~owner ~template ~delays ~barrier ~tabled_wait:false ~require:true tmpl
        g out rest
  | "setof", [| tmpl; g; out |] ->
      let g = strip_carets g in
      solve_findall ev ~det ~owner ~template ~delays ~barrier ~tabled_wait:false ~require:true
        ~sort:true tmpl g out rest
  | ("table" | "dynamic" | "hilog" | "index" | "op"), _ -> (
      match Loader.process_directive env.db goal with
      | `Handled -> next rest
      | `Table_all | `Deferred _ -> error "unsupported runtime directive")
  | "statistics", [| arg |] ->
      (* statistics(S): S unifies with the counters as a [name = value]
         list (statistics/1-style introspection) *)
      let m = Trail.mark env.trail in
      if Unify.unify env.trail arg (stats_term env) then next rest;
      Trail.undo_to env.trail m
  | "get_calls", [| c |] ->
      (* get_calls(Call): enumerate the tabled subgoals present in table
         space, most recently created last *)
      List.iter
        (fun sub ->
          let m = Trail.mark env.trail in
          if Unify.unify env.trail c (Canon.to_term sub.skey) then next rest;
          Trail.undo_to env.trail m)
        (user_tables env)
  | "get_returns", [| c; r |] ->
      (* get_returns(Call, Answer): for each table whose subgoal unifies
         with Call, enumerate its answers into Answer *)
      List.iter
        (fun sub ->
          (* snapshot: the continuation may grow the table mid-iteration *)
          let answers = List.rev (fold_answers (fun acc a -> a :: acc) [] sub) in
          let m = Trail.mark env.trail in
          if Unify.unify env.trail c (Canon.to_term sub.skey) then
            List.iter
              (fun (a : answer) ->
                let m2 = Trail.mark env.trail in
                if Unify.unify env.trail r (Canon.to_term a.a_template) then next rest;
                Trail.undo_to env.trail m2)
              answers;
          Trail.undo_to env.trail m)
        (user_tables env)
  | _ -> (
      match Builtins.lookup name (Array.length args) with
      | Some b -> (
          try
            Builtins.run b env.trail env.db env.out args (fun () ->
                continue ev ~det ~owner ~template ~delays ~barrier rest)
          with
          | Arith.Arith_error msg ->
              raise
                (Prolog_ball
                   (Canon.of_term
                      (Term.app "error" [ Term.app "evaluation_error" [ Term.Atom msg ]; Term.Atom name ])))
          | Builtins.Builtin_error msg ->
              raise
                (Prolog_ball
                   (Canon.of_term
                      (Term.app "error" [ Term.Atom msg; Term.Atom name ]))))
      | None -> solve_call ev ~det ~owner ~template ~delays ~barrier goal rest)

and build_call args =
  let g = Term.deref args.(0) in
  let extra = Array.sub args 1 (Array.length args - 1) in
  match g with
  | Term.Atom name -> Term.struct_ name extra
  | Term.Struct (name, gargs) -> Term.Struct (name, Array.append gargs extra)
  | Term.Var _ -> error "unbound variable in call/N"
  | Term.Int _ | Term.Float _ -> error "number used as a goal in call/N"

and strip_carets g =
  match Term.deref g with Term.Struct ("^", [| _; g |]) -> strip_carets g | g -> g

and with_cut_catch env b f =
  let m = Trail.mark env.trail in
  try f ()
  with Cut_signal b' when b' = b ->
    Trail.undo_to env.trail m

(* if-then-else: find the first solution of [cond] (keeping its
   bindings), commit to it and run [then_]; otherwise run [else_]. The
   condition runs in a deterministic context. *)
and solve_ite ev ~det ~owner ~template ~delays ~barrier cond then_ else_ rest =
  let env = ev.e_env in
  (* committing to the first solution (or its absence) is not monotone
     under clause addition: taint the owner against incremental repair *)
  owner.s_neg_dep <- true;
  let m = Trail.mark env.trail in
  let b = fresh_barrier env in
  let succeeded =
    try
      solve ev ~det:true ~owner ~template ~delays ~barrier:b [ cond; Term.Atom "$found$" ];
      false
    with
    | Found -> true
    | Cut_signal b' when b' = b ->
        Trail.undo_to env.trail m;
        false
  in
  if succeeded then begin
    continue ev ~det ~owner ~template ~delays ~barrier (then_ :: rest);
    Trail.undo_to env.trail m
  end
  else begin
    Trail.undo_to env.trail m;
    continue ev ~det ~owner ~template ~delays ~barrier (else_ :: rest)
  end

(* findall and its relatives: collect every solution of [g] in a
   deterministic sub-derivation. *)
and solve_findall ev ~det ~owner ~template ~delays ~barrier ~tabled_wait ?(require = false)
    ?(sort = false) tmpl g out rest =
  let env = ev.e_env in
  (* the collected list shrinks no answer but changes as a term when
     clauses are added: not repairable *)
  owner.s_neg_dep <- true;
  let acc = ref [] in
  Stack.push (tmpl, acc) env.collectors;
  let saved_capture = env.captured_incomplete in
  env.captured_incomplete <- None;
  let m = Trail.mark env.trail in
  let b = fresh_barrier env in
  let finish () = ignore (Stack.pop env.collectors) in
  (try solve ev ~det:true ~owner ~template ~delays ~barrier:b [ g; Term.Atom "$collect$" ]
   with e ->
     finish ();
     env.captured_incomplete <- saved_capture;
     Trail.undo_to env.trail m;
     raise e);
  finish ();
  Trail.undo_to env.trail m;
  let captured = env.captured_incomplete in
  env.captured_incomplete <- saved_capture;
  match captured with
  | Some sub when tabled_wait ->
      (* tfindall/3 (paper §4.7): suspend until the table has been
         completed, then re-execute. *)
      suspend_waiter ev ~kind:Wgoal ~owner ~template ~delays sub
        (Term.Struct ("tfindall", [| tmpl; g; out |]))
        rest
  | _ ->
      let solutions = List.rev !acc in
      let solutions =
        if sort then List.sort_uniq Term.compare solutions else solutions
      in
      if require && solutions = [] then ()
      else begin
        let m = Trail.mark env.trail in
        if Unify.unify env.trail out (Term.list_ solutions) then
          continue ev ~det ~owner ~template ~delays ~barrier rest;
        Trail.undo_to env.trail m
      end

(* ------------------------------------------------------------------ *)
(* Predicate calls *)

and solve_call ev ~det ~owner ~template ~delays ~barrier goal rest =
  let env = ev.e_env in
  let key = pred_key_of goal in
  if metrics_on env then begin
    let c = mcell env key in
    c.Obs.Metrics.m_calls <- c.Obs.Metrics.m_calls + 1
  end;
  if obs_on env then
    emit_goal env ~depth:ev.e_depth key Obs.Event.Call (Term.to_string goal);
  match Database.find env.db (fst key) (snd key) with
  | None -> ()  (* unknown predicate: fails, as an empty relation *)
  | Some pred ->
      if Pred.tabled pred && env.tabling_enabled then
        solve_tabled ev ~det ~owner ~template ~delays ~barrier goal rest
      else solve_untabled ev ~det ~owner ~template ~delays ~barrier pred goal rest

and solve_untabled ev ~det ~owner ~template ~delays ~barrier pred goal rest =
  let env = ev.e_env in
  note_dyn_read owner pred;
  let b = fresh_barrier env in
  let endscope = Term.Struct ("$endscope", [| Term.Int barrier |]) in
  let candidates = Pred.lookup pred (args_of goal) in
  let cell = if metrics_on env then Some (mcell env (pred_key_of goal)) else None in
  with_cut_catch env b (fun () ->
      List.iter
        (fun clause ->
          let m = Trail.mark env.trail in
          env.stats.st_resolutions <- env.stats.st_resolutions + 1;
          (match cell with
          | Some c -> c.Obs.Metrics.m_resolutions <- c.Obs.Metrics.m_resolutions + 1
          | None -> ());
          let head, body = Term.copy2 clause.Pred.head clause.Pred.body in
          if Unify.unify env.trail goal head then
            solve ev ~det ~owner ~template ~delays ~barrier:b (body :: endscope :: rest);
          Trail.undo_to env.trail m)
        candidates)

(* Consume the answers of a table inline, as ordinary alternatives. Used
   for completed tables and for "capture" semantics on incomplete ones.
   [skel] is the canonical skeleton of [goal]: a variant call (the common
   case under variant tabling) takes every answer in insertion order; a
   call bound tighter than the table key probes the answer index and
   unifies only against the candidates. *)
and consume_inline ev ~det ~owner ~template ~delays ~barrier ~skel sub goal rest =
  let env = ev.e_env in
  (* consumption is a dependency edge: if [sub] is later invalidated by
     a mutation, [owner]'s table is transitively affected *)
  if owner != sub then add_dep ev owner sub;
  if sub.s_neg_dep then owner.s_neg_dep <- true;
  let each a =
    let m = Trail.mark env.trail in
    let instance = Canon.to_term a.a_template in
    let delays' =
      if a.a_delays = [] then delays
      else begin
        owner.s_neg_dep <- true;
        Dpos (sub.skey, a.a_template) :: delays
      end
    in
    if Unify.unify env.trail goal instance then
      continue ev ~det ~owner ~template ~delays:delays' ~barrier rest;
    Trail.undo_to env.trail m
  in
  let n = answer_count sub in
  env.stats.st_answer_probes <- env.stats.st_answer_probes + 1;
  env.stats.st_answer_full_size <- env.stats.st_answer_full_size + n;
  let subsumptive = match sub.s_mode with Pred.Subsumptive _ -> true | _ -> false in
  (* subsumptive tables scan in full even for bound calls: in-place
     folding leaves the answer trie keyed by superseded templates, so
     the index cannot be trusted — unification filters instead *)
  if subsumptive || Canon.equal skel sub.skey then begin
    env.stats.st_answer_candidates <- env.stats.st_answer_candidates + n;
    let rec loop i =
      if i < n then begin
        each (Answer_index.get sub.s_store i);
        loop (i + 1)
      end
    in
    loop 0
  end
  else begin
    let candidates = Answer_index.lookup sub.s_store skel in
    env.stats.st_answer_candidates <- env.stats.st_answer_candidates + List.length candidates;
    List.iter (fun (_, a) -> each a) candidates
  end

and register_consumer ?filter ev sub ~owner ~template ~delays goal rest =
  let env = ev.e_env in
  env.stats.st_suspensions <- env.stats.st_suspensions + 1;
  if metrics_on env then begin
    let c = mcell env sub.s_pred in
    c.Obs.Metrics.m_suspensions <- c.Obs.Metrics.m_suspensions + 1
  end;
  if obs_on env then
    emit_sub env ~depth:ev.e_depth sub Obs.Event.Suspend (Term.to_string goal);
  let consumer =
    {
      c_table = sub;
      c_owner = owner;
      c_snapshot = susp_term goal rest template;
      c_delays = delays;
      c_consumed = 0;
      c_scheduled = false;
      c_filter = filter;
    }
  in
  sub.s_consumers <- consumer :: sub.s_consumers;
  add_dep ev owner sub;
  if sub.s_neg_dep then owner.s_neg_dep <- true;
  match env.scheduling with
  | Batched when not (is_subsumptive sub) -> schedule_drain ev consumer
  | _ ->
      (* local scheduling: a consumer outside the producer's SCC gets its
         answers when the SCC completes, not before. Subsumptive tables
         use this discipline under every strategy — an eagerly exported
         answer may later be folded into a better one, and a downstream
         variant table has no way to retract it *)
      refresh_sccs ev;
      if owner.s_scc = sub.s_scc then schedule_drain ev consumer

and solve_tabled ev ~det ~owner ~template ~delays ~barrier goal rest =
  let env = ev.e_env in
  let key = Canon.of_term goal in
  match find_table env key with
  | Some sub when sub.s_state = Complete ->
      consume_inline ev ~det ~owner ~template ~delays ~barrier ~skel:key sub goal rest
  | Some sub ->
      if sub.s_owner_eval = ev.e_id then
        if det then begin
          (* deterministic context: capture currently-available answers *)
          env.captured_incomplete <- Some sub;
          consume_inline ev ~det ~owner ~template ~delays ~barrier ~skel:key sub goal rest
        end
        else register_consumer ev sub ~owner ~template ~delays goal rest
      else raise (Touched_outer sub)
  | None -> (
      let pred_key = pred_key_of goal in
      let subsumption_mode =
        match Database.find env.db (fst pred_key) (snd pred_key) with
        | Some p -> Pred.table_mode p = Pred.Subsumption
        | None -> false
      in
      match (if subsumption_mode then subsuming_live env ev key pred_key else None) with
      | Some sub ->
          (* call subsumption: the new call is an instance of [sub]'s
             subgoal — consume that table instead of evaluating anew *)
          env.stats.st_subsumption_hits <- env.stats.st_subsumption_hits + 1;
          if obs_on env then
            emit_sub env ~depth:ev.e_depth sub Obs.Event.Subsume (Term.to_string goal);
          if sub.s_state = Complete then begin
            env.stats.st_subsumed_calls <- env.stats.st_subsumed_calls + 1;
            consume_inline ev ~det ~owner ~template ~delays ~barrier ~skel:key sub goal rest
          end
          else if det then begin
            (* deterministic context: capture currently-available answers *)
            env.captured_incomplete <- Some sub;
            consume_inline ev ~det ~owner ~template ~delays ~barrier ~skel:key sub goal rest
          end
          else
            (* subsumed consumer: no generator of its own; drains probe
               the producer's time-stamped answer index with this call's
               skeleton *)
            register_consumer ~filter:key ev sub ~owner ~template ~delays goal rest
      | None -> (
          match subsuming_completed env goal key with
          | Some sub ->
              (* bound call over a completed more-general table:
                 answer-index retrieval instead of re-evaluating *)
              env.stats.st_subsumed_calls <- env.stats.st_subsumed_calls + 1;
              consume_inline ev ~det ~owner ~template ~delays ~barrier ~skel:key sub goal rest
          | None ->
              if det then begin
                (* complete the subgoal in a nested evaluation, then
                   consume *)
                let sub = nested_completion ev goal key in
                consume_inline ev ~det ~owner ~template ~delays ~barrier ~skel:key sub goal
                  rest
              end
              else begin
                let sub = create_table ev key pred_key in
                push_task ev (Generate sub);
                register_consumer ev sub ~owner ~template ~delays goal rest
              end))

(* Run a nested evaluation that fully completes the subgoal for [goal].
   Raises [Touched_outer] (after cleaning up) if the nested evaluation
   depends on an in-progress table of an outer evaluation. *)
and nested_completion ?stop_on_first ev goal key =
  let env = ev.e_env in
  let nested = new_eval env (Some ev) in
  let sub = create_table nested key (pred_key_of goal) in
  push_task nested (Generate sub);
  let stop =
    match stop_on_first with
    | Some () -> Some (fun () -> has_any_answer sub)
    | None -> None
  in
  (try run_eval ?stop nested
   with e ->
     abandon_eval nested;
     raise e);
  if sub.s_state = Incomplete then begin
    (* stopped early: free the tables created for this existential check
       (the paper's tcut: they have no users outside) *)
    abandon_eval nested;
    sub.s_state <- Complete;
    (* the subgoal itself is detached from the table store but its
       answers remain readable by our caller *)
    sub
  end
  else sub

and abandon_eval nested =
  let env = nested.e_env in
  List.iter (fun sub -> if sub.s_state = Incomplete then delete_table env sub) nested.e_created;
  Queue.clear nested.e_tasks;
  nested.e_waiters <- []

(* ------------------------------------------------------------------ *)
(* Negation: tnot/1 and e_tnot/1 (paper §4.4) *)

and solve_tnot ev ~det ~owner ~template ~delays ~barrier ~existential g rest =
  let env = ev.e_env in
  owner.s_neg_dep <- true;
  let g = Term.deref g in
  if not (Term.is_ground g) then raise (Floundered g);
  if not (is_tabled env g) then begin
    let name, arity = pred_key_of g in
    match env.mode with
    | Well_founded when env.tabling_enabled && Database.find env.db name arity <> None ->
        (* Under WFS, negation-as-failure over an untabled predicate
           recurses through plain SLD and loops forever on negative
           cycles (p :- tnot(q). q :- tnot(p).). Auto-table the negated
           subgoal so the delaying machinery has a table to wait on, and
           retry as a proper tabled negation. *)
        Database.set_tabled env.db name arity;
        solve_tnot ev ~det ~owner ~template ~delays ~barrier ~existential g rest
    | _ ->
        (* stratified mode: negation on a non-tabled predicate falls
           back to negation as failure, as in XSB *)
        solve_ite ev ~det ~owner ~template ~delays ~barrier g (Term.Atom "fail")
          (Term.Atom "true") rest
  end
  else
    let key = Canon.of_term g in
    let decide sub =
      if has_unconditional sub then ()
      else if has_any_answer sub then begin
        (* only conditional answers: the negation is undefined unless
           delays simplify; delay it *)
        match env.mode with
        | Well_founded ->
            continue ev ~det ~owner ~template ~delays:(Dneg key :: delays) ~barrier rest
        | Stratified -> raise (Non_stratified [ key ])
      end
      else continue ev ~det ~owner ~template ~delays ~barrier rest
    in
    match find_table env key with
    | Some sub when sub.s_state = Complete -> decide sub
    | Some sub when template_unconditional sub key ->
        (* the positive subgoal already has an unconditional answer: the
           negation fails now, completion not needed *)
        ()
    | Some sub ->
        if det then raise (Touched_outer sub)
        else if sub.s_owner_eval = ev.e_id then
          suspend_waiter ev ~kind:Wneg ~owner ~template ~delays sub
            (Term.Struct ((if existential then "e_tnot" else "tnot"), [| g |]))
            rest
        else raise (Touched_outer sub)
    | None -> (
        (* optimistic nested evaluation; on failure to complete locally,
           evaluate the subgoal as part of this evaluation and wait *)
        match
          if existential then nested_completion ~stop_on_first:() ev g key
          else nested_completion ev g key
        with
        | sub -> decide sub
        | exception Touched_outer _ ->
            if det then
              error "negation over an in-progress table inside a deterministic context"
            else begin
              let sub =
                match find_table env key with
                | Some sub -> sub
                | None ->
                    let sub = create_table ev key (pred_key_of g) in
                    push_task ev (Generate sub);
                    sub
              in
              suspend_waiter ev ~kind:Wneg ~owner ~template ~delays sub
                (Term.Struct ((if existential then "e_tnot" else "tnot"), [| g |]))
                rest
            end)

and suspend_waiter ev ~kind ~owner ~template ~delays sub blocked rest =
  let env = ev.e_env in
  env.stats.st_neg_suspensions <- env.stats.st_neg_suspensions + 1;
  if obs_on env then
    emit_sub env ~depth:ev.e_depth sub Obs.Event.Negation_wait (Term.to_string blocked);
  let waiter =
    {
      w_table = sub;
      w_owner = owner;
      w_kind = kind;
      w_snapshot = susp_term blocked rest template;
      w_delays = delays;
    }
  in
  add_dep ev owner sub;
  ev.e_waiters <- waiter :: ev.e_waiters

(* ------------------------------------------------------------------ *)
(* Answers *)

and emit_answer ev owner template delays =
  let key = Canon.of_term template in
  (* delay lists are sets: normalize so duplicate answer clauses are
     detected and lists stay bounded through cycles *)
  let delays = List.sort_uniq compare_delay delays in
  match owner.s_mode with
  | Pred.Subsumptive op when delays = [] -> emit_subsumptive ev owner key op
  | _ -> emit_plain ev owner key delays

and note_dup_answer ev owner key =
  let env = ev.e_env in
  env.stats.st_dup_answers <- env.stats.st_dup_answers + 1;
  if metrics_on env then begin
    let c = mcell env owner.s_pred in
    c.Obs.Metrics.m_dup_answers <- c.Obs.Metrics.m_dup_answers + 1
  end;
  if obs_on env then
    emit_sub env ~depth:ev.e_depth owner Obs.Event.Dup_answer (key_str key)

(* stats, drains and early termination common to every new answer *)
and note_new_answer ev owner key =
  let env = ev.e_env in
  env.stats.st_answers <- env.stats.st_answers + 1;
  if metrics_on env then begin
    let c = mcell env owner.s_pred in
    c.Obs.Metrics.m_answers <- c.Obs.Metrics.m_answers + 1;
    Obs.Metrics.note_table_size c (answer_count owner)
  end;
  if obs_on env then emit_sub env ~depth:ev.e_depth owner Obs.Event.Answer (key_str key);
  schedule_drains ev owner;
  (* existential evaluations stop precisely at the answer that
     satisfies them (e_tnot's early termination, §4.4) *)
  match env.stop with Some stop when stop () -> raise Stop_eval | _ -> ()

and emit_plain ev owner key delays =
  if delays <> [] then owner.s_neg_dep <- true;
  let duplicate =
    if delays = [] then Canon.Tbl.mem owner.s_uncond key
    else
      (* an unconditional answer absorbs conditional ones for the same
         template (SLG simplification) *)
      Canon.Tbl.mem owner.s_uncond key
      || List.exists
           (fun a -> compare_delays a.a_delays delays = 0)
           (Answer_index.find owner.s_store key)
  in
  if duplicate then note_dup_answer ev owner key
  else begin
    if delays = [] then Canon.Tbl.replace owner.s_uncond key ();
    let answer = { a_template = key; a_delays = delays } in
    ignore (Answer_index.add owner.s_store key answer : int);
    note_new_answer ev owner key
  end

(* Answer subsumption: one stored answer per combination of key columns
   (all arguments but the last); a new answer with an already-seen key
   folds its value column into the holder under the lattice operation,
   mutating the stored template in place and rewinding consumers that
   had already passed it. Only unconditional answers fold; conditional
   ones take the plain path. *)
and emit_subsumptive ev owner key op =
  let env = ev.e_env in
  match Subsumption.split key with
  | None -> emit_plain ev owner key []
  | Some (k, v) ->
      if Canon.Tbl.mem owner.s_seen_raw key then note_dup_answer ev owner key
      else begin
        Canon.Tbl.add owner.s_seen_raw key ();
        let functor_name =
          match key with Canon.CStruct (f, _) -> f | _ -> assert false
        in
        let lattice f =
          try f ()
          with Subsumption.Not_numeric t ->
            error "subsumptive(%s) over a non-numeric value column: %s"
              (Subsumption.op_to_string op) (key_str t)
        in
        match Canon.Tbl.find_opt owner.s_agg k with
        | None ->
            let v0 = lattice (fun () -> Subsumption.initial op v) in
            let template = Subsumption.rebuild functor_name k v0 in
            Canon.Tbl.replace owner.s_uncond template ();
            let answer = { a_template = template; a_delays = [] } in
            let pos = Answer_index.add owner.s_store template answer in
            Canon.Tbl.replace owner.s_agg k (pos, answer);
            note_new_answer ev owner template
        | Some (pos, holder) -> (
            let current =
              match Subsumption.split holder.a_template with
              | Some (_, c) -> c
              | None -> assert false
            in
            match lattice (fun () -> Subsumption.fold op ~current v) with
            | None -> note_dup_answer ev owner key  (* subsumed *)
            | Some v' ->
                let template = Subsumption.rebuild functor_name k v' in
                Canon.Tbl.remove owner.s_uncond holder.a_template;
                Canon.Tbl.replace owner.s_uncond template ();
                holder.a_template <- template;
                env.stats.st_folds <- env.stats.st_folds + 1;
                if obs_on env then
                  emit_sub env ~depth:ev.e_depth owner Obs.Event.Fold (key_str template);
                (* consumers that already passed the holder re-consume it
                   (and everything after it) with the improved value *)
                List.iter
                  (fun c -> if c.c_consumed > pos then c.c_consumed <- pos)
                  owner.s_consumers;
                schedule_drains ev owner;
                (match env.stop with Some stop when stop () -> raise Stop_eval | _ -> ()))
      end

and schedule_drains ev owner =
  match ev.e_env.scheduling with
  | Batched when not (is_subsumptive owner) ->
      List.iter (fun c -> schedule_drain ev c) owner.s_consumers
  | _ ->
      (* keep the new answer inside the producer's SCC; cross-SCC
         consumers are drained by complete_scc (or the fixpoint flush).
         Subsumptive producers always defer: exported answers must be
         final, and folds only settle when the SCC does *)
      refresh_sccs ev;
      List.iter
        (fun c ->
          if c.c_owner.s_state = Complete || c.c_owner.s_scc = owner.s_scc then
            schedule_drain ev c)
        owner.s_consumers

(* ------------------------------------------------------------------ *)
(* Scheduler *)

and run_task ev task =
  let env = ev.e_env in
  match task with
  | Generate sub ->
      let pattern = Canon.to_term sub.skey in
      let name, arity = sub.s_pred in
      let pred =
        match Database.find env.db name arity with
        | Some p -> p
        | None -> error "tabled predicate %s/%d disappeared" name arity
      in
      note_dyn_read sub pred;
      let b = fresh_barrier env in
      let candidates = Pred.lookup pred (args_of pattern) in
      let cell = if metrics_on env then Some (mcell env sub.s_pred) else None in
      with_cut_catch env b (fun () ->
          List.iter
            (fun clause ->
              let m = Trail.mark env.trail in
              env.stats.st_resolutions <- env.stats.st_resolutions + 1;
              (match cell with
              | Some c -> c.Obs.Metrics.m_resolutions <- c.Obs.Metrics.m_resolutions + 1
              | None -> ());
              let head, body = Term.copy2 clause.Pred.head clause.Pred.body in
              if Unify.unify env.trail pattern head then
                solve ev ~det:false ~owner:sub ~template:pattern ~delays:[] ~barrier:b [ body ];
              Trail.undo_to env.trail m)
            candidates)
  | Drain consumer ->
      let store = consumer.c_table.s_store in
      if obs_on env then
        emit_sub env ~depth:ev.e_depth consumer.c_table Obs.Event.Drain
          (key_str consumer.c_table.skey);
      (* the loops re-read the size, so answers emitted mid-drain are
         consumed here rather than scheduling a redundant self-drain *)
      (match consumer.c_filter with
      | Some skel ->
          (* subsumed consumer: [c_consumed] is its last-poll stamp.
             Probe the time-stamped index for candidates newer than the
             stamp — [iter_matching] snapshots its candidate list before
             resuming anything, so answers arriving mid-iteration are
             picked up by the outer loop, each exactly once *)
          while consumer.c_consumed < Answer_index.size store do
            let from = consumer.c_consumed in
            let n = Answer_index.size store in
            consumer.c_consumed <- n;
            env.stats.st_answer_probes <- env.stats.st_answer_probes + 1;
            env.stats.st_answer_full_size <- env.stats.st_answer_full_size + (n - from);
            Answer_index.iter_matching ~from store skel (fun _ a ->
                env.stats.st_answer_candidates <- env.stats.st_answer_candidates + 1;
                resume_consumer ev consumer a)
          done
      | None ->
          while consumer.c_consumed < Answer_index.size store do
            let i = consumer.c_consumed in
            consumer.c_consumed <- i + 1;
            resume_consumer ev consumer (Answer_index.get store i)
          done);
      consumer.c_scheduled <- false
  | Run r ->
      env.stats.st_resumptions <- env.stats.st_resumptions + 1;
      let m = Trail.mark env.trail in
      let first, goals, template = open_susp r.r_snapshot in
      if obs_on env then
        emit_sub env ~depth:ev.e_depth r.r_owner Obs.Event.Resume (Term.to_string first);
      let goals = if r.r_skip_first then goals else first :: goals in
      let delays = match r.r_extra_delay with Some d -> d :: r.r_delays | None -> r.r_delays in
      let b = fresh_barrier env in
      (try solve ev ~det:false ~owner:r.r_owner ~template ~delays ~barrier:b goals with
      | Cut_signal b' when b' = b -> ()
      | Cut_signal _ -> error "cut outside its scope (cut over a table suspension?)");
      Trail.undo_to env.trail m

and resume_consumer ev consumer answer =
  let env = ev.e_env in
  env.stats.st_resumptions <- env.stats.st_resumptions + 1;
  if obs_on env then
    emit_sub env ~depth:ev.e_depth consumer.c_table Obs.Event.Resume
      (key_str answer.a_template);
  let m = Trail.mark env.trail in
  let call, goals, template = open_susp consumer.c_snapshot in
  let instance = Canon.to_term answer.a_template in
  if consumer.c_table.s_neg_dep then consumer.c_owner.s_neg_dep <- true;
  let delays =
    if answer.a_delays = [] then consumer.c_delays
    else begin
      consumer.c_owner.s_neg_dep <- true;
      Dpos (consumer.c_table.skey, answer.a_template) :: consumer.c_delays
    end
  in
  let b = fresh_barrier env in
  (if Unify.unify env.trail call instance then begin
     try solve ev ~det:false ~owner:consumer.c_owner ~template ~delays ~barrier:b goals with
     | Cut_signal b' when b' = b -> ()
     | Cut_signal _ -> error "cut outside its scope (cut over a table suspension?)"
   end
   else if consumer.c_filter <> None then
     (* a subsumed consumer's filter rejected a producer answer (an
        index candidate that does not unify with the specific call) *)
     env.stats.st_answers_filtered <- env.stats.st_answers_filtered + 1);
  Trail.undo_to env.trail m

(* Run an evaluation to fixpoint. [stop] is polled between tasks
   (existential early termination). *)
and run_eval ?stop ev =
  let env = ev.e_env in
  let saved_stop = env.stop in
  env.stop <- stop;
  let finally () = env.stop <- saved_stop in
  let stopped () = match stop with Some f -> f () | None -> false in
  let rec loop () =
    if stopped () then ()
    else
      match Queue.take_opt ev.e_tasks with
      | Some task ->
          let owner = task_owner task in
          owner.s_tasks <- owner.s_tasks - 1;
          (if metrics_on env then begin
             (* inclusive wall time: nested evaluations run inside a task
                also bill their own predicates *)
             let cell = mcell env owner.s_pred in
             let t0 = !Obs.Metrics.clock () in
             Fun.protect
               ~finally:(fun () ->
                 cell.Obs.Metrics.m_time <-
                   cell.Obs.Metrics.m_time +. (!Obs.Metrics.clock () -. t0))
               (fun () -> run_task ev task)
           end
           else run_task ev task);
          (* quiescent subgoal: its SCC may now be exhausted *)
          try_complete ev owner;
          loop ()
      | None -> completion_phase ()
  and completion_phase () =
    (* Positive fixpoint reached: no derivation can produce new answers
       except through derivations suspended on negations. Complete every
       incomplete subgoal that cannot be fed (transitively) by a waiter's
       resumption, then resume waiters whose tables completed. *)
    if flush_deferred_drains ev then loop ()
    else begin
    let incomplete = List.filter (fun s -> s.s_state = Incomplete) ev.e_created in
    if ev.e_waiters = [] then begin
      smear_neg_dep incomplete;
      List.iter (mark_complete ev) incomplete
    end
    else begin
      let module Iset = Set.Make (Int) in
      (* flow edges: answers of [s] can reach consumers' owners *)
      let reachable = Hashtbl.create 16 in
      let seeds = List.map (fun w -> w.w_owner) ev.e_waiters in
      let rec visit s =
        if not (Hashtbl.mem reachable s.s_id) then begin
          Hashtbl.replace reachable s.s_id ();
          if s.s_state = Incomplete then
            List.iter (fun c -> visit c.c_owner) s.s_consumers
        end
      in
      List.iter visit seeds;
      let completable = List.filter (fun s -> not (Hashtbl.mem reachable s.s_id)) incomplete in
      smear_neg_dep completable;
      List.iter (mark_complete ev) completable;
      if completable <> [] then ev.e_scc_dirty <- true;
      if resolve_waiters ev then loop ()
      else begin
        (* every waiter waits on a table inside the negative loop *)
        match ev.e_env.mode with
        | Stratified ->
            raise (Non_stratified (List.map (fun w -> w.w_table.skey) ev.e_waiters))
        | Well_founded ->
            let waiters = ev.e_waiters in
            ev.e_waiters <- [];
            List.iter
              (fun w ->
                match w.w_kind with
                | Wneg ->
                    push_task ev
                      (Run
                         {
                           r_owner = w.w_owner;
                           r_snapshot = w.w_snapshot;
                           r_delays = w.w_delays;
                           r_skip_first = true;
                           r_extra_delay = Some (Dneg w.w_table.skey);
                         })
                | Wgoal ->
                    error "tfindall over a non-stratified loop")
              waiters;
            loop ()
      end
    end
    end
  in
  (try loop () with
  | Stop_eval -> finally ()
  | e ->
      finally ();
      raise e);
  finally ()

let _ = is_ancestor_or_self

(* ------------------------------------------------------------------ *)
(* Incremental tabling: invalidation and repair (ISSUE 6 tentpole).

   Completed tables record which dynamic predicates their derivations
   read ([s_dyn_reads], recorded at clause resolution) and which other
   tables they consumed from ([s_deps], recorded at consumer
   registration and inline consumption). When the database mutates, the
   completed tables transitively affected are either dropped
   (invalidated) or, when the mutation is a pure clause addition and no
   affected derivation went through negation/aggregation ([s_neg_dep]),
   marked stale and re-derived in place at the start of the next query —
   existing answers are kept, generation re-runs against the grown
   clause set, and the monotonicity of definite programs guarantees the
   repaired table equals a from-scratch evaluation. *)

let completed_tables env =
  Canon.Tbl.fold
    (fun _ sub acc -> if sub.s_state = Complete then sub :: acc else acc)
    env.tables []

(* Completed tables transitively affected by a mutation of the dynamic
   predicate [pkey]: direct readers, then the reverse closure over
   consumption edges. *)
let affected_tables env pkey =
  let all = completed_tables env in
  let affected = Hashtbl.create 16 in
  let any_direct = ref false in
  List.iter
    (fun s ->
      if List.mem pkey s.s_dyn_reads then begin
        Hashtbl.replace affected s.s_id ();
        any_direct := true
      end)
    all;
  let changed = ref !any_direct in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        if
          (not (Hashtbl.mem affected s.s_id))
          && List.exists (fun d -> Hashtbl.mem affected d.s_id) s.s_deps
        then begin
          Hashtbl.replace affected s.s_id ();
          changed := true
        end)
      all
  done;
  List.filter (fun s -> Hashtbl.mem affected s.s_id) all

let note_mutation env (m : Database.mutation) =
  match m with
  | Database.Added_clause { pred; _ } | Database.Retracted_clause { pred; _ } ->
      let addition = match m with Database.Added_clause _ -> true | _ -> false in
      let affected =
        if Pred.kind pred = Pred.Dynamic then
          affected_tables env (Pred.name pred, Pred.arity pred)
        else
          (* static-predicate reads are not tracked (the hot resolution
             path stays clean): consulting clauses into a live engine
             conservatively invalidates every completed table *)
          completed_tables env
      in
      if affected <> [] then begin
        let repairable, doomed =
          List.partition
            (fun s -> addition && s.s_mode = Pred.Incremental && not s.s_neg_dep)
            affected
        in
        List.iter (fun s -> s.s_stale <- true) repairable;
        List.iter (fun s -> Canon.Tbl.remove env.tables s.skey) doomed;
        if doomed <> [] then begin
          env.stats.st_invalidations <- env.stats.st_invalidations + List.length doomed;
          if obs_on env then
            Obs.Recorder.emit env.obs ~step:env.stats.st_steps ~subgoal:0 ~pred:""
              ~call:"" ~depth:0 (Obs.Event.Invalidate (List.length doomed))
        end
      end
  | _ -> ()

(* Re-derive the stale tables in place. The whole stale set runs in one
   evaluation so mutually-dependent tables reach their joint fixpoint;
   each keeps its answer store (additions only ever add answers) and
   gets a fresh generator against the grown clause set. If the repair
   evaluation fails for any reason the stale tables are dropped instead:
   the next call re-evaluates from scratch, which is always sound. *)
let repair_stale env =
  let stale =
    Canon.Tbl.fold
      (fun _ s acc -> if s.s_stale && s.s_state = Complete then s :: acc else acc)
      env.tables []
  in
  if stale <> [] then begin
    let ev = new_eval env None in
    List.iter
      (fun s ->
        s.s_stale <- false;
        s.s_state <- Incomplete;
        s.s_owner_eval <- ev.e_id;
        s.s_consumers <- [];
        s.s_tasks <- 0;
        ev.e_created <- s :: ev.e_created;
        push_task ev (Generate s))
      stale;
    ev.e_scc_dirty <- true;
    match run_eval ev with
    | () ->
        env.stats.st_repairs <- env.stats.st_repairs + List.length stale;
        if obs_on env then
          Obs.Recorder.emit env.obs ~step:env.stats.st_steps ~subgoal:0 ~pred:""
            ~call:"" ~depth:0 (Obs.Event.Repair (List.length stale))
    | exception _ ->
        List.iter (fun s -> Canon.Tbl.remove env.tables s.skey) stale;
        abandon_eval ev
  end
let _ = error
