(** The public query interface to the SLG engine.

    An engine wraps a {!Xsb_db.Database.t} with a table store and runs
    queries under SLG resolution (paper §3): finite and non-redundant on
    datalog, polynomial for (modularly) stratified programs, with
    well-founded delaying available via [~mode:Well_founded]. *)

open Xsb_term
open Xsb_db

type t

val create : ?mode:Machine.mode -> ?scheduling:Machine.scheduling -> Database.t -> t
val db : t -> Database.t
val env : t -> Machine.env

(** {1 Loading} *)

val consult_string : t -> string -> unit
(** Load a program text (clauses and directives); deferred [:- Goal]
    directives are executed. *)

val consult_string_count : t -> string -> int
(** Like {!consult_string}, returning the number of clauses loaded. *)

val consult_file : t -> string -> unit

(** {1 Queries} *)

type solution = {
  bindings : (string * Term.t) list;  (** named query variables, in order *)
  conditional : bool;  (** true when the answer carries delayed literals *)
  delays : Machine.delay list;
}

val query : t -> Term.t -> solution list
(** All solutions of a goal term, to completion. Variable names are taken
    from the terms' source names where available. *)

val query_string : t -> string -> solution list
(** Parse (with the database's operators) and run. *)

val query_first : t -> Term.t -> solution option
(** Stop the evaluation at the first answer (existential query). *)

val query_first_string : t -> string -> solution option

(** {1 Bounded queries}

    One code path, shared by the CLI's [--timeout]/[--max-steps] flags
    and the query server's per-request deadlines, that turns
    interruption into a typed result instead of an escaping
    {!Machine.Step_limit}. *)

type bounded =
  [ `Answers of solution list  (** evaluation reached its fixpoint *)
  | `Truncated of solution list  (** stopped at the [limit]-th answer *)
  | `Timeout of solution list
    (** the [stop] callback fired, or the per-query [max_steps] budget
        ran out; carries the answers derived before interruption *) ]

val run_bounded :
  ?max_steps:int -> ?stop:(unit -> bool) -> ?limit:int -> t -> Term.t -> bounded
(** [run_bounded ?max_steps ?stop ?limit t goal] runs [goal] like
    {!query} but bounded: [max_steps] is a step budget for this query
    alone, relative to the engine's running counter (a non-positive
    budget is ignored; an engine-wide {!set_max_steps} bound still
    applies, and when it is the tighter of the two its overrun still
    raises {!Machine.Step_limit} rather than returning [`Timeout]),
    [stop] is
    polled during evaluation (wall-clock deadlines, cancellation), and
    [limit] stops the evaluation once that many answers exist (row
    limits). Whatever the ending, the private query table is dropped
    and the trail restored, so table space stays consistent for the
    next query on the same engine. *)

val run_bounded_string :
  ?max_steps:int -> ?stop:(unit -> bool) -> ?limit:int -> t -> string -> bounded

val succeeds : t -> string -> bool
val count_solutions : t -> string -> int

(** {1 Control} *)

val set_tabling : t -> bool -> unit
(** Disable to execute everything by SLDNF, ignoring table declarations
    (used for the paper's SLDNF comparison rows). *)

val scheduling : t -> Machine.scheduling

val set_scheduling : t -> Machine.scheduling -> unit
(** Switch the answer-scheduling strategy ({!Machine.scheduling}) for
    subsequent queries; tables already completed are unaffected. *)

val set_max_steps : t -> int -> unit
(** Raise {!Machine.Step_limit} after this many resolution steps
    (0 = unlimited); demonstrates SLD non-termination finitely. *)

(** {1 Observability} *)

val recorder : t -> Xsb_obs.Obs.Recorder.t
(** The engine's trace-event recorder (see {!Xsb_obs.Obs}). Inert until
    a sink is attached. *)

val add_sink : t -> Xsb_obs.Obs.Sink.t -> unit
(** Attach a sink; every subsequent engine event (new subgoal, answer,
    suspend/resume, negation wait, SCC completion, drain, abolish) is
    delivered to it. Sinks stack. *)

val clear_sinks : t -> unit
(** Detach every sink; tracing returns to zero cost. *)

val metrics : t -> Xsb_obs.Obs.Metrics.t

val set_profiling : t -> bool -> unit
(** Enable the per-predicate profiling registry (calls, answers,
    duplicate ratio, suspensions, resolutions, task wall time, peak
    answer-table size). Enabling from a disabled state resets the
    registry. *)

val set_count_calls : t -> bool -> unit
(** Alias of {!set_profiling}, kept for the paper's call-count
    experiments. *)

val call_count : t -> string -> int -> int
(** Number of calls made to a predicate since profiling was enabled. *)

val pp_profile : ?internal:bool -> Format.formatter -> t -> unit
(** The sortable [--profile] report, hottest predicate first. *)

val pp_table_dump : Format.formatter -> t -> unit
(** The [table_dump/0] report of live table space. *)

val stats : t -> Machine.stats

val table_space_bytes : t -> int
(** See {!Machine.table_space_bytes}. *)

val call_index_bytes : t -> int
(** See {!Machine.call_index_bytes}. *)

val table_bytes_by_pred : t -> ((string * int) * int) list
(** See {!Machine.table_bytes_by_pred}. *)

val publish_metrics : t -> Xsb_obs.Metrics.t -> unit
(** Snapshot the engine's observable state into a metrics registry:
    every {!Machine.stats} counter as [xsb_engine_stat{kind=...}], the
    live table count, total table-space and call-index byte estimates,
    and per-predicate [xsb_table_bytes{pred="name/arity"}] gauges.
    Values are sampled at call time — callers build (or refresh) the
    registry per scrape. Shared by the server's [METRICS] op and the
    CLI's [--metrics-dump]. *)

val reset_tables : t -> unit
(** Abolish the completed tables (see {!Machine.abolish_tables};
    incomplete tables of an in-progress evaluation are retained) and
    reset the evaluation counters. *)

val tables : t -> (Canon.t * bool * Canon.t list) list
(** [(subgoal key, complete?, answer templates)] for every table. *)
