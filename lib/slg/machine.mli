(** The SLG evaluation machine (paper §3): tabled resolution with
    consumer suspension/resumption, batch completion, SLG negation,
    existential negation, and (in well-founded mode) delaying.

    This is the low-level interface; use {!Engine} for queries. *)

open Xsb_term
open Xsb_db

exception Engine_error of string
exception Floundered of Term.t
exception Non_stratified of Canon.t list
exception Step_limit
exception Prolog_ball of Canon.t
(** An uncaught [throw/1] ball. *)

type mode = Stratified | Well_founded

(** Scheduling strategies for tabled evaluation (cf. Areias & Rocha, "On
    Combining Linear-Based Strategies for Tabled Evaluation of Logic
    Programs"). [Batched] eagerly drains every new answer to all
    registered consumers; [Local] keeps answers inside the producer's
    strongly-connected component of subgoals until the SCC completes and
    only then returns them outward. Both strategies compute the same
    answer sets; they differ in answer-arrival order and in how long
    suspension state stays live. *)
type scheduling = Local | Batched

val scheduling_of_string : string -> scheduling option
(** ["local"] / ["batched"] (case-insensitive). *)

val scheduling_to_string : scheduling -> string

val default_scheduling : unit -> scheduling
(** [Batched] unless the [XSB_SCHEDULING] environment variable names a
    strategy (the CI matrix runs the suites under both). *)

(** Delayed literals of conditional answers. *)
type delay =
  | Dneg of Canon.t  (** delayed ground negation [tnot G] *)
  | Dpos of Canon.t * Canon.t  (** (subgoal, answer) used conditionally *)

val compare_delay : delay -> delay -> int
(** Explicit structural order (via {!Canon.compare}), so delay-list
    normalization and answer-clause dedup do not depend on the physical
    representation of canonical terms. *)

val compare_delays : delay list -> delay list -> int

type answer = { mutable a_template : Canon.t; mutable a_delays : delay list }
(** [a_template] is mutable for answer subsumption only: folding a
    better value into an existing answer rewrites the stored template in
    place. *)

type sstate = Incomplete | Complete

type subgoal = {
  skey : Canon.t;
  s_id : int;
  s_pred : string * int;
  mutable s_state : sstate;
  mutable s_owner_eval : int;
  s_store : answer Xsb_index.Answer_store.Index.t;
      (** trie-indexed answer clauses, in insertion order (paper §4.5) *)
  s_uncond : unit Canon.Tbl.t;
  mutable s_consumers : consumer list;
  mutable s_deps : subgoal list;
      (** dependency-graph out-edges: tables this subgoal's suspended
          derivations consume from or negatively wait on *)
  mutable s_tasks : int;  (** queued scheduler tasks feeding this subgoal *)
  mutable s_scc : int;  (** SCC id from the last incremental Tarjan pass *)
  s_mode : Pred.table_mode;
      (** the predicate's tabling mode at table creation *)
  mutable s_dyn_reads : (string * int) list;
      (** dynamic predicates whose clauses this subgoal's derivations
          resolved against (incremental-tabling dependency leaves) *)
  mutable s_neg_dep : bool;
      (** a feeding derivation used negation/if-then-else/aggregation:
          invalidate, never repair *)
  mutable s_stale : bool;
      (** completed but awaiting in-place repair (see {!repair_stale}) *)
  s_seen_raw : unit Canon.Tbl.t;
      (** subsumptive only: raw answers already folded *)
  s_agg : (int * answer) Canon.Tbl.t;
      (** subsumptive only: key columns -> (position, holder answer) *)
}

and consumer = {
  c_table : subgoal;
  c_owner : subgoal;
  c_snapshot : Canon.t;
  c_delays : delay list;
  mutable c_consumed : int;
  mutable c_scheduled : bool;  (** a [Drain] task is already queued *)
  c_filter : Canon.t option;
      (** call subsumption: [Some skel] marks a subsumed consumer, whose
          call is a proper instance of the producer's subgoal; drains
          probe the producer's time-stamped answer index with [skel]
          from the consumer's last-poll stamp and filter candidates by
          unification with the snapshot call *)
}

type waiter_kind = Wneg | Wgoal

type waiter = {
  w_table : subgoal;
  w_owner : subgoal;
  w_kind : waiter_kind;
  w_snapshot : Canon.t;
  w_delays : delay list;
}

type task = Drain of consumer | Generate of subgoal | Run of run

and run = {
  r_owner : subgoal;
  r_snapshot : Canon.t;
  r_delays : delay list;
  r_skip_first : bool;
  r_extra_delay : delay option;
}

type stats = {
  mutable st_subgoals : int;
  mutable st_answers : int;
  mutable st_dup_answers : int;
  mutable st_suspensions : int;
  mutable st_resumptions : int;
  mutable st_resolutions : int;
  mutable st_neg_suspensions : int;
  mutable st_nested_evals : int;
  mutable st_completions : int;
  mutable st_answer_probes : int;  (** indexed answer retrievals *)
  mutable st_answer_candidates : int;  (** candidates those probes returned *)
  mutable st_answer_full_size : int;
      (** table sizes a full scan would have visited *)
  mutable st_subsumed_calls : int;
      (** bound calls served from a completed subsuming table *)
  mutable st_subsumption_hits : int;
      (** calls that found a live subsuming table through the call index
          (Subsumption mode) and created no generator of their own *)
  mutable st_answers_filtered : int;
      (** producer answers a subsumed consumer's unification rejected *)
  mutable st_drains_scheduled : int;  (** Drain tasks queued (after dedup) *)
  mutable st_sccs_completed : int;
      (** SCCs closed by incremental completion, before the global fixpoint *)
  mutable st_early_completions : int;
      (** subgoals completed incrementally (members of those SCCs) *)
  mutable st_max_scc_size : int;  (** largest SCC closed incrementally *)
  mutable st_invalidations : int;
      (** completed tables dropped by a database mutation *)
  mutable st_repairs : int;
      (** stale incremental tables re-derived in place *)
  mutable st_folds : int;
      (** answers folded into an existing subsumptive answer *)
  mutable st_steps : int;
}

val fresh_stats : unit -> stats

val reset_stats : stats -> unit
(** Zero every counter in place (the record is shared by live
    references). Called by {!abolish_tables} so an engine reset cannot
    leak counters into the next run's measurements. *)

val pp_stats : Format.formatter -> stats -> unit
(** The [statistics/0] report, one counter per line. *)

type env = {
  db : Database.t;
  trail : Trail.t;
  tables : subgoal Canon.Tbl.t;
  call_index : (string * int, Canon.t Xsb_index.Answer_store.Index.t) Hashtbl.t;
      (** call subsumption: per-predicate discrimination trie over the
          subgoal keys of Subsumption-mode tables; probed with
          [retrieve_subsuming] when a fresh call arrives, candidates
          validated against [tables] *)
  mode : mode;
  mutable scheduling : scheduling;
  mutable tabling_enabled : bool;
  mutable next_eval : int;
  mutable next_subgoal : int;
  mutable next_barrier : int;
  mutable max_steps : int;
  stats : stats;
  mutable out : Format.formatter;
  collectors : (Term.t * Term.t list ref) Stack.t;
  mutable captured_incomplete : subgoal option;
  mutable stop : (unit -> bool) option;
  obs : Xsb_obs.Obs.Recorder.t;
      (** typed trace-event stream; inert until a sink is attached *)
  metrics : Xsb_obs.Obs.Metrics.t;
      (** per-predicate profiling registry; inert until enabled *)
}

type eval = {
  e_id : int;
  e_parent : eval option;
  e_depth : int;  (** nesting depth: 0 for top-level evaluations *)
  e_env : env;
  e_tasks : task Queue.t;
      (** FIFO: generators run before the drains they caused; [Drain]
          tasks are deduplicated via [c_scheduled] *)
  mutable e_waiters : waiter list;
  mutable e_created : subgoal list;
  mutable e_scc_dirty : bool;
      (** the dependency graph changed since the last Tarjan pass *)
}

val create_env : ?mode:mode -> ?scheduling:scheduling -> Database.t -> env
val new_eval : env -> eval option -> eval

val create_table : eval -> Canon.t -> string * int -> subgoal
val delete_table : env -> subgoal -> unit

val remove_tables_for : env -> string * int -> int
(** Drop every {e completed} table for the given predicate; returns how
    many were dropped. Called when the predicate is abolished, so stale
    memoized answers cannot survive a re-declaration. *)

val find_table : env -> Canon.t -> subgoal option
val has_unconditional : subgoal -> bool
val has_any_answer : subgoal -> bool

val answer_count : subgoal -> int
val iter_answers : (answer -> unit) -> subgoal -> unit
(** In insertion order. *)

val fold_answers : ('a -> answer -> 'a) -> 'a -> subgoal -> 'a

(** {1 Table-space memory accounting}

    Estimated bytes on the {!Canon.size_bytes} model: answer tries
    (nodes, edges, entries, answer templates and delay lists) plus the
    per-table bookkeeping hashtables. Upper-bound estimates that track
    growth — the measurement substrate for table eviction; surfaced in
    [statistics/1] ([table_bytes], [call_index_bytes]), [table_dump/0]
    and the server's METRICS exposition. *)

val table_bytes : subgoal -> int
val table_space_bytes : env -> int

val call_index_bytes : env -> int
(** The call-subsumption discrimination tries ({!env.call_index}). *)

val table_bytes_by_pred : env -> ((string * int) * int) list
(** Per predicate, summed over its (non-private) tables, largest
    first. *)

val abolish_tables : env -> unit
(** Abolish the completed tables and {!reset_stats} the counters.
    Incomplete tables belong to an in-progress evaluation and are
    retained — abolishing them would leave that evaluation's
    bookkeeping pointing at detached subgoals. *)

val pp_table_dump : Format.formatter -> env -> unit
(** The [table_dump/0] report: every (non-private) table with its
    completion state and answers. *)

val susp_term : Term.t -> Term.t list -> Term.t -> Canon.t
(** [susp_term first rest template] packages a derivation state for a
    [Run] task or a snapshot. *)

val push_task : eval -> task -> unit

val run_eval : ?stop:(unit -> bool) -> eval -> unit
(** Run the evaluation's scheduler to fixpoint (or until [stop]). May
    raise {!Non_stratified} (in [Stratified] mode), {!Floundered},
    {!Engine_error}, {!Step_limit}. *)

val abandon_eval : eval -> unit
(** Delete the evaluation's incomplete tables and drop its tasks. *)

(** {1 Incremental tabling} *)

val note_mutation : env -> Database.mutation -> unit
(** React to a database mutation: completed tables transitively affected
    by the mutated predicate (via [s_dyn_reads] and [s_deps]) are
    dropped — except incremental tables affected by a pure clause
    addition whose derivations were negation-free, which are marked
    stale for in-place repair instead. A mutation of a {e static}
    predicate conservatively invalidates every completed table. Wired to
    {!Database.on_mutation} by {!Engine.create}. *)

val repair_stale : env -> unit
(** Re-derive every stale incremental table in place, all in one
    evaluation (so mutually-dependent tables reach their joint
    fixpoint). Existing answers are kept; generators re-run against the
    grown clause set. If the repair evaluation fails, the stale tables
    are dropped and the next call re-evaluates from scratch. Called by
    the engine at the start of each query. *)
