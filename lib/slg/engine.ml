open Xsb_term
open Xsb_db

type t = { database : Database.t; env : Machine.env; mutable query_counter : int }

let create ?mode ?scheduling database =
  let t = { database; env = Machine.create_env ?mode ?scheduling database; query_counter = 0 } in
  (* abolishing a predicate must also abolish its memoized answers:
     without this, a completed table for p/N keeps answering from
     clauses that no longer exist after remove_pred + re-declare *)
  Database.on_mutation database (function
    | Database.Removed_pred { name; arity } ->
        ignore (Machine.remove_tables_for t.env (name, arity))
    | (Database.Added_clause _ | Database.Retracted_clause _) as m ->
        (* incremental tabling: drop (or mark for repair) only the
           completed tables the mutation actually affects *)
        Machine.note_mutation t.env m
    | _ -> ());
  t

let db t = t.database
let env t = t.env

type solution = {
  bindings : (string * Term.t) list;
  conditional : bool;
  delays : Machine.delay list;
}

let var_name fallback v =
  match v.Term.vname with Some n -> n | None -> Printf.sprintf "_%s%d" fallback v.Term.vid

(* Run [goal] to completion (or first answer / answer limit / external
   stop / step budget) against a fresh, private query table, then read
   the answers back out of table space.

   Returns the solutions found together with how the evaluation ended:
   [`Complete] (fixpoint reached), [`Limit] (the answer limit was hit),
   or [`Interrupted] (the [stop] callback fired, or the step budget ran
   out mid-derivation). In every case the private query table is
   dropped and the trail restored, so table space stays consistent for
   the next query on the same engine. *)
let run_query_bounded ?limit ?stop ?max_steps t goal =
  let goal = Database.encode t.database goal in
  (* stale incremental tables are repaired before the query reads them;
     runs under the engine-wide step bound, not this query's budget *)
  Machine.repair_stale t.env;
  let vars = Term.vars goal in
  let names = List.map (var_name "G") vars in
  t.query_counter <- t.query_counter + 1;
  let functor_name = Printf.sprintf "$query%d" t.query_counter in
  let template = Term.struct_ functor_name (Array.of_list (List.map (fun v -> Term.Var v) vars)) in
  let ev = Machine.new_eval t.env None in
  let qsub = Machine.create_table ev (Canon.of_term template) (functor_name, List.length vars) in
  Machine.push_task ev
    (Machine.Run
       {
         r_owner = qsub;
         r_snapshot = Machine.susp_term goal [] template;
         r_delays = [];
         r_skip_first = false;
         r_extra_delay = None;
       });
  let limit_hit () = match limit with Some n -> Machine.answer_count qsub >= n | None -> false in
  let stop_hit () = match stop with Some f -> f () | None -> false in
  let stop_fn =
    match (limit, stop) with
    | None, None -> None
    | _ -> Some (fun () -> limit_hit () || stop_hit ())
  in
  (* a per-query step budget, relative to the engine's running step
     counter. Install it only when it is the binding bound: if a tighter
     engine-wide [set_max_steps] bound is already in place (or no usable
     budget was given), a [Step_limit] overrun is the engine-wide
     bound's and must keep raising, not be reported as `Interrupted. *)
  let saved_max = t.env.Machine.max_steps in
  let budget_binding =
    match max_steps with
    | Some budget when budget > 0 ->
        let absolute = t.env.Machine.stats.Machine.st_steps + budget in
        if saved_max > 0 && saved_max <= absolute then false
        else begin
          t.env.Machine.max_steps <- absolute;
          true
        end
    | _ -> false
  in
  let trail_mark = Xsb_term.Trail.mark t.env.Machine.trail in
  let finish () =
    (* never leave in-progress tables behind: they would block later
       queries; the private query table is always dropped. A stopped
       evaluation may have been interrupted mid-derivation, so restore
       the trail too. *)
    t.env.Machine.max_steps <- saved_max;
    Xsb_term.Trail.undo_to t.env.Machine.trail trail_mark;
    Machine.abandon_eval ev;
    Machine.delete_table t.env qsub
  in
  let ending =
    match Machine.run_eval ?stop:stop_fn ev with
    | () -> if limit_hit () then `Limit else if stop_hit () then `Interrupted else `Complete
    | exception Machine.Step_limit when budget_binding -> `Interrupted
    | exception e ->
        finish ();
        raise e
  in
  let solutions =
    Machine.fold_answers
      (fun acc (a : Machine.answer) ->
        let instance = Canon.to_term a.Machine.a_template in
        let args =
          match Term.deref instance with
          | Term.Struct (_, args) -> Array.to_list args
          | _ -> []
        in
        {
          bindings = List.combine names args;
          conditional = a.Machine.a_delays <> [];
          delays = a.Machine.a_delays;
        }
        :: acc)
      [] qsub
    |> List.rev
  in
  finish ();
  (solutions, ending)

let run_query ?(first = false) t goal =
  fst (run_query_bounded ?limit:(if first then Some 1 else None) t goal)

let query t goal = run_query t goal

let query_first t goal = match run_query ~first:true t goal with s :: _ -> Some s | [] -> None

type bounded =
  [ `Answers of solution list | `Truncated of solution list | `Timeout of solution list ]

let run_bounded ?max_steps ?stop ?limit t goal : bounded =
  let solutions, ending = run_query_bounded ?limit ?stop ?max_steps t goal in
  match ending with
  | `Complete -> `Answers solutions
  | `Limit -> `Truncated solutions
  | `Interrupted -> `Timeout solutions

let parse t text = Xsb_parse.Parser.term_of_string ~ops:(Database.ops t.database) text

let run_bounded_string ?max_steps ?stop ?limit t text =
  run_bounded ?max_steps ?stop ?limit t (parse t text)

let query_string t text = query t (parse t text)
let query_first_string t text = query_first t (parse t text)
let succeeds t text = query_first_string t text <> None
let count_solutions t text = List.length (query_string t text)

let run_deferred t goals = List.iter (fun g -> ignore (query t g)) goals

let consult_string_count t source =
  let result = Loader.consult_string t.database source in
  run_deferred t result.Loader.deferred_goals;
  result.Loader.clauses_loaded

let consult_string t source = ignore (consult_string_count t source)

let consult_file t path =
  let result = Loader.consult_file t.database path in
  run_deferred t result.Loader.deferred_goals

let set_tabling t flag = t.env.Machine.tabling_enabled <- flag

let scheduling t = t.env.Machine.scheduling
let set_scheduling t strategy = t.env.Machine.scheduling <- strategy
let set_max_steps t n = t.env.Machine.max_steps <- n

let recorder t = t.env.Machine.obs
let metrics t = t.env.Machine.metrics

let add_sink t sink = Xsb_obs.Obs.Recorder.attach t.env.Machine.obs sink
let clear_sinks t = Xsb_obs.Obs.Recorder.clear t.env.Machine.obs

let set_profiling t flag =
  let m = t.env.Machine.metrics in
  if flag && not (Xsb_obs.Obs.Metrics.enabled m) then Xsb_obs.Obs.Metrics.reset m;
  Xsb_obs.Obs.Metrics.set_enabled m flag

(* call counting is the profiling registry's m_calls column *)
let set_count_calls = set_profiling
let call_count t name arity = Xsb_obs.Obs.Metrics.calls t.env.Machine.metrics name arity

let pp_profile ?internal ppf t = Xsb_obs.Obs.Metrics.pp_report ?internal ppf (metrics t)
let pp_table_dump ppf t = Machine.pp_table_dump ppf t.env

let stats t = t.env.Machine.stats

let table_space_bytes t = Machine.table_space_bytes t.env
let call_index_bytes t = Machine.call_index_bytes t.env
let table_bytes_by_pred t = Machine.table_bytes_by_pred t.env

let publish_metrics t reg =
  let module M = Xsb_obs.Metrics in
  let s = t.env.Machine.stats in
  let stat kind v =
    let g =
      M.gauge reg ~labels:[ ("kind", kind) ]
        ~help:"SLG evaluation counters since the last table reset."
        "xsb_engine_stat"
    in
    M.Gauge.set g (Float.of_int v)
  in
  stat "subgoals" s.Machine.st_subgoals;
  stat "answers" s.Machine.st_answers;
  stat "dup_answers" s.Machine.st_dup_answers;
  stat "suspensions" s.Machine.st_suspensions;
  stat "resumptions" s.Machine.st_resumptions;
  stat "resolutions" s.Machine.st_resolutions;
  stat "neg_suspensions" s.Machine.st_neg_suspensions;
  stat "nested_evals" s.Machine.st_nested_evals;
  stat "completions" s.Machine.st_completions;
  stat "answer_probes" s.Machine.st_answer_probes;
  stat "answer_candidates" s.Machine.st_answer_candidates;
  stat "answer_full_size" s.Machine.st_answer_full_size;
  stat "subsumed_calls" s.Machine.st_subsumed_calls;
  stat "subsumption_hits" s.Machine.st_subsumption_hits;
  stat "answers_filtered" s.Machine.st_answers_filtered;
  stat "drains_scheduled" s.Machine.st_drains_scheduled;
  stat "sccs_completed" s.Machine.st_sccs_completed;
  stat "early_completions" s.Machine.st_early_completions;
  stat "max_scc_size" s.Machine.st_max_scc_size;
  stat "invalidations" s.Machine.st_invalidations;
  stat "repairs" s.Machine.st_repairs;
  stat "folds" s.Machine.st_folds;
  stat "steps" s.Machine.st_steps;
  M.Gauge.set
    (M.gauge reg ~help:"Live tabled subgoals." "xsb_engine_tables")
    (Float.of_int (Canon.Tbl.length t.env.Machine.tables));
  M.Gauge.set
    (M.gauge reg
       ~help:"Estimated bytes of all answer tables (tries, entries, bookkeeping)."
       "xsb_table_space_bytes")
    (Float.of_int (table_space_bytes t));
  M.Gauge.set
    (M.gauge reg
       ~help:"Estimated bytes of the call-subsumption discrimination tries."
       "xsb_call_index_bytes")
    (Float.of_int (call_index_bytes t));
  List.iter
    (fun ((name, arity), bytes) ->
      let g =
        M.gauge reg
          ~labels:[ ("pred", Printf.sprintf "%s/%d" name arity) ]
          ~help:"Estimated table bytes per tabled predicate." "xsb_table_bytes"
      in
      M.Gauge.set g (Float.of_int bytes))
    (table_bytes_by_pred t)

let reset_tables t = Machine.abolish_tables t.env

let tables t =
  Canon.Tbl.fold
    (fun key (sub : Machine.subgoal) acc ->
      let answers =
        Machine.fold_answers
          (fun acc (a : Machine.answer) -> a.Machine.a_template :: acc)
          [] sub
        |> List.rev
      in
      (key, sub.Machine.s_state = Machine.Complete, answers) :: acc)
    t.env.Machine.tables []
