open Xsb_term
open Xsb_db

exception Builtin_error of string

type ctx = { trail : Trail.t; db : Database.t; out : Format.formatter }

type t = ctx -> Term.t array -> (unit -> unit) -> unit

let error fmt = Fmt.kstr (fun s -> raise (Builtin_error s)) fmt

let unify_det ctx a b sk =
  let m = Trail.mark ctx.trail in
  if Unify.unify ctx.trail a b then sk ();
  Trail.undo_to ctx.trail m

let check test sk = if test then sk ()

(* ---- term inspection / construction ---- *)

let functor3 ctx args sk =
  match Term.deref args.(0) with
  | Term.Var _ -> (
      let name = Term.deref args.(1) and arity = Term.deref args.(2) in
      match (name, arity) with
      | _, Term.Int 0 -> unify_det ctx args.(0) name sk
      | Term.Atom f, Term.Int n when n > 0 ->
          unify_det ctx args.(0) (Term.Struct (f, Array.init n (fun _ -> Term.fresh_var ()))) sk
      | _ -> error "functor/3: insufficiently instantiated")
  | Term.Struct (f, fargs) ->
      unify_det ctx
        (Term.Struct (",", [| args.(1); args.(2) |]))
        (Term.Struct (",", [| Term.Atom f; Term.Int (Array.length fargs) |]))
        sk
  | t -> unify_det ctx (Term.Struct (",", [| args.(1); args.(2) |]))
           (Term.Struct (",", [| t; Term.Int 0 |]))
           sk

let arg3 ctx args sk =
  match (Term.deref args.(0), Term.deref args.(1)) with
  | Term.Int n, Term.Struct (_, fargs) when n >= 1 && n <= Array.length fargs ->
      unify_det ctx args.(2) fargs.(n - 1) sk
  | Term.Int _, _ -> ()
  | _ -> error "arg/3: first argument must be an integer"

let univ ctx args sk =
  match Term.deref args.(0) with
  | Term.Struct (f, fargs) ->
      unify_det ctx args.(1) (Term.list_ (Term.Atom f :: Array.to_list fargs)) sk
  | Term.Atom a -> unify_det ctx args.(1) (Term.list_ [ Term.Atom a ]) sk
  | (Term.Int _ | Term.Float _) as t -> unify_det ctx args.(1) (Term.list_ [ t ]) sk
  | Term.Var _ -> (
      match Term.to_list args.(1) with
      | Some (h :: rest) -> (
          match (Term.deref h, rest) with
          | h, [] -> unify_det ctx args.(0) h sk
          | Term.Atom f, rest -> unify_det ctx args.(0) (Term.app f rest) sk
          | _ -> error "=../2: bad list")
      | _ -> error "=../2: insufficiently instantiated")

(* ---- arithmetic ---- *)

let is2 ctx args sk =
  let v = Arith.eval args.(1) in
  unify_det ctx args.(0) (Arith.to_term v) sk

let arith_cmp op _ctx args sk =
  let a = Arith.eval args.(0) and b = Arith.eval args.(1) in
  check (op (Arith.compare_numbers a b) 0) sk

(* ---- enumeration ---- *)

let between ctx args sk =
  match (Term.deref args.(0), Term.deref args.(1)) with
  | Term.Int lo, Term.Int hi -> (
      match Term.deref args.(2) with
      | Term.Int x -> check (lo <= x && x <= hi) sk
      | Term.Var _ ->
          for x = lo to hi do
            let m = Trail.mark ctx.trail in
            if Unify.unify ctx.trail args.(2) (Term.Int x) then sk ();
            Trail.undo_to ctx.trail m
          done
      | _ -> ())
  | _ -> error "between/3: bounds must be integers"

let succ2 ctx args sk =
  match (Term.deref args.(0), Term.deref args.(1)) with
  | Term.Int a, _ -> unify_det ctx args.(1) (Term.Int (a + 1)) sk
  | _, Term.Int b when b > 0 -> unify_det ctx args.(0) (Term.Int (b - 1)) sk
  | _ -> error "succ/2: insufficiently instantiated"

let length2 ctx args sk =
  match Term.to_list args.(0) with
  | Some l -> unify_det ctx args.(1) (Term.Int (List.length l)) sk
  | None -> (
      match (Term.deref args.(0), Term.deref args.(1)) with
      | Term.Var _, Term.Int n when n >= 0 ->
          unify_det ctx args.(0) (Term.list_ (List.init n (fun _ -> Term.fresh_var ()))) sk
      | _ -> error "length/2: insufficiently instantiated")

(* ---- atoms and codes ---- *)

let text_of t =
  match Term.deref t with
  | Term.Atom a -> Some a
  | Term.Int i -> Some (string_of_int i)
  | Term.Float f -> Some (Fmt.str "%g" f)
  | _ -> None

let codes_term s = Term.list_ (List.map (fun c -> Term.Int (Char.code c)) (List.of_seq (String.to_seq s)))
let chars_term s =
  Term.list_ (List.map (fun c -> Term.Atom (String.make 1 c)) (List.of_seq (String.to_seq s)))

let string_of_codes l =
  let buf = Buffer.create 16 in
  let ok =
    List.for_all
      (fun t ->
        match Term.deref t with
        | Term.Int c when c >= 0 && c < 256 ->
            Buffer.add_char buf (Char.chr c);
            true
        | _ -> false)
      l
  in
  if ok then Some (Buffer.contents buf) else None

let string_of_chars l =
  let buf = Buffer.create 16 in
  let ok =
    List.for_all
      (fun t ->
        match Term.deref t with
        | Term.Atom a when String.length a = 1 ->
            Buffer.add_char buf a.[0];
            true
        | _ -> false)
      l
  in
  if ok then Some (Buffer.contents buf) else None

let atom_codes ctx args sk =
  match text_of args.(0) with
  | Some s -> unify_det ctx args.(1) (codes_term s) sk
  | None -> (
      match Option.bind (Term.to_list args.(1)) string_of_codes with
      | Some s -> unify_det ctx args.(0) (Term.Atom s) sk
      | None -> error "atom_codes/2: insufficiently instantiated")

let atom_chars ctx args sk =
  match text_of args.(0) with
  | Some s -> unify_det ctx args.(1) (chars_term s) sk
  | None -> (
      match Option.bind (Term.to_list args.(1)) string_of_chars with
      | Some s -> unify_det ctx args.(0) (Term.Atom s) sk
      | None -> error "atom_chars/2: insufficiently instantiated")

let number_codes ctx args sk =
  match Term.deref args.(0) with
  | Term.Int _ | Term.Float _ ->
      unify_det ctx args.(1) (codes_term (Option.get (text_of args.(0)))) sk
  | _ -> (
      match Option.bind (Term.to_list args.(1)) string_of_codes with
      | Some s -> (
          match int_of_string_opt s with
          | Some i -> unify_det ctx args.(0) (Term.Int i) sk
          | None -> (
              match float_of_string_opt s with
              | Some f -> unify_det ctx args.(0) (Term.Float f) sk
              | None -> ()))
      | None -> error "number_codes/2: insufficiently instantiated")

let atom_number ctx args sk =
  match Term.deref args.(0) with
  | Term.Atom a -> (
      match int_of_string_opt a with
      | Some i -> unify_det ctx args.(1) (Term.Int i) sk
      | None -> (
          match float_of_string_opt a with
          | Some f -> unify_det ctx args.(1) (Term.Float f) sk
          | None -> ()))
  | _ -> (
      match text_of args.(1) with
      | Some s -> unify_det ctx args.(0) (Term.Atom s) sk
      | None -> error "atom_number/2: insufficiently instantiated")

let atom_length ctx args sk =
  match text_of args.(0) with
  | Some s -> unify_det ctx args.(1) (Term.Int (String.length s)) sk
  | None -> error "atom_length/2: first argument must be atomic"

let atom_concat ctx args sk =
  match (text_of args.(0), text_of args.(1)) with
  | Some a, Some b -> unify_det ctx args.(2) (Term.Atom (a ^ b)) sk
  | _ -> (
      match text_of args.(2) with
      | Some s ->
          for i = 0 to String.length s do
            let m = Trail.mark ctx.trail in
            if
              Unify.unify ctx.trail args.(0) (Term.Atom (String.sub s 0 i))
              && Unify.unify ctx.trail args.(1)
                   (Term.Atom (String.sub s i (String.length s - i)))
            then sk ();
            Trail.undo_to ctx.trail m
          done
      | None -> error "atom_concat/3: insufficiently instantiated")

(* ---- output ---- *)

let write_term ctx t = Fmt.pf ctx.out "%a" (Xsb_parse.Pretty.pp ~ops:(Database.ops ctx.db) ()) t

(* ---- clause base updates ---- *)

let split_clause t =
  let t = Term.deref t in
  Database.clause_parts t

let assert_clause ctx ~front args sk =
  let head, _ = split_clause args.(0) in
  let head = Database.encode ctx.db head in
  let name, arity = Database.head_key head in
  (match Database.find ctx.db name arity with
  | Some pred when Pred.kind pred = Pred.Static && Pred.clause_count pred > 0 ->
      error "assert/1: predicate %s/%d is static" name arity
  | _ -> ());
  let pred = Database.set_dynamic ctx.db name arity in
  let head, body = split_clause (Term.copy args.(0)) in
  let head = Database.encode ctx.db head and body = Database.encode ctx.db body in
  ignore (Database.insert_clause ctx.db ~front pred ~head ~body);
  sk ()

let retract ctx args sk =
  let head, body = split_clause args.(0) in
  let head = Database.encode ctx.db head and body = Database.encode ctx.db body in
  let name, arity = Database.head_key head in
  match Database.find ctx.db name arity with
  | None -> ()
  | Some pred ->
      let pattern_args =
        match Term.deref head with Term.Struct (_, a) -> a | _ -> [||]
      in
      let rec go = function
        | [] -> ()
        | clause :: rest ->
            let m = Trail.mark ctx.trail in
            let h, b = Term.copy2 clause.Pred.head clause.Pred.body in
            if Unify.unify ctx.trail head h && Unify.unify ctx.trail body b then begin
              Database.retract_clause ctx.db pred clause;
              sk ();
              Trail.undo_to ctx.trail m;
              go rest
            end
            else begin
              Trail.undo_to ctx.trail m;
              go rest
            end
      in
      go (Pred.lookup pred pattern_args)

let retractall ctx args sk =
  let head = Database.encode ctx.db args.(0) in
  let name, arity = Database.head_key head in
  (match Database.find ctx.db name arity with
  | None -> ()
  | Some pred ->
      List.iter
        (fun clause ->
          let m = Trail.mark ctx.trail in
          let h = Term.copy clause.Pred.head in
          if Unify.unify ctx.trail head h then Database.retract_clause ctx.db pred clause;
          Trail.undo_to ctx.trail m)
        (Pred.clauses pred));
  sk ()

let abolish ctx args sk =
  (match Term.deref args.(0) with
  | Term.Struct ("/", [| n; a |]) -> (
      match (Term.deref n, Term.deref a) with
      | Term.Atom name, Term.Int arity -> Database.remove_pred ctx.db name arity
      | _ -> error "abolish/1: bad predicate indicator")
  | _ -> error "abolish/1: bad predicate indicator");
  sk ()

(* ---- sorting ---- *)

let sort2 ctx args sk =
  match Term.to_list args.(0) with
  | Some l -> unify_det ctx args.(1) (Term.list_ (List.sort_uniq Term.compare l)) sk
  | None -> error "sort/2: first argument must be a proper list"

let msort2 ctx args sk =
  match Term.to_list args.(0) with
  | Some l -> unify_det ctx args.(1) (Term.list_ (List.stable_sort Term.compare l)) sk
  | None -> error "msort/2: first argument must be a proper list"

let keysort2 ctx args sk =
  match Term.to_list args.(0) with
  | Some l ->
      let key t =
        match Term.deref t with
        | Term.Struct ("-", [| k; _ |]) -> k
        | t -> Fmt.kstr (fun s -> raise (Builtin_error s)) "keysort/2: not a pair: %a" Term.pp t
      in
      let sorted = List.stable_sort (fun a b -> Term.compare (key a) (key b)) l in
      unify_det ctx args.(1) (Term.list_ sorted) sk
  | None -> error "keysort/2: first argument must be a proper list"

(* ---- listing: print clauses back in source form (§4.2's listing) ---- *)

let listing_pred ctx pred =
  let ops = Database.ops ctx.db in
  let pp_term = Xsb_parse.Pretty.pp ~ops () in
  List.iter
    (fun clause ->
      match Term.deref clause.Pred.body with
      | Term.Atom "true" -> Fmt.pf ctx.out "%a.@." pp_term clause.Pred.head
      | body -> Fmt.pf ctx.out "%a :-@.    %a.@." pp_term clause.Pred.head pp_term body)
    (Pred.clauses pred)

let listing1 ctx args sk =
  (match Term.deref args.(0) with
  | Term.Struct ("/", [| n; a |]) -> (
      match (Term.deref n, Term.deref a) with
      | Term.Atom name, Term.Int arity -> (
          match Database.find ctx.db name arity with
          | Some pred -> listing_pred ctx pred
          | None -> ())
      | _ -> error "listing/1: bad predicate indicator")
  | Term.Atom name ->
      List.iter
        (fun pred -> if Pred.name pred = name then listing_pred ctx pred)
        (Database.preds ctx.db)
  | t -> Fmt.kstr (fun s -> raise (Builtin_error s)) "listing/1: bad argument %a" Term.pp t);
  sk ()

(* ---- registry ---- *)

let type_check pred ctx args sk =
  ignore ctx;
  check (pred (Term.deref args.(0))) sk

let is_callable = function Term.Atom _ | Term.Struct _ -> true | _ -> false

let table : (string * int, t) Hashtbl.t = Hashtbl.create 64

let def name arity f = Hashtbl.replace table (name, arity) f

let () =
  def "=" 2 (fun ctx args sk -> unify_det ctx args.(0) args.(1) sk);
  def "\\=" 2 (fun ctx args sk ->
      let m = Trail.mark ctx.trail in
      let unifies = Unify.unify ctx.trail args.(0) args.(1) in
      Trail.undo_to ctx.trail m;
      check (not unifies) sk);
  def "==" 2 (fun _ args sk -> check (Term.compare args.(0) args.(1) = 0) sk);
  def "\\==" 2 (fun _ args sk -> check (Term.compare args.(0) args.(1) <> 0) sk);
  def "@<" 2 (fun _ args sk -> check (Term.compare args.(0) args.(1) < 0) sk);
  def "@>" 2 (fun _ args sk -> check (Term.compare args.(0) args.(1) > 0) sk);
  def "@=<" 2 (fun _ args sk -> check (Term.compare args.(0) args.(1) <= 0) sk);
  def "@>=" 2 (fun _ args sk -> check (Term.compare args.(0) args.(1) >= 0) sk);
  def "compare" 3 (fun ctx args sk ->
      let c = Term.compare args.(1) args.(2) in
      let order = if c < 0 then "<" else if c > 0 then ">" else "=" in
      unify_det ctx args.(0) (Term.Atom order) sk);
  def "var" 1 (type_check (function Term.Var _ -> true | _ -> false));
  def "nonvar" 1 (type_check (function Term.Var _ -> false | _ -> true));
  def "atom" 1 (type_check (function Term.Atom _ -> true | _ -> false));
  def "number" 1 (type_check (function Term.Int _ | Term.Float _ -> true | _ -> false));
  def "integer" 1 (type_check (function Term.Int _ -> true | _ -> false));
  def "float" 1 (type_check (function Term.Float _ -> true | _ -> false));
  def "atomic" 1
    (type_check (function Term.Atom _ | Term.Int _ | Term.Float _ -> true | _ -> false));
  def "compound" 1 (type_check (function Term.Struct _ -> true | _ -> false));
  def "callable" 1 (type_check is_callable);
  def "is_list" 1 (fun _ args sk -> check (Term.to_list args.(0) <> None) sk);
  def "ground" 1 (fun _ args sk -> check (Term.is_ground args.(0)) sk);
  def "functor" 3 functor3;
  def "arg" 3 arg3;
  def "=.." 2 univ;
  def "copy_term" 2 (fun ctx args sk -> unify_det ctx args.(1) (Term.copy args.(0)) sk);
  def "is" 2 is2;
  def "=:=" 2 (arith_cmp ( = ));
  def "=\\=" 2 (arith_cmp ( <> ));
  def "<" 2 (arith_cmp ( < ));
  def ">" 2 (arith_cmp ( > ));
  def "=<" 2 (arith_cmp ( <= ));
  def ">=" 2 (arith_cmp ( >= ));
  def "between" 3 between;
  def "succ" 2 succ2;
  def "length" 2 length2;
  def "atom_codes" 2 atom_codes;
  def "atom_chars" 2 atom_chars;
  def "number_codes" 2 number_codes;
  def "atom_number" 2 atom_number;
  def "atom_length" 2 atom_length;
  def "atom_concat" 3 atom_concat;
  def "write" 1 (fun ctx args sk ->
      write_term ctx args.(0);
      sk ());
  def "print" 1 (fun ctx args sk ->
      write_term ctx args.(0);
      sk ());
  def "writeln" 1 (fun ctx args sk ->
      write_term ctx args.(0);
      Format.pp_print_newline ctx.out ();
      sk ());
  def "write_canonical" 1 (fun ctx args sk ->
      Fmt.pf ctx.out "%a" Term.pp args.(0);
      sk ());
  def "tab" 1 (fun ctx args sk ->
      (match Term.deref args.(0) with
      | Term.Int n -> Fmt.pf ctx.out "%s" (String.make (max 0 n) ' ')
      | _ -> ());
      sk ());
  def "assert" 1 (assert_clause ~front:false);
  def "assertz" 1 (assert_clause ~front:false);
  def "asserta" 1 (assert_clause ~front:true);
  def "retract" 1 retract;
  def "sort" 2 sort2;
  def "msort" 2 msort2;
  def "keysort" 2 keysort2;
  def "listing" 1 listing1;
  def "retractall" 1 retractall;
  def "abolish" 1 abolish

let lookup name arity = Hashtbl.find_opt table (name, arity)

let run b trail db out args sk = b { trail; db; out } args sk
