(* The query-service daemon: bind, serve, and drain cleanly on
   SIGINT/SIGTERM. Prints "listening on <port>" once ready so scripts
   (and the CI smoke job) can start it on port 0 and scrape the port. *)

let stop_requested = Atomic.make false

let main host port workers queue timeout_ms max_steps max_answers preload scheduling access_log
    profile data_dir sync group_commit_ms group_commit_batch compact_bytes keep_generations
    repl_port replica_of sync_standbys sync_timeout_ms auto_promote promote_priority
    failover_timeout_ms peers no_metrics slow_ms slow_log =
  let open_log = function
    | None -> None
    | Some "-" -> Some stdout
    | Some path -> Some (open_out path)
  in
  let log_channel = open_log access_log in
  let slow_channel = open_log slow_log in
  (* --group-commit-ms overrides --sync: it IS a sync policy *)
  let sync =
    match group_commit_ms with
    | None -> sync
    | Some ms ->
        Xsb.Journal.Group { window_us = ms * 1000; max_batch = group_commit_batch }
  in
  let cfg =
    {
      Xsb_server.Server.default_config with
      host;
      port;
      workers;
      queue_capacity = queue;
      default_timeout_ms = timeout_ms;
      default_max_steps = max_steps;
      max_answers;
      preload;
      scheduling;
      access_log = log_channel;
      profile;
      data_dir;
      sync;
      compact_bytes;
      keep_generations;
      repl_port;
      replica_of;
      sync_standbys;
      sync_timeout_ms;
      auto_promote;
      promote_priority;
      failover_timeout_ms;
      peers;
      metrics_enabled = not no_metrics;
      slow_ms;
      slow_log = slow_channel;
    }
  in
  match Xsb_server.Server.start cfg with
  | exception Unix.Unix_error (err, _, _) ->
      Fmt.epr "xsb_serverd: cannot bind %s:%d: %s@." host port (Unix.error_message err);
      2
  | exception Xsb.Journal.Recovery_error { file; offset; records_ok; message } ->
      Fmt.epr
        "xsb_serverd: %s is corrupt at offset %d (%d records recoverable): %s@.(salvage the \
         valid prefix by moving the data directory aside, or repair it offline)@."
        file offset records_ok message;
      2
  | exception Xsb.Journal.Io_error { site; message } ->
      Fmt.epr "xsb_serverd: cannot open journal (%s): %s@." site message;
      2
  | exception Invalid_argument msg ->
      Fmt.epr "xsb_serverd: %s@." msg;
      2
  | server ->
      (match Xsb_server.Server.journal server with
      | Some j ->
          Fmt.pr "recovered %d records in %.1f ms (generation %Ld)@."
            (Xsb.Journal.stats j).Xsb.Journal.recovered_records
            (Xsb.Journal.stats j).Xsb.Journal.recovery_ms (Xsb.Journal.generation j)
      | None -> ());
      let request_stop _ = Atomic.set stop_requested true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      Fmt.pr "listening on %d@." (Xsb_server.Server.port server);
      (match Xsb_server.Server.repl_listen_port server with
      | Some p -> Fmt.pr "replication listening on %d@." p
      | None -> ());
      (match replica_of with
      | Some (h, p) -> Fmt.pr "replicating from %s:%d (read-only until PROMOTE)@." h p
      | None -> ());
      while not (Atomic.get stop_requested) do
        Thread.delay 0.05
      done;
      Fmt.pr "draining...@.";
      Xsb_server.Server.stop server;
      if profile then Fmt.pr "%a" (fun ppf () -> Xsb_server.Server.pp_profile ppf server) ();
      Fmt.pr "served %d requests@." (Xsb_server.Server.requests_served server);
      (match log_channel with
      | Some oc when oc != stdout -> close_out oc
      | _ -> ());
      (match slow_channel with
      | Some oc when oc != stdout -> close_out oc
      | _ -> ());
      0

open Cmdliner

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let port =
  Arg.(
    value & opt int 4994
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port; 0 picks an ephemeral one.")

let workers =
  Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Worker threads in the pool.")

let queue =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Bounded request-queue capacity; a request arriving when the queue is full is \
           answered OVERLOADED instead of being buffered.")

let timeout_ms =
  Arg.(
    value & opt int 5000
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:"Default per-request wall-clock deadline (0 = none); requests past it get TIMEOUT.")

let max_steps =
  Arg.(
    value & opt int 10_000_000
    & info [ "max-steps" ] ~docv:"N"
        ~doc:"Default per-request resolution-step budget (0 = none).")

let max_answers =
  Arg.(
    value & opt int 0
    & info [ "max-answers" ] ~docv:"N" ~doc:"Hard per-query row cap (0 = none).")

let preload =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE" ~doc:"Program files consulted into every fresh connection session.")

let scheduling =
  Arg.(
    value
    & opt (some (enum [ ("local", Xsb.Machine.Local); ("batched", Xsb.Machine.Batched) ])) None
    & info [ "scheduling" ] ~docv:"STRATEGY" ~doc:"SLG answer scheduling: local or batched.")

let access_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:"Write one JSON object per request to \\$(docv) ('-' for stdout).")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Aggregate per-predicate request counts, answers, steps and wall time; print the \
              report at shutdown.")

let sync_conv =
  let parse s =
    match Xsb.Journal.sync_policy_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "bad sync policy %S (never|interval[=N]|always|group[=MS[,BATCH]])" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Xsb.Journal.sync_policy_to_string p))

let data_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Durable mode: journal every mutation under \\$(docv) and recover the database from \
           it on startup. All connections then share one persistent session.")

let sync =
  Arg.(
    value
    & opt sync_conv Xsb.Journal.Always
    & info [ "sync" ] ~docv:"POLICY"
        ~doc:
          "Journal fsync policy: never, interval[=N] (every N records), always, or \
           group[=MS[,BATCH]] (group commit: one fsync per batch).")

let group_commit_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "group-commit-ms" ] ~docv:"MS"
        ~doc:
          "Group commit: batch concurrent writers for up to \\$(docv) milliseconds and fsync \
           the whole batch once (acks wait for the batch fsync, so durability is unchanged). \
           Overrides --sync.")

let group_commit_batch =
  Arg.(
    value & opt int 256
    & info [ "group-commit-batch" ] ~docv:"N"
        ~doc:"Max records per group-commit batch (with --group-commit-ms).")

let compact_bytes =
  Arg.(
    value
    & opt int (8 * 1024 * 1024)
    & info [ "compact-bytes" ] ~docv:"BYTES"
        ~doc:"Snapshot + truncate the journal when it grows past \\$(docv) (0 disables).")

let keep_generations =
  Arg.(
    value & opt int 0
    & info [ "keep-generations" ] ~docv:"N"
        ~doc:
          "Archive the last \\$(docv) rotated journal generations (and their snapshots) instead \
           of deleting them on compaction — the raw material for point-in-time recovery and for \
           standbys following across a rotation. Forced to at least 1 when replication is on.")

let hostport_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i when i > 0 && i < String.length s - 1 -> (
        let host = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some p when p > 0 && p < 65536 -> Ok (host, p)
        | _ -> Error (`Msg (Printf.sprintf "bad port in %S (expected HOST:PORT)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad address %S (expected HOST:PORT)" s))
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let repl_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "repl-port" ] ~docv:"PORT"
        ~doc:
          "Serve the replication feed (journal shipping) on \\$(docv) so standbys can follow \
           this server; 0 picks an ephemeral port (printed at startup). Requires --data-dir.")

let replica_of =
  Arg.(
    value
    & opt (some hostport_conv) None
    & info [ "replica-of" ] ~docv:"HOST:PORT"
        ~doc:
          "Run as a read-only standby of the primary whose replication feed listens at \
           \\$(docv): mirror and apply its journal continuously, refuse mutations with \
           READONLY, and accept PROMOTE for failover. Requires --data-dir.")

let sync_standbys =
  Arg.(
    value
    & opt ~vopt:1 int 0
    & info [ "sync-standby" ] ~docv:"K"
        ~doc:
          "Semi-synchronous replication: a mutation's ack additionally waits until \\$(docv) \
           standbys have acknowledged the committed journal position (default 1 when the flag \
           is given bare; 0 = asynchronous). On timeout the commit degrades to async instead of \
           freezing writers. Requires --repl-port.")

let sync_timeout_ms =
  Arg.(
    value & opt int 1000
    & info [ "sync-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-commit budget for the semi-synchronous standby wait; past it the write is acked \
           anyway and the xsb_repl_sync_degraded gauge flips until standbys catch up.")

let auto_promote =
  Arg.(
    value & flag
    & info [ "auto-promote" ]
        ~doc:
          "Standby only: promote automatically after --failover-timeout-ms of primary silence — \
           unless a probed peer (--peers) is a live primary on a current epoch (then retarget \
           the replication stream at it) or a better-positioned standby exists (then defer).")

let promote_priority =
  Arg.(
    value & opt int 0
    & info [ "promote-priority" ] ~docv:"N"
        ~doc:
          "Failover tie-break: lower numbers promote first; each step also adds half a second \
           of detection grace so replicas don't race each other to promote.")

let failover_timeout_ms =
  Arg.(
    value & opt int 3000
    & info [ "failover-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Primary-silence threshold (no heartbeat or data) before the failover monitor acts \
           (with --auto-promote).")

let peers =
  Arg.(
    value
    & opt (list hostport_conv) []
    & info [ "peers" ] ~docv:"HOST:PORT,..."
        ~doc:
          "Client endpoints of the other nodes in the replication topology. The failover \
           monitor probes them (ROLE) before promoting, and clients using --endpoints learn \
           them for re-discovery.")

let no_metrics =
  Arg.(
    value & flag
    & info [ "no-metrics" ]
        ~doc:
          "Disable the metrics registry's record paths (METRICS still answers, with empty \
           counters). The control arm when measuring instrumentation overhead.")

let slow_ms =
  Arg.(
    value & opt int 0
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Slow-query threshold: requests taking at least \\$(docv) milliseconds are written to \
           the slow-query log (0 disables).")

let slow_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "slow-log" ] ~docv:"FILE"
        ~doc:
          "Write one JSON object per slow request to \\$(docv) ('-' for stdout): goal, wall \
           time, and the per-request engine-stats delta, correlated to the access log by \
           request id.")

let cmd =
  let doc = "the XSB-repro deductive-database query server" in
  Cmd.v
    (Cmd.info "xsb_serverd" ~doc)
    Term.(
      const main $ host $ port $ workers $ queue $ timeout_ms $ max_steps $ max_answers $ preload
      $ scheduling $ access_log $ profile $ data_dir $ sync $ group_commit_ms $ group_commit_batch
      $ compact_bytes $ keep_generations $ repl_port $ replica_of $ sync_standbys
      $ sync_timeout_ms $ auto_promote $ promote_priority $ failover_timeout_ms $ peers
      $ no_metrics $ slow_ms $ slow_log)

let () = exit (Cmd.eval' cmd)
