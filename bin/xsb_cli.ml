(* The command-line front end: consult files, run goals, or enter a
   read-eval-print loop — the usual way XSB is invoked (paper §4.2). *)

(* a goal exceeded --max-steps / --timeout; reported as a clean timeout
   error with exit code 2, never as an escaping exception *)
exception Goal_timeout of { answers : int; reason : string }

(* bounds from --max-steps / --timeout: SLG goals run through
   Engine.run_bounded (the server shares this code path) *)
type bounds = { b_max_steps : int option; b_timeout : float option }

let bounded bounds = bounds.b_max_steps <> None || bounds.b_timeout <> None

let run_goal_bounded session bounds text =
  let engine = Xsb.Session.engine session in
  let stop =
    match bounds.b_timeout with
    | None -> None
    | Some secs ->
        let deadline = Unix.gettimeofday () +. secs in
        Some (fun () -> Unix.gettimeofday () >= deadline)
  in
  match Xsb.Engine.run_bounded_string ?max_steps:bounds.b_max_steps ?stop engine text with
  | `Answers [] -> Fmt.pr "no@."
  | `Answers solutions ->
      List.iter (fun s -> Fmt.pr "%a@." (Xsb.Session.pp_solution session) s) solutions;
      Fmt.pr "yes (%d solution%s)@." (List.length solutions)
        (if List.length solutions = 1 then "" else "s")
  | `Truncated solutions | `Timeout solutions ->
      List.iter (fun s -> Fmt.pr "%a@." (Xsb.Session.pp_solution session) s) solutions;
      let reason =
        match (stop, bounds.b_max_steps) with
        | Some hit, _ when hit () -> "wall-clock timeout"
        | _ -> "step budget exhausted"
      in
      raise (Goal_timeout { answers = List.length solutions; reason })

let run_goal session engine_kind wfs bounds text =
  match engine_kind with
  | `Slg when (not wfs) && bounded bounds -> run_goal_bounded session bounds text
  | `Slg ->
      if wfs then begin
        match Xsb.Session.wfs_query session text with
        | [] -> Fmt.pr "no@."
        | solutions ->
            List.iter
              (fun (s : Xsb.Residual.solution) ->
                let parts =
                  List.map
                    (fun (n, v) -> Fmt.str "%s = %a" n (Xsb.Pretty.pp ()) v)
                    s.Xsb.Residual.bindings
                in
                Fmt.pr "%s%s@."
                  (if parts = [] then "true" else String.concat ", " parts)
                  (match s.Xsb.Residual.truth with
                  | Xsb.Ground.Undefined -> " (undefined)"
                  | _ -> ""))
              solutions
      end
      else Xsb.Session.show session text
  | `Wam ->
      let program = Xsb.Wam.of_database (Xsb.Session.db session) in
      let machine = Xsb.Wam.create program in
      let goal = Xsb.Parser.term_of_string ~ops:(Xsb.Database.ops (Xsb.Session.db session)) text in
      let vars = List.map (fun v -> Xsb.Term.Var v) (Xsb.Term.vars goal) in
      let n =
        Xsb.Wam.run machine goal ~on_solution:(fun values ->
            List.iteri
              (fun i v ->
                ignore (List.nth_opt vars i);
                Fmt.pr "%s%a" (if i = 0 then "" else ", ") (Xsb.Pretty.pp ()) v)
              values;
            if values <> [] then Fmt.pr "@.";
            true)
      in
      Fmt.pr "%s (%d solution%s)@." (if n > 0 then "yes" else "no") n (if n = 1 then "" else "s")
  | `Bottomup ->
      let db = Xsb.Session.db session in
      let goal = Xsb.Parser.term_of_string ~ops:(Xsb.Database.ops db) text in
      let program = Xsb.Datalog.of_database db in
      let answers =
        match Xsb.Magic.answers program goal with
        | answers -> answers
        | exception Xsb.Magic.Not_applicable _ ->
            let st = Xsb.Bottomup.run program in
            Xsb.Bottomup.answers st goal
      in
      List.iter (fun c -> Fmt.pr "%a@." Xsb.Canon.pp c) answers;
      Fmt.pr "%s (%d solution%s)@."
        (if answers <> [] then "yes" else "no")
        (List.length answers)
        (if List.length answers = 1 then "" else "s")

let print_stats session =
  let stats = Xsb.Engine.stats (Xsb.Session.engine session) in
  Fmt.pr
    "subgoals=%d answers=%d (dups %d) suspensions=%d resumptions=%d resolutions=%d neg-susp=%d \
     nested-evals=%d completions=%d sccs-completed=%d early-completions=%d max-scc=%d \
     subsumed-calls=%d subsumption-hits=%d answers-filtered=%d steps=%d@."
    stats.Xsb.Machine.st_subgoals stats.Xsb.Machine.st_answers stats.Xsb.Machine.st_dup_answers
    stats.Xsb.Machine.st_suspensions stats.Xsb.Machine.st_resumptions
    stats.Xsb.Machine.st_resolutions stats.Xsb.Machine.st_neg_suspensions
    stats.Xsb.Machine.st_nested_evals stats.Xsb.Machine.st_completions
    stats.Xsb.Machine.st_sccs_completed stats.Xsb.Machine.st_early_completions
    stats.Xsb.Machine.st_max_scc_size stats.Xsb.Machine.st_subsumed_calls
    stats.Xsb.Machine.st_subsumption_hits stats.Xsb.Machine.st_answers_filtered
    stats.Xsb.Machine.st_steps

let repl session engine_kind wfs bounds =
  Fmt.pr "XSB-repro (OCaml). Type goals ending with '.', or 'halt.' to quit.@.";
  let rec loop () =
    Fmt.pr "?- @?";
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let line = String.trim line in
        if line = "" then loop ()
        else if line = "halt." || line = "halt" then ()
        else begin
          let text =
            if String.length line > 0 && line.[String.length line - 1] = '.' then
              String.sub line 0 (String.length line - 1)
            else line
          in
          (try
             if String.length text > 2 && String.sub text 0 2 = ":-" then
               Xsb.Session.consult session (text ^ ".")
             else run_goal session engine_kind wfs bounds text
           with
          | Goal_timeout { answers; reason } ->
              Fmt.pr "timeout: %s (%d answer%s so far)@." reason answers
                (if answers = 1 then "" else "s")
          | e -> Fmt.pr "error: %s@." (Printexc.to_string e));
          loop ()
        end
  in
  loop ()

let main files goals wfs engine_name scheduling interactive stats compile trace trace_out
    profile metrics_dump max_steps timeout data_dir sync_policy =
  let mode = if wfs then Some Xsb.Machine.Well_founded else None in
  let bounds = { b_max_steps = max_steps; b_timeout = timeout } in
  let engine_kind =
    match engine_name with
    | "slg" -> `Slg
    | "wam" -> `Wam
    | "bottomup" -> `Bottomup
    | other ->
        Fmt.epr "xsb: unknown engine %S (use slg, wam or bottomup)@." other;
        exit 2
  in
  (* only the SLG non-WFS path runs goals through Engine.run_bounded,
     where the wall-clock deadline is polled; anywhere else --timeout
     would be silently ignored, so refuse the combination instead *)
  if timeout <> None && (wfs || engine_kind <> `Slg) then begin
    Fmt.epr "xsb: --timeout only applies to the default SLG engine without --wfs%s@."
      (if wfs then " (use --max-steps to bound a --wfs evaluation)" else "");
    exit 2
  end;
  let session = Xsb.Session.create ?mode ?scheduling () in
  (* --trace[=pretty|jsonl] (or the XSB_TRACE env default), optionally
     redirected with --trace-out FILE *)
  let trace_cleanup = ref (fun () -> ()) in
  (match trace with
  | None -> ()
  | Some spec ->
      let out =
        match trace_out with
        | None -> stderr
        | Some path ->
            let oc = open_out path in
            trace_cleanup := (fun () -> close_out oc);
            oc
      in
      (match Xsb.Session.sink_of_spec ~out spec with
      | Some (Xsb.Obs.Sink.Pretty ppf as sink) ->
          let prev = !trace_cleanup in
          trace_cleanup := (fun () -> Format.pp_print_flush ppf (); prev ());
          Xsb.Session.add_sink session sink
      | Some sink -> Xsb.Session.add_sink session sink
      | None ->
          Fmt.epr "xsb: unknown trace sink %S (use pretty, jsonl or null)@." spec;
          !trace_cleanup ();
          exit 2));
  if profile then Xsb.Session.set_profiling session true;
  let journal = ref None in
  let finish code =
    (match !journal with Some j -> ( try Xsb.Journal.close j with _ -> ()) | None -> ());
    if profile then Fmt.pr "%a" (fun ppf () -> Xsb.Session.pp_profile ppf session) ();
    if stats then print_stats session;
    (if metrics_dump then begin
       (* the same exposition the server's METRICS op serves, built from
          this session's engine (and journal, when durable) *)
       let reg = Xsb.Metrics.create () in
       Xsb.Engine.publish_metrics (Xsb.Session.engine session) reg;
       (match !journal with Some j -> Xsb.Journal.publish_metrics j reg | None -> ());
       print_string (Xsb.Metrics.to_text reg)
     end);
    !trace_cleanup ();
    code
  in
  (* engine-wide bound while consulting, so a runaway :- directive also
     times out cleanly; per-goal budgets take over below *)
  (match max_steps with
  | Some n -> Xsb.Engine.set_max_steps (Xsb.Session.engine session) n
  | None -> ());
  try
    List.iter (fun f -> Xsb.Session.consult_file session f) files;
    (* the durable store opens AFTER the consults: files are program
       text, not journaled state, and recovery replays on top of them *)
    (match data_dir with
    | None -> ()
    | Some dir ->
        let j =
          Xsb.Journal.open_
            { (Xsb.Journal.default_config ~dir) with Xsb.Journal.sync = sync_policy }
            (Xsb.Session.db session)
        in
        Xsb.Journal.attach j;
        journal := Some j);
    if max_steps <> None && engine_kind = `Slg && not wfs then
      Xsb.Engine.set_max_steps (Xsb.Session.engine session) 0;
    if compile then begin
      let program = Xsb.Wam.of_database (Xsb.Session.db session) in
      Xsb.Wam.disassemble program Format.std_formatter;
      Format.print_flush ()
    end;
    List.iter (fun g -> run_goal session engine_kind wfs bounds g) goals;
    if
      interactive
      || (goals = [] && (not stats) && (not profile) && (not metrics_dump) && not compile)
    then
      repl session engine_kind wfs bounds;
    finish 0
  with
  | Goal_timeout { answers; reason } ->
      Fmt.epr "timeout: %s (%d answer%s so far)@." reason answers
        (if answers = 1 then "" else "s");
      finish 2
  | Xsb.Machine.Step_limit ->
      (* an engine-wide bound hit outside the bounded-goal path (e.g. a
         deferred :- directive): still a clean timeout, not a crash *)
      Fmt.epr "timeout: step budget exhausted@.";
      finish 2
  | Xsb.Journal.Recovery_error { file; offset; records_ok; message } ->
      Fmt.epr "error: %s is corrupt at offset %d (%d records recoverable): %s@." file offset
        records_ok message;
      finish 1
  | e ->
      Fmt.epr "error: %s@." (Printexc.to_string e);
      finish 1

open Cmdliner

let files = Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Program files to consult.")

let goals =
  Arg.(value & opt_all string [] & info [ "e"; "eval" ] ~docv:"GOAL" ~doc:"Goal to evaluate.")

let wfs =
  Arg.(value & flag & info [ "wfs" ] ~doc:"Evaluate under the well-founded semantics (delaying).")

let engine_name =
  Arg.(value & opt string "slg" & info [ "engine" ] ~docv:"ENGINE" ~doc:"slg | wam | bottomup")

let scheduling =
  Arg.(
    value
    & opt (some (enum [ ("local", Xsb.Machine.Local); ("batched", Xsb.Machine.Batched) ])) None
    & info [ "scheduling" ] ~docv:"STRATEGY"
        ~doc:
          "Answer scheduling strategy for the SLG engine: local (complete an SCC before \
           returning answers outward) or batched (eagerly drain answers to consumers). \
           Defaults to \\$XSB_SCHEDULING or batched.")

let interactive = Arg.(value & flag & info [ "i"; "interactive" ] ~doc:"Enter the REPL.")
let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics.")

let compile =
  Arg.(value & flag & info [ "compile" ] ~doc:"Print the WAM byte-code listing of the program.")

let trace =
  let env =
    Cmd.Env.info "XSB_TRACE"
      ~doc:"Default trace sink when --trace is not given (pretty, jsonl or null)."
  in
  Arg.(
    value
    & opt ~vopt:(Some "pretty") (some string) None
    & info [ "trace" ] ~env ~docv:"SINK"
        ~doc:
          "Emit typed engine events (new subgoal, answer, suspend/resume, negation \
           wait, SCC completion, drain, abolish). \\$(docv) is pretty (the default), \
           jsonl (one JSON object per line) or null; see --trace-out for the \
           destination.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the trace to \\$(docv) instead of stderr.")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Profile per predicate (calls, answers, duplicate ratio, suspensions, task \
           wall time, peak table size) and print the report, hottest predicate first.")

let metrics_dump =
  Arg.(
    value & flag
    & info [ "metrics-dump" ]
        ~doc:
          "After the goals, print the engine's metrics (evaluation counters, table-space and \
           call-index bytes, per-predicate table bytes; journal durability when --data-dir) in \
           the Prometheus text exposition format.")

let max_steps =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Resolution-step budget per goal (and for :- directives while consulting); a goal \
           exceeding it is reported as a timeout with exit code 2.")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock deadline per goal; a goal exceeding it is reported as a timeout with \
           exit code 2. Only the default SLG engine without --wfs can enforce it; other \
           combinations are rejected.")

let data_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Durable session: recover the dynamic database journaled under \\$(docv) (on top of \
           the consulted files), then journal every further mutation there.")

let sync_policy =
  let sync_conv =
    let parse s =
      match Xsb.Journal.sync_policy_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "bad sync policy %S (never|interval[=N]|always)" s))
    in
    Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Xsb.Journal.sync_policy_to_string p))
  in
  Arg.(
    value
    & opt sync_conv Xsb.Journal.Always
    & info [ "sync" ] ~docv:"POLICY"
        ~doc:"Journal fsync policy: never, interval[=N] (every N records), or always.")

let cmd =
  let doc = "an in-memory deductive database engine (XSB reproduction)" in
  Cmd.v
    (Cmd.info "xsb" ~doc)
    Term.(
      const main $ files $ goals $ wfs $ engine_name $ scheduling $ interactive $ stats
      $ compile $ trace $ trace_out $ profile $ metrics_dump $ max_steps $ timeout $ data_dir
      $ sync_policy)

let () = exit (Cmd.eval' cmd)
