(* The command-line client: one connection, a sequence of operations in
   command-line order (consults first, then asserts, then goals), with
   exit codes scripts can branch on: 0 ok, 1 error, 2 timeout,
   3 overloaded, 4 readonly (mutation refused by a standby or a
   degraded primary). *)

let exit_error = 1
let exit_timeout = 2
let exit_overloaded = 3
let exit_readonly = 4

let code_exit = function
  | Xsb_server.Protocol.Timeout -> exit_timeout
  | Xsb_server.Protocol.Overloaded -> exit_overloaded
  | Xsb_server.Protocol.Readonly -> exit_readonly
  | _ -> exit_error

let main host port endpoints consults fast_loads goals asserts limit timeout_ms max_steps stats
    abolish ping sync promote role follow_primary metrics retries backoff_ms max_elapsed_ms =
  let open Xsb_server in
  let retry =
    Client.retry ~retries ~backoff_ms:(float_of_int backoff_ms)
      ~max_elapsed_ms:(float_of_int max_elapsed_ms) ()
  in
  let run client =
    let worst = ref 0 in
    let note code = worst := max !worst code in
    let simple what = function
      | Ok payload -> if payload <> "" then Fmt.pr "%s@." payload
      | Error { Client.code; message } ->
          Fmt.epr "%s: %s: %s@." what (Protocol.err_code_name code) message;
          note (code_exit code)
    in
    if promote then simple "promote" (Client.promote client);
    if role then simple "role" (Client.role_payload client);
    if ping then simple "ping" (Client.ping_retry ~retry ~follow_primary client);
    List.iter
      (fun path ->
        let text = In_channel.with_open_bin path In_channel.input_all in
        simple ("consult " ^ path) (Client.consult client text))
      consults;
    List.iter
      (fun path ->
        let text = In_channel.with_open_bin path In_channel.input_all in
        simple ("fast-load " ^ path) (Client.consult ~fmt:Protocol.Fast client text))
      fast_loads;
    List.iter (fun clause -> simple ("assert " ^ clause) (Client.assert_ client clause)) asserts;
    List.iter
      (fun goal ->
        match
          Client.query_retry ~retry ~follow_primary ?limit ?timeout_ms ?max_steps client goal
        with
        | Client.Rows { rows; truncated } ->
            List.iter (fun row -> Fmt.pr "%s@." row) rows;
            Fmt.pr "%s (%d solution%s%s)@."
              (if rows = [] then "no" else "yes")
              (List.length rows)
              (if List.length rows = 1 then "" else "s")
              (if truncated then ", truncated" else "")
        | Client.Query_timeout rows ->
            List.iter (fun row -> Fmt.pr "%s@." row) rows;
            Fmt.epr "timeout after %d answer%s@." (List.length rows)
              (if List.length rows = 1 then "" else "s");
            note exit_timeout
        | Client.Query_error { code; message } ->
            Fmt.epr "query %s: %s: %s@." goal (Protocol.err_code_name code) message;
            note (code_exit code))
      goals;
    if abolish then simple "abolish" (Client.abolish client);
    if sync then simple "sync" (Client.sync client);
    if stats then simple "statistics" (Client.statistics_retry ~retry ~follow_primary client);
    (if metrics then
       match Client.metrics_retry ~retry ~follow_primary client with
       | Error { Client.code; message } ->
           Fmt.epr "metrics: %s: %s@." (Protocol.err_code_name code) message;
           note (code_exit code)
       | Ok text -> (
           (* reject a malformed exposition here, so scripts (and
              the CI smoke job) can trust a zero exit *)
           match Xsb.Metrics.Exposition.validate text with
           | Ok _ -> Fmt.pr "%s" text
           | Error why ->
               Fmt.pr "%s" text;
               Fmt.epr "metrics: invalid exposition: %s@." why;
               note exit_error));
    !worst
  in
  let connect_and_run (h, p) =
    match Client.connect_with_retry ~retry ~host:h p with
    | exception Unix.Unix_error (err, _, _) -> Error (h, p, Unix.error_message err)
    | Error reason -> Error (h, p, reason)
    | Ok client -> Ok (Fun.protect ~finally:(fun () -> Client.close client) (fun () -> run client))
  in
  (* With --endpoints the target is discovered, not fixed: probe every
     endpoint's ROLE and dial the writable primary on the highest
     epoch. A READONLY outcome (or a dead node) means the topology
     changed under us -- re-discover and re-run, up to --retries times,
     so a client rides out a failover instead of reporting it. *)
  let discover fallback =
    match Client.discover_primary endpoints with Some (hp, _) -> hp | None -> fallback
  in
  let rec go attempt target =
    let redial () =
      Unix.sleepf (float_of_int backoff_ms /. 1000.0 *. (2.0 ** float_of_int attempt));
      go (attempt + 1) (discover target)
    in
    match connect_and_run target with
    | Error (h, p, reason) ->
        if endpoints <> [] && attempt < retries then redial ()
        else begin
          Fmt.epr "xsb_client: cannot connect to %s:%d: %s@." h p reason;
          exit_error
        end
    | Ok worst when worst = exit_readonly && endpoints <> [] && attempt < retries ->
        Fmt.epr "xsb_client: %s:%d is read-only; re-discovering the primary@." (fst target)
          (snd target);
        redial ()
    | Ok worst -> worst
  in
  go 0 (if endpoints = [] then (host, port) else discover (host, port))

open Cmdliner

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")

let port = Arg.(value & opt int 4994 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let hostport_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i when i > 0 && i < String.length s - 1 -> (
        let host = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some p when p > 0 && p < 65536 -> Ok (host, p)
        | _ -> Error (`Msg (Printf.sprintf "bad port in %S (expected HOST:PORT)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad address %S (expected HOST:PORT)" s))
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let endpoints =
  Arg.(
    value
    & opt (list hostport_conv) []
    & info [ "endpoints" ] ~docv:"HOST:PORT,..."
        ~doc:
          "The replication topology's client endpoints. The client probes each one's ROLE, \
           dials the writable primary on the highest epoch, and — when an operation is refused \
           READONLY or a node dies mid-failover — re-discovers and re-runs (with --retries), \
           riding out a promotion instead of failing. Overrides --host/--port when discovery \
           succeeds.")

let role =
  Arg.(
    value & flag
    & info [ "role" ]
        ~doc:
          "Print the node's ROLE payload (role, epoch, journal position, repl_port, priority, \
           peers, and a standby's fatal fencing status) — failover discovery for scripts.")

let consults =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Program files to consult remotely.")

let fast_loads =
  Arg.(
    value & opt_all file []
    & info [ "fast-load" ] ~docv:"FILE" ~doc:"Fact files for the formatted-read bulk loader.")

let goals =
  Arg.(value & opt_all string [] & info [ "e"; "eval" ] ~docv:"GOAL" ~doc:"Goal to evaluate.")

let asserts =
  Arg.(value & opt_all string [] & info [ "assert" ] ~docv:"CLAUSE" ~doc:"Clause to assert.")

let limit =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Stop after N answers.")

let timeout_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-query wall-clock deadline.")

let max_steps =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N" ~doc:"Per-query resolution-step budget.")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print the session's engine statistics.")

let abolish =
  Arg.(value & flag & info [ "abolish" ] ~doc:"Abolish the session's tables after the goals.")

let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Ping the server first.")

let sync =
  Arg.(
    value & flag
    & info [ "sync" ] ~doc:"Ask a durable server to fsync its journal after the goals.")

let promote =
  Arg.(
    value & flag
    & info [ "promote" ]
        ~doc:
          "Promote a replication standby to a writable primary (failover); runs before any \
           other operation so the same invocation can then mutate.")

let follow_primary =
  Arg.(
    value & flag
    & info [ "follow-primary" ]
        ~doc:
          "Treat READONLY refusals of idempotent requests as retryable (with --retries): a \
           standby about to be promoted, or a degraded primary being repaired, clears them.")

let retries =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry the connect (ECONNREFUSED) and idempotent requests (OVERLOADED) up to \\$(docv) \
           times with exponential backoff and jitter.")

let backoff_ms =
  Arg.(
    value & opt int 100
    & info [ "backoff-ms" ] ~docv:"MS" ~doc:"Base backoff before the first retry.")

let max_elapsed_ms =
  Arg.(
    value & opt int 0
    & info [ "max-elapsed-ms" ] ~docv:"MS"
        ~doc:
          "Total retry budget across attempts, measured on the monotonic clock; once spent, the \
           next retryable failure is final (0 = no cap).")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the server's Prometheus text exposition (request histograms, table-space \
           bytes, journal durability), validating its shape first.")

let cmd =
  let doc = "client for the XSB-repro query server" in
  Cmd.v
    (Cmd.info "xsb_client" ~doc)
    Term.(
      const main $ host $ port $ endpoints $ consults $ fast_loads $ goals $ asserts $ limit
      $ timeout_ms $ max_steps $ stats $ abolish $ ping $ sync $ promote $ role $ follow_primary
      $ metrics $ retries $ backoff_ms $ max_elapsed_ms)

let () = exit (Cmd.eval' cmd)
