open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Parser.term_of_string

let cases =
  [
    t "encode declared symbols" `Quick (fun () ->
        let is_hilog n = n = "h" in
        let encoded = Hilog.encode_term ~is_hilog (parse "h(a, g(h(b)))") in
        check_bool "wrapped" true
          (Unify.variant encoded (parse "apply(h, a, g(apply(h, b)))")));
    t "encode leaves non-functor occurrences alone" `Quick (fun () ->
        let is_hilog n = n = "h" in
        let encoded = Hilog.encode_term ~is_hilog (parse "p(h, h(a))") in
        check_bool "atom h untouched" true (Unify.variant encoded (parse "p(h, apply(h,a))")));
    t "decode inverts encode" `Quick (fun () ->
        let is_hilog n = n = "h" in
        let original = parse "f(h(a), h(b, h(c)))" in
        let there = Hilog.encode_term ~is_hilog original in
        let back = Hilog.decode_term ~is_hilog there in
        check_bool "roundtrip" true (Unify.variant original back));
    t "hilog_functor view" `Quick (fun () ->
        match Hilog.hilog_functor (parse "apply(p(a), x, y)") with
        | Some (f, args) ->
            check_bool "functor" true (Unify.variant f (parse "p(a)"));
            check_int "args" 2 (Array.length args)
        | None -> Alcotest.fail "expected a view");
    t "specialize rewrites heads and known calls (§4.7 example)" `Quick (fun () ->
        let clauses =
          Parser.program_of_string
            "apply(path(G), X, Y) :- apply(G, X, Y).\n\
             apply(path(G), X, Y) :- apply(path(G), X, Z), apply(G, Z, Y)."
        in
        let out = Hilog_specialize.specialize clauses in
        (* 2 rewritten + 1 bridge *)
        check_int "three clauses" 3 (List.length out);
        let name = Hilog_specialize.specialized_name "path" 1 2 in
        let mentions_specialized =
          List.exists
            (fun c ->
              match Term.deref c with
              | Term.Struct (":-", [| h; _ |]) -> fst (Database.head_key h) = name
              | h -> fst (Database.head_key h) = name)
            out
        in
        check_bool "specialized predicate defined" true mentions_specialized);
    t "specialize preserves semantics" `Quick (fun () ->
        let source =
          ":- hilog edge.\n\
           path(G)(X, Y) :- G(X, Y).\n\
           path(G)(X, Y) :- path(G)(X, Z), G(Z, Y).\n\
           edge(1,2). edge(2,3). edge(3,4).\n\
           :- table apply/3."
        in
        (* run once plainly *)
        let plain = Session.create () in
        Session.consult plain source;
        let plain_answers = Session.count plain "path(edge)(1, X)" in
        (* run once with the specializer applied to the program clauses *)
        let db = Database.create () in
        let eng = Engine.create db in
        let clauses =
          List.map (Database.encode db)
            (Parser.program_of_string
               "path(G)(X, Y) :- G(X, Y).\npath(G)(X, Y) :- path(G)(X, Z), G(Z, Y).")
        in
        Database.declare_hilog db "edge";
        let specialized = Hilog_specialize.specialize clauses in
        List.iter (fun c -> ignore (Database.add_clause db c)) specialized;
        Engine.consult_string eng ":- hilog edge.\nedge(1,2). edge(2,3). edge(3,4).";
        Pred.set_tabled (Database.declare db "apply" 3) true;
        Pred.set_tabled (Database.declare db (Hilog_specialize.specialized_name "path" 1 2) 3)
          true;
        let spec_answers = List.length (Engine.query_string eng "path(edge)(1, X)") in
        check_int "same answers" plain_answers spec_answers;
        check_int "three" 3 spec_answers);
    t "specialize without applicable shapes is identity" `Quick (fun () ->
        let clauses = Parser.program_of_string "p(a). q(X) :- p(X)." in
        check_int "unchanged" 2 (List.length (Hilog_specialize.specialize clauses)));
  ]

let suite = cases
