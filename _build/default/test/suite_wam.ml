open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine text =
  let db = Database.create () in
  ignore (Loader.consult_string db text);
  Wam.create (Wam.of_database db)

let goal = Parser.term_of_string

let count m q = Wam.count_solutions m (goal q)
let first m q = Wam.first_solution m (goal q)

let cases =
  [
    t "facts" `Quick (fun () ->
        let m = machine "p(1). p(2). p(3)." in
        check_int "all" 3 (count m "p(X)");
        check_int "bound" 1 (count m "p(2)");
        check_int "missing" 0 (count m "p(9)"));
    t "conjunction and shared variables" `Quick (fun () ->
        let m = machine "e(1,2). e(2,3). e(3,4)." in
        check_int "join" 2 (count m "e(X,Y), e(Y,Z)"));
    t "append both directions" `Quick (fun () ->
        let m = machine "app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R)." in
        check_int "splits" 5 (count m "app(X,Y,[1,2,3,4])");
        (match first m "app([1,2],[3],Z)" with
        | Some [ z ] -> check_bool "forward" true (Unify.variant z (goal "[1,2,3]"))
        | _ -> Alcotest.fail "expected one binding");
        check_int "check mode" 1 (count m "app([1],[2],[1,2])"));
    t "naive reverse" `Quick (fun () ->
        let m =
          machine
            "app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R).\n\
             nrev([],[]). nrev([H|T],R) :- nrev(T,RT), app(RT,[H],R)."
        in
        match first m "nrev([1,2,3,4,5,6],R)" with
        | Some [ r ] -> check_bool "reversed" true (Unify.variant r (goal "[6,5,4,3,2,1]"))
        | _ -> Alcotest.fail "expected result");
    t "deep structure unification" `Quick (fun () ->
        let m = machine "deep(f(g(h(X)), [a, f(X)])) :- X = 1." in
        check_int "match" 1 (count m "deep(f(g(h(1)), [a, f(1)]))");
        check_int "mismatch" 0 (count m "deep(f(g(h(2)), [a, f(1)]))");
        match first m "deep(T)" with
        | Some [ t ] -> check_bool "built" true (Unify.variant t (goal "f(g(h(1)), [a, f(1)])"))
        | _ -> Alcotest.fail "expected term");
    t "arithmetic and comparisons" `Quick (fun () ->
        let m =
          machine
            "fact(0,1) :- !.\nfact(N,F) :- N > 0, N1 is N - 1, fact(N1,F1), F is N * F1."
        in
        (match first m "fact(6,F)" with
        | Some [ Term.Int 720 ] -> ()
        | _ -> Alcotest.fail "fact(6) should be 720");
        check_int "guard fails" 0 (count m "fact(-1,F)"));
    t "cut: first clause commits" `Quick (fun () ->
        let m = machine "tn(null,unknown) :- !.\ntn(X,X)." in
        check_int "null one answer" 1 (count m "tn(null,R)");
        check_int "other" 1 (count m "tn(a,R)");
        match first m "tn(null,R)" with
        | Some [ Term.Atom "unknown" ] -> ()
        | _ -> Alcotest.fail "expected unknown");
    t "deep cut inside body" `Quick (fun () ->
        let m = machine "p(1). p(2). p(3).\nfirst(X) :- p(X), !, q.\nq." in
        check_int "pruned" 1 (count m "first(X)"));
    t "first-argument indexing dispatches on constants" `Quick (fun () ->
        let m = machine "color(red, warm). color(blue, cool). color(green, cool)." in
        let before = Wam.instructions_executed m in
        check_int "hit" 1 (count m "color(blue, T)");
        let cost_indexed = Wam.instructions_executed m - before in
        (* an indexed lookup must not try the other clauses: with
           try/retry chains it would execute roughly 3x as much *)
        check_bool "cheap" true (cost_indexed < 20));
    t "indexing with variable-headed clauses preserves order" `Quick (fun () ->
        let m = machine "p(a, 1). p(X, 2). p(b, 3)." in
        check_int "a matches 2 clauses" 2 (count m "p(a, N)");
        check_int "b matches 2 clauses" 2 (count m "p(b, N)");
        check_int "c matches catchall" 1 (count m "p(c, N)");
        check_int "open call" 3 (count m "p(X, N)"));
    t "indexing dispatches on structures and lists" `Quick (fun () ->
        let m = machine "k(f(1), a). k(g(2), b). k([x], c). k(99, d)." in
        check_int "struct" 1 (count m "k(f(1), R)");
        check_int "other struct" 1 (count m "k(g(2), R)");
        check_int "list" 1 (count m "k([x], R)");
        check_int "int" 1 (count m "k(99, R)");
        check_int "all" 4 (count m "k(K, R)"));
    t "integer vs atom keys do not collide" `Quick (fun () ->
        let m = machine "v(1, int). v('1', atom)." in
        check_int "int key" 1 (count m "v(1, T)");
        match first m "v(1, T)" with
        | Some [ Term.Atom "int" ] -> ()
        | _ -> Alcotest.fail "wrong bucket");
    t "builtin equality and disequality" `Quick (fun () ->
        let m = machine "" in
        check_int "unify" 1 (count m "X = f(Y), Y = 1, X == f(1)");
        check_int "fail" 0 (count m "f(1) == f(2)");
        check_int "nonequal" 1 (count m "f(1) \\== f(2)"));
    t "backtracking restores heap and trail" `Quick (fun () ->
        let m = machine "p(1). p(2).\nq(X, Y) :- p(X), p(Y)." in
        check_int "cartesian" 4 (count m "q(X, Y)"));
    t "undefined predicate fails quietly" `Quick (fun () ->
        let m = machine "p(1)." in
        check_int "no solutions" 0 (count m "nosuch(X)"));
    t "tabled facts resolve through answer clauses" `Quick (fun () ->
        let m = machine ":- table p/1.\np(1).\nq(2)." in
        check_int "tabled facts" 1 (count m "p(X)");
        check_int "others fine" 1 (count m "q(X)"));
    t "linear tabling: left recursion over a cycle terminates" `Quick (fun () ->
        let m =
          machine
            ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3). edge(3,4). edge(4,1)."
        in
        check_int "from 1" 4 (count m "path(1,X)");
        check_int "open call" 16 (count m "path(X,Y)");
        check_int "completed tables answer instantly" 4 (count m "path(1,X)"));
    t "linear tabling: mutual recursion over structures" `Quick (fun () ->
        let m =
          machine ":- table even/1, odd/1.\neven(z).\neven(s(X)) :- odd(X).\nodd(s(X)) :- even(X)."
        in
        check_int "even" 1 (count m "even(s(s(z)))");
        check_int "odd" 0 (count m "odd(s(s(z)))");
        check_int "odd 3" 1 (count m "odd(s(s(s(z))))"));
    t "linear tabling: double recursion" `Quick (fun () ->
        let m =
          machine
            ":- table p/2.\np(X,Y) :- e(X,Y).\np(X,Y) :- p(X,Z), p(Z,Y).\ne(1,2). e(2,3). e(3,1)."
        in
        check_int "closure" 3 (count m "p(1,X)"));
    t "linear tabling: variant calls share tables" `Quick (fun () ->
        let m =
          machine
            ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3)."
        in
        ignore (count m "path(1,A)");
        let before = Wam.instructions_executed m in
        ignore (count m "path(1,B)");
        let second = Wam.instructions_executed m - before in
        (* the second variant call resolves against compiled answer
           clauses only *)
        check_bool "cheap second call" true (second < 60));
    t "on_solution can stop the search" `Quick (fun () ->
        let m = machine "p(1). p(2). p(3)." in
        let seen = ref 0 in
        let n =
          Wam.run m (goal "p(X)") ~on_solution:(fun _ ->
              incr seen;
              !seen < 2)
        in
        check_int "stopped at two" 2 n);
    t "instructions counter is monotonic" `Quick (fun () ->
        let m = machine "p(1)." in
        let a = Wam.instructions_executed m in
        ignore (count m "p(X)");
        check_bool "grew" true (Wam.instructions_executed m > a));
  ]

(* WAM vs the SLG engine running the same definite programs *)
let props =
  let open QCheck2 in
  [
    (* SLG answers are tabled (variant-deduplicated) while the WAM
       enumerates SLD derivations, so compare distinct solution sets *)
    Test.make ~name:"WAM = SLG on random edge joins" ~count:40 (Generators.edges_gen ~n:8 ~m:14)
      (fun edges ->
        let edges = List.sort_uniq compare edges in
        let text = Generators.edge_facts edges in
        let m = machine text in
        let s = Session.create () in
        Session.consult s text;
        let wam =
          List.sort_uniq compare
            (List.map (List.map Term.to_string) (Wam.solutions m (goal "edge(X,Y), edge(Y,Z)")))
        in
        let slg =
          List.sort_uniq compare
            (List.map
               (fun (sol : Engine.solution) -> List.map (fun (_, v) -> Term.to_string v) sol.Engine.bindings)
               (Session.query s "edge(X,Y), edge(Y,Z)"))
        in
        wam = slg);
    Test.make ~name:"WAM linear tabling = SLG tabling on random graphs" ~count:40
      (Generators.edges_gen ~n:8 ~m:14) (fun edges ->
        let edges = List.sort_uniq compare edges in
        let text =
          ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n"
          ^ Generators.edge_facts edges
        in
        let m = machine text in
        let s = Session.create () in
        Session.consult s text;
        let wam =
          List.sort_uniq compare (List.map (List.map Term.to_string) (Wam.solutions m (goal "path(1,X)")))
        in
        let slg =
          List.sort_uniq compare
            (List.map
               (fun (sol : Engine.solution) -> List.map (fun (_, v) -> Term.to_string v) sol.Engine.bindings)
               (Session.query s "path(1,X)"))
        in
        wam = slg);
    Test.make ~name:"WAM = SLG on bounded right-recursive path" ~count:40
      (Generators.edges_gen ~n:7 ~m:8) (fun edges ->
        (* keep it acyclic: only keep edges a<b so SLD terminates *)
        let edges = List.sort_uniq compare (List.filter (fun (a, b) -> a < b) edges) in
        let text =
          "path(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n"
          ^ Generators.edge_facts edges
        in
        let m = machine text in
        let s = Session.create () in
        Session.consult s text;
        let wam =
          List.sort_uniq compare (List.map (List.map Term.to_string) (Wam.solutions m (goal "path(1,X)")))
        in
        let slg =
          List.sort_uniq compare
            (List.map
               (fun (sol : Engine.solution) -> List.map (fun (_, v) -> Term.to_string v) sol.Engine.bindings)
               (Session.query s "path(1,X)"))
        in
        wam = slg);
  ]

let suite = cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) props

let image_cases =
  [
    t "byte-code image round trip" `Quick (fun () ->
        let text =
          ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n\
           edge(1,2). edge(2,3). edge(3,1).\napp([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R)."
        in
        let db = Database.create () in
        ignore (Loader.consult_string db text);
        let program = Wam.of_database db in
        let path = Filename.temp_file "wamimg" ".xwam" in
        Wam_image.save program path;
        let loaded = Wam_image.load path in
        Sys.remove path;
        let m = Wam.create loaded in
        check_int "untabled pred runs" 4 (count m "app(X,Y,[a,b,c])");
        check_int "tabled pred runs from the image" 3 (count m "path(1,X)"));
    t "image rejects garbage" `Quick (fun () ->
        let path = Filename.temp_file "wamimg" ".bad" in
        Out_channel.with_open_bin path (fun oc -> output_string oc "NOTWAM!!x");
        (match Wam_image.load path with
        | exception Wam_image.Bad_image _ -> ()
        | exception End_of_file -> ()
        | _ -> Alcotest.fail "expected rejection");
        Sys.remove path);
    t "load_into merges programs" `Quick (fun () ->
        let mk text =
          let db = Database.create () in
          ignore (Loader.consult_string db text);
          Wam.of_database db
        in
        let base = mk "p(1)." in
        let extra = mk "q(2). q(3)." in
        let path = Filename.temp_file "wamimg" ".xwam" in
        Wam_image.save extra path;
        ignore (Wam_image.load_into base path);
        Sys.remove path;
        let m = Wam.create base in
        check_int "original" 1 (count m "p(X)");
        check_int "merged" 2 (count m "q(X)"));
  ]

let suite = suite @ image_cases
