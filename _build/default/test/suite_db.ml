open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fresh () = Database.create ()

let load db text = Loader.consult_string db text

let heads pred = List.map (fun c -> Term.to_string c.Pred.head) (Pred.clauses pred)

let cases =
  [
    t "loader separates facts and rules" `Quick (fun () ->
        let db = fresh () in
        let r = load db "p(1). p(2). q(X) :- p(X)." in
        check_int "clauses" 3 r.Loader.clauses_loaded;
        check_int "p facts" 2 (Pred.clause_count (Option.get (Database.find db "p" 1)));
        check_int "q rules" 1 (Pred.clause_count (Option.get (Database.find db "q" 1))));
    t "table directive" `Quick (fun () ->
        let db = fresh () in
        ignore (load db ":- table path/2.\npath(X,Y) :- edge(X,Y).");
        check_bool "tabled" true (Pred.tabled (Option.get (Database.find db "path" 2))));
    t "table directive with list" `Quick (fun () ->
        let db = fresh () in
        ignore (load db ":- table [p/1, q/2].");
        check_bool "p" true (Pred.tabled (Option.get (Database.find db "p" 1)));
        check_bool "q" true (Pred.tabled (Option.get (Database.find db "q" 2))));
    t "dynamic directive" `Quick (fun () ->
        let db = fresh () in
        ignore (load db ":- dynamic emp/2.");
        check_bool "dynamic" true (Pred.kind (Option.get (Database.find db "emp" 2)) = Pred.Dynamic));
    t "index directive shapes retrieval" `Quick (fun () ->
        let db = fresh () in
        ignore (load db ":- index(p/3, [2]).\np(a,k1,1). p(b,k2,2). p(c,k1,3).");
        let pred = Option.get (Database.find db "p" 3) in
        let args s =
          match Term.deref (Parser.term_of_string s) with
          | Term.Struct (_, args) -> args
          | _ -> [||]
        in
        check_int "second-arg index" 2 (List.length (Pred.lookup pred (args "p(X,k1,Y)")));
        (* all clauses with unbound index field *)
        check_int "fallback" 3 (List.length (Pred.lookup pred (args "p(X,Y,Z)"))));
    t "first-string index directive" `Quick (fun () ->
        let db = fresh () in
        ignore (load db ":- index(p/2, str).\np(g(a),1). p(g(b),2). p(h(c),3).");
        let pred = Option.get (Database.find db "p" 2) in
        check_bool "spec" true (Pred.index_spec pred = Pred.First_string_index);
        let args s =
          match Term.deref (Parser.term_of_string s) with
          | Term.Struct (_, args) -> args
          | _ -> [||]
        in
        check_int "trie discriminates below functor" 1
          (List.length (Pred.lookup pred (args "p(g(a),X)"))));
    t "op directive affects later clauses" `Quick (fun () ->
        let db = fresh () in
        ignore (load db ":- op(700, xfx, likes).\nfact(john likes mary).");
        let pred = Option.get (Database.find db "fact" 1) in
        check_int "one clause" 1 (Pred.clause_count pred));
    t "hilog directive encodes clauses" `Quick (fun () ->
        let db = fresh () in
        ignore (load db ":- hilog h.\nh(1). h(2).");
        check_bool "apply/2 exists" true (Database.find db "apply" 2 <> None);
        check_bool "no h/1" true (Database.find db "h" 1 = None));
    t "module directive recorded" `Quick (fun () ->
        let db = fresh () in
        ignore (load db ":- module(lists, [append/3, member/2]).");
        let m = Option.get (Database.module_info db "lists") in
        check_int "exports" 2 (List.length m.Database.exports);
        check_bool "current" true (Database.current_module db = "lists"));
    t "deferred goals returned in order" `Quick (fun () ->
        let db = fresh () in
        let r = load db ":- write(hello).\np(1).\n:- write(world)." in
        check_int "two goals" 2 (List.length r.Loader.deferred_goals));
    t "clause order: assertz after asserta" `Quick (fun () ->
        let db = fresh () in
        let pred = Database.declare db "p" 1 in
        ignore (Pred.assertz pred ~head:(Parser.term_of_string "p(1)") ~body:(Term.Atom "true"));
        ignore (Pred.assertz pred ~head:(Parser.term_of_string "p(2)") ~body:(Term.Atom "true"));
        ignore (Pred.asserta pred ~head:(Parser.term_of_string "p(0)") ~body:(Term.Atom "true"));
        Alcotest.(check (list string)) "order" [ "p(0)"; "p(1)"; "p(2)" ] (heads pred));
    t "remove clause" `Quick (fun () ->
        let db = fresh () in
        ignore (load db "p(1). p(2). p(3).");
        let pred = Option.get (Database.find db "p" 1) in
        let second = List.nth (Pred.clauses pred) 1 in
        Pred.remove pred second;
        Alcotest.(check (list string)) "removed middle" [ "p(1)"; "p(3)" ] (heads pred));
    t "remove_all" `Quick (fun () ->
        let db = fresh () in
        ignore (load db "p(1). p(2).");
        let pred = Option.get (Database.find db "p" 1) in
        Pred.remove_all pred;
        check_int "empty" 0 (Pred.clause_count pred));
    t "fast_load basic facts" `Quick (fun () ->
        let db = fresh () in
        let n = Fast_load.string_ db "e(1,2). e(2,3).\ne(3,4)." in
        check_int "loaded" 3 n;
        check_int "stored" 3 (Pred.clause_count (Option.get (Database.find db "e" 2))));
    t "fast_load nested terms, quoted atoms, lists, floats" `Quick (fun () ->
        let db = fresh () in
        let n =
          Fast_load.string_ db
            "emp(1, 'John Smith', date(1990, 5), [a,b], -3, 2.5).\n% comment\nemp(2, bob, null, [], 0, 1.0)."
        in
        check_int "loaded" 2 n;
        let pred = Option.get (Database.find db "emp" 6) in
        check_int "stored" 2 (Pred.clause_count pred));
    t "fast_load rejects junk" `Quick (fun () ->
        let db = fresh () in
        match Fast_load.string_ db "e(1,2) e(3,4)." with
        | exception Fast_load.Syntax _ -> ()
        | _ -> Alcotest.fail "expected syntax error");
    t "fast_load agrees with the general reader" `Quick (fun () ->
        let text = "f(a, g(1), [x,y]). f(b, h('q q'), []). f(-1, 2.5, [1,[2]])." in
        let db1 = fresh () and db2 = fresh () in
        ignore (Fast_load.string_ db1 text);
        ignore (load db2 text);
        let c1 = Pred.clauses (Option.get (Database.find db1 "f" 3)) in
        let c2 = Pred.clauses (Option.get (Database.find db2 "f" 3)) in
        List.iter2
          (fun a b -> check_bool "same clause" true (Unify.variant a.Pred.head b.Pred.head))
          c1 c2);
    t "obj_file round trip" `Quick (fun () ->
        let db = fresh () in
        ignore (load db ":- table p/1.\np(X) :- q(X).\nq(1). q(2).");
        let path = Filename.temp_file "xsbobj" ".xwam" in
        Obj_file.save_all db path;
        let db2 = fresh () in
        let n = Obj_file.load db2 path in
        Sys.remove path;
        check_int "clauses restored" 3 n;
        check_bool "tabling restored" true (Pred.tabled (Option.get (Database.find db2 "p" 1)));
        check_int "q facts" 2 (Pred.clause_count (Option.get (Database.find db2 "q" 1))));
    t "obj_file rejects garbage" `Quick (fun () ->
        let path = Filename.temp_file "xsbobj" ".bad" in
        Out_channel.with_open_bin path (fun oc -> output_string oc "NOTANOBJ");
        let db = fresh () in
        (match Obj_file.load db path with
        | exception Obj_file.Bad_object_file _ -> ()
        | exception End_of_file -> ()
        | _ -> Alcotest.fail "expected rejection");
        Sys.remove path);
    t "table_all tables exactly the cyclic SCCs" `Quick (fun () ->
        let db = fresh () in
        ignore
          (load db
             ":- table_all.\n\
              path(X,Y) :- edge(X,Y).\n\
              path(X,Y) :- path(X,Z), edge(Z,Y).\n\
              top(X) :- path(1,X).\n\
              even(X) :- odd(Y), X is Y + 1.\n\
              odd(X) :- even(Y), X is Y + 1.\n\
              edge(1,2).");
        check_bool "path tabled (self loop)" true
          (Pred.tabled (Option.get (Database.find db "path" 2)));
        check_bool "top not tabled" false (Pred.tabled (Option.get (Database.find db "top" 1)));
        check_bool "even tabled (mutual)" true
          (Pred.tabled (Option.get (Database.find db "even" 1)));
        check_bool "odd tabled (mutual)" true
          (Pred.tabled (Option.get (Database.find db "odd" 1)));
        check_bool "edge not tabled" false (Pred.tabled (Option.get (Database.find db "edge" 2))));
    t "body_calls sees through control constructs" `Quick (fun () ->
        let body = Parser.term_of_string "(a, \\+ b ; c -> tnot(d)), findall(X, e(X), L)" in
        let calls = Table_all.body_calls body in
        List.iter
          (fun name -> check_bool name true (List.mem (name, 0) calls || List.mem (name, 1) calls))
          [ "a"; "b"; "c"; "d"; "e" ]);
    t "abolish" `Quick (fun () ->
        let db = fresh () in
        ignore (load db "p(1).");
        Database.remove_pred db "p" 1;
        check_bool "gone" true (Database.find db "p" 1 = None));
  ]

let suite = cases
