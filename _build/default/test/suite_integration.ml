(* End-to-end scenarios taken directly from the paper. *)

open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let session ?mode text =
  let s = Session.create ?mode () in
  Session.consult s text;
  s

let binary_tree_moves height =
  let buf = Buffer.create 256 in
  let nodes = (1 lsl height) - 1 in
  for i = 1 to nodes do
    if 2 * i <= nodes then Buffer.add_string buf (Printf.sprintf "move(%d,%d). " i (2 * i));
    if (2 * i) + 1 <= nodes then
      Buffer.add_string buf (Printf.sprintf "move(%d,%d). " i ((2 * i) + 1))
  done;
  Buffer.contents buf

let cases =
  [
    t "abstract: finite on modularly stratified datalog" `Quick (fun () ->
        (* the headline: all-answers datalog queries terminate, cycles
           included, under every rule shape *)
        List.iter
          (fun rules ->
            let s =
              session
                (":- table path/2.\n" ^ rules
               ^ "edge(1,2). edge(2,3). edge(3,1). edge(3,4).")
            in
            check_int rules 4 (Session.count s "path(1,X)"))
          [
            "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n";
            "path(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n";
            "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), path(Z,Y).\n";
          ]);
    t "section 4.1: the paper's HiLog term examples parse" `Quick (fun () ->
        List.iter
          (fun text -> ignore (Parser.term_of_string text))
          [
            "X"; "X(1)"; "parent('John', 'Mary')"; "r(X)(parent(X, 'Mary'))"; "7"; "7(E)";
            "X(bob, Y)"; "p(f(X))(Y, Z)";
          ]);
    t "section 4.4: transform_null joined with a relation" `Quick (fun () ->
        let s =
          session
            "transform_null(null,'date unknown') :- !.\n\
             transform_null(X,X).\n\
             emp(1, date(1990,1)). emp(2, null). emp(3, date(1995,6)).\n\
             hired(Id, D) :- emp(Id, H), transform_null(H, D)."
        in
        check_int "all transformed" 3 (Session.count s "hired(_, D)");
        check_bool "null mapped" true (Session.succeeds s "hired(2, 'date unknown')"));
    t "section 4.4: not_p via cut-fail equals negation" `Quick (fun () ->
        let s =
          session
            "p(1,2). p(3,4).\n\
             not_p(X,Y) :- p(X,Y), !, fail.\n\
             not_p(_,_)."
        in
        check_bool "in p" false (Session.succeeds s "not_p(1,2)");
        check_bool "not in p" true (Session.succeeds s "not_p(1,3)"));
    t "example 4.1: win over trees, all three negations agree" `Quick (fun () ->
        let moves = binary_tree_moves 5 in
        let truth neg =
          let rule =
            match neg with
            | `Tnot -> ":- table win/1.\nwin(X) :- move(X,Y), tnot(win(Y)).\n"
            | `Etnot -> ":- table win/1.\nwin(X) :- move(X,Y), e_tnot(win(Y)).\n"
            | `Sldnf -> "win(X) :- move(X,Y), \\+ win(Y).\n"
          in
          let s = session (rule ^ moves) in
          List.map (fun i -> Session.succeeds s (Printf.sprintf "win(%d)" i)) [ 1; 2; 3; 7; 15 ]
        in
        let slg = truth `Tnot in
        check_bool "e_tnot agrees" true (truth `Etnot = slg);
        check_bool "sldnf agrees" true (truth `Sldnf = slg));
    t "section 4.7: benefits example verbatim" `Quick (fun () ->
        let s =
          session
            ":- hilog package1. :- hilog package2.\n\
             package1(health_ins, required).\n\
             package1(life_ins, optional).\n\
             package2(free_car, optional).\n\
             package2(long_vacations, optional).\n\
             benefits('John', package1). benefits('Bob', package2).\n\
             intersect_2(S1,S2)(X,Y) :- S1(X,Y), S2(X,Y).\n\
             union_2(S1,S2)(X,Y) :- S1(X,Y).\n\
             union_2(S1,S2)(X,Y) :- S2(X,Y)."
        in
        check_int "John's benefits" 2 (Session.count s "benefits('John', P), P(X, Y)");
        check_int "no common benefits in the paper's data" 0
          (Session.count s "benefits('John',P), benefits('Bob',Q), intersect_2(P,Q)(X,Y)");
        check_int "union" 4
          (Session.count s "benefits('John',P), benefits('Bob',Q), union_2(P,Q)(X,Y)"));
    t "section 4.7: generic path closure over graph parameters" `Quick (fun () ->
        let s =
          session
            ":- hilog g1. :- hilog g2.\n\
             :- table apply/3.\n\
             path(Graph)(X, Y) :- Graph(X, Y).\n\
             path(Graph)(X, Y) :- path(Graph)(X, Z), Graph(Z, Y).\n\
             g1(1,2). g1(2,3).\n\
             g2(a,b)."
        in
        check_int "g1 closure" 3 (Session.count s "path(g1)(X, Y)");
        check_int "g2 closure" 1 (Session.count s "path(g2)(X, Y)"));
    t "prelude: list predicates" `Quick (fun () ->
        let s = Session.create () in
        Prelude.load s;
        List.iter
          (fun q -> check_bool q true (Session.succeeds s q))
          [
            "member(2, [1,2,3])";
            "\\+ member(9, [1,2,3])";
            "append([1,2], [3], [1,2,3])";
            "reverse([1,2,3], [3,2,1])";
            "last([a,b,c], c)";
            "nth0(1, [a,b,c], b)";
            "nth1(1, [a,b,c], a)";
            "sum_list([1,2,3,4], 10)";
            "max_list([3,1,4,1,5], 5)";
            "min_list([3,1,4], 1)";
            "numlist(1, 5, [1,2,3,4,5])";
            "msort([3,1,2,1], [1,1,2,3])";
            "select(2, [1,2,3], [1,3])";
            "delete([1,2,1,3], 1, [2,3])";
          ];
        check_int "permutations" 6 (Session.count s "permutation([1,2,3], P)"));
    t "prelude: aggregates via findall (§4.7)" `Quick (fun () ->
        let s = Session.create () in
        Prelude.load s;
        Session.consult s "salary(tom, 100). salary(ann, 150). salary(joe, 50).";
        check_bool "count" true (Session.succeeds s "count(salary(_, _), 3)");
        check_bool "sum" true (Session.succeeds s "sum(S, salary(_, S), 300)");
        check_bool "max" true (Session.succeeds s "aggregate_max(S, salary(_, S), 150)");
        check_bool "tcount over tabled" true
          (let s2 = Session.create () in
           Prelude.load s2;
           Session.consult s2
             ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n\
              edge(1,2). edge(2,3). edge(3,1).";
           Session.succeeds s2 "tcount(path(1,_), 3)"));
    t "prelude: HiLog set operations" `Quick (fun () ->
        let s = Session.create () in
        Prelude.load s;
        Session.consult s
          ":- hilog a_set. :- hilog b_set.\n\
           a_set(x, 1). a_set(y, 2).\n\
           b_set(x, 1). b_set(z, 3).";
        check_int "intersection" 1 (Session.count s "intersect_2(a_set, b_set)(X, Y)");
        check_int "difference" 1 (Session.count s "diff_2(a_set, b_set)(X, Y)");
        check_bool "not subset" false (Session.succeeds s "subset_2(a_set, b_set)");
        check_bool "subset of union... via member_2" true
          (Session.succeeds s "member_2(a_set)(x, 1)"));
    t "figure 2 formula holds exactly for heights 4..9" `Quick (fun () ->
        List.iter
          (fun h ->
            let s = session ("win(X) :- move(X,Y), \\+ win(Y).\n" ^ binary_tree_moves h) in
            Engine.set_count_calls (Session.engine s) true;
            ignore (Session.succeeds s "win(1)");
            let calls = Engine.call_count (Session.engine s) "win" 1 in
            let n = h - 1 in
            let expected = (1 lsl ((n / 2) + 2)) - 3 + (if n mod 2 = 1 then 1 else 0) in
            check_int (Printf.sprintf "G at height %d" h) expected calls)
          [ 4; 5; 6; 7; 8; 9 ]);
    t "section 2: tabling non-recursive externally-computed predicates" `Quick (fun () ->
        (* the paper notes nothing precludes tabling non-recursive
           predicates; check tables are created and reused *)
        let s = session ":- table expensive/2.\nexpensive(X, Y) :- Y is X * X." in
        ignore (Session.query s "expensive(4, Y)");
        let before = (Engine.stats (Session.engine s)).Machine.st_resolutions in
        ignore (Session.query s "expensive(4, Y)");
        let after = (Engine.stats (Session.engine s)).Machine.st_resolutions in
        (* the second call answers from the table: no new clause resolution
           against expensive/2 (only the query pseudo-clause) *)
        check_bool "table reused" true (after - before <= 1));
    t "space reclamation: abolished tables recompute" `Quick (fun () ->
        let s =
          session
            ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3)."
        in
        check_int "first" 2 (Session.count s "path(1,X)");
        ignore (Session.query s "abolish_all_tables");
        check_int "after reclaim" 2 (Session.count s "path(1,X)"));
    t "dynamic data + tabled views interact" `Quick (fun () ->
        let s =
          session
            ":- dynamic edge/2.\n:- table path/2.\n\
             path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y)."
        in
        ignore (Session.query s "assert(edge(1,2)), assert(edge(2,3))");
        check_int "view over dynamic data" 2 (Session.count s "path(1,X)");
        ignore (Session.query s "assert(edge(3,4)), abolish_all_tables");
        check_int "updated after table reclaim" 3 (Session.count s "path(1,X)"));
    t "cross-engine agreement on the same database" `Quick (fun () ->
        let text = "e(1,2). e(2,3). e(3,4). e(4,5).\nq(X,Z) :- e(X,Y), e(Y,Z)." in
        let s = session text in
        let slg = Session.count s "q(X,Z)" in
        let wam =
          let db = Database.create () in
          ignore (Loader.consult_string db text);
          Wam.count_solutions (Wam.create (Wam.of_database db)) (Parser.term_of_string "q(X,Z)")
        in
        let bu =
          let st = Bottomup.run (Datalog.of_clauses (Parser.program_of_string text)) in
          Bottomup.relation_size st ("q", 2)
        in
        let interp =
          Naive_interp.count
            (Naive_interp.create (Parser.program_of_string text))
            (Parser.term_of_string "q(X,Z)")
        in
        check_int "wam" slg wam;
        check_int "bottomup" slg bu;
        check_int "interp" slg interp);
  ]

(* random non-stratified programs: the engine+residual pipeline must
   agree with the alternating fixpoint over the directly-grounded
   program *)
let wfs_props =
  let open QCheck2 in
  let program_gen =
    (* random ground rules over atoms p0..p7: head :- [pos], [neg] *)
    let atom = Gen.map (fun i -> Printf.sprintf "p%d" i) (Gen.int_range 0 7) in
    Gen.list_size (Gen.int_range 1 12)
      (Gen.triple atom (Gen.list_size (Gen.int_range 0 2) atom) (Gen.list_size (Gen.int_range 0 2) atom))
  in
  [
    Test.make ~name:"engine WFS = direct alternating fixpoint" ~count:80 program_gen (fun rules ->
        (* direct ground evaluation *)
        let ground = Ground.create () in
        List.iter
          (fun (h, pos, neg) ->
            Ground.add_rule ground
              (Canon.of_term (Term.Atom h))
              ~pos:(List.map (fun a -> Canon.of_term (Term.Atom a)) pos)
              ~neg:(List.map (fun a -> Canon.of_term (Term.Atom a)) neg))
          rules;
        (* engine in well-founded mode *)
        let text =
          ":- table p0/0, p1/0, p2/0, p3/0, p4/0, p5/0, p6/0, p7/0.\n"
          ^ String.concat "\n"
              (List.map
                 (fun (h, pos, neg) ->
                   let body =
                     List.map (fun a -> a) pos @ List.map (fun a -> "tnot(" ^ a ^ ")") neg
                   in
                   match body with
                   | [] -> h ^ "."
                   | _ -> h ^ " :- " ^ String.concat ", " body ^ ".")
                 rules)
        in
        let s = session ~mode:Machine.Well_founded text in
        List.for_all
          (fun i ->
            let name = Printf.sprintf "p%d" i in
            let direct = Ground.wfs ground (Canon.of_term (Term.Atom name)) in
            let via_engine =
              match Session.wfs_query s name with
              | [] -> Ground.False
              | [ { Residual.truth; _ } ] -> truth
              | _ -> Ground.False
            in
            direct = via_engine)
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  ]

let suite = cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) wfs_props
