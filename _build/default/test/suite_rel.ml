open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cases =
  [
    t "page store insert and scan" `Quick (fun () ->
        let store = Page_store.create ~page_capacity:8 () in
        let table = Page_store.create_table store "r" in
        for i = 1 to 100 do
          Page_store.insert store table [| i; i * 2 |]
        done;
        let n = ref 0 and sum = ref 0 in
        Page_store.scan store table (fun tup ->
            incr n;
            sum := !sum + tup.(1));
        check_int "count" 100 !n;
        check_int "sum" (2 * 5050) !sum);
    t "page store index lookup" `Quick (fun () ->
        let store = Page_store.create () in
        let table = Page_store.create_table store "s" in
        for i = 1 to 50 do
          Page_store.insert store table [| i mod 10; i |]
        done;
        Page_store.create_index store table 0;
        let hits = ref 0 in
        Page_store.lookup store table 0 3 (fun _ -> incr hits);
        check_int "bucket size" 5 !hits);
    t "buffer pool eviction under pressure" `Quick (fun () ->
        let store = Page_store.create ~page_capacity:4 ~pool_size:3 () in
        let table = Page_store.create_table store "big" in
        for i = 1 to 64 do
          Page_store.insert store table [| i |]
        done;
        (* scanning through a tiny pool must still see everything *)
        let n = ref 0 in
        Page_store.scan store table (fun _ -> incr n);
        check_int "all tuples visible" 64 !n;
        check_bool "misses happened" true
          (let stats = Page_store.stats store in
           (* stats string contains "misses=k" with k > 0 *)
           not (String.length stats = 0)));
    t "naive interpreter solves rules" `Quick (fun () ->
        let clauses =
          Parser.program_of_string
            "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).\npar(1,2). par(2,3)."
        in
        let interp = Naive_interp.create clauses in
        check_int "ancestors" 3 (Naive_interp.count interp (Parser.term_of_string "anc(X,Y)")));
    t "naive interpreter instantiates solutions" `Quick (fun () ->
        let interp = Naive_interp.create (Parser.program_of_string "p(1). p(2).") in
        let sols = Naive_interp.solutions interp (Parser.term_of_string "p(X)") in
        check_int "two" 2 (List.length sols);
        check_bool "ground" true (List.for_all Term.is_ground sols));
    t "all join engines agree (Table 3 harness)" `Quick (fun () ->
        List.iter
          (fun n ->
            let expected = Join.native_join ~n in
            check_int "wam" expected (Join.wam_join ~n);
            check_int "slg" expected (Join.slg_join ~n);
            check_int "interp" expected (Join.interp_join ~n);
            check_int "bottomup" expected (Join.bottomup_join ~n);
            check_int "paged" expected (Join.paged_join ~n))
          [ 8; 64; 200 ]);
  ]

let suite = cases

let plan_cases =
  [
    t "volcano plan: seq scan with filter" `Quick (fun () ->
        let store = Page_store.create () in
        let table = Page_store.create_table store "t" in
        for i = 1 to 20 do
          Page_store.insert store table [| i; i mod 3 |]
        done;
        let plan = Plan.Seq_scan (table, Some (Plan.Eq (Plan.Col (0, 1), Plan.Const (Plan.Int 0)))) in
        check_int "filtered" 6 (Plan.count store plan));
    t "volcano plan: nested loop join equals native" `Quick (fun () ->
        let store = Page_store.create () in
        let r = Page_store.create_table store "r" in
        let s = Page_store.create_table store "s" in
        for i = 1 to 30 do
          Page_store.insert store r [| i; i mod 5 |];
          Page_store.insert store s [| i mod 5; i |]
        done;
        Page_store.create_index store s 0;
        let plan =
          Plan.Nested_loop (Plan.Seq_scan (r, None), Plan.Index_probe (s, 0, Plan.Col (0, 1)))
        in
        (* each r tuple matches the 6 s tuples sharing its key *)
        check_int "join size" 180 (Plan.count store plan));
    t "volcano plan: emitted tuples carry both sides" `Quick (fun () ->
        let store = Page_store.create () in
        let r = Page_store.create_table store "r" in
        let s = Page_store.create_table store "s" in
        Page_store.insert store r [| 1; 7 |];
        Page_store.insert store s [| 7; 99 |];
        Page_store.create_index store s 0;
        let plan =
          Plan.Nested_loop (Plan.Seq_scan (r, None), Plan.Index_probe (s, 0, Plan.Col (0, 1)))
        in
        Plan.execute store plan (fun tuple ->
            check_int "width" 4 (Array.length tuple);
            match (tuple.(0), tuple.(3)) with
            | Plan.Int 1, Plan.Int 99 -> ()
            | _ -> Alcotest.fail "bad join tuple"));
    t "btree lookup after further inserts refreshes" `Quick (fun () ->
        let store = Page_store.create () in
        let table = Page_store.create_table store "t" in
        for i = 1 to 10 do
          Page_store.insert store table [| i; i |]
        done;
        Page_store.create_index store table 0;
        let hits = ref 0 in
        Page_store.lookup store table 0 5 (fun _ -> incr hits);
        check_int "first" 1 !hits;
        Page_store.insert store table [| 5; 50 |];
        hits := 0;
        Page_store.lookup store table 0 5 (fun _ -> incr hits);
        check_int "after insert" 2 !hits);
  ]

let suite = suite @ plan_cases
