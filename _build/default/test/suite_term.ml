open Xsb

let t = Alcotest.test_case

let parse s = Parser.term_of_string s

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_trail () = Trail.create ()

let unify_ok a b =
  let trail = fresh_trail () in
  let t1, t2 = (parse a, parse b) in
  Unify.unify trail t1 t2

let cases =
  [
    t "unify atoms" `Quick (fun () ->
        check_bool "same" true (unify_ok "a" "a");
        check_bool "diff" false (unify_ok "a" "b"));
    t "unify ints and floats are distinct" `Quick (fun () ->
        check_bool "int/int" true (unify_ok "42" "42");
        check_bool "int/float" false (unify_ok "42" "42.0"));
    t "unify structs" `Quick (fun () ->
        check_bool "deep" true (unify_ok "f(g(X),Y)" "f(Z,h(Z))");
        check_bool "clash" false (unify_ok "f(a,b)" "f(a,c)");
        check_bool "arity" false (unify_ok "f(a)" "f(a,b)"));
    t "unify binds consistently" `Quick (fun () ->
        let trail = fresh_trail () in
        let x = Term.fresh_var () in
        let lhs = Term.app "f" [ x; x ] in
        let rhs = parse "f(a,b)" in
        check_bool "f(X,X) vs f(a,b)" false (Unify.unify trail lhs rhs);
        (* failure must leave X unbound *)
        check_bool "X unbound after failure" true (Term.deref x == x));
    t "unify failure undoes partial bindings" `Quick (fun () ->
        let trail = fresh_trail () in
        let x = Term.fresh_var () and y = Term.fresh_var () in
        let lhs = Term.app "f" [ x; y; x ] in
        let rhs = parse "f(1,2,3)" in
        check_bool "fails" false (Unify.unify trail lhs rhs);
        check_bool "x restored" true (Term.deref x == x);
        check_bool "y restored" true (Term.deref y == y));
    t "occurs check" `Quick (fun () ->
        let trail = fresh_trail () in
        let x = Term.fresh_var () in
        check_bool "without occurs-check binds" true
          (Unify.unify trail x (Term.app "f" [ x ]));
        Trail.undo_to trail 0;
        check_bool "with occurs-check fails" false
          (Unify.unify ~occurs_check:true trail x (Term.app "f" [ x ])));
    t "trail undo_to" `Quick (fun () ->
        let trail = fresh_trail () in
        let x = Term.fresh_var () in
        let m = Trail.mark trail in
        ignore (Unify.unify trail x (parse "a"));
        check_string "bound" "a" (Term.to_string x);
        Trail.undo_to trail m;
        check_bool "unbound again" true (Term.deref x == x));
    t "variant" `Quick (fun () ->
        check_bool "renaming" true (Unify.variant (parse "f(X,Y,X)") (parse "f(A,B,A)"));
        check_bool "not variant (shared)" false (Unify.variant (parse "f(X,Y)") (parse "f(A,A)"));
        check_bool "not variant (reversed sharing)" false
          (Unify.variant (parse "f(X,X)") (parse "f(A,B)"));
        check_bool "ground" true (Unify.variant (parse "f(a,1)") (parse "f(a,1)")));
    t "instance_of" `Quick (fun () ->
        let trail = fresh_trail () in
        check_bool "instance" true
          (Unify.instance_of trail ~instance:(parse "f(a,b)") ~general:(parse "f(X,Y)"));
        check_bool "not instance" false
          (Unify.instance_of trail ~instance:(parse "f(X,b)") ~general:(parse "f(a,Y)"));
        check_bool "shared general" false
          (Unify.instance_of trail ~instance:(parse "f(a,b)") ~general:(parse "f(X,X)"));
        check_bool "shared ok" true
          (Unify.instance_of trail ~instance:(parse "f(a,a)") ~general:(parse "f(X,X)")));
    t "canon variants share keys" `Quick (fun () ->
        let k1 = Canon.of_term (parse "path(X,Y,X)") in
        let k2 = Canon.of_term (parse "path(A,B,A)") in
        let k3 = Canon.of_term (parse "path(A,B,B)") in
        check_bool "variant keys equal" true (Canon.equal k1 k2);
        check_bool "non-variant differ" false (Canon.equal k1 k3));
    t "canon roundtrip" `Quick (fun () ->
        let term = parse "f(X,g(Y,X),[1,2|Z])" in
        let back = Canon.to_term (Canon.of_term term) in
        check_bool "roundtrip is variant" true (Unify.variant term back));
    t "canon nvars and ground" `Quick (fun () ->
        check_int "nvars" 2 (Canon.nvars (Canon.of_term (parse "f(X,Y,X)")));
        check_bool "ground" true (Canon.is_ground (Canon.of_term (parse "f(a,[1,2])")));
        check_bool "nonground" false (Canon.is_ground (Canon.of_term (parse "f(a,X)"))));
    t "canon respects bindings" `Quick (fun () ->
        let trail = fresh_trail () in
        let x = Term.fresh_var () in
        let term = Term.app "f" [ x ] in
        ignore (Unify.unify trail x (parse "a"));
        check_bool "bound part canonical" true
          (Canon.equal (Canon.of_term term) (Canon.of_term (parse "f(a)"))));
    t "standard order" `Quick (fun () ->
        let ordered = [ "X"; "1"; "1.5"; "2"; "abc"; "zzz"; "f(a)"; "f(a,b)"; "g(a,b)" ] in
        (* Var < numbers < atoms < compound (by arity, then name) *)
        let terms = List.map parse ordered in
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if i < j then
                  check_bool (Printf.sprintf "%d < %d" i j) true (Term.compare a b < 0))
              terms)
          terms);
    t "copy is a fresh variant" `Quick (fun () ->
        let term = parse "f(X,g(X,Y))" in
        let copy = Term.copy term in
        check_bool "variant" true (Unify.variant term copy);
        let trail = fresh_trail () in
        ignore (Unify.unify trail copy (parse "f(a,g(a,b))"));
        check_bool "original untouched" false (Term.is_ground term));
    t "copy2 shares renaming" `Quick (fun () ->
        let x = Term.fresh_var () in
        let a = Term.app "f" [ x ] and b = Term.app "g" [ x ] in
        let a', b' = Term.copy2 a b in
        let trail = fresh_trail () in
        ignore (Unify.unify trail a' (parse "f(c)"));
        check_bool "copy shares var" true (Term.equal b' (parse "g(c)")));
    t "vars in first-occurrence order" `Quick (fun () ->
        let term = parse "f(X,g(Y),X,Z)" in
        check_int "three vars" 3 (List.length (Term.vars term)));
    t "lists" `Quick (fun () ->
        check_bool "proper" true (Term.to_list (parse "[1,2,3]") <> None);
        check_bool "improper" true (Term.to_list (parse "[1|X]") = None);
        check_int "elements" 3 (List.length (Option.get (Term.to_list (parse "[a,b,c]")))));
    t "size" `Quick (fun () ->
        check_int "atom" 1 (Term.size (parse "a"));
        check_int "struct" 4 (Term.size (parse "f(a,g(b))")));
    t "atom quoting in print" `Quick (fun () ->
        check_string "needs quotes" "'hello world'" (Term.to_string (parse "'hello world'"));
        check_string "no quotes" "hello" (Term.to_string (parse "hello"));
        check_string "symbolic" "++" (Term.to_string (Term.Atom "++")));
    t "vec basics" `Quick (fun () ->
        let v = Vec.create () in
        for i = 0 to 99 do
          Vec.push v i
        done;
        check_int "length" 100 (Vec.length v);
        check_int "get" 42 (Vec.get v 42);
        Vec.set v 42 0;
        check_int "set" 0 (Vec.get v 42);
        check_int "fold" (4950 - 42) (Vec.fold_left ( + ) 0 v));
  ]

(* ---- properties ---- *)

let props =
  let open QCheck2 in
  [
    Test.make ~name:"unify: a term unifies with its copy" ~count:200 Generators.term_gen (fun t ->
        let t = Term.copy t in
        let trail = fresh_trail () in
        let ok = Unify.unify trail (Term.copy t) (Term.copy t) in
        Trail.undo_to trail 0;
        ok);
    Test.make ~name:"canon: equal keys iff variant" ~count:200
      (QCheck2.Gen.pair Generators.term_gen Generators.term_gen) (fun (a, b) ->
        let a = Term.copy a and b = Term.copy b in
        Canon.equal (Canon.of_term a) (Canon.of_term b) = Unify.variant a b);
    Test.make ~name:"copy is variant" ~count:200 Generators.term_gen (fun t ->
        let t = Term.copy t in
        Unify.variant t (Term.copy t));
    Test.make ~name:"compare: antisymmetry and equality" ~count:200
      (QCheck2.Gen.pair Generators.term_gen Generators.term_gen) (fun (a, b) ->
        let a = Term.copy a and b = Term.copy b in
        let c1 = Term.compare a b and c2 = Term.compare b a in
        (c1 = 0) = (c2 = 0) && (c1 < 0) = (c2 > 0));
    Test.make ~name:"canon roundtrip is variant" ~count:200 Generators.term_gen (fun t ->
        let t = Term.copy t in
        Unify.variant t (Canon.to_term (Canon.of_term t)));
    Test.make ~name:"unify then canon keys equal" ~count:200
      (QCheck2.Gen.pair Generators.term_gen Generators.term_gen) (fun (a, b) ->
        let a = Term.copy a and b = Term.copy b in
        let trail = fresh_trail () in
        let ok = Unify.unify trail a b in
        let result = (not ok) || Canon.equal (Canon.of_term a) (Canon.of_term b) in
        Trail.undo_to trail 0;
        result);
  ]

let suite = cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
