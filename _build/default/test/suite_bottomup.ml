open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let program text = Datalog.of_clauses (Parser.program_of_string text)
let goal = Parser.term_of_string

let tc edges =
  "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n" ^ Generators.edge_facts edges

let cycle n = List.init n (fun i -> (i + 1, if i + 1 = n then 1 else i + 2))
let chain n = List.init (n - 1) (fun i -> (i + 1, i + 2))

let cases =
  [
    t "facts only" `Quick (fun () ->
        let st = Bottomup.run (program "e(1,2). e(3,4).") in
        check_int "two" 2 (Bottomup.relation_size st ("e", 2)));
    t "transitive closure on a chain" `Quick (fun () ->
        let st = Bottomup.run (program (tc (chain 6))) in
        check_int "15 pairs" 15 (Bottomup.relation_size st ("path", 2)));
    t "transitive closure on a cycle" `Quick (fun () ->
        let st = Bottomup.run (program (tc (cycle 5))) in
        check_int "n^2 pairs" 25 (Bottomup.relation_size st ("path", 2)));
    t "naive equals seminaive" `Quick (fun () ->
        let p = program (tc (cycle 7)) in
        let a = Bottomup.run ~strategy:Bottomup.Naive p in
        let b = Bottomup.run ~strategy:Bottomup.Seminaive p in
        check_int "same size" (Bottomup.relation_size a ("path", 2))
          (Bottomup.relation_size b ("path", 2)));
    t "answers instantiate a goal pattern" `Quick (fun () ->
        let st = Bottomup.run (program (tc (chain 5))) in
        check_int "from 1" 4 (List.length (Bottomup.answers st (goal "path(1, X)")));
        check_int "specific" 1 (List.length (Bottomup.answers st (goal "path(2, 4)"))));
    t "stratified negation (perfect model)" `Quick (fun () ->
        let st =
          Bottomup.run
            (program
               "reach(1).\n\
                reach(Y) :- reach(X), edge(X,Y).\n\
                unreach(X) :- node(X), \\+ reach(X).\n\
                edge(1,2). edge(2,3). edge(5,6).\n\
                node(1). node(2). node(3). node(4). node(5). node(6).")
        in
        check_int "unreachable" 3 (Bottomup.relation_size st ("unreach", 1)));
    t "unstratifiable raises" `Quick (fun () ->
        match Bottomup.run (program "p :- \\+ q.\nq :- \\+ p.") with
        | exception Datalog.Unstratifiable _ -> ()
        | _ -> Alcotest.fail "expected Unstratifiable");
    t "strata order callees first" `Quick (fun () ->
        let strata = Datalog.strata (program "a :- b.\nb :- c.\nc(1) :- d.\nd.") in
        let flat = List.concat strata in
        let pos key = Option.get (List.find_index (fun k -> k = key) flat) in
        check_bool "d before b" true (pos ("d", 0) < pos ("b", 0));
        check_bool "b before a" true (pos ("b", 0) < pos ("a", 0)));
    t "magic restricts the computation to relevant facts" `Quick (fun () ->
        (* two disconnected components: magic must not touch the second *)
        let edges = chain 6 @ [ (100, 101); (101, 102) ] in
        let p = program (tc edges) in
        let r = Magic.rewrite p (goal "path(1, X)") in
        let st = Bottomup.run r.Magic.program in
        check_int "only component answers" 5
          (Bottomup.relation_size st r.Magic.query_pred);
        (* a full evaluation computes both components *)
        let full = Bottomup.run p in
        check_int "full model is bigger" 18 (Bottomup.relation_size full ("path", 2)));
    t "magic answers equal full-model answers" `Quick (fun () ->
        let edges = cycle 6 in
        let p = program (tc edges) in
        let magic = List.length (Magic.answers p (goal "path(2, X)")) in
        let st = Bottomup.run p in
        check_int "equal" (List.length (Bottomup.answers st (goal "path(2, X)"))) magic);
    t "magic with bound-bound adornment" `Quick (fun () ->
        let p = program (tc (chain 8)) in
        check_int "bb query" 1 (List.length (Magic.answers p (goal "path(2, 5)")));
        check_int "bb no" 0 (List.length (Magic.answers p (goal "path(5, 2)"))));
    t "magic on non-linear rules (same generation)" `Quick (fun () ->
        let p =
          program
            "sg(X,Y) :- sib(X,Y).\n\
             sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).\n\
             sib(X,Y) :- par(X,P), par(Y,P).\n\
             par(2,1). par(3,1). par(4,2). par(5,2). par(6,3). par(7,3)."
        in
        check_int "sg(4,Y)" 4 (List.length (Magic.answers p (goal "sg(4, Y)"))));
    t "factoring produces the unary program and the same answers" `Quick (fun () ->
        let p = program (tc (cycle 8)) in
        let unfactored = Magic.rewrite p (goal "path(1, X)") in
        let factored = Magic.rewrite ~factor:true p (goal "path(1, X)") in
        check_bool "arity reduced" true (snd factored.Magic.query_pred < snd unfactored.Magic.query_pred);
        let a = List.length (Magic.answers p (goal "path(1, X)")) in
        let b = List.length (Magic.answers ~factor:true p (goal "path(1, X)")) in
        check_int "same answers" a b;
        check_int "eight" 8 a);
    t "factoring not applicable falls back silently" `Quick (fun () ->
        (* same-generation passes the bound argument through par first:
           not factorable; rewrite must still work *)
        let p =
          program
            "sg(X,Y) :- sib(X,Y).\n\
             sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).\n\
             sib(X,Y) :- par(X,P), par(Y,P).\n\
             par(2,1). par(3,1)."
        in
        check_int "answers" 2 (List.length (Magic.answers ~factor:true p (goal "sg(2, Y)"))));
    t "magic rejects negation" `Quick (fun () ->
        let p = program "p(X) :- d(X), \\+ q(X).\nd(1). q(2)." in
        match Magic.rewrite p (goal "p(X)") with
        | exception Magic.Not_applicable _ -> ()
        | _ -> Alcotest.fail "expected Not_applicable");
    t "mixed fact/rule predicates still restricted by magic" `Quick (fun () ->
        let p = program "p(1).\np(Y) :- p(X), e(X,Y).\ne(1,2). e(2,3)." in
        check_int "answers" 3 (List.length (Magic.answers p (goal "p(X)"))));
    t "iterations counted" `Quick (fun () ->
        let st = Bottomup.run (program (tc (chain 9))) in
        check_bool "several rounds" true (Bottomup.iterations st >= 7));
  ]

let props =
  let open QCheck2 in
  [
    Test.make ~name:"naive = seminaive on random graphs" ~count:50
      (Generators.edges_gen ~n:8 ~m:14) (fun edges ->
        let p = program (tc edges) in
        let a = Bottomup.run ~strategy:Bottomup.Naive p in
        let b = Bottomup.run ~strategy:Bottomup.Seminaive p in
        Bottomup.relation_size a ("path", 2) = Bottomup.relation_size b ("path", 2));
    Test.make ~name:"magic = full model on query-relevant answers" ~count:50
      (QCheck2.Gen.pair (Generators.edges_gen ~n:8 ~m:14) (QCheck2.Gen.int_range 1 8))
      (fun (edges, start) ->
        let p = program (tc edges) in
        let g () = goal (Printf.sprintf "path(%d, X)" start) in
        let magic = List.length (Magic.answers p (g ())) in
        let st = Bottomup.run p in
        magic = List.length (Bottomup.answers st (g ())));
    Test.make ~name:"factoring preserves answers" ~count:50
      (QCheck2.Gen.pair (Generators.edges_gen ~n:8 ~m:14) (QCheck2.Gen.int_range 1 8))
      (fun (edges, start) ->
        let p = program (tc edges) in
        let g () = goal (Printf.sprintf "path(%d, X)" start) in
        List.length (Magic.answers ~factor:true p (g ()))
        = List.length (Magic.answers p (g ())));
  ]

let suite = cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
