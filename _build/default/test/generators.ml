(* Random generators shared by the property-based tests. *)

open Xsb

let atom_names = [ "a"; "b"; "c"; "f"; "g"; "point"; "pair" ]

let term_gen =
  let open QCheck2.Gen in
  sized (fun size ->
      fix
        (fun self (size, vars) ->
          if size <= 0 then
            oneof
              [
                map (fun i -> Term.Int i) (int_range (-5) 5);
                map (fun n -> Term.Atom n) (oneofl atom_names);
                map (fun i -> List.nth vars (i mod List.length vars)) (int_range 0 7);
              ]
          else
            frequency
              [
                (2, map (fun n -> Term.Atom n) (oneofl atom_names));
                (1, map (fun i -> List.nth vars (i mod List.length vars)) (int_range 0 7));
                ( 3,
                  let* name = oneofl [ "f"; "g"; "h" ] in
                  let* arity = int_range 1 3 in
                  let* args = list_repeat arity (self (size / 2, vars)) in
                  return (Term.app name args) );
              ])
        (min size 8, List.init 3 (fun _ -> Term.fresh_var ())))

let term_print t = Term.to_string t

let arbitrary_term = QCheck2.Gen.map (fun t -> t) term_gen

(* a random edge relation over nodes 1..n *)
let edges_gen ~n ~m =
  QCheck2.Gen.(list_repeat m (pair (int_range 1 n) (int_range 1 n)))

let edge_facts edges =
  String.concat "\n"
    (List.map (fun (a, b) -> Printf.sprintf "edge(%d,%d)." a b) edges)

(* ground-truth reachability by plain BFS *)
let reachable edges start =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace adj a (b :: (Option.value (Hashtbl.find_opt adj a) ~default:[])))
    edges;
  let seen = Hashtbl.create 16 in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | x :: rest ->
        let next =
          List.filter
            (fun y ->
              if Hashtbl.mem seen y then false
              else begin
                Hashtbl.add seen y ();
                true
              end)
            (Option.value (Hashtbl.find_opt adj x) ~default:[])
        in
        go (next @ rest)
  in
  go [ start ];
  List.sort_uniq compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

(* ground-truth win/1 by backward induction on an acyclic graph *)
let win_values moves nodes =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace adj a (b :: (Option.value (Hashtbl.find_opt adj a) ~default:[])))
    moves;
  let memo = Hashtbl.create 16 in
  let rec win x =
    match Hashtbl.find_opt memo x with
    | Some v -> v
    | None ->
        let v =
          List.exists (fun y -> not (win y)) (Option.value (Hashtbl.find_opt adj x) ~default:[])
        in
        Hashtbl.add memo x v;
        v
  in
  List.map (fun x -> (x, win x)) nodes
