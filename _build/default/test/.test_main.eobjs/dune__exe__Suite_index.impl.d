test/suite_index.ml: Alcotest Answer_store Arg_hash Canon Disc_tree First_string Generators List Option Parser QCheck2 QCheck_alcotest Term Test Trail Unify Xsb
