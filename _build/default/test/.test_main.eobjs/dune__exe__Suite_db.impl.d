test/suite_db.ml: Alcotest Database Fast_load Filename List Loader Obj_file Option Out_channel Parser Pred Sys Table_all Term Unify Xsb
