test/suite_rel.ml: Alcotest Array Join List Naive_interp Page_store Parser Plan String Term Xsb
