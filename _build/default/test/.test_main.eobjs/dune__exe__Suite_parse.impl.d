test/suite_parse.ml: Alcotest Fmt Generators Lexer List Ops Parser Pretty QCheck2 QCheck_alcotest String Term Test Unify Xsb
