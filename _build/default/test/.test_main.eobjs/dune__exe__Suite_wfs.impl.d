test/suite_wfs.ml: Alcotest Canon Fmt Ground List Machine Parser Residual Session Xsb
