test/suite_bottomup.ml: Alcotest Bottomup Datalog Generators List Magic Option Parser Printf QCheck2 QCheck_alcotest Test Xsb
