test/suite_term.ml: Alcotest Canon Generators List Option Parser Printf QCheck2 QCheck_alcotest Term Test Trail Unify Vec Xsb
