test/generators.ml: Hashtbl List Option Printf QCheck2 String Term Xsb
