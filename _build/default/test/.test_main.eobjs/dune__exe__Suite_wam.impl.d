test/suite_wam.ml: Alcotest Database Engine Filename Generators List Loader Out_channel Parser QCheck2 QCheck_alcotest Session Sys Term Test Unify Wam Wam_image Xsb
