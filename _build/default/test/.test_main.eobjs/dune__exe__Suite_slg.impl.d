test/suite_slg.ml: Alcotest Bottomup Buffer Datalog Engine Format Generators List Machine Parser Prelude Printf QCheck2 QCheck_alcotest Session String Term Test Xsb
