test/test_main.ml: Alcotest Suite_bottomup Suite_db Suite_hilog Suite_index Suite_integration Suite_parse Suite_rel Suite_slg Suite_term Suite_wam Suite_wfs
