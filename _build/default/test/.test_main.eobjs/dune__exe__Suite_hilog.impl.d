test/suite_hilog.ml: Alcotest Array Database Engine Hilog Hilog_specialize List Parser Pred Session Term Unify Xsb
