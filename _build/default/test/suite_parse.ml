open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse = Parser.term_of_string
let canonical s = Term.to_string (parse s)

(* structural check: parse [s] and compare with an explicitly built term *)
let parses_to s expected () = check_bool s true (Unify.variant (parse s) expected)

let a = Term.atom
let i n = Term.Int n
let f name args = Term.app name args

let cases =
  [
    t "fact" `Quick (parses_to "parent(john, mary)" (f "parent" [ a "john"; a "mary" ]));
    t "operators follow precedence" `Quick
      (parses_to "1 + 2 * 3" (f "+" [ i 1; f "*" [ i 2; i 3 ] ]));
    t "yfx is left associative" `Quick
      (parses_to "1 - 2 - 3" (f "-" [ f "-" [ i 1; i 2 ]; i 3 ]));
    t "xfy is right associative" `Quick
      (parses_to "a ; b ; c" (f ";" [ a "a"; f ";" [ a "b"; a "c" ] ]));
    t "comma binds looser than ;" `Quick
      (parses_to "(a , b ; c)" (f ";" [ f "," [ a "a"; a "b" ]; a "c" ]));
    t "clause structure" `Quick
      (parses_to "p(X) :- q(X), r(X)"
         (let x = Term.fresh_var () in
          f ":-" [ f "p" [ x ]; f "," [ f "q" [ x ]; f "r" [ x ] ] ]));
    t "prefix minus on numbers" `Quick (fun () ->
        check_bool "negative literal" true (Unify.variant (parse "-5") (i (-5)));
        check_bool "subtraction" true (Unify.variant (parse "1 - 5") (f "-" [ i 1; i 5 ]));
        check_bool "prefix on var" true
          (Unify.variant (parse "- X") (f "-" [ Term.fresh_var () ])));
    t "lists" `Quick (fun () ->
        check_string "proper" "[1,2,3]" (canonical "[1, 2, 3]");
        check_bool "tail" true
          (Unify.variant (parse "[1,2|X]")
             (Term.cons (i 1) (Term.cons (i 2) (Term.fresh_var ()))));
        check_bool "empty" true (Unify.variant (parse "[]") Term.nil));
    t "nested list sugar equals cons" `Quick
      (parses_to "[a,b]" (Term.cons (a "a") (Term.cons (a "b") Term.nil)));
    t "curly braces" `Quick (parses_to "{a,b}" (f "{}" [ f "," [ a "a"; a "b" ] ]));
    t "strings become code lists" `Quick
      (parses_to "\"ab\"" (Term.list_ [ i 97; i 98 ]));
    t "char code" `Quick (parses_to "0'a" (i 97));
    t "hex octal binary" `Quick (fun () ->
        check_bool "hex" true (Unify.variant (parse "0xff") (i 255));
        check_bool "oct" true (Unify.variant (parse "0o17") (i 15));
        check_bool "bin" true (Unify.variant (parse "0b101") (i 5)));
    t "floats" `Quick (fun () ->
        check_bool "simple" true (Unify.variant (parse "1.5") (Term.Float 1.5));
        check_bool "exponent" true (Unify.variant (parse "2.0e3") (Term.Float 2000.0)));
    t "quoted atoms" `Quick (fun () ->
        check_bool "spaces" true (Unify.variant (parse "'hello world'") (a "hello world"));
        check_bool "escaped quote" true (Unify.variant (parse "'it''s'") (a "it's"));
        check_bool "backslash n" true (Unify.variant (parse "'a\\nb'") (a "a\nb")));
    t "comments" `Quick (fun () ->
        check_int "program" 2
          (List.length
             (Parser.program_of_string "% line comment\np(1). /* block\ncomment */ p(2).")));
    t "variables shared within a term" `Quick (fun () ->
        let term, vars = Parser.term_of_string_with_vars "f(X, Y, X)" in
        check_int "two named vars" 2 (List.length vars);
        check_int "term vars" 2 (List.length (Term.vars term)));
    t "underscore is always fresh" `Quick (fun () ->
        let term = parse "f(_, _)" in
        check_int "two distinct" 2 (List.length (Term.vars term)));
    t "hilog application chains" `Quick (fun () ->
        check_bool "var functor" true
          (Unify.variant (parse "X(a,b)")
             (f "apply" [ Term.fresh_var (); a "a"; a "b" ]));
        check_bool "compound functor" true
          (Unify.variant (parse "p(a)(b)") (f "apply" [ f "p" [ a "a" ]; a "b" ]));
        check_bool "integer functor" true
          (Unify.variant (parse "7(E)") (f "apply" [ i 7; Term.fresh_var () ])));
    t "hilog chain of three" `Quick
      (parses_to "f(a)(b)(c)" (f "apply" [ f "apply" [ f "f" [ a "a" ]; a "b" ]; a "c" ]));
    t "f (a) with space is not application" `Quick (fun () ->
        (* prefix-operator atoms apply; 'f' is not an operator so this is an error *)
        match parse "f (a)" with
        | exception Parser.Error _ -> ()
        | t -> Alcotest.failf "expected error, got %s" (Term.to_string t));
    t "end detection" `Quick (fun () ->
        check_int "two clauses" 2 (List.length (Parser.program_of_string "p(1.0). q(2)."));
        check_bool "=.. not end" true
          (Unify.variant (parse "X =.. L") (f "=.." [ Term.fresh_var (); Term.fresh_var () ])));
    t "custom operators via ops table" `Quick (fun () ->
        let ops = Ops.create () in
        Ops.add ops 700 Ops.XFX "likes";
        check_bool "custom infix" true
          (Unify.variant
             (Parser.term_of_string ~ops "john likes mary")
             (f "likes" [ a "john"; a "mary" ])));
    t "op removal" `Quick (fun () ->
        let ops = Ops.create () in
        Ops.add ops 0 Ops.YFX "+";
        match Parser.term_of_string ~ops "1 + 2" with
        | exception Parser.Error _ -> ()
        | t -> Alcotest.failf "expected error, got %s" (Term.to_string t));
    t "syntax errors carry positions" `Quick (fun () ->
        match parse "f(a," with
        | exception Parser.Error (_, pos) -> check_bool "position positive" true (pos > 0)
        | _ -> Alcotest.fail "expected error");
    t "read_term sequences" `Quick (fun () ->
        let lexer = Lexer.of_string "p(1). p(2). p(3)." in
        let rec count n =
          match Parser.read_term lexer with Some _ -> count (n + 1) | None -> n
        in
        check_int "three" 3 (count 0));
    t "pretty round trip on operators" `Quick (fun () ->
        List.iter
          (fun s ->
            let term = parse s in
            let printed = Pretty.to_string term in
            check_bool (s ^ " -> " ^ printed) true (Unify.variant (parse printed) term))
          [
            "1 + 2 * 3";
            "(1 + 2) * 3";
            "p(X) :- q(X), r(X)";
            "a ; b -> c ; d";
            "f(-1, [a,b|T])";
            "X = g(Y)";
            "- (1 + 2)";
            "p(a)(b,c)";
            "\\+ p(X)";
          ]);
    t "pretty hilog decode" `Quick (fun () ->
        check_string "apply printed as application" "p(a)(b)"
          (Pretty.to_string (parse "p(a)(b)")));
    t "max_depth truncation" `Quick (fun () ->
        let deep = parse "f(f(f(f(f(a)))))" in
        let shallow = Fmt.str "%a" (Pretty.pp ~max_depth:2 ()) deep in
        check_bool "truncated" true (String.length shallow < String.length (Pretty.to_string deep)));
  ]

let props =
  let open QCheck2 in
  [
    Test.make ~name:"parse (pretty t) is a variant of t" ~count:300 Generators.term_gen (fun term ->
        let term = Term.copy term in
        let printed = Pretty.to_string term in
        match parse printed with
        | parsed -> Unify.variant term parsed
        | exception _ -> QCheck2.Test.fail_reportf "unparseable: %s" printed);
    Test.make ~name:"canonical print parses back" ~count:300 Generators.term_gen (fun term ->
        let term = Term.copy term in
        match parse (Term.to_string term) with
        | parsed -> Unify.variant term parsed
        | exception _ -> QCheck2.Test.fail_reportf "unparseable: %s" (Term.to_string term));
  ]

let suite = cases @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
