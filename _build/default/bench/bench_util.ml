(* Timing helpers for the experiment harness. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* run [f] enough times to accumulate a stable measurement; returns
   seconds per run *)
let time_per_run ?(min_total = 0.05) f =
  ignore (f ());
  (* warmup *)
  let rec go runs total =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    let total = total +. dt in
    if total >= min_total || runs >= 200 then total /. float_of_int (runs + 1)
    else go (runs + 1) total
  in
  go 0 0.0

let ms t = 1000.0 *. t

let header title =
  Printf.printf "\n==== %s ====\n%!" title

let row fmt = Printf.printf fmt
