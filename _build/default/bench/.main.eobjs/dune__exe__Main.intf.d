bench/main.mli:
