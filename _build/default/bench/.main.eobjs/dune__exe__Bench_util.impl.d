bench/bench_util.ml: Printf Unix
