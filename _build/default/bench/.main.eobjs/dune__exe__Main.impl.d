bench/main.ml: Analyze Array Bechamel Bench_util Benchmark Filename Hashtbl List Measure Printf Staged String Sys Test Time Toolkit Workloads Xsb
