(* A small company database exercising the deductive-database features
   of paper §4: dynamic (extensional) predicates with multi-field
   indexing declarations, the formatted bulk reader, object-file
   save/load, the transform_null idiom with cut, and deductive views.

   Run with: dune exec examples/company_db.exe *)

let employee_facts n =
  let buf = Buffer.create (n * 40) in
  let depts = [| "sales"; "tech"; "hr"; "legal" |] in
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "employee(%d, name_%d, %s, %d, %s).\n" i i
         depts.(i mod Array.length depts)
         (30000 + (i mod 50 * 1000))
         (if i mod 7 = 0 then "null" else Printf.sprintf "date(%d, %d)" (1990 + (i mod 30)) (1 + (i mod 12))))
  done;
  Buffer.contents buf

let () =
  let session = Xsb.Session.create () in
  let db = Xsb.Session.db session in

  (* declarations first: employee/5 is dynamic extensional data with an
     index on field 1, on field 3 (department), and on fields 3+4
     combined, exactly the kind of declaration of §4.5 *)
  Xsb.Session.consult session
    {|
      :- dynamic employee/5.
      :- index(employee/5, [1, 3, 3+4]).

      % intensional views
      transform_null(null, 'date unknown') :- !.
      transform_null(X, X).

      hired(Name, Dept, Hired) :-
          employee(_, Name, Dept, _, H), transform_null(H, Hired).

      well_paid(Name) :- employee(_, Name, _, Salary, _), Salary >= 75000.

      colleagues(A, B) :-
          employee(IdA, A, Dept, _, _), employee(IdB, B, Dept, _, _), IdA \== IdB.
    |};

  (* bulk-load the extensional data through the formatted reader *)
  let n = 5000 in
  let loaded = Xsb.Fast_load.string_ db (employee_facts n) in
  Fmt.pr "formatted read loaded %d employee tuples@." loaded;

  Fmt.pr "@.Hire dates in the tech department (nulls transformed):@.";
  List.iteri
    (fun i s -> if i < 5 then Fmt.pr "  %a@." (Xsb.Session.pp_solution session) s)
    (Xsb.Session.query session "hired(Name, tech, When)");

  Fmt.pr "@.Indexed point query (department+salary combined index):@.";
  let hits = Xsb.Session.query session "employee(Id, Name, sales, 66000, _)" in
  Fmt.pr "%d matches; first: %a@." (List.length hits)
    (Xsb.Session.pp_solution session)
    (List.hd hits);

  (* updates through assert/retract: the dynamic-code interface *)
  Fmt.pr "@.Updates:@.";
  ignore (Xsb.Session.query session "assert(employee(99991, ada, tech, 120000, date(2020,1)))");
  ignore (Xsb.Session.query session "retract(employee(1, _, _, _, _))");
  let well_paid = Xsb.Session.query session "well_paid(Who)" in
  Fmt.pr "%d well-paid employees; first three:@." (List.length well_paid);
  List.iteri
    (fun i s -> if i < 3 then Fmt.pr "  %a@." (Xsb.Session.pp_solution session) s)
    well_paid;

  (* object files: save the database image, reload it elsewhere *)
  let path = Filename.temp_file "company" ".xwam" in
  Xsb.Obj_file.save db [ ("employee", 5); ("hired", 3) ] path;
  let session2 = Xsb.Session.create () in
  let reloaded = Xsb.Obj_file.load (Xsb.Session.db session2) path in
  Fmt.pr "@.object file reloaded %d clauses; ada is there: %b@." reloaded
    (Xsb.Session.succeeds session2 "employee(_, ada, _, _, _)");
  Sys.remove path
