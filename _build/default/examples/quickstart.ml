(* Quickstart: load a program, declare a predicate tabled, and query it.

   The left-recursive transitive closure below would loop forever under
   plain Prolog (SLD) resolution; SLG tabling makes it terminate even on
   cyclic graphs — the core point of the paper.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let session = Xsb.Session.create () in
  Xsb.Session.consult session
    {|
      :- table path/2.
      path(X,Y) :- edge(X,Y).
      path(X,Y) :- path(X,Z), edge(Z,Y).

      edge(stony_brook, new_york).
      edge(new_york, boston).
      edge(boston, montreal).
      edge(montreal, stony_brook).   % a cycle!
      edge(new_york, philadelphia).
    |};

  Fmt.pr "Cities reachable from stony_brook:@.";
  Xsb.Session.show session "path(stony_brook, Where)";

  Fmt.pr "@.Is there a round trip? ";
  if Xsb.Session.succeeds session "path(stony_brook, stony_brook)" then Fmt.pr "yes@."
  else Fmt.pr "no@.";

  (* the same query, first answer only (existential) *)
  (match Xsb.Session.query_first session "path(X, philadelphia)" with
  | Some s -> Fmt.pr "@.A city with a route to philadelphia: %a@." (Xsb.Session.pp_solution session) s
  | None -> Fmt.pr "@.none@.");

  (* ordinary Prolog programming works too *)
  Xsb.Session.consult session
    {|
      len([], 0).
      len([_|T], N) :- len(T, M), N is M + 1.
    |};
  Xsb.Session.show session "len([a,b,c,d], N)"
