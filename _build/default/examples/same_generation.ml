(* The same-generation program (paper §5): one of the standard deductive
   database benchmarks the paper uses to compare XSB with CORAL. This
   example runs the same query through three evaluation strategies:

   - SLG tabling (XSB's engine),
   - plain semi-naive bottom-up over the whole model,
   - magic-sets rewriting + semi-naive (the CORAL regime),

   and checks they agree.

   Run with: dune exec examples/same_generation.exe *)

let program_text n =
  (* a balanced binary "parenthood" tree with n internal nodes *)
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    ":- table sg/2.\n\
     sg(X,Y) :- sib(X,Y).\n\
     sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).\n\
     sib(X,Y) :- par(X,P), par(Y,P).\n";
  for i = 1 to n do
    Buffer.add_string buf (Printf.sprintf "par(%d,%d). par(%d,%d).\n" (2 * i) i ((2 * i) + 1) i)
  done;
  Buffer.contents buf

let () =
  let n = 60 in
  let text = program_text n in

  (* 1: SLG *)
  let session = Xsb.Session.create () in
  Xsb.Session.consult session text;
  let t0 = Unix.gettimeofday () in
  let slg_count = Xsb.Session.count session "sg(4, Y)" in
  let slg_time = Unix.gettimeofday () -. t0 in

  (* 2 & 3: bottom-up over the pure-datalog part (drop the directive) *)
  let clauses =
    Xsb.Parser.program_of_string text
    |> List.filter (fun t ->
           match Xsb.Term.deref t with Xsb.Term.Struct (":-", [| _ |]) -> false | _ -> true)
  in
  let program = Xsb.Datalog.of_clauses clauses in
  let goal () = Xsb.Parser.term_of_string "sg(4, Y)" in

  let t0 = Unix.gettimeofday () in
  let st = Xsb.Bottomup.run program in
  let full_count = List.length (Xsb.Bottomup.answers st (goal ())) in
  let full_time = Unix.gettimeofday () -. t0 in

  let t0 = Unix.gettimeofday () in
  let magic_count = List.length (Xsb.Magic.answers program (goal ())) in
  let magic_time = Unix.gettimeofday () -. t0 in

  Fmt.pr "same_generation over a %d-node tree, query sg(4,Y):@." ((2 * n) + 1);
  Fmt.pr "  SLG tabling:          %4d answers  %6.2f ms@." slg_count (1000. *. slg_time);
  Fmt.pr "  semi-naive (full):    %4d answers  %6.2f ms  (model size %d)@." full_count
    (1000. *. full_time)
    (Xsb.Bottomup.relation_size st ("sg", 2));
  Fmt.pr "  magic + semi-naive:   %4d answers  %6.2f ms@." magic_count (1000. *. magic_time);
  assert (slg_count = full_count && full_count = magic_count);
  Fmt.pr "all strategies agree.@."
