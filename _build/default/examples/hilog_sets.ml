(* HiLog and sets (paper §4.7): complex terms act as predicate symbols,
   which gives named sets, parameterized set operations, and generic
   closures — with plain first-order semantics via the apply encoding.

   Run with: dune exec examples/hilog_sets.exe *)

let () =
  let session = Xsb.Session.create () in
  Xsb.Session.consult session
    {|
      :- hilog package1. :- hilog package2.

      % benefits packages: sets of (benefit, required/optional) pairs
      package1(health_ins, required).
      package1(life_ins, optional).
      package2(free_car, optional).
      package2(long_vacations, optional).
      package2(life_ins, optional).

      benefits('John', package1).
      benefits('Bob', package2).

      % generic set operations: a term names the set of its tuples
      intersect_2(S1,S2)(X,Y) :- S1(X,Y), S2(X,Y).
      union_2(S1,S2)(X,Y) :- S1(X,Y).
      union_2(S1,S2)(X,Y) :- S2(X,Y).
    |};

  Fmt.pr "John's benefits (the set named by his package):@.";
  Xsb.Session.show session "benefits('John', P), P(X, Y)";

  Fmt.pr "@.Common benefits of John and Bob:@.";
  Xsb.Session.show session "benefits('John',P), benefits('Bob',Q), intersect_2(P,Q)(X,Y)";

  Fmt.pr "@.All benefits of either:@.";
  Xsb.Session.show session "benefits('John',P), benefits('Bob',Q), union_2(P,Q)(X,_)";

  (* the generic-closure example of §4.7: path(Graph) is a predicate
     parameterized by the edge relation it closes over *)
  let closures = Xsb.Session.create () in
  Xsb.Session.consult closures
    {|
      :- hilog tube. :- hilog rail.
      :- table apply/3.

      path(Graph)(X, Y) :- Graph(X, Y).
      path(Graph)(X, Y) :- path(Graph)(X, Z), Graph(Z, Y).

      union_2(S1,S2)(X,Y) :- S1(X,Y).
      union_2(S1,S2)(X,Y) :- S2(X,Y).

      tube(oxford_circus, warren_street).
      tube(warren_street, euston).
      rail(euston, lime_street).
    |};
  Fmt.pr "@.Generic transitive closure over two graphs:@.";
  Xsb.Session.show closures "path(tube)(oxford_circus, Z)";
  Xsb.Session.show closures "path(union_2(tube,rail))(oxford_circus, Z)"
