(* The non-stratified story (paper §3.1 and reference [5]): delayed
   literals make conditional answers; the conditional answers form a
   residual program; its well-founded model gives three-valued answers,
   and its two-valued stable models can be enumerated.

   Run with: dune exec examples/three_valued.exe *)

let truth_name = function
  | Xsb.Ground.True -> "true"
  | Xsb.Ground.False -> "false"
  | Xsb.Ground.Undefined -> "undefined"

let show session query =
  match Xsb.Session.wfs_query session query with
  | [] -> Fmt.pr "  %-22s false@." query
  | answers ->
      List.iter
        (fun (a : Xsb.Residual.solution) ->
          let bindings =
            if a.Xsb.Residual.bindings = [] then ""
            else
              " ["
              ^ String.concat ", "
                  (List.map
                     (fun (n, v) -> Fmt.str "%s=%a" n (Xsb.Pretty.pp ()) v)
                     a.Xsb.Residual.bindings)
              ^ "]"
          in
          Fmt.pr "  %-22s %s%s@." query (truth_name a.Xsb.Residual.truth) bindings)
        answers

let () =
  (* 1: the classic even loop: two stable models, both atoms undefined
     under the well-founded semantics *)
  let s = Xsb.Session.create ~mode:Xsb.Machine.Well_founded () in
  Xsb.Session.consult s
    {| :- table jobs_tom/0, jobs_ann/0.
       % one position: if Tom does not get it Ann does, and vice versa
       jobs_tom :- tnot(jobs_ann).
       jobs_ann :- tnot(jobs_tom). |};
  Fmt.pr "One position, two candidates (even negative loop):@.";
  show s "jobs_tom";
  show s "jobs_ann";
  (match Xsb.Residual.stable_models (Xsb.Session.engine s) with
  | Some models ->
      Fmt.pr "  stable models: %d (one hires Tom, one hires Ann)@." (List.length models);
      List.iter
        (fun m ->
          Fmt.pr "    {%s}@." (String.concat ", " (List.map (Fmt.str "%a" Xsb.Canon.pp) m)))
        models
  | None -> Fmt.pr "  too many unknowns to enumerate@.");

  (* 2: an odd loop: no stable model at all, undefined under WFS *)
  let s2 = Xsb.Session.create ~mode:Xsb.Machine.Well_founded () in
  Xsb.Session.consult s2 ":- table paradox/0.\nparadox :- tnot(paradox).";
  Fmt.pr "@.The barber paradox (odd negative loop):@.";
  show s2 "paradox";
  (match Xsb.Residual.stable_models (Xsb.Session.engine s2) with
  | Some [] -> Fmt.pr "  stable models: none (as the theory predicts)@."
  | Some models -> Fmt.pr "  stable models: %d?!@." (List.length models)
  | None -> Fmt.pr "  too many unknowns@.");

  (* 3: a mixed program where the undefined zone is localized *)
  let s3 = Xsb.Session.create ~mode:Xsb.Machine.Well_founded () in
  Xsb.Session.consult s3
    {| :- table works/1, sabotaged/1, suspicious/1.
       machine(a). machine(b). machine(c).
       % c is definitely broken, a is definitely fine;
       % b works iff it was not sabotaged, and the only sabotage
       % evidence is self-referential
       works(a).
       works(b) :- tnot(sabotaged(b)).
       sabotaged(b) :- tnot(works(b)).
       suspicious(X) :- machine(X), tnot(works(X)). |};
  Fmt.pr "@.Diagnosis with a localized unknown:@.";
  show s3 "works(a)";
  show s3 "works(b)";
  show s3 "works(c)";
  Fmt.pr "  suspicious machines:@.";
  show s3 "suspicious(X)"
