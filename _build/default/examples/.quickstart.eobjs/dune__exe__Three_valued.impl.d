examples/three_valued.ml: Fmt List String Xsb
