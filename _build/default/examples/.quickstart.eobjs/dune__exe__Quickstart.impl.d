examples/quickstart.ml: Fmt Xsb
