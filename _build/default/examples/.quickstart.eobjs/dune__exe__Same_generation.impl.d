examples/same_generation.ml: Buffer Fmt List Printf Unix Xsb
