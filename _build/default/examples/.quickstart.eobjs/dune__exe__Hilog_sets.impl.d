examples/hilog_sets.ml: Fmt Xsb
