examples/win_game.ml: Buffer Fmt List Printf Xsb
