examples/hilog_sets.mli:
