examples/company_db.ml: Array Buffer Filename Fmt List Printf Sys Xsb
