examples/three_valued.mli:
