examples/company_db.mli:
