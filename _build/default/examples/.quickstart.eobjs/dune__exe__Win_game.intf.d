examples/win_game.mli:
