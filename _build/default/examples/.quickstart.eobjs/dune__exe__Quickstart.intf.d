examples/quickstart.mli:
