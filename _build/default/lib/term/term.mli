(** First-order terms with mutable variable bindings.

    Terms are the universal data representation of the engine. HiLog terms
    are represented in their first-order [apply/N] encoding (see
    {!Xsb_hilog}). Variables carry a mutable binding cell; destructive
    binding is recorded on a {!Trail.t} so that it can be undone on
    backtracking. *)

type t =
  | Atom of string
  | Int of int
  | Float of float
  | Var of var
  | Struct of string * t array
      (** Invariant: the argument array of a [Struct] is non-empty; a
          zero-arity structure is an [Atom]. *)

and var = private {
  vid : int;  (** unique id, used for printing and ordering *)
  mutable binding : t option;
  vname : string option;  (** source-level name, if any *)
}

(** {1 Construction} *)

val fresh_var : ?name:string -> unit -> t
(** A fresh, unbound variable wrapped as a term. *)

val var : ?name:string -> unit -> var

val atom : string -> t
val int : int -> t

val struct_ : string -> t array -> t
(** [struct_ f args] builds [f(args)]; returns [Atom f] when [args] is
    empty. *)

val app : string -> t list -> t
(** List version of {!struct_}. *)

(** {1 Lists} *)

val nil : t
val cons : t -> t -> t

val list_ : t list -> t
(** Proper list term from its elements. *)

val to_list : t -> t list option
(** Elements of a proper list term; [None] if not a proper list. *)

(** {1 Binding} *)

val deref : t -> t
(** Follow variable bindings to the representative term. The result is
    never a bound variable. *)

val bind : Trail.t -> var -> t -> unit
(** Destructively bind an unbound variable, recording it on the trail.
    Raises [Invalid_argument] on an already-bound variable. *)

(** {1 Inspection} *)

val is_ground : t -> bool

val vars : t -> var list
(** Distinct unbound variables, in first-occurrence order. *)

val functor_of : t -> (string * int) option
(** Name/arity of the principal functor of a dereferenced atom or
    structure; [None] for variables and numbers. *)

val size : t -> int
(** Number of symbol occurrences (dereferenced). *)

(** {1 Copying} *)

val copy : t -> t
(** A copy of the dereferenced term with all unbound variables
    consistently replaced by fresh ones. Bound parts are resolved. *)

val copy2 : t -> t -> t * t
(** Copy two terms sharing one variable renaming. *)

(** {1 Comparison} *)

val compare : t -> t -> int
(** Standard order of terms: Var < Number < Atom < Compound; compounds by
    arity, then name, then arguments left to right. Dereferences. *)

val equal : t -> t -> bool
(** Structural equality modulo dereferencing ([==/2] on dereferenced
    terms). *)

(** {1 Printing} *)

val pp : t Fmt.t
(** Canonical syntax: quoted atoms where needed, list sugar, [_Gn] names
    for anonymous variables. Does not consult an operator table. *)

val to_string : t -> string
