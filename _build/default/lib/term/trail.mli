(** Binding trail: undo log for destructive updates (variable bindings,
    and any other engine state that must be restored on backtracking). *)

type t

val create : unit -> t

type mark = int

val mark : t -> mark
(** Current height of the trail. *)

val push : t -> (unit -> unit) -> unit
(** Record an undo action. Use {!Term.bind} for variable bindings. *)

val undo_to : t -> mark -> unit
(** Run (in reverse order) and discard every undo action recorded after
    [mark]. *)

val height : t -> int
