open Term

let rec occurs v t =
  match deref t with
  | Var w -> w == v
  | Atom _ | Int _ | Float _ -> false
  | Struct (_, args) -> Array.exists (occurs v) args

let unify ?(occurs_check = false) trail t u =
  let rec go t u =
    let t = deref t and u = deref u in
    match (t, u) with
    | Var v, Var w when v == w -> true
    | Var v, u ->
        if occurs_check && occurs v u then false
        else begin
          bind trail v u;
          true
        end
    | t, Var w ->
        if occurs_check && occurs w t then false
        else begin
          bind trail w t;
          true
        end
    | Atom a, Atom b -> String.equal a b
    | Int i, Int j -> Int.equal i j
    | Float x, Float y -> Float.equal x y
    | Struct (f, args), Struct (g, brgs) ->
        Array.length args = Array.length brgs
        && String.equal f g
        &&
        let rec all i = i >= Array.length args || (go args.(i) brgs.(i) && all (i + 1)) in
        all 0
    | _ -> false
  in
  let m = Trail.mark trail in
  let ok = go t u in
  if not ok then Trail.undo_to trail m;
  ok

(* Variant check by parallel traversal with a consistent variable pairing. *)
let variant t u =
  let left = Hashtbl.create 8 and right = Hashtbl.create 8 in
  let rec go t u =
    let t = deref t and u = deref u in
    match (t, u) with
    | Var v, Var w -> (
        match (Hashtbl.find_opt left v.vid, Hashtbl.find_opt right w.vid) with
        | None, None ->
            Hashtbl.add left v.vid w.vid;
            Hashtbl.add right w.vid v.vid;
            true
        | Some w', Some v' -> w' = w.vid && v' = v.vid
        | _ -> false)
    | Atom a, Atom b -> String.equal a b
    | Int i, Int j -> Int.equal i j
    | Float x, Float y -> Float.equal x y
    | Struct (f, args), Struct (g, brgs) ->
        Array.length args = Array.length brgs
        && String.equal f g
        &&
        let rec all i = i >= Array.length args || (go args.(i) brgs.(i) && all (i + 1)) in
        all 0
    | _ -> false
  in
  go t u

let instance_of trail ~instance ~general =
  let rec go general instance =
    let general = deref general and instance = deref instance in
    match (general, instance) with
    | Var v, Var w when v == w -> true
    | Var v, instance ->
        bind trail v instance;
        true
    | _, Var _ -> false
    | Atom a, Atom b -> String.equal a b
    | Int i, Int j -> Int.equal i j
    | Float x, Float y -> Float.equal x y
    | Struct (f, args), Struct (g, brgs) ->
        Array.length args = Array.length brgs
        && String.equal f g
        &&
        let rec all i = i >= Array.length args || (go args.(i) brgs.(i) && all (i + 1)) in
        all 0
    | _ -> false
  in
  let m = Trail.mark trail in
  let ok = go general instance in
  Trail.undo_to trail m;
  ok
