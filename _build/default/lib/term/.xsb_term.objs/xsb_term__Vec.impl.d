lib/term/vec.ml: Array List
