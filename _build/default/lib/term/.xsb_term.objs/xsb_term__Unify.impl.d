lib/term/unify.ml: Array Float Hashtbl Int String Term Trail
