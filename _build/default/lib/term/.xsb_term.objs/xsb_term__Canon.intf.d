lib/term/canon.mli: Fmt Hashtbl Term
