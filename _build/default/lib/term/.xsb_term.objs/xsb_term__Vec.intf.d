lib/term/vec.mli:
