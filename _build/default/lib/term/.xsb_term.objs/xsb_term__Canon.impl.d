lib/term/canon.ml: Array Fmt Hashtbl Stdlib Term
