lib/term/trail.mli:
