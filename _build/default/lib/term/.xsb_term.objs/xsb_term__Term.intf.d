lib/term/term.mli: Fmt Trail
