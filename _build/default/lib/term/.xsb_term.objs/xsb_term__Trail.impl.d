lib/term/trail.ml: Array
