lib/term/term.ml: Array Buffer Float Fmt Hashtbl Int List String Trail
