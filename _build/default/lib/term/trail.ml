type t = { mutable actions : (unit -> unit) array; mutable len : int }

let nop () = ()

let create () = { actions = Array.make 64 nop; len = 0 }

type mark = int

let mark t = t.len

let height t = t.len

let grow t =
  let actions = Array.make (2 * Array.length t.actions) nop in
  Array.blit t.actions 0 actions 0 t.len;
  t.actions <- actions

let push t f =
  if t.len = Array.length t.actions then grow t;
  t.actions.(t.len) <- f;
  t.len <- t.len + 1

let undo_to t m =
  for i = t.len - 1 downto m do
    t.actions.(i) ();
    t.actions.(i) <- nop
  done;
  t.len <- m
