(** Unification and related relations on terms. *)

val unify : ?occurs_check:bool -> Trail.t -> Term.t -> Term.t -> bool
(** [unify trail t u] attempts to unify [t] and [u], binding variables
    destructively (recorded on [trail]). On failure all bindings made by
    this call are undone. [occurs_check] defaults to [false], as in the
    WAM. *)

val variant : Term.t -> Term.t -> bool
(** True when the two terms are equal up to a renaming of variables. Does
    not bind anything. *)

val instance_of : Trail.t -> instance:Term.t -> general:Term.t -> bool
(** One-sided matching: true when [instance] is an instance of [general].
    Bindings (only of [general]'s variables) are undone before
    returning. *)
