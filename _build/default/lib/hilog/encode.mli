(** HiLog to first-order translation (paper §4.1, §4.7).

    A HiLog term [T] of arity [N] is encoded with the [apply] symbol of
    arity [N+1]: the first argument is the functor of [T] and the rest
    are its arguments, e.g. [X(bob,Y)] becomes [apply(X,bob,Y)].

    The parser already produces this encoding for applications whose
    functor is not an atom (there is no first-order reading for those).
    What remains — and what this module does — is the translation of
    *declared* HiLog constants: after [:- hilog h], the term [h(a)] reads
    as [apply(h,a)]. *)

open Xsb_term

val apply_symbol : string
(** The reserved encoding symbol, ["apply"]. *)

val encode_term : is_hilog:(string -> bool) -> Term.t -> Term.t
(** Rewrite every application [h(t1,...,tn)] whose functor [h] is a
    declared HiLog constant into [apply(h,t1,...,tn)], recursively.
    Occurrences of [h] in non-functor positions are untouched. The input
    is not mutated; unbound variables are shared with the input. *)

val decode_term : is_hilog:(string -> bool) -> Term.t -> Term.t
(** Inverse of {!encode_term} on its image: [apply(h,args)] with a
    declared atom functor becomes [h(args)]. General [apply] terms with
    non-atom functors are left for the printer's application syntax. *)

val hilog_functor : Term.t -> (Term.t * Term.t array) option
(** View a dereferenced [apply(F,A1..An)] encoding as [(F, args)]. *)
