lib/hilog/specialize.mli: Term Xsb_term
