lib/hilog/specialize.ml: Array List Option Printf Set Stdlib Term Xsb_term
