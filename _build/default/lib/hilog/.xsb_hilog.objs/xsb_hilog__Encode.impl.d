lib/hilog/encode.ml: Array Term Xsb_term
