lib/hilog/encode.mli: Term Xsb_term
