(** Compile-time specialization of known calls to HiLog predicates
    (paper §4.7).

    Clauses whose head is an encoded HiLog application with a compound
    functor, such as

    {v apply(path(Graph),X,Y) :- apply(Graph,X,Y). v}

    pay an extra level of discrimination through [apply/3]. The
    specializer introduces a dedicated first-order predicate per known
    functor shape and rewrites heads and known body calls:

    {v apply(path(Graph),X,Y) :- apply_path(Graph,X,Y).   % bridge
       apply_path(Graph,X,Y)  :- apply(Graph,X,Y). v}

    After this source transformation, a HiLog predicate "is not much less
    efficient than if it were written in first-order syntax". *)

open Xsb_term

val specialized_name : string -> int -> int -> string
(** [specialized_name f nparams nargs] is the name of the specialized
    predicate for applications [apply(f(P1..Pk), X1..Xn)]. *)

val specialize : Term.t list -> Term.t list
(** Transform a list of clause terms ([H :- B] structures or facts).
    Every head of the form [apply(f(Params),Args)] is specialized; known
    calls in goal positions of all bodies are rewritten; one bridge
    clause per specialized shape is appended so unknown (truly
    higher-order) calls still reach the predicate through [apply]. *)
