open Xsb_term

(* Shapes are keyed by the outer functor name of the HiLog functor term,
   its arity, and the application arity. *)
module Shape = struct
  type t = string * int * int

  let compare = Stdlib.compare
end

module Shape_set = Set.Make (Shape)

let specialized_name f nparams nargs =
  ignore nargs;
  (* the application arity is encoded in the predicate's own arity; the
     parameter count is appended only to keep distinct shapes of the same
     total arity apart *)
  Printf.sprintf "apply_%s_%d" f nparams

let head_and_body clause =
  match Term.deref clause with
  | Term.Struct (":-", [| h; b |]) -> (h, Some b)
  | t -> (t, None)

let rebuild head body =
  match body with Some b -> Term.Struct (":-", [| head; b |]) | None -> head

let shape_of_head head =
  match Term.deref head with
  | Term.Struct ("apply", args) when Array.length args >= 2 -> (
      match Term.deref args.(0) with
      | Term.Struct (f, params) -> Some (f, Array.length params, Array.length args - 1)
      | _ -> None)
  | _ -> None

(* Rewrite an application term into its specialized form, when its shape
   is known. *)
let rewrite_app shapes t =
  match Term.deref t with
  | Term.Struct ("apply", args) when Array.length args >= 2 -> (
      match Term.deref args.(0) with
      | Term.Struct (f, params) ->
          let shape = (f, Array.length params, Array.length args - 1) in
          if Shape_set.mem shape shapes then
            let rest = Array.sub args 1 (Array.length args - 1) in
            Some
              (Term.Struct
                 (specialized_name f (Array.length params) (Array.length rest),
                  Array.append params rest))
          else None
      | _ -> None)
  | _ -> None

(* Walk goal positions of a body, leaving data positions alone. *)
let rec rewrite_goal shapes goal =
  match Term.deref goal with
  | Term.Struct ((("," | ";" | "->") as c), [| l; r |]) ->
      Term.Struct (c, [| rewrite_goal shapes l; rewrite_goal shapes r |])
  | Term.Struct ((("\\+" | "tnot" | "e_tnot" | "not" | "call") as c), [| g |]) ->
      Term.Struct (c, [| rewrite_goal shapes g |])
  | Term.Struct ((("findall" | "bagof" | "setof" | "tfindall") as c), [| t; g; l |]) ->
      Term.Struct (c, [| t; rewrite_goal shapes g; l |])
  | t -> ( match rewrite_app shapes t with Some t' -> t' | None -> t)

let specialize clauses =
  let shapes =
    List.fold_left
      (fun acc clause ->
        let head, _ = head_and_body clause in
        match shape_of_head head with
        | Some shape -> Shape_set.add shape acc
        | None -> acc)
      Shape_set.empty clauses
  in
  if Shape_set.is_empty shapes then clauses
  else
    let transformed =
      List.map
        (fun clause ->
          let head, body = head_and_body clause in
          let head' = match rewrite_app shapes head with Some h -> h | None -> head in
          let body' = Option.map (rewrite_goal shapes) body in
          rebuild head' body')
        clauses
    in
    let bridges =
      List.map
        (fun (f, nparams, nargs) ->
          let params = Array.init nparams (fun _ -> Term.fresh_var ()) in
          let args = Array.init nargs (fun _ -> Term.fresh_var ()) in
          let functor_term = Term.struct_ f params in
          let head = Term.Struct ("apply", Array.append [| functor_term |] args) in
          let call = Term.Struct (specialized_name f nparams nargs, Array.append params args) in
          Term.Struct (":-", [| head; call |]))
        (Shape_set.elements shapes)
    in
    transformed @ bridges
