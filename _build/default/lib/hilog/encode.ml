open Xsb_term

let apply_symbol = "apply"

let encode_term ~is_hilog term =
  let rec go term =
    match Term.deref term with
    | (Term.Atom _ | Term.Int _ | Term.Float _ | Term.Var _) as t -> t
    | Term.Struct (name, args) ->
        let args' = Array.map go args in
        if is_hilog name && name <> apply_symbol then
          Term.Struct (apply_symbol, Array.append [| Term.Atom name |] args')
        else Term.Struct (name, args')
  in
  go term

let decode_term ~is_hilog term =
  let rec go term =
    match Term.deref term with
    | (Term.Atom _ | Term.Int _ | Term.Float _ | Term.Var _) as t -> t
    | Term.Struct (name, args) -> (
        let args' = Array.map go args in
        match (name, args') with
        | "apply", [||] -> Term.Atom name
        | "apply", _ -> (
            match args'.(0) with
            | Term.Atom h when is_hilog h ->
                Term.struct_ h (Array.sub args' 1 (Array.length args' - 1))
            | _ -> Term.Struct (name, args'))
        | _ -> Term.Struct (name, args'))
  in
  go term

let hilog_functor term =
  match Term.deref term with
  | Term.Struct ("apply", args) when Array.length args >= 2 ->
      Some (args.(0), Array.sub args 1 (Array.length args - 1))
  | _ -> None
