open Xsb_term

(* Substitutions are immutable association lists from variable ids to
   terms, looked up on every dereference: the hallmark of an
   interpretive engine. *)
type subst = (int * Term.t) list

let empty_subst : subst = []

let rec walk subst t =
  match t with
  | Term.Var v -> (
      match v.Term.binding with
      | Some t' -> walk subst t'
      | None -> (
          match List.assq_opt v.Term.vid subst with
          | Some t' -> walk subst t'
          | None -> t))
  | t -> t

let rec unify subst a b =
  let a = walk subst a and b = walk subst b in
  match (a, b) with
  | Term.Var v, Term.Var w when v == w -> Some subst
  | Term.Var v, t | t, Term.Var v -> Some ((v.Term.vid, t) :: subst)
  | Term.Atom x, Term.Atom y -> if String.equal x y then Some subst else None
  | Term.Int x, Term.Int y -> if x = y then Some subst else None
  | Term.Float x, Term.Float y -> if x = y then Some subst else None
  | Term.Struct (f, xs), Term.Struct (g, ys) ->
      if String.equal f g && Array.length xs = Array.length ys then begin
        let rec go subst i =
          if i >= Array.length xs then Some subst
          else match unify subst xs.(i) ys.(i) with Some s -> go s (i + 1) | None -> None
        in
        go subst 0
      end
      else None
  | _ -> None

let rec apply subst t =
  match walk subst t with
  | Term.Struct (f, args) -> Term.Struct (f, Array.map (apply subst) args)
  | t -> t

type clause = { head : Term.t; body : Term.t list }

type t = {
  clauses : (string * int, clause list) Hashtbl.t;
  index1 : (string * int, (Xsb_index.Symbol.t, clause list ref) Hashtbl.t) Hashtbl.t;
}

let key_of t =
  match Term.deref t with
  | Term.Atom name -> (name, 0)
  | Term.Struct (name, args) -> (name, Array.length args)
  | _ -> invalid_arg "Naive_interp: bad atom"

let rec body_of t =
  match Term.deref t with
  | Term.Atom "true" -> []
  | Term.Struct (",", [| l; r |]) -> body_of l @ body_of r
  | g -> [ g ]

let create clause_terms =
  let t = { clauses = Hashtbl.create 32; index1 = Hashtbl.create 32 } in
  List.iter
    (fun c ->
      let head, body =
        match Term.deref c with
        | Term.Struct (":-", [| h; b |]) -> (h, body_of b)
        | fact -> (fact, [])
      in
      let key = key_of head in
      let clause = { head; body } in
      Hashtbl.replace t.clauses key
        (match Hashtbl.find_opt t.clauses key with
        | Some l -> l @ [ clause ]
        | None -> [ clause ]);
      (* first-argument index for facts *)
      if body = [] then begin
        let index =
          match Hashtbl.find_opt t.index1 key with
          | Some i -> i
          | None ->
              let i = Hashtbl.create 64 in
              Hashtbl.add t.index1 key i;
              i
        in
        match Term.deref head with
        | Term.Struct (_, args) when Array.length args > 0 -> (
            match Xsb_index.Symbol.of_term args.(0) with
            | Some sym -> (
                match Hashtbl.find_opt index sym with
                | Some cell -> cell := !cell @ [ clause ]
                | None -> Hashtbl.add index sym (ref [ clause ]))
            | None -> ())
        | _ -> ()
      end)
    clause_terms;
  t

let candidates t subst goal =
  let key = key_of goal in
  let first_arg =
    match walk subst goal with
    | Term.Struct (_, args) when Array.length args > 0 ->
        Xsb_index.Symbol.of_term (apply subst args.(0))
    | _ -> None
  in
  match (first_arg, Hashtbl.find_opt t.index1 key) with
  | Some sym, Some index -> (
      (* indexed access works only when every clause of the predicate is
         a fact (else fall through to the full list) *)
      match Hashtbl.find_opt t.clauses key with
      | Some all when List.for_all (fun c -> c.body = []) all -> (
          match Hashtbl.find_opt index sym with Some cell -> !cell | None -> [])
      | Some all -> all
      | None -> [])
  | _ -> ( match Hashtbl.find_opt t.clauses key with Some all -> all | None -> [])

let rec solve t subst goals emit =
  match goals with
  | [] -> emit subst
  | goal :: rest ->
      List.iter
        (fun clause ->
          (* interpretive renaming: copy the clause term *)
          let renamed =
            Term.copy (Term.Struct ("$c", Array.of_list (clause.head :: clause.body)))
          in
          match renamed with
          | Term.Struct ("$c", parts) -> (
              let head = parts.(0) in
              let body = Array.to_list (Array.sub parts 1 (Array.length parts - 1)) in
              match unify subst (apply subst goal) head with
              | Some subst' -> solve t subst' (body @ rest) emit
              | None -> ())
          | _ -> assert false)
        (candidates t subst goal)

let count t goal =
  let n = ref 0 in
  solve t empty_subst (body_of goal) (fun _ -> incr n);
  !n

let solutions t goal =
  let acc = ref [] in
  solve t empty_subst (body_of goal) (fun subst -> acc := apply subst goal :: !acc);
  List.rev !acc
