(** The Table-3 experiment: the same indexed join of two in-memory
    relations executed by five engines representing the five systems of
    the paper's comparison (see DESIGN.md §3 for the substitution
    argument):

    - {!native_join} — "Quintus": compiled to native code (OCaml
      closures play the role of hand-written assembler);
    - {!wam_join} — "XSB": compiled to WAM byte-code, emulated;
    - {!interp_join} — "LDL": tuple-at-a-time interpretive resolution;
    - {!bottomup_join} — "CORAL": set-at-a-time semi-naive
      materialization;
    - {!paged_join} — "Sybase": page-buffered storage with latches,
      locks and log stamps.

    Every engine evaluates q(A,C) :- r(A,B), s(B,C) over relations of
    [n] tuples with an index on s's first column, and returns the join
    cardinality (identical across engines, asserted by the tests). *)

val relations : n:int -> (int * int) list * (int * int) list
(** [r] and [s]: r = (i, i mod m), s = (j, j+1) with m = n/4, giving a
    join of size ~4n that exercises the index. *)

val native_join : n:int -> int

(** [prepare_*] variants separate the build/compile/load phase from the
    join proper; the returned thunk performs only the join, which is
    what Table 3 times. *)

val prepare_native : n:int -> (unit -> int)
val prepare_wam : n:int -> (unit -> int)
val prepare_slg : n:int -> (unit -> int)
val prepare_interp : n:int -> (unit -> int)
val prepare_bottomup : n:int -> (unit -> int)
val prepare_paged : n:int -> (unit -> int)
val wam_join : n:int -> int
val slg_join : n:int -> int
(** The SLG engine running the same SLD query (not in Table 3; included
    to situate the interpreter between WAM and LDL-sim). *)

val interp_join : n:int -> int
val bottomup_join : n:int -> int
val paged_join : n:int -> int
