(** A miniature Volcano-style query executor over {!Page_store}: access
    plans are operator trees interpreted tuple-at-a-time with boxed
    values — the way a classical RDBMS evaluates a join, and the last
    piece of the "Sybase-sim" cost profile (buffer pool + latches +
    locks + log checks + plan interpretation). *)

type datum = Int of int | Null

type expr =
  | Col of int * int  (** (input index, column) *)
  | Const of datum
  | Eq of expr * expr
  | And of expr * expr

type plan =
  | Seq_scan of Page_store.table * expr option  (** optional filter *)
  | Index_probe of Page_store.table * int * expr  (** column, key expression *)
  | Nested_loop of plan * plan  (** inner may refer to outer columns *)

val execute : Page_store.t -> plan -> (datum array -> unit) -> unit
(** Run the plan, emitting joined tuples. *)

val count : Page_store.t -> plan -> int
