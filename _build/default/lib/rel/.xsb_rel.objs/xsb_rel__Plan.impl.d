lib/rel/plan.ml: Array Page_store
