lib/rel/join.ml: Hashtbl List Naive_interp Page_store Plan Term Xsb_bottomup Xsb_db Xsb_parse Xsb_slg Xsb_term Xsb_wam
