lib/rel/plan.mli: Page_store
