lib/rel/naive_interp.mli: Term Xsb_term
