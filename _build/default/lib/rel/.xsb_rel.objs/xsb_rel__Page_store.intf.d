lib/rel/page_store.mli:
