lib/rel/join.mli:
