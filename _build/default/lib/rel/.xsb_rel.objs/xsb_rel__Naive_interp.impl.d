lib/rel/naive_interp.ml: Array Hashtbl List String Term Xsb_index Xsb_term
