lib/rel/page_store.ml: Array Hashtbl List Printf
