open Xsb_term

(* r(i, i mod m) for i in 0..n-1; s(j, j+1) for j in 0..n-1. Join on
   r.2 = s.1: every r tuple matches exactly one s tuple, and the s index
   on column 1 is probed n times with n/4 distinct keys resolving to one
   tuple each plus repeated keys. *)
let relations ~n =
  let m = max 1 (n / 4) in
  let r = List.init n (fun i -> (i, i mod m)) in
  let s = List.init n (fun j -> (j, j + 1)) in
  (r, s)

let native_join ~n =
  let r, s = relations ~n in
  let index = Hashtbl.create (2 * n) in
  List.iter (fun (b, c) -> Hashtbl.add index b (b, c)) s;
  let count = ref 0 in
  List.iter (fun (_, b) -> List.iter (fun _ -> incr count) (Hashtbl.find_all index b)) r;
  !count

let fact2 name (a, b) = Term.Struct (name, [| Term.Int a; Term.Int b |])

let clause_terms ~n =
  let r, s = relations ~n in
  List.map (fact2 "r") r @ List.map (fact2 "s") s

let join_goal () = Xsb_parse.Parser.term_of_string "r(A,B), s(B,C)"

let wam_join ~n =
  let db = Xsb_db.Database.create () in
  List.iter (fun c -> ignore (Xsb_db.Database.add_clause db c)) (clause_terms ~n);
  let program = Xsb_wam.Emulator.of_database db in
  let m = Xsb_wam.Emulator.create program in
  Xsb_wam.Emulator.count_solutions m (join_goal ())

let slg_join ~n =
  let db = Xsb_db.Database.create () in
  List.iter (fun c -> ignore (Xsb_db.Database.add_clause db c)) (clause_terms ~n);
  let engine = Xsb_slg.Engine.create db in
  List.length (Xsb_slg.Engine.query engine (join_goal ()))

let interp_join ~n =
  let interp = Naive_interp.create (clause_terms ~n) in
  Naive_interp.count interp (join_goal ())

let bottomup_join ~n =
  let q_rule = Xsb_parse.Parser.term_of_string "q(A,C) :- r(A,B), s(B,C)" in
  let program = Xsb_bottomup.Program.of_clauses (q_rule :: clause_terms ~n) in
  let st = Xsb_bottomup.Eval.run program in
  (* the join cardinality, not the distinct-q cardinality: count
     derivations by re-joining over the materialized relations would be
     unfair; report the materialized size (duplicates eliminated by the
     set-at-a-time engine, as a real bottom-up system would) *)
  Xsb_bottomup.Eval.relation_size st ("q", 2)

let paged_join ~n =
  let r, s = relations ~n in
  let store = Page_store.create () in
  let rt = Page_store.create_table store "r" in
  let st = Page_store.create_table store "s" in
  List.iter (fun (a, b) -> Page_store.insert store rt [| a; b |]) r;
  List.iter (fun (b, c) -> Page_store.insert store st [| b; c |]) s;
  Page_store.create_index store st 0;
  let plan =
    Plan.Nested_loop (Plan.Seq_scan (rt, None), Plan.Index_probe (st, 0, Plan.Col (0, 1)))
  in
  Plan.count store plan

(* setup/measure separation for the Table-3 harness *)

let prepare_native ~n =
  let r, s = relations ~n in
  let index = Hashtbl.create (2 * n) in
  List.iter (fun (b, c) -> Hashtbl.add index b (b, c)) s;
  fun () ->
    let count = ref 0 in
    List.iter (fun (_, b) -> List.iter (fun _ -> incr count) (Hashtbl.find_all index b)) r;
    !count

let prepare_wam ~n =
  let db = Xsb_db.Database.create () in
  List.iter (fun c -> ignore (Xsb_db.Database.add_clause db c)) (clause_terms ~n);
  let program = Xsb_wam.Emulator.of_database db in
  let m = Xsb_wam.Emulator.create program in
  fun () -> Xsb_wam.Emulator.count_solutions m (join_goal ())

let prepare_slg ~n =
  let db = Xsb_db.Database.create () in
  List.iter (fun c -> ignore (Xsb_db.Database.add_clause db c)) (clause_terms ~n);
  let engine = Xsb_slg.Engine.create db in
  fun () -> List.length (Xsb_slg.Engine.query engine (join_goal ()))

let prepare_interp ~n =
  let interp = Naive_interp.create (clause_terms ~n) in
  fun () -> Naive_interp.count interp (join_goal ())

let prepare_bottomup ~n =
  let q_rule = Xsb_parse.Parser.term_of_string "q(A,C) :- r(A,B), s(B,C)" in
  let program = Xsb_bottomup.Program.of_clauses (q_rule :: clause_terms ~n) in
  fun () ->
    let st = Xsb_bottomup.Eval.run program in
    Xsb_bottomup.Eval.relation_size st ("q", 2)

let prepare_paged ~n =
  let r, s = relations ~n in
  let store = Page_store.create () in
  let rt = Page_store.create_table store "r" in
  let st = Page_store.create_table store "s" in
  List.iter (fun (a, b) -> Page_store.insert store rt [| a; b |]) r;
  List.iter (fun (b, c) -> Page_store.insert store st [| b; c |]) s;
  Page_store.create_index store st 0;
  (* the access plan a classical RDBMS would pick: scan r, index-probe s
     on its first column, interpreted tuple-at-a-time by the Volcano
     executor *)
  let plan = Plan.Nested_loop (Plan.Seq_scan (rt, None), Plan.Index_probe (st, 0, Plan.Col (0, 1))) in
  fun () -> Plan.count store plan
