type tuple = int array

type page = { page_id : int; slots : tuple array; mutable nslots : int; mutable latch : int }

(* A B-tree-style index: entries sorted by key, packed into leaf
   "index pages" that are fetched through the buffer pool; lookups
   descend [height] internal levels before reaching the leaf, as a real
   disk-oriented index does. *)
type btree = {
  mutable entries : (int * (int * int)) array;  (* key, (page, slot); sorted *)
  mutable leaf_pages : int array;  (* page ids backing groups of entries *)
  mutable height : int;
  mutable internal_pages : int array;  (* one representative page per level *)
}

type table = {
  t_name : string;
  mutable t_pages : int list;  (* page ids, reverse order *)
  t_indexes : (int, btree) Hashtbl.t;  (* column -> index *)
  mutable t_pending : (int * int * tuple) list;  (* inserts awaiting index rebuild *)
}

type t = {
  page_capacity : int;
  pool_size : int;
  disk : (int, page) Hashtbl.t;  (* the "disk": all pages *)
  pool : (int, page) Hashtbl.t;  (* resident subset *)
  mutable lru : int list;  (* most recent first *)
  mutable next_page : int;
  mutable hits : int;
  mutable misses : int;
  mutable latches : int;
  mutable locks : int;
  mutable lsn : int;
  lock_table : (string, int) Hashtbl.t;
}

let create ?(page_capacity = 64) ?(pool_size = 256) () =
  {
    page_capacity;
    pool_size;
    disk = Hashtbl.create 256;
    pool = Hashtbl.create 256;
    lru = [];
    next_page = 0;
    hits = 0;
    misses = 0;
    latches = 0;
    locks = 0;
    lsn = 0;
    lock_table = Hashtbl.create 16;
  }

let create_table _t name =
  { t_name = name; t_pages = []; t_indexes = Hashtbl.create 2; t_pending = [] }

let alloc_page t =
  let page = { page_id = t.next_page; slots = Array.make t.page_capacity [||]; nslots = 0; latch = 0 } in
  t.next_page <- t.next_page + 1;
  Hashtbl.replace t.disk page.page_id page;
  page

(* buffer pool fetch with LRU replacement *)
let fetch t page_id =
  match Hashtbl.find_opt t.pool page_id with
  | Some page ->
      t.hits <- t.hits + 1;
      (* LRU bump: the real cost of a hit in a buffer-managed system *)
      t.lru <- page_id :: List.filter (fun id -> id <> page_id) t.lru;
      page
  | None ->
      t.misses <- t.misses + 1;
      let page = Hashtbl.find t.disk page_id in
      if Hashtbl.length t.pool >= t.pool_size then begin
        match List.rev t.lru with
        | victim :: _ ->
            Hashtbl.remove t.pool victim;
            t.lru <- List.filter (fun id -> id <> victim) t.lru
        | [] -> ()
      end;
      Hashtbl.replace t.pool page_id page;
      t.lru <- page_id :: t.lru;
      page

let latch t page =
  t.latches <- t.latches + 1;
  page.latch <- page.latch + 1;
  page.latch <- page.latch - 1

let acquire_lock t table =
  t.locks <- t.locks + 1;
  Hashtbl.replace t.lock_table table.t_name 1

(* row-level shared lock per tuple touched: registered in the lock
   table (with a duplicate check, as a real lock manager must) plus a
   deadlock-detector tick *)
let row_lock t table page slot =
  t.locks <- t.locks + 1;
  let key = Printf.sprintf "%s:%d:%d" table.t_name page slot in
  (match Hashtbl.find_opt t.lock_table key with
  | Some n -> Hashtbl.replace t.lock_table key (n + 1)
  | None -> Hashtbl.replace t.lock_table key 1);
  (* deadlock-detection heartbeat: scan is amortized 1/64 accesses *)
  if t.locks land 63 = 0 then
    Hashtbl.iter (fun _ n -> if n < 0 then assert false) t.lock_table

(* recoverability: check the page LSN against the log tail and verify
   the tuple image (a checksum pass standing in for torn-page checks) *)
let log_check t = t.lsn <- t.lsn + 1

let verify_tuple t (tuple : tuple) =
  t.lsn <- t.lsn + 1;
  let sum = ref 0 in
  for i = 0 to Array.length tuple - 1 do
    sum := (!sum * 31) + tuple.(i)
  done;
  ignore !sum

let insert t table tuple =
  acquire_lock t table;
  log_check t;
  let page =
    match table.t_pages with
    | pid :: _ ->
        let page = fetch t pid in
        if page.nslots < t.page_capacity then page
        else begin
          let page = alloc_page t in
          table.t_pages <- page.page_id :: table.t_pages;
          page
        end
    | [] ->
        let page = alloc_page t in
        table.t_pages <- page.page_id :: table.t_pages;
        page
  in
  latch t page;
  page.slots.(page.nslots) <- tuple;
  let slot = page.nslots in
  page.nslots <- slot + 1;
  if Hashtbl.length table.t_indexes > 0 then
    table.t_pending <- (page.page_id, slot, tuple) :: table.t_pending

let scan t table f =
  acquire_lock t table;
  List.iter
    (fun pid ->
      let page = fetch t pid in
      latch t page;
      for i = 0 to page.nslots - 1 do
        row_lock t table pid i;
        log_check t;
        verify_tuple t page.slots.(i);
        f page.slots.(i)
      done)
    (List.rev table.t_pages)

let fanout = 128

let build_btree t table column =
  let acc = ref [] in
  List.iter
    (fun pid ->
      let page = fetch t pid in
      for slot = 0 to page.nslots - 1 do
        acc := (page.slots.(slot).(column), (pid, slot)) :: !acc
      done)
    (List.rev table.t_pages);
  let entries = Array.of_list !acc in
  Array.sort (fun (a, _) (b, _) -> compare a b) entries;
  let nleaves = max 1 ((Array.length entries + fanout - 1) / fanout) in
  let leaf_pages = Array.init nleaves (fun _ -> (alloc_page t).page_id) in
  let height =
    let rec go levels n = if n <= 1 then levels else go (levels + 1) ((n + fanout - 1) / fanout) in
    go 0 nleaves
  in
  let internal_pages = Array.init (max 1 height) (fun _ -> (alloc_page t).page_id) in
  { entries; leaf_pages; height = max 1 height; internal_pages }

let create_index t table column =
  Hashtbl.replace table.t_indexes column (build_btree t table column);
  table.t_pending <- []

let refresh_indexes t table =
  if table.t_pending <> [] then begin
    let columns = Hashtbl.fold (fun c _ acc -> c :: acc) table.t_indexes [] in
    List.iter (fun c -> Hashtbl.replace table.t_indexes c (build_btree t table c)) columns;
    table.t_pending <- []
  end

let lookup t table column value f =
  acquire_lock t table;
  refresh_indexes t table;
  match Hashtbl.find_opt table.t_indexes column with
  | None -> scan t table (fun tuple -> if tuple.(column) = value then f tuple)
  | Some btree ->
      (* descend the internal levels: one buffered index-page fetch and
         latch per level *)
      Array.iter
        (fun pid ->
          let page = fetch t pid in
          latch t page)
        btree.internal_pages;
      (* binary search for the first entry with the key *)
      let entries = btree.entries in
      let n = Array.length entries in
      let rec lower lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if fst entries.(mid) < value then lower (mid + 1) hi else lower lo mid
      in
      let start = lower 0 n in
      let rec emit i =
        if i < n && fst entries.(i) = value then begin
          (* fetch the leaf index page holding this entry, then the data
             page *)
          let leaf = btree.leaf_pages.(min (i / fanout) (Array.length btree.leaf_pages - 1)) in
          let lp = fetch t leaf in
          latch t lp;
          let pid, slot = snd entries.(i) in
          let page = fetch t pid in
          latch t page;
          row_lock t table pid slot;
          log_check t;
          verify_tuple t page.slots.(slot);
          f page.slots.(slot);
          emit (i + 1)
        end
      in
      emit start

let stats t =
  Printf.sprintf "pool hits=%d misses=%d latches=%d locks=%d lsn=%d" t.hits t.misses t.latches
    t.locks t.lsn
