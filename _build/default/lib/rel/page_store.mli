(** A miniature page-oriented storage engine with a buffer pool, latches
    and a lock manager — the "Sybase-sim" comparator of Table 3.

    The paper attributes Sybase's position in the join comparison to its
    fundamentally different paradigm: page-buffered storage plus
    provisions for concurrency and recoverability, none of which the
    memory-resident systems pay for. This engine reproduces that cost
    profile: every tuple access goes through a buffer-pool lookup with an
    LRU bump, takes a shared page latch, acquires a (table-level, shared)
    lock once per statement, and stamps a log sequence number check. The
    data itself is in RAM, as in the paper ("in the Sybase system
    buffer"). *)

type tuple = int array

type t

val create : ?page_capacity:int -> ?pool_size:int -> unit -> t

type table

val create_table : t -> string -> table

val insert : t -> table -> tuple -> unit

val scan : t -> table -> (tuple -> unit) -> unit
(** Full scan through the buffer pool. *)

val create_index : t -> table -> int -> unit
(** Hash index on the given column. *)

val lookup : t -> table -> int -> int -> (tuple -> unit) -> unit
(** [lookup t table column value f]: index probe; every matching tuple
    is fetched through the buffer pool. *)

val stats : t -> string
(** Buffer-pool hits/misses, latches and locks taken. *)
