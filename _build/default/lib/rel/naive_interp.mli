(** A deliberately interpretive tuple-at-a-time resolution engine — the
    "LDL-sim" comparator of Table 3.

    The paper explains LDL's position between XSB and CORAL by its more
    interpretive execution: it pipelines tuple-at-a-time like XSB but
    does not compile rules to a low-level abstract machine. This engine
    resolves against the clause AST directly, with association-list
    substitutions instead of destructive binding and no clause
    compilation; only first-argument indexing of facts is kept (an
    indexed join is what Table 3 measures). *)

open Xsb_term

type t

val create : Term.t list -> t
(** From clause terms. *)

val count : t -> Term.t -> int
(** Number of solutions of a conjunctive goal. *)

val solutions : t -> Term.t -> Term.t list
(** Goal instances. *)
