type datum = Int of int | Null

type expr =
  | Col of int * int
  | Const of datum
  | Eq of expr * expr
  | And of expr * expr

type plan =
  | Seq_scan of Page_store.table * expr option
  | Index_probe of Page_store.table * int * expr
  | Nested_loop of plan * plan

(* boxed, interpreted expression evaluation over the bindings of the
   enclosing operators *)
let rec eval_expr (env : datum array array) = function
  | Col (input, column) -> (
      match env.(input).(column) with Int _ as d -> d | Null -> Null)
  | Const d -> d
  | Eq (a, b) -> (
      match (eval_expr env a, eval_expr env b) with
      | Int x, Int y -> if x = y then Int 1 else Int 0
      | _ -> Null)
  | And (a, b) -> (
      match (eval_expr env a, eval_expr env b) with
      | Int 1, Int 1 -> Int 1
      | Null, _ | _, Null -> Null
      | _ -> Int 0)

let box (tuple : Page_store.tuple) = Array.map (fun v -> Int v) tuple

let execute store plan emit =
  (* env.(i) holds the current tuple of the i-th plan input, outermost
     first; expressions address them positionally *)
  let rec run plan (env : datum array array) depth emit =
    match plan with
    | Seq_scan (table, filter) ->
        Page_store.scan store table (fun tuple ->
            let boxed = box tuple in
            env.(depth) <- boxed;
            let keep =
              match filter with
              | None -> true
              | Some e -> eval_expr env e = Int 1
            in
            if keep then emit boxed)
    | Index_probe (table, column, key_expr) -> (
        match eval_expr env key_expr with
        | Int key ->
            Page_store.lookup store table column key (fun tuple ->
                let boxed = box tuple in
                env.(depth) <- boxed;
                emit boxed)
        | Null -> ())
    | Nested_loop (outer, inner) ->
        run outer env depth (fun outer_tuple ->
            run inner env (depth + 1) (fun inner_tuple ->
                emit (Array.append outer_tuple inner_tuple)))
  in
  run plan (Array.make 8 [||]) 0 emit

let count store plan =
  let n = ref 0 in
  execute store plan (fun _ -> incr n);
  !n
