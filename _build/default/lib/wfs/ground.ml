open Xsb_term

type truth = True | False | Undefined

type rule = { head : int; pos : int list; neg : int list }

type t = {
  intern : int Canon.Tbl.t;
  names : Canon.t Vec.t;
  mutable rules : rule list;
  mutable model : (bool array * bool array) option;  (* (true set, possible set) *)
}

let create () = { intern = Canon.Tbl.create 64; names = Vec.create (); rules = []; model = None }

let atom_id t c =
  match Canon.Tbl.find_opt t.intern c with
  | Some i -> i
  | None ->
      let i = Vec.length t.names in
      Canon.Tbl.add t.intern c i;
      Vec.push t.names c;
      i

let add_rule t head ~pos ~neg =
  t.model <- None;
  t.rules <-
    { head = atom_id t head; pos = List.map (atom_id t) pos; neg = List.map (atom_id t) neg }
    :: t.rules

let add_fact t head = add_rule t head ~pos:[] ~neg:[]

let atoms t = Vec.to_list t.names

let natoms t = Vec.length t.names

(* Least model of the GL reduct of the program w.r.t. [assume]: rules
   with a negative literal whose atom is in [assume] are deleted; the
   remaining negative literals are dropped. Computed by a simple
   saturation loop. *)
let gamma t (assume : bool array) : bool array =
  let value = Array.make (natoms t) false in
  let usable = List.filter (fun r -> List.for_all (fun a -> not assume.(a)) r.neg) t.rules in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        if (not value.(r.head)) && List.for_all (fun a -> value.(a)) r.pos then begin
          value.(r.head) <- true;
          changed := true
        end)
      usable
  done;
  value

(* Alternating fixpoint: T_{i+1} = Gamma(U_i), U_{i+1} = Gamma(T_{i+1});
   T grows, U shrinks; at the fixpoint T is the well-founded true set
   and U the set of possibly-true (true or undefined) atoms. *)
let compute t =
  match t.model with
  | Some m -> m
  | None ->
      let n = natoms t in
      let truths = ref (Array.make n false) in
      let possible = ref (gamma t (Array.make n false)) in
      let continue_ = ref true in
      while !continue_ do
        let truths' = gamma t !possible in
        let possible' = gamma t truths' in
        if truths' = !truths && possible' = !possible then continue_ := false;
        truths := truths';
        possible := possible'
      done;
      let m = (!truths, !possible) in
      t.model <- Some m;
      m

let wfs t atom =
  let truths, possible = compute t in
  match Canon.Tbl.find_opt t.intern atom with
  | None -> False
  | Some i -> if truths.(i) then True else if possible.(i) then Undefined else False

let wfs_partition t =
  let truths, possible = compute t in
  let ts = ref [] and us = ref [] and fs = ref [] in
  Vec.iteri
    (fun i c ->
      if truths.(i) then ts := c :: !ts
      else if possible.(i) then us := c :: !us
      else fs := c :: !fs)
    t.names;
  (List.rev !ts, List.rev !us, List.rev !fs)

(* Stable models: branch over the well-founded undefined atoms and keep
   the assignments M with Gamma(M) = M. *)
let stable_models ?(max_unknowns = 20) t =
  let truths, possible = compute t in
  let n = natoms t in
  let unknowns = ref [] in
  for i = n - 1 downto 0 do
    if possible.(i) && not truths.(i) then unknowns := i :: !unknowns
  done;
  let unknowns = Array.of_list !unknowns in
  let k = Array.length unknowns in
  if k > max_unknowns then None
  else begin
    let models = ref [] in
    for mask = 0 to (1 lsl k) - 1 do
      let candidate = Array.copy truths in
      Array.iteri (fun j a -> if mask land (1 lsl j) <> 0 then candidate.(a) <- true) unknowns;
      if gamma t candidate = candidate then begin
        let model = ref [] in
        Vec.iteri (fun i c -> if candidate.(i) then model := c :: !model) t.names;
        models := List.rev !model :: !models
      end
    done;
    Some (List.rev !models)
  end
