lib/wfs/ground.mli: Canon Xsb_term
