lib/wfs/residual.mli: Canon Engine Ground Machine Term Xsb_slg Xsb_term
