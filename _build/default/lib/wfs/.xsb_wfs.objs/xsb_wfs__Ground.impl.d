lib/wfs/ground.ml: Array Canon List Vec Xsb_term
