lib/wfs/residual.ml: Canon Engine Ground Hashtbl List Machine String Term Vec Xsb_db Xsb_parse Xsb_slg Xsb_term
