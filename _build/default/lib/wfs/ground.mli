(** Ground normal logic programs: the well-founded semantics by the
    alternating fixpoint of van Gelder (paper reference [21]), and
    (two-valued) stable model enumeration (references [5], [11]).

    This is the substrate of the non-stratified story: SLG produces a
    residual program of conditional answers ({!Residual}), whose
    well-founded model assigns the final truth values; by [11] the
    three-valued stable and well-founded semantics coincide. *)

open Xsb_term

type t

type truth = True | False | Undefined

val create : unit -> t

val add_rule : t -> Canon.t -> pos:Canon.t list -> neg:Canon.t list -> unit
(** Atoms are arbitrary canonical terms, interned internally. *)

val add_fact : t -> Canon.t -> unit

val atoms : t -> Canon.t list
(** Every atom mentioned anywhere in the program. *)

val wfs : t -> Canon.t -> truth
(** Truth value in the well-founded model (computed once, memoized). *)

val wfs_partition : t -> Canon.t list * Canon.t list * Canon.t list
(** [(true, undefined, false)] atom sets of the well-founded model. *)

val stable_models : ?max_unknowns:int -> t -> Canon.t list list option
(** All two-valued stable models, as true-atom sets, each a superset of
    the well-founded true set. [None] when the number of well-founded
    undefined atoms exceeds [max_unknowns] (default 20): the enumeration
    branches over them. *)
