(** The bridge from SLG's conditional answers to the well-founded model.

    In well-founded mode the engine delays negative literals involved in
    loops through negation; the conditional answers then "constitute a
    transformed program" (paper §3.1 and reference [5]) — the *residual
    program* — whose well-founded model gives the final truth values.
    This module builds that ground program from the engine's table space
    and answers queries three-valuedly, playing the role of XSB's
    meta-interpreter for non-stratified programs. *)

open Xsb_term
open Xsb_slg

val of_tables : Engine.t -> Ground.t
(** The residual program of every table currently in table space:
    unconditional answers are facts; conditional answers become rules
    over their delayed literals. *)

val delay_truth : Ground.t -> Machine.delay list -> Ground.truth
(** Three-valued truth of a delay-list conjunction in the residual's
    well-founded model. *)

type solution = {
  bindings : (string * Term.t) list;
  truth : Ground.truth;  (** [True] or [Undefined]; false answers are dropped *)
}

val query : Engine.t -> Term.t -> solution list
(** Evaluate a goal under the well-founded semantics: the engine must
    have been created with [~mode:Machine.Well_founded]. Answers whose
    delays are false in the well-founded model are removed. *)

val query_string : Engine.t -> string -> solution list

val stable_models : ?max_unknowns:int -> Engine.t -> Canon.t list list option
(** Two-valued stable models of the residual program of the current
    table space (reference [5]). *)
