let source =
  {|
% ---- list library ----
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

reverse(L, R) :- reverse_acc(L, [], R).
reverse_acc([], Acc, Acc).
reverse_acc([H|T], Acc, R) :- reverse_acc(T, [H|Acc], R).

last([X], X) :- !.
last([_|T], X) :- last(T, X).

nth0(0, [X|_], X) :- !.
nth0(N, [_|T], X) :- N > 0, N1 is N - 1, nth0(N1, T, X).

nth1(N, L, X) :- N >= 1, N0 is N - 1, nth0(N0, L, X).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.

max_list([X], X) :- !.
max_list([H|T], M) :- max_list(T, M1), M is max(H, M1).

min_list([X], X) :- !.
min_list([H|T], M) :- min_list(T, M1), M is min(H, M1).

numlist(L, H, []) :- L > H, !.
numlist(L, H, [L|T]) :- L1 is L + 1, numlist(L1, H, T).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

permutation([], []).
permutation(L, [H|T]) :- select(H, L, R), permutation(R, T).

delete([], _, []).
delete([X|T], X, R) :- !, delete(T, X, R).
delete([H|T], X, [H|R]) :- delete(T, X, R).

% ---- aggregates through findall (paper §4.7: count and sum are
% second-order and need findall; tcount/tsum wait for completed
% tables via tfindall) ----
count(Goal, N) :- findall(x, Goal, L), length(L, N).
sum(Expr, Goal, S) :- findall(Expr, Goal, L), sum_list(L, S).
tcount(Goal, N) :- tfindall(x, Goal, L), length(L, N).
tsum(Expr, Goal, S) :- tfindall(Expr, Goal, L), sum_list(L, S).
aggregate_max(Expr, Goal, M) :- findall(Expr, Goal, L), max_list(L, M).
aggregate_min(Expr, Goal, M) :- findall(Expr, Goal, L), min_list(L, M).

% ---- DCG driver ----
phrase(NT, List) :- phrase(NT, List, []).
phrase(NT, List, Rest) :- call(NT, List, Rest).

% ---- HiLog set operations over set names (paper §4.7) ----
intersect_2(S1, S2)(X, Y) :- S1(X, Y), S2(X, Y).
union_2(S1, S2)(X, Y) :- S1(X, Y).
union_2(S1, S2)(X, Y) :- S2(X, Y).
diff_2(S1, S2)(X, Y) :- S1(X, Y), \+ S2(X, Y).
subset_2(S1, S2) :- \+ (S1(X, Y), \+ S2(X, Y)).
set_equal_2(S1, S2) :- subset_2(S1, S2), subset_2(S2, S1).
member_2(S)(X, Y) :- S(X, Y).
|}

let load session = Session.consult session source
