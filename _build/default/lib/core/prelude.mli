(** A small library of standard predicates written in the object
    language itself (the paper's point that "the rich and proven
    environment of Prolog can be included in XSB"): list predicates,
    the §4.7 set operations over HiLog set names, and the count/sum
    aggregates the paper notes must go through findall because HiLog
    alone cannot express them. *)

val source : string
(** The library text; consult it into any session. *)

val load : Session.t -> unit
(** Consult {!source} into the session. *)
