lib/core/session.mli: Engine Fmt Machine Xsb_db Xsb_slg Xsb_wfs
