lib/core/prelude.ml: Session
