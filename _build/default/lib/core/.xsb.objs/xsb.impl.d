lib/core/xsb.ml: Prelude Session Xsb_bottomup Xsb_db Xsb_hilog Xsb_index Xsb_parse Xsb_rel Xsb_slg Xsb_term Xsb_wam Xsb_wfs
