lib/core/session.ml: Engine Fmt List Xsb_db Xsb_parse Xsb_slg Xsb_wfs
