lib/core/prelude.mli: Session
