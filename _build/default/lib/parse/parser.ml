open Xsb_term

exception Error of string * int

type binding = string * Term.t

type state = {
  lexer : Lexer.t;
  ops : Ops.t;
  variables : (string, Term.t) Hashtbl.t;
  mutable names : binding list;  (* named variables, reverse order *)
}

let error st msg = raise (Error (msg, Lexer.pos st.lexer))

let variable st name =
  if name = "_" then Term.fresh_var ()
  else
    match Hashtbl.find_opt st.variables name with
    | Some v -> v
    | None ->
        let v = Term.fresh_var ~name () in
        Hashtbl.add st.variables name v;
        if name.[0] <> '_' then st.names <- (name, v) :: st.names;
        v

let string_to_codes s = Term.list_ (List.map (fun c -> Term.Int (Char.code c)) (List.of_seq (String.to_seq s)))

(* Can the given lookahead token begin a term? Used to decide whether a
   prefix operator is acting as an operator or as a plain atom. *)
let starts_term = function
  | Lexer.ATOM _ | Lexer.VAR _ | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.LPAREN
  | Lexer.LPAREN_CT | Lexer.LBRACKET | Lexer.LBRACE ->
      true
  | Lexer.RPAREN | Lexer.RBRACKET | Lexer.RBRACE | Lexer.COMMA | Lexer.BAR | Lexer.END
  | Lexer.EOF ->
      false

(* Terms are parsed together with the priority of their principal
   operator (0 for non-operator terms), as required to enforce argument
   priorities of x (strictly smaller) vs y (smaller or equal). *)
let rec parse st maxp =
  let left = parse_primary st maxp in
  infix_loop st maxp left

and parse_primary st maxp =
  match Lexer.next st.lexer with
  | Lexer.INT i -> apply_chain st (Term.Int i, 0)
  | Lexer.FLOAT x -> apply_chain st (Term.Float x, 0)
  | Lexer.STRING s -> (string_to_codes s, 0)
  | Lexer.VAR name -> apply_chain st (variable st name, 0)
  | Lexer.LPAREN | Lexer.LPAREN_CT ->
      let t, _ = parse st 1200 in
      expect st Lexer.RPAREN ")";
      apply_chain st (t, 0)
  | Lexer.LBRACKET -> apply_chain st (parse_list st, 0)
  | Lexer.LBRACE ->
      if Lexer.peek st.lexer = Lexer.RBRACE then begin
        ignore (Lexer.next st.lexer);
        apply_chain st (Term.Atom "{}", 0)
      end
      else begin
        let t, _ = parse st 1200 in
        expect st Lexer.RBRACE "}";
        apply_chain st (Term.Struct ("{}", [| t |]), 0)
      end
  | Lexer.ATOM a -> parse_atom st maxp a
  | token -> error st (Fmt.str "unexpected %a" Lexer.pp_token token)

and parse_atom st maxp a =
  match Lexer.peek st.lexer with
  | Lexer.LPAREN_CT ->
      ignore (Lexer.next st.lexer);
      let args = parse_arglist st in
      apply_chain st (Term.struct_ a (Array.of_list args), 0)
  | peeked -> (
      match Ops.prefix st.ops a with
      | Some (p, fixity) when p <= maxp && starts_term peeked -> (
          (* negative numeric literals *)
          match (a, peeked) with
          | "-", Lexer.INT i ->
              ignore (Lexer.next st.lexer);
              apply_chain st (Term.Int (-i), 0)
          | "-", Lexer.FLOAT x ->
              ignore (Lexer.next st.lexer);
              apply_chain st (Term.Float (-.x), 0)
          | _ -> (
              (* an operator atom directly followed by an infix operator is
                 a plain atom, as in [X = -] or [assert(- = 1)] *)
              match peeked with
              | Lexer.ATOM b when Ops.infix st.ops b <> None && Ops.prefix st.ops b = None ->
                  (Term.Atom a, 0)
              | _ ->
                  let argmax = match fixity with Ops.FY -> p | _ -> p - 1 in
                  let arg, _ = parse st argmax in
                  (Term.Struct (a, [| arg |]), p)))
      | _ -> (Term.Atom a, 0))

(* HiLog application chains: any term directly followed by '(' applies the
   term to the arguments via the first-order [apply] encoding. *)
and apply_chain st (t, p) =
  match Lexer.peek st.lexer with
  | Lexer.LPAREN_CT ->
      ignore (Lexer.next st.lexer);
      let args = parse_arglist st in
      apply_chain st (Term.struct_ "apply" (Array.of_list (t :: args)), 0)
  | _ -> (t, p)

and parse_arglist st =
  let rec go acc =
    let arg, _ = parse st 999 in
    match Lexer.next st.lexer with
    | Lexer.COMMA -> go (arg :: acc)
    | Lexer.RPAREN -> List.rev (arg :: acc)
    | token -> error st (Fmt.str "expected , or ) in argument list, got %a" Lexer.pp_token token)
  in
  go []

and parse_list st =
  if Lexer.peek st.lexer = Lexer.RBRACKET then begin
    ignore (Lexer.next st.lexer);
    Term.nil
  end
  else
    let rec go acc =
      let element, _ = parse st 999 in
      match Lexer.next st.lexer with
      | Lexer.COMMA -> go (element :: acc)
      | Lexer.RBRACKET -> List.fold_left (fun tl h -> Term.cons h tl) Term.nil (element :: acc)
      | Lexer.BAR ->
          let tail, _ = parse st 999 in
          expect st Lexer.RBRACKET "]";
          List.fold_left (fun tl h -> Term.cons h tl) tail (element :: acc)
      | token -> error st (Fmt.str "expected , | or ] in list, got %a" Lexer.pp_token token)
    in
    go []

and infix_loop st maxp (left, leftp) =
  match Lexer.peek st.lexer with
  | Lexer.COMMA when maxp >= 1000 ->
      ignore (Lexer.next st.lexer);
      let right, _ = parse st 1000 in
      infix_loop st maxp (Term.Struct (",", [| left; right |]), 1000)
  | Lexer.BAR when maxp >= 1100 ->
      ignore (Lexer.next st.lexer);
      let right, _ = parse st 1100 in
      infix_loop st maxp (Term.Struct (";", [| left; right |]), 1100)
  | Lexer.ATOM a -> (
      match Ops.infix st.ops a with
      | Some (p, fixity) when p <= maxp ->
          let larg_max = match fixity with Ops.YFX -> p | _ -> p - 1 in
          let rarg_max = match fixity with Ops.XFY -> p | _ -> p - 1 in
          if leftp <= larg_max then begin
            ignore (Lexer.next st.lexer);
            let right, _ = parse st rarg_max in
            infix_loop st maxp (Term.Struct (a, [| left; right |]), p)
          end
          else postfix_try st maxp (left, leftp) a
      | _ -> postfix_try st maxp (left, leftp) a)
  | _ -> (left, leftp)

and postfix_try st maxp (left, leftp) a =
  match Ops.postfix st.ops a with
  | Some (p, fixity) when p <= maxp ->
      let larg_max = match fixity with Ops.YF -> p | _ -> p - 1 in
      if leftp <= larg_max then begin
        ignore (Lexer.next st.lexer);
        infix_loop st maxp (Term.Struct (a, [| left |]), p)
      end
      else (left, leftp)
  | _ -> (left, leftp)

and expect st token what =
  let got = Lexer.next st.lexer in
  if got <> token then error st (Fmt.str "expected %s, got %a" what Lexer.pp_token got)

let fresh_state ?(ops = Ops.create ()) lexer =
  { lexer; ops; variables = Hashtbl.create 8; names = [] }

let read_term ?ops lexer =
  let st = fresh_state ?ops lexer in
  match Lexer.peek lexer with
  | Lexer.EOF -> None
  | _ ->
      let t, _ = parse st 1200 in
      expect st Lexer.END "end of clause '.'";
      Some (t, List.rev st.names)

let term_of_string_with_vars ?ops s =
  let lexer = Lexer.of_string s in
  let st = fresh_state ?ops lexer in
  let t, _ = parse st 1200 in
  (match Lexer.peek lexer with
  | Lexer.EOF -> ()
  | Lexer.END -> ignore (Lexer.next lexer)
  | token -> error st (Fmt.str "trailing input: %a" Lexer.pp_token token));
  (t, List.rev st.names)

let term_of_string ?ops s = fst (term_of_string_with_vars ?ops s)

let program_of_string ?ops s =
  let lexer = Lexer.of_string s in
  let rec go acc =
    match read_term ?ops lexer with
    | None -> List.rev acc
    | Some (t, _) -> go (t :: acc)
  in
  go []
