(** Tokenizer for XSB's Prolog/HiLog syntax. *)

type token =
  | ATOM of string
  | VAR of string  (** including "_" *)
  | INT of int
  | FLOAT of float
  | STRING of string  (** double-quoted; converted to a code list by the parser *)
  | LPAREN_CT  (** '(' immediately following a functor-capable token *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | BAR
  | END  (** clause-terminating '.' *)
  | EOF

exception Error of string * int
(** Lexical error with message and position. *)

type t

val of_string : ?pos:int -> string -> t
val of_channel : in_channel -> t

val next : t -> token
(** Consume and return the next token. Returns [EOF] forever at end of
    input. *)

val peek : t -> token
(** Look at the next token without consuming it. *)

val pos : t -> int
(** Byte offset of the lookahead point, for error messages. *)

val pp_token : token Fmt.t
