open Xsb_term

let default_ops = lazy (Ops.create ())

let pp ?ops ?(hilog = true) ?(max_depth = 0) () ppf term =
  let ops = match ops with Some ops -> ops | None -> Lazy.force default_ops in
  let rec go depth maxp ppf term =
    if max_depth > 0 && depth > max_depth then Fmt.string ppf "..."
    else
      match Term.deref term with
      | Term.Atom name -> Term.pp ppf (Term.Atom name)
      | Term.Int i -> Fmt.int ppf i
      | Term.Float x -> Fmt.float ppf x
      | Term.Var _ as v -> Term.pp ppf v
      | Term.Struct (".", [| _; _ |]) as t -> pp_list depth ppf t
      | Term.Struct ("{}", [| t |]) -> Fmt.pf ppf "{%a}" (go (depth + 1) 1200) t
      | Term.Struct ("apply", args) when hilog && Array.length args >= 2 ->
          let f = args.(0) in
          let rest = Array.sub args 1 (Array.length args - 1) in
          Fmt.pf ppf "%a(%a)"
            (go (depth + 1) 0)
            f
            Fmt.(array ~sep:(Fmt.any ",") (go (depth + 1) 999))
            rest
      | Term.Struct (name, [| l; r |]) as t -> (
          match Ops.infix ops name with
          | Some (p, fixity) ->
              let lmax = match fixity with Ops.YFX -> p | _ -> p - 1 in
              let rmax = match fixity with Ops.XFY -> p | _ -> p - 1 in
              let body ppf () =
                if name = "," then
                  Fmt.pf ppf "%a,%a" (go (depth + 1) lmax) l (go (depth + 1) rmax) r
                else
                  Fmt.pf ppf "%a %s %a" (go (depth + 1) lmax) l name (go (depth + 1) rmax) r
              in
              if p > maxp then Fmt.pf ppf "(%a)" body () else body ppf ()
          | None -> pp_plain depth ppf t)
      | Term.Struct (name, [| arg |]) as t -> (
          match Ops.prefix ops name with
          | Some (p, fixity) ->
              let amax = match fixity with Ops.FY -> p | _ -> p - 1 in
              let body ppf () = Fmt.pf ppf "%s %a" name (go (depth + 1) amax) arg in
              if p > maxp then Fmt.pf ppf "(%a)" body () else body ppf ()
          | None -> pp_plain depth ppf t)
      | Term.Struct _ as t -> pp_plain depth ppf t
  and pp_plain depth ppf = function
    | Term.Struct (name, args) ->
        Term.pp ppf (Term.Atom name);
        Fmt.pf ppf "(%a)" Fmt.(array ~sep:(Fmt.any ",") (go (depth + 1) 999)) args
    | t -> Term.pp ppf t
  and pp_list depth ppf t =
    let rec elements ppf t =
      match Term.deref t with
      | Term.Struct (".", [| h; tl |]) -> (
          go (depth + 1) 999 ppf h;
          match Term.deref tl with
          | Term.Atom "[]" -> ()
          | Term.Struct (".", [| _; _ |]) ->
              Fmt.string ppf ",";
              elements ppf tl
          | rest -> Fmt.pf ppf "|%a" (go (depth + 1) 999) rest)
      | _ -> assert false
    in
    Fmt.pf ppf "[%a]" elements t
  in
  go 1 1200 ppf term

let to_string ?ops ?hilog t = Fmt.str "%a" (pp ?ops ?hilog ()) t
