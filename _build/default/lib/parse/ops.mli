(** Operator tables, as declared by [op/3]. XSB integrates Prolog operator
    definitions with the HiLog syntax (paper §4.1). *)

type fixity = XFX | XFY | YFX | FY | FX | XF | YF

type t

val create : unit -> t
(** A table preloaded with the standard Prolog operators. *)

val empty : unit -> t

val add : t -> int -> fixity -> string -> unit
(** [add t priority fixity name] declares an operator. Priority must be in
    1..1200. A priority of 0 removes the operator in that class
    (prefix vs infix/postfix). *)

val prefix : t -> string -> (int * fixity) option
val infix : t -> string -> (int * fixity) option
val postfix : t -> string -> (int * fixity) option

val is_op : t -> string -> bool

val fixity_of_string : string -> fixity option
val fixity_to_string : fixity -> string
