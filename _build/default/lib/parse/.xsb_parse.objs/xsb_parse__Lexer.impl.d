lib/parse/lexer.ml: Buffer Char Fmt Option Printf String
