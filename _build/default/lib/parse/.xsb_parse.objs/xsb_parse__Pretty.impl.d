lib/parse/pretty.ml: Array Fmt Lazy Ops Term Xsb_term
