lib/parse/ops.ml: Hashtbl List
