lib/parse/parser.ml: Array Char Fmt Hashtbl Lexer List Ops String Term Xsb_term
