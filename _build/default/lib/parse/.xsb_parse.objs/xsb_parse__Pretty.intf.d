lib/parse/pretty.mli: Fmt Ops Term Xsb_term
