lib/parse/ops.mli:
