lib/parse/parser.mli: Lexer Ops Term Xsb_term
