(** Operator-aware term printing, the inverse of {!Parser} for display
    purposes (REPL answers, clause listings). *)

open Xsb_term

val pp : ?ops:Ops.t -> ?hilog:bool -> ?max_depth:int -> unit -> Term.t Fmt.t
(** [pp ~ops ~hilog () ppf t] prints [t] using the operator table. When
    [hilog] is true (the default), [apply(F,A1,..,An)] structures are
    decoded back to HiLog application syntax [F(A1,..,An)]. [max_depth]
    truncates deep terms with [...] (0 = unlimited, the default). *)

val to_string : ?ops:Ops.t -> ?hilog:bool -> Term.t -> string
