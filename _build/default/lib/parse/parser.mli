(** Operator-precedence parser for Prolog syntax extended with HiLog
    application chains (paper §4.1).

    A HiLog application with a non-atomic functor, such as [X(a,Y)] or
    [p(g(a))(f(X))], is parsed directly into its first-order encoding
    [apply(X,a,Y)] / [apply(p(g(a)),f(X))]. Applications with an atomic
    functor are left as ordinary structures; the per-module [hilog]
    declarations are applied later by {!Xsb_hilog.Encode}. *)

open Xsb_term

exception Error of string * int
(** Syntax error with message and byte position. *)

type binding = string * Term.t
(** Name/variable pairs for the named variables of a read. *)

val read_term : ?ops:Ops.t -> Lexer.t -> (Term.t * binding list) option
(** Read the next clause-terminated term ([Term .]). [None] at end of
    input. Fresh variables are allocated per term; variables with the
    same name within one term are shared. *)

val term_of_string : ?ops:Ops.t -> string -> Term.t
(** Parse exactly one term (the terminating [.] is optional). *)

val term_of_string_with_vars : ?ops:Ops.t -> string -> Term.t * binding list

val program_of_string : ?ops:Ops.t -> string -> Term.t list
(** All clause terms of a source text. *)
