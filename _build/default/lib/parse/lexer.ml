type token =
  | ATOM of string
  | VAR of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN_CT
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | BAR
  | END
  | EOF

exception Error of string * int

(* Character source: either a whole string or a channel read one char at a
   time with a one-character pushback. *)
type source = Str of string | Chan of in_channel

type t = {
  source : source;
  mutable offset : int;  (* next char to read (string source) / count (channel) *)
  mutable pushback : char list;  (* LIFO; block comments need two chars *)
  mutable lookahead : token option;
  mutable last_was_functorish : bool;
      (* whether the previously returned token can act as a functor, so
         that a directly following '(' is LPAREN_CT *)
}

let of_string ?(pos = 0) s =
  { source = Str s; offset = pos; pushback = []; lookahead = None; last_was_functorish = false }

let of_channel ic =
  { source = Chan ic; offset = 0; pushback = []; lookahead = None; last_was_functorish = false }

let read_char t =
  match t.pushback with
  | c :: rest ->
      t.pushback <- rest;
      t.offset <- t.offset + 1;
      Some c
  | [] -> (
      match t.source with
      | Str s ->
          if t.offset >= String.length s then None
          else begin
            let c = s.[t.offset] in
            t.offset <- t.offset + 1;
            Some c
          end
      | Chan ic -> (
          match input_char ic with
          | c ->
              t.offset <- t.offset + 1;
              Some c
          | exception End_of_file -> None))

let unread_char t c =
  t.pushback <- c :: t.pushback;
  t.offset <- t.offset - 1

let peek_char t =
  match read_char t with
  | None -> None
  | Some c ->
      unread_char t c;
      Some c

let pos t = t.offset

let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_alnum c = is_lower c || is_upper c || is_digit c
let is_symbolic c = String.contains "+-*/\\^<>=~:.?@#&$" c
let is_layout c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let error t msg = raise (Error (msg, t.offset))

let take_while t first pred =
  let buf = Buffer.create 16 in
  Buffer.add_char buf first;
  let rec go () =
    match read_char t with
    | Some c when pred c ->
        Buffer.add_char buf c;
        go ()
    | Some c -> unread_char t c
    | None -> ()
  in
  go ();
  Buffer.contents buf

(* Skip layout and comments; return [true] if any layout was skipped
   (needed to distinguish "f(" from "f ("). *)
let rec skip_layout t skipped =
  match read_char t with
  | None -> skipped
  | Some c when is_layout c -> skip_layout t true
  | Some '%' ->
      let rec line () =
        match read_char t with Some '\n' | None -> () | Some _ -> line ()
      in
      line ();
      skip_layout t true
  | Some '/' -> (
      match read_char t with
      | Some '*' ->
          let rec block () =
            match read_char t with
            | None -> error t "unterminated block comment"
            | Some '*' -> (
                match read_char t with
                | Some '/' -> ()
                | Some c ->
                    unread_char t c;
                    block ()
                | None -> error t "unterminated block comment")
            | Some _ -> block ()
          in
          block ();
          skip_layout t true
      | Some c ->
          unread_char t c;
          unread_char t '/';
          skipped
      | None ->
          unread_char t '/';
          skipped)
  | Some c ->
      unread_char t c;
      skipped

let escape_char t quote =
  match read_char t with
  | None -> error t "unterminated escape"
  | Some 'n' -> Some '\n'
  | Some 't' -> Some '\t'
  | Some 'r' -> Some '\r'
  | Some 'a' -> Some '\007'
  | Some 'b' -> Some '\b'
  | Some 'f' -> Some '\012'
  | Some 'v' -> Some '\011'
  | Some '0' -> Some '\000'
  | Some '\\' -> Some '\\'
  | Some '\'' -> Some '\''
  | Some '"' -> Some '"'
  | Some '`' -> Some '`'
  | Some '\n' -> None (* line continuation *)
  | Some 'x' ->
      let rec hex acc =
        match read_char t with
        | Some c when is_digit c -> hex ((acc * 16) + (Char.code c - Char.code '0'))
        | Some c when c >= 'a' && c <= 'f' -> hex ((acc * 16) + (Char.code c - Char.code 'a' + 10))
        | Some c when c >= 'A' && c <= 'F' -> hex ((acc * 16) + (Char.code c - Char.code 'A' + 10))
        | Some '\\' -> acc
        | Some c ->
            unread_char t c;
            acc
        | None -> acc
      in
      Some (Char.chr (hex 0 land 0xff))
  | Some c when c = quote -> Some c
  | Some c -> error t (Printf.sprintf "bad escape \\%c" c)

let quoted t quote =
  let buf = Buffer.create 16 in
  let rec go () =
    match read_char t with
    | None -> error t "unterminated quoted token"
    | Some '\\' -> (
        match escape_char t quote with
        | Some c ->
            Buffer.add_char buf c;
            go ()
        | None -> go ())
    | Some c when c = quote -> (
        (* doubled quote = literal quote *)
        match read_char t with
        | Some c' when c' = quote ->
            Buffer.add_char buf quote;
            go ()
        | Some c' ->
            unread_char t c';
            Buffer.contents buf
        | None -> Buffer.contents buf)
    | Some c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let radix_literal t prefix pred =
  match peek_char t with
  | Some c when pred c ->
      let c = Option.get (read_char t) in
      INT (int_of_string (prefix ^ take_while t c pred))
  | _ -> error t (Printf.sprintf "missing digits after %s" prefix)

let number t first =
  let intpart = take_while t first is_digit in
  let special =
    if intpart <> "0" then None
    else
      match read_char t with
      | Some '\'' -> (
          (* 0'c character code *)
          match read_char t with
          | None -> error t "bad character code"
          | Some '\\' -> (
              match escape_char t '\'' with
              | Some c -> Some (INT (Char.code c))
              | None -> error t "bad character escape")
          | Some c -> Some (INT (Char.code c)))
      | Some 'x' ->
          Some
            (radix_literal t "0x" (fun c ->
                 is_digit c
                 || (Char.lowercase_ascii c >= 'a' && Char.lowercase_ascii c <= 'f')))
      | Some 'o' -> Some (radix_literal t "0o" (fun c -> c >= '0' && c <= '7'))
      | Some 'b' -> Some (radix_literal t "0b" (fun c -> c = '0' || c = '1'))
      | Some c ->
          unread_char t c;
          None
      | None -> None
  in
  match special with
  | Some token -> token
  | None ->
    (* optional fraction and exponent *)
    let fraction =
      match read_char t with
      | Some '.' -> (
          match peek_char t with
          | Some c when is_digit c ->
              let c = Option.get (read_char t) in
              Some (take_while t c is_digit)
          | _ ->
              unread_char t '.';
              None)
      | Some c ->
          unread_char t c;
          None
      | None -> None
    in
    let exponent =
      match peek_char t with
      | Some ('e' | 'E') -> (
          let e = Option.get (read_char t) in
          match read_char t with
          | Some (('+' | '-') as sign) -> (
              match peek_char t with
              | Some c when is_digit c ->
                  let c = Option.get (read_char t) in
                  Some (String.make 1 sign ^ take_while t c is_digit)
              | _ ->
                  unread_char t sign;
                  unread_char t e;
                  None)
          | Some c when is_digit c -> Some (take_while t c is_digit)
          | Some c ->
              unread_char t c;
              unread_char t e;
              None
          | None ->
              unread_char t e;
              None)
      | _ -> None
    in
    match (fraction, exponent) with
    | None, None -> INT (int_of_string intpart)
    | _ ->
        let s =
          intpart
          ^ (match fraction with Some f -> "." ^ f | None -> ".0")
          ^ match exponent with Some e -> "e" ^ e | None -> ""
        in
        FLOAT (float_of_string s)

let scan t =
  let skipped = skip_layout t false in
  match read_char t with
  | None -> EOF
  | Some '(' -> if t.last_was_functorish && not skipped then LPAREN_CT else LPAREN
  | Some ')' -> RPAREN
  | Some '[' -> LBRACKET
  | Some ']' -> RBRACKET
  | Some '{' -> LBRACE
  | Some '}' -> RBRACE
  | Some ',' -> COMMA
  | Some '|' -> (
      match peek_char t with
      | Some '|' ->
          ignore (read_char t);
          ATOM "||"
      | _ -> BAR)
  | Some '!' -> ATOM "!"
  | Some ';' -> ATOM ";"
  | Some '\'' -> ATOM (quoted t '\'')
  | Some '"' -> STRING (quoted t '"')
  | Some c when is_digit c -> number t c
  | Some c when is_lower c -> ATOM (take_while t c is_alnum)
  | Some c when is_upper c -> VAR (take_while t c is_alnum)
  | Some '.' -> (
      (* END if followed by layout, EOF or a line comment *)
      match peek_char t with
      | None -> END
      | Some c when is_layout c || c = '%' -> END
      | Some _ -> ATOM (take_while t '.' is_symbolic))
  | Some c when is_symbolic c -> ATOM (take_while t c is_symbolic)
  | Some c -> error t (Printf.sprintf "unexpected character %C" c)

let functorish = function
  | ATOM _ | VAR _ | INT _ | FLOAT _ | RPAREN | RBRACKET | RBRACE -> true
  | STRING _ | LPAREN | LPAREN_CT | LBRACKET | LBRACE | COMMA | BAR | END | EOF -> false

let next t =
  let token =
    match t.lookahead with
    | Some token ->
        t.lookahead <- None;
        token
    | None -> scan t
  in
  t.last_was_functorish <- functorish token;
  token

let peek t =
  match t.lookahead with
  | Some token -> token
  | None ->
      (* [last_was_functorish] still reflects the previously returned
         token, which is exactly the state [scan] needs *)
      let token = scan t in
      t.lookahead <- Some token;
      token

let pp_token ppf = function
  | ATOM a -> Fmt.pf ppf "atom %s" a
  | VAR v -> Fmt.pf ppf "variable %s" v
  | INT i -> Fmt.pf ppf "integer %d" i
  | FLOAT x -> Fmt.pf ppf "float %g" x
  | STRING s -> Fmt.pf ppf "string %S" s
  | LPAREN_CT | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | COMMA -> Fmt.string ppf ","
  | BAR -> Fmt.string ppf "|"
  | END -> Fmt.string ppf "."
  | EOF -> Fmt.string ppf "end of input"
