(** The "formatted read" bulk loader (paper §4.6).

    Database data files are highly structured and do not need the
    general reader's operator handling: this loader accepts ground facts
    of the form [pred(arg,...).] where arguments are unquoted or quoted
    atoms, integers, floats, and (nested) structures or lists of the
    same — and asserts them with index maintenance, an order of
    magnitude faster than consulting through the general reader. *)

exception Syntax of string * int

val string_ : Database.t -> string -> int
(** Load every fact in the string; returns the count. *)

val file : Database.t -> string -> int
