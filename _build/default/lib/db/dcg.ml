open Xsb_term

exception Dcg_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Dcg_error s)) fmt

let is_dcg_rule t =
  match Term.deref t with Term.Struct ("-->", [| _; _ |]) -> true | _ -> false

let extend atom s0 s =
  match Term.deref atom with
  | Term.Atom name -> Term.Struct (name, [| s0; s |])
  | Term.Struct (name, args) -> Term.Struct (name, Array.append args [| s0; s |])
  | t -> fail "bad non-terminal: %a" Term.pp t

(* terminal list: [t1,...,tn] consumed between S0 and S means
   S0 = [t1,...,tn|S] *)
let terminals list s0 s =
  let rec build t =
    match Term.deref t with
    | Term.Atom "[]" -> s
    | Term.Struct (".", [| h; tl |]) -> Term.cons h (build tl)
    | t -> fail "bad terminal list: %a" Term.pp t
  in
  Term.Struct ("=", [| s0; build list |])

let rec body t s0 s =
  match Term.deref t with
  | Term.Struct (",", [| a; b |]) ->
      let mid = Term.fresh_var () in
      Term.Struct (",", [| body a s0 mid; body b mid s |])
  | Term.Struct (";", [| a; b |]) -> Term.Struct (";", [| body a s0 s; body b s0 s |])
  | Term.Struct ("->", [| a; b |]) ->
      let mid = Term.fresh_var () in
      Term.Struct ("->", [| body a s0 mid; body b mid s |])
  | Term.Struct ("\\+", [| g |]) ->
      (* negation consumes nothing *)
      Term.Struct (",", [| Term.Struct ("\\+", [| body g s0 (Term.fresh_var ()) |]);
                           Term.Struct ("=", [| s0; s |]) |])
  | Term.Struct ("{}", [| goal |]) -> Term.Struct (",", [| goal; Term.Struct ("=", [| s0; s |]) |])
  | Term.Atom "!" -> Term.Struct (",", [| Term.Atom "!"; Term.Struct ("=", [| s0; s |]) |])
  | Term.Atom "[]" -> Term.Struct ("=", [| s0; s |])
  | Term.Struct (".", [| _; _ |]) as list -> terminals list s0 s
  | nonterminal -> extend nonterminal s0 s

let translate t =
  match Term.deref t with
  | Term.Struct ("-->", [| head; rhs |]) ->
      let s0 = Term.fresh_var () and s = Term.fresh_var () in
      Term.Struct (":-", [| extend head s0 s; body rhs s0 s |])
  | t -> fail "not a DCG rule: %a" Term.pp t
