lib/db/table_all.mli: Database Term Xsb_term
