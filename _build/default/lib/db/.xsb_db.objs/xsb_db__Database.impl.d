lib/db/database.ml: Array Fmt Hashtbl Ops Pred Term Xsb_hilog Xsb_parse Xsb_term
