lib/db/obj_file.ml: Canon Database Fun List Marshal Option Pred String Term Xsb_term
