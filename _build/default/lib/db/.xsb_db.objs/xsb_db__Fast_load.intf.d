lib/db/fast_load.mli: Database
