lib/db/loader.ml: Database Dcg Fmt Fun Lexer List Ops Parser Pred Table_all Term Xsb_parse Xsb_term
