lib/db/fast_load.ml: Array Buffer Database Fun List Printf String Term Xsb_term
