lib/db/database.mli: Ops Pred Term Xsb_parse Xsb_term
