lib/db/pred.ml: Arg_hash Array Disc_tree First_string Hashtbl Int List Term Vec Xsb_index Xsb_term
