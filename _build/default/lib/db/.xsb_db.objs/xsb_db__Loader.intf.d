lib/db/loader.mli: Database Term Xsb_parse Xsb_term
