lib/db/table_all.ml: Array Database Hashtbl List Pred Term Xsb_term
