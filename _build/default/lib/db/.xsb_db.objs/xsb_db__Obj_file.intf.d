lib/db/obj_file.mli: Database
