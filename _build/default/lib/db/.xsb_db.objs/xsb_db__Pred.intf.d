lib/db/pred.mli: Term Xsb_term
