lib/db/dcg.ml: Array Fmt Term Xsb_term
