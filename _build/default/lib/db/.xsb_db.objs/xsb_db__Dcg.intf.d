lib/db/dcg.mli: Term Xsb_term
