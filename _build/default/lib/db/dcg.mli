(** Definite clause grammar translation: [H --> B] rules become ordinary
    clauses threading a pair of difference-list arguments, part of the
    "rich and proven environment of Prolog" the paper folds into XSB. *)

open Xsb_term

exception Dcg_error of string

val translate : Term.t -> Term.t
(** Translate one [-->/2] term into a [:-/2] clause. Handles
    non-terminals, terminal lists (including the empty list), [{Goal}]
    escapes, [,], [;], [->], [!] and [\+]. *)

val is_dcg_rule : Term.t -> bool
