(** The in-memory deductive database: predicate registry, operator table,
    HiLog symbol declarations, and the light-weight module registry. *)

open Xsb_term
open Xsb_parse

type t

val create : unit -> t
val ops : t -> Ops.t

(** {1 Predicates} *)

val find : t -> string -> int -> Pred.t option

val declare : t -> ?kind:Pred.kind -> string -> int -> Pred.t
(** Find or create. The kind is only used at creation. *)

val preds : t -> Pred.t list

val remove_pred : t -> string -> int -> unit
(** [abolish]: drop the predicate entirely. *)

(** {1 HiLog symbols} *)

val declare_hilog : t -> string -> unit
val is_hilog : t -> string -> bool

val encode : t -> Term.t -> Term.t
(** HiLog-encode a term under the database's declarations. *)

(** {1 Clause interface} *)

val add_clause : t -> ?front:bool -> Term.t -> Pred.t * Pred.clause
(** Add a clause term ([H :- B] or a fact). The term is HiLog-encoded
    first. Raises [Failure] on ill-formed heads. *)

val clause_parts : Term.t -> (Term.t * Term.t)
(** Split a clause term into head and body ([true] for facts). *)

val head_key : Term.t -> string * int
(** Predicate name/arity of a (dereferenced, encoded) head. Raises
    [Failure] for variables or numbers. *)

(** {1 Modules (term-based, §4.2)} *)

type module_info = { module_name : string; exports : (string * int) list }

val declare_module : t -> string -> (string * int) list -> unit
val current_module : t -> string
val set_current_module : t -> string -> unit
val module_info : t -> string -> module_info option
val modules : t -> module_info list
