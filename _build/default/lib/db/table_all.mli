(** The [:- table_all] directive (paper §4.3): choose predicates to table
    so that every loop in the call graph is broken.

    Determining the minimal such set is intractable (it contains feedback
    vertex set), and predicting call repetition exactly is undecidable;
    as in XSB, "simplicity and speed were chosen over refinements in the
    precision of the algorithm": we table every predicate that lies on a
    cycle of the call graph (every member of a cyclic strongly-connected
    component), which may table more than needed — the paper notes the
    same about XSB and offers module scoping as the remedy, which the
    [scope] argument provides. *)

open Xsb_term

val body_calls : Term.t -> (string * int) list
(** Predicates called by a body term, looking through the control
    constructs [,], [;], [->], [\+], [tnot], [e_tnot], [not], [call] and
    the goal argument of the findall family. *)

val cyclic_preds : Database.t -> scope:(string * int) list -> (string * int) list
(** Members of cyclic SCCs of the call graph restricted to [scope]. *)

val apply : Database.t -> scope:(string * int) list -> unit
(** Mark {!cyclic_preds} tabled. *)
