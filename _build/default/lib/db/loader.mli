(** Consulting source files: reads clauses and processes declarative
    directives ([table], [table_all], [index], [hilog], [op], [dynamic],
    [module], [import], [export]). Any other directive is returned as a
    deferred goal for the engine to run. *)

open Xsb_term

type result = {
  clauses_loaded : int;
  deferred_goals : Term.t list;  (** non-declarative [:- G] directives, in order *)
  defined : (string * int) list;  (** predicates defined by this load unit *)
  table_all_requested : bool;
}

exception Load_error of string

val consult_string : Database.t -> string -> result
val consult_file : Database.t -> string -> result

val consult_lexer : Database.t -> Xsb_parse.Lexer.t -> result

val process_directive :
  Database.t -> Term.t -> [ `Handled | `Deferred of Term.t | `Table_all ]
(** Process one directive body (exposed for the engine's runtime
    directive handling). *)
