open Xsb_term

exception Bad_object_file of string

let magic = "XSBOBJ01"

(* The on-disk image: everything is canonical (immutable, no variable
   cells), so marshalling is stable. *)
type pred_image = {
  p_name : string;
  p_arity : int;
  p_dynamic : bool;
  p_tabled : bool;
  p_index : [ `Fields of int list list | `First_string | `Disc_tree ];
  p_clauses : Canon.t list;  (* each is ':-'(Head, Body) *)
}

type image = pred_image list

let image_of_pred pred =
  {
    p_name = Pred.name pred;
    p_arity = Pred.arity pred;
    p_dynamic = Pred.kind pred = Pred.Dynamic;
    p_tabled = Pred.tabled pred;
    p_index =
      (match Pred.index_spec pred with
      | Pred.Fields combos -> `Fields combos
      | Pred.First_string_index -> `First_string
      | Pred.Disc_tree_index -> `Disc_tree);
    p_clauses =
      List.map
        (fun c -> Canon.of_term (Term.Struct (":-", [| c.Pred.head; c.Pred.body |])))
        (Pred.clauses pred);
  }

let save db keys path =
  let images =
    List.filter_map
      (fun (name, arity) -> Option.map image_of_pred (Database.find db name arity))
      keys
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc (images : image) [])

let save_all db path =
  let keys = List.map (fun p -> (Pred.name p, Pred.arity p)) (Database.preds db) in
  save db keys path

let load db path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header = really_input_string ic (String.length magic) in
      if header <> magic then raise (Bad_object_file "bad magic header");
      let images : image = Marshal.from_channel ic in
      let count = ref 0 in
      List.iter
        (fun img ->
          Database.remove_pred db img.p_name img.p_arity;
          let kind = if img.p_dynamic then Pred.Dynamic else Pred.Static in
          let pred = Database.declare db ~kind img.p_name img.p_arity in
          Pred.set_tabled pred img.p_tabled;
          (match img.p_index with
          | `Fields combos -> Pred.set_index pred (Pred.Fields combos)
          | `First_string -> Pred.set_index pred Pred.First_string_index
          | `Disc_tree -> Pred.set_index pred Pred.Disc_tree_index);
          List.iter
            (fun canon ->
              match Term.deref (Canon.to_term canon) with
              | Term.Struct (":-", [| head; body |]) ->
                  ignore (Pred.assertz pred ~head ~body);
                  incr count
              | _ -> raise (Bad_object_file "corrupt clause"))
            img.p_clauses)
        images;
      !count)
