open Xsb_term
open Xsb_parse

type module_info = { module_name : string; exports : (string * int) list }

type t = {
  preds : (string * int, Pred.t) Hashtbl.t;
  ops : Ops.t;
  hilog : (string, unit) Hashtbl.t;
  module_table : (string, module_info) Hashtbl.t;
  mutable current : string;
}

let create () =
  {
    preds = Hashtbl.create 64;
    ops = Ops.create ();
    hilog = Hashtbl.create 16;
    module_table = Hashtbl.create 8;
    current = "usermod";
  }

let ops t = t.ops
let find t name arity = Hashtbl.find_opt t.preds (name, arity)

let declare t ?kind name arity =
  match find t name arity with
  | Some p -> p
  | None ->
      let p = Pred.create ?kind name arity in
      Hashtbl.replace t.preds (name, arity) p;
      p

let preds t = Hashtbl.fold (fun _ p acc -> p :: acc) t.preds []
let remove_pred t name arity = Hashtbl.remove t.preds (name, arity)

let declare_hilog t name = Hashtbl.replace t.hilog name ()
let is_hilog t name = Hashtbl.mem t.hilog name

let encode t term = Xsb_hilog.Encode.encode_term ~is_hilog:(is_hilog t) term

let clause_parts term =
  match Term.deref term with
  | Term.Struct (":-", [| h; b |]) -> (h, b)
  | t -> (t, Term.Atom "true")

let head_key head =
  match Term.deref head with
  | Term.Atom name -> (name, 0)
  | Term.Struct (name, args) -> (name, Array.length args)
  | t -> Fmt.failwith "ill-formed clause head: %a" Term.pp t

let add_clause t ?(front = false) clause =
  let clause = encode t clause in
  let head, body = clause_parts clause in
  let name, arity = head_key head in
  let pred = declare t name arity in
  let stored = if front then Pred.asserta pred ~head ~body else Pred.assertz pred ~head ~body in
  (pred, stored)

let declare_module t name exports =
  Hashtbl.replace t.module_table name { module_name = name; exports }

let current_module t = t.current
let set_current_module t name = t.current <- name
let module_info t name = Hashtbl.find_opt t.module_table name
let modules t = Hashtbl.fold (fun _ m acc -> m :: acc) t.module_table []
