(** Arithmetic evaluation for [is/2] and the comparison builtins. *)

open Xsb_term

exception Arith_error of string

type number = I of int | F of float

val eval : Term.t -> number
(** Evaluate a ground arithmetic expression. Raises {!Arith_error} on
    unbound variables or unknown functors. *)

val compare_numbers : number -> number -> int

val to_term : number -> Term.t
