open Xsb_term

exception Arith_error of string

type number = I of int | F of float

let fail fmt = Fmt.kstr (fun s -> raise (Arith_error s)) fmt

let to_float = function I i -> float_of_int i | F f -> f

let arith2 name fi ff a b =
  match (a, b) with
  | I x, I y -> ( match fi with Some f -> I (f x y) | None -> F (ff (float_of_int x) (float_of_int y)))
  | a, b -> (
      match name with
      | "//" | "mod" | "rem" | ">>" | "<<" | "/\\" | "\\/" | "xor" | "div" ->
          fail "%s requires integer arguments" name
      | _ -> F (ff (to_float a) (to_float b)))

let rec eval t =
  match Term.deref t with
  | Term.Int i -> I i
  | Term.Float f -> F f
  | Term.Var _ -> fail "unbound variable in arithmetic expression"
  | Term.Atom "pi" -> F (4.0 *. atan 1.0)
  | Term.Atom "e" -> F (exp 1.0)
  | Term.Atom "inf" -> F infinity
  | Term.Atom "max_integer" -> I max_int
  | Term.Atom "min_integer" -> I min_int
  | Term.Atom name -> fail "unknown arithmetic constant %s" name
  | Term.Struct (name, [| x |]) -> (
      let a = eval x in
      match (name, a) with
      | "-", I i -> I (-i)
      | "-", F f -> F (-.f)
      | "+", a -> a
      | "abs", I i -> I (abs i)
      | "abs", F f -> F (abs_float f)
      | "sign", I i -> I (Stdlib.compare i 0)
      | "sign", F f -> F (float_of_int (Stdlib.compare f 0.0))
      | "float", a -> F (to_float a)
      | "integer", F f -> I (int_of_float f)
      | "integer", I i -> I i
      | "truncate", a -> I (int_of_float (to_float a))
      | "round", a -> I (int_of_float (Float.round (to_float a)))
      | "floor", a -> I (int_of_float (floor (to_float a)))
      | "ceiling", a -> I (int_of_float (ceil (to_float a)))
      | "float_integer_part", a -> F (Float.trunc (to_float a))
      | "float_fractional_part", a -> F (Float.rem (to_float a) 1.0)
      | "sqrt", a -> F (sqrt (to_float a))
      | "sin", a -> F (sin (to_float a))
      | "cos", a -> F (cos (to_float a))
      | "tan", a -> F (tan (to_float a))
      | "atan", a -> F (atan (to_float a))
      | "asin", a -> F (asin (to_float a))
      | "acos", a -> F (acos (to_float a))
      | "exp", a -> F (exp (to_float a))
      | "log", a -> F (log (to_float a))
      | "\\", I i -> I (lnot i)
      | "msb", I i when i > 0 ->
          let rec msb n acc = if n = 0 then acc else msb (n lsr 1) (acc + 1) in
          I (msb i (-1))
      | _ -> fail "unknown arithmetic function %s/1" name)
  | Term.Struct (name, [| x; y |]) -> (
      let a = eval x and b = eval y in
      match name with
      | "+" -> arith2 name (Some ( + )) ( +. ) a b
      | "-" -> arith2 name (Some ( - )) ( -. ) a b
      | "*" -> arith2 name (Some ( * )) ( *. ) a b
      | "/" -> (
          match (a, b) with
          | _, I 0 -> fail "zero divisor"
          | I x, I y when x mod y = 0 -> I (x / y)
          | a, b ->
              if to_float b = 0.0 then fail "zero divisor" else F (to_float a /. to_float b))
      | "//" -> (
          match (a, b) with
          | I _, I 0 -> fail "zero divisor"
          | I x, I y ->
              (* truncating division *)
              I (if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) else x / y)
          | _ -> fail "// requires integers")
      | "div" -> (
          match (a, b) with
          | I _, I 0 -> fail "zero divisor"
          | I x, I y ->
              let q = x / y and r = x mod y in
              I (if r <> 0 && (r < 0) <> (y < 0) then q - 1 else q)
          | _ -> fail "div requires integers")
      | "mod" -> (
          match (a, b) with
          | I _, I 0 -> fail "zero divisor"
          | I x, I y ->
              let r = x mod y in
              I (if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
          | _ -> fail "mod requires integers")
      | "rem" -> (
          match (a, b) with
          | I _, I 0 -> fail "zero divisor"
          | I x, I y -> I (x mod y)
          | _ -> fail "rem requires integers")
      | "min" -> if compare_numbers a b <= 0 then a else b
      | "max" -> if compare_numbers a b >= 0 then a else b
      | "**" -> F (Float.pow (to_float a) (to_float b))
      | "^" -> (
          match (a, b) with
          | I x, I y when y >= 0 ->
              let rec pow acc b e = if e = 0 then acc else pow (acc * b) b (e - 1) in
              I (pow 1 x y)
          | _ -> F (Float.pow (to_float a) (to_float b)))
      | ">>" -> ( match (a, b) with I x, I y -> I (x asr y) | _ -> fail ">> requires integers")
      | "<<" -> ( match (a, b) with I x, I y -> I (x lsl y) | _ -> fail "<< requires integers")
      | "/\\" -> ( match (a, b) with I x, I y -> I (x land y) | _ -> fail "/\\ requires integers")
      | "\\/" -> ( match (a, b) with I x, I y -> I (x lor y) | _ -> fail "\\/ requires integers")
      | "xor" -> ( match (a, b) with I x, I y -> I (x lxor y) | _ -> fail "xor requires integers")
      | "atan" | "atan2" -> F (atan2 (to_float a) (to_float b))
      | "gcd" -> (
          match (a, b) with
          | I x, I y ->
              let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
              I (gcd x y)
          | _ -> fail "gcd requires integers")
      | _ -> fail "unknown arithmetic function %s/2" name)
  | Term.Struct (name, args) -> fail "unknown arithmetic function %s/%d" name (Array.length args)

and compare_numbers a b =
  match (a, b) with
  | I x, I y -> Int.compare x y
  | _ -> Float.compare (to_float a) (to_float b)

let to_term = function I i -> Term.Int i | F f -> Term.Float f
