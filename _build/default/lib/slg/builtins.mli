(** Standard builtins that do not interact with tabling: unification,
    term inspection and construction, arithmetic, atom/codes conversion,
    output, and clause-base updates (assert/retract, §4.2's dynamic code
    interface). Control constructs and the tabling builtins live in
    {!Machine}. *)

open Xsb_term
open Xsb_db

exception Builtin_error of string

type ctx = { trail : Trail.t; db : Database.t; out : Format.formatter }

type t = ctx -> Term.t array -> (unit -> unit) -> unit
(** A builtin receives its (dereferenced-on-demand) arguments and a
    success continuation; nondeterministic builtins invoke it once per
    solution, undoing bindings in between. *)

val lookup : string -> int -> t option

val run : t -> Trail.t -> Database.t -> Format.formatter -> Term.t array -> (unit -> unit) -> unit
