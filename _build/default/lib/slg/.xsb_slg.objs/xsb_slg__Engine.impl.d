lib/slg/engine.ml: Array Canon Database Hashtbl List Loader Machine Printf Term Vec Xsb_db Xsb_parse Xsb_term
