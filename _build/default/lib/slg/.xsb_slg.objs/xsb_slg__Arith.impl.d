lib/slg/arith.ml: Array Float Fmt Int Stdlib Term Xsb_term
