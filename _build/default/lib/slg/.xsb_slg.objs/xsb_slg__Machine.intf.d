lib/slg/machine.mli: Canon Database Format Hashtbl Stack Term Trail Vec Xsb_db Xsb_term
