lib/slg/engine.mli: Canon Database Machine Term Xsb_db Xsb_term
