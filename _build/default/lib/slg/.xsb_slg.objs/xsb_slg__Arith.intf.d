lib/slg/arith.mli: Term Xsb_term
