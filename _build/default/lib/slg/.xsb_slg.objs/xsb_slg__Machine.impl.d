lib/slg/machine.ml: Arith Array Builtins Canon Database Fmt Format Hashtbl Int List Loader Pred Set Stack Stdlib Table_all Term Trail Unify Vec Xsb_db Xsb_term
