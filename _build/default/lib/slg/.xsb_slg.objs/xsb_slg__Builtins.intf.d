lib/slg/builtins.mli: Database Format Term Trail Xsb_db Xsb_term
