lib/slg/builtins.ml: Arith Array Buffer Char Database Fmt Format Hashtbl List Option Pred String Term Trail Unify Xsb_db Xsb_parse Xsb_term
