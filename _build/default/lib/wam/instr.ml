type reg = X of int | Y of int

type label = int

(** Keys of [Switch_on_constant] tables: atomic first arguments. *)
type ckey = KCon of string | KInt of int | KFloat of float

type t =
  | Get_variable of reg * int
  | Get_value of reg * int
  | Get_constant of string * int
  | Get_integer of int * int
  | Get_float of float * int
  | Get_nil of int
  | Get_structure of string * int * int
  | Get_list of int
  | Unify_variable of reg
  | Unify_value of reg
  | Unify_constant of string
  | Unify_integer of int
  | Unify_float of float
  | Unify_nil
  | Unify_void of int
  | Put_variable of reg * int
  | Put_value of reg * int
  | Put_constant of string * int
  | Put_integer of int * int
  | Put_float of float * int
  | Put_nil of int
  | Put_structure of string * int * int
  | Put_list of int
  | Set_variable of reg
  | Set_value of reg
  | Set_constant of string
  | Set_integer of int
  | Set_float of float
  | Set_void of int
  | Allocate of int
  | Deallocate
  | Call of string * int
  | Execute of string * int
  | Proceed
  | Builtin of string * int
  | Fail_instr
  | Try_me_else of label
  | Retry_me_else of label
  | Trust_me
  | Try of label
  | Retry of label
  | Trust of label
  | Switch_on_term of label * label * label * label
  | Switch_on_constant of (ckey * label) list * label
  | Switch_on_structure of ((string * int) * label) list * label
  | Jump of label
  | Neck_cut
  | Get_level of reg
  | Cut of reg
  | Label of label

let pp_reg ppf = function
  | X i -> Fmt.pf ppf "X%d" i
  | Y i -> Fmt.pf ppf "Y%d" i

let pp ppf = function
  | Get_variable (r, a) -> Fmt.pf ppf "get_variable %a, A%d" pp_reg r a
  | Get_value (r, a) -> Fmt.pf ppf "get_value %a, A%d" pp_reg r a
  | Get_constant (c, a) -> Fmt.pf ppf "get_constant %s, A%d" c a
  | Get_integer (i, a) -> Fmt.pf ppf "get_integer %d, A%d" i a
  | Get_float (f, a) -> Fmt.pf ppf "get_float %g, A%d" f a
  | Get_nil a -> Fmt.pf ppf "get_nil A%d" a
  | Get_structure (f, n, a) -> Fmt.pf ppf "get_structure %s/%d, A%d" f n a
  | Get_list a -> Fmt.pf ppf "get_list A%d" a
  | Unify_variable r -> Fmt.pf ppf "unify_variable %a" pp_reg r
  | Unify_value r -> Fmt.pf ppf "unify_value %a" pp_reg r
  | Unify_constant c -> Fmt.pf ppf "unify_constant %s" c
  | Unify_integer i -> Fmt.pf ppf "unify_integer %d" i
  | Unify_float f -> Fmt.pf ppf "unify_float %g" f
  | Unify_nil -> Fmt.string ppf "unify_nil"
  | Unify_void n -> Fmt.pf ppf "unify_void %d" n
  | Put_variable (r, a) -> Fmt.pf ppf "put_variable %a, A%d" pp_reg r a
  | Put_value (r, a) -> Fmt.pf ppf "put_value %a, A%d" pp_reg r a
  | Put_constant (c, a) -> Fmt.pf ppf "put_constant %s, A%d" c a
  | Put_integer (i, a) -> Fmt.pf ppf "put_integer %d, A%d" i a
  | Put_float (f, a) -> Fmt.pf ppf "put_float %g, A%d" f a
  | Put_nil a -> Fmt.pf ppf "put_nil A%d" a
  | Put_structure (f, n, a) -> Fmt.pf ppf "put_structure %s/%d, A%d" f n a
  | Put_list a -> Fmt.pf ppf "put_list A%d" a
  | Set_variable r -> Fmt.pf ppf "set_variable %a" pp_reg r
  | Set_value r -> Fmt.pf ppf "set_value %a" pp_reg r
  | Set_constant c -> Fmt.pf ppf "set_constant %s" c
  | Set_integer i -> Fmt.pf ppf "set_integer %d" i
  | Set_float f -> Fmt.pf ppf "set_float %g" f
  | Set_void n -> Fmt.pf ppf "set_void %d" n
  | Allocate n -> Fmt.pf ppf "allocate %d" n
  | Deallocate -> Fmt.string ppf "deallocate"
  | Call (p, n) -> Fmt.pf ppf "call %s/%d" p n
  | Execute (p, n) -> Fmt.pf ppf "execute %s/%d" p n
  | Proceed -> Fmt.string ppf "proceed"
  | Builtin (p, n) -> Fmt.pf ppf "builtin %s/%d" p n
  | Fail_instr -> Fmt.string ppf "fail"
  | Try_me_else l -> Fmt.pf ppf "try_me_else L%d" l
  | Retry_me_else l -> Fmt.pf ppf "retry_me_else L%d" l
  | Trust_me -> Fmt.string ppf "trust_me"
  | Try l -> Fmt.pf ppf "try L%d" l
  | Retry l -> Fmt.pf ppf "retry L%d" l
  | Trust l -> Fmt.pf ppf "trust L%d" l
  | Switch_on_term (v, c, l, s) -> Fmt.pf ppf "switch_on_term L%d, L%d, L%d, L%d" v c l s
  | Switch_on_constant (table, d) ->
      let pp_key ppf = function
        | KCon c -> Fmt.string ppf c
        | KInt i -> Fmt.int ppf i
        | KFloat f -> Fmt.float ppf f
      in
      Fmt.pf ppf "switch_on_constant {%a} else L%d"
        Fmt.(list ~sep:(any "; ") (pair ~sep:(any ":L") pp_key int))
        table d
  | Switch_on_structure (table, d) ->
      Fmt.pf ppf "switch_on_structure {%a} else L%d"
        Fmt.(list ~sep:(any "; ") (pair ~sep:(any ":L") (pair ~sep:(any "/") string int) int))
        table d
  | Jump l -> Fmt.pf ppf "jump L%d" l
  | Neck_cut -> Fmt.string ppf "neck_cut"
  | Get_level r -> Fmt.pf ppf "get_level %a" pp_reg r
  | Cut r -> Fmt.pf ppf "cut %a" pp_reg r
  | Label l -> Fmt.pf ppf "L%d:" l
