open Xsb_term

exception Not_compilable of string

let fail fmt = Fmt.kstr (fun s -> raise (Not_compilable s)) fmt

let builtin_goals =
  [
    ("=", 2);
    ("is", 2);
    ("<", 2);
    (">", 2);
    ("=<", 2);
    (">=", 2);
    ("=:=", 2);
    ("=\\=", 2);
    ("==", 2);
    ("\\==", 2);
    ("write", 1);
    ("nl", 0);
  ]

let flatten_body body =
  let rec go acc t =
    match Term.deref t with
    | Term.Atom "true" -> acc
    | Term.Struct (",", [| l; r |]) -> go (go acc l) r
    | g -> g :: acc
  in
  List.rev (go [] body)

let unsupported_goal g =
  match Term.deref g with
  | Term.Struct ((";" | "->"), _) -> true
  | Term.Struct (("\\+" | "not" | "tnot" | "e_tnot" | "call" | "findall" | "bagof" | "setof"), _)
    ->
      true
  | Term.Var _ -> true
  | _ -> false

(* Variable numbering: rules put every variable in the environment. *)
type varmap = { assign : (int, Instr.reg) Hashtbl.t; mutable seen : int list; mutable ny : int }

let reg_of vm ~fact v =
  match Hashtbl.find_opt vm.assign v.Term.vid with
  | Some r -> r
  | None ->
      let r =
        if fact then Instr.X (200 + Hashtbl.length vm.assign)
        else begin
          vm.ny <- vm.ny + 1;
          Instr.Y vm.ny
        end
      in
      Hashtbl.add vm.assign v.Term.vid r;
      r

let first_occurrence vm v =
  if List.mem v.Term.vid vm.seen then false
  else begin
    vm.seen <- v.Term.vid :: vm.seen;
    true
  end

(* ---- head compilation ---- *)

(* Nested structures found while scanning a level are unified into fresh
   temporary registers and expanded afterwards (breadth-first), as in
   the classical flattened head form. *)
let compile_head vm ~fact args =
  let code = ref [] in
  let emit i = code := i :: !code in
  let tmp_counter = ref 100 in
  let fresh_tmp () =
    incr tmp_counter;
    Instr.X !tmp_counter
  in
  let queue = Queue.create () in
  let unify_arg sub =
    match Term.deref sub with
    | Term.Var v ->
        let r = reg_of vm ~fact v in
        if first_occurrence vm v then emit (Instr.Unify_variable r) else emit (Instr.Unify_value r)
    | Term.Atom "[]" -> emit Instr.Unify_nil
    | Term.Atom c -> emit (Instr.Unify_constant c)
    | Term.Int i -> emit (Instr.Unify_integer i)
    | Term.Float f -> emit (Instr.Unify_float f)
    | Term.Struct _ as nested ->
        let t = fresh_tmp () in
        emit (Instr.Unify_variable t);
        Queue.add (t, nested) queue
  in
  let expand reg term =
    match Term.deref term with
    | Term.Struct (".", [| h; tl |]) ->
        (match reg with
        | Instr.X i -> emit (Instr.Get_list i)
        | Instr.Y _ -> assert false);
        unify_arg h;
        unify_arg tl
    | Term.Struct (f, sub) ->
        (match reg with
        | Instr.X i -> emit (Instr.Get_structure (f, Array.length sub, i))
        | Instr.Y _ -> assert false);
        Array.iter unify_arg sub
    | _ -> assert false
  in
  Array.iteri
    (fun i arg ->
      let ai = i + 1 in
      match Term.deref arg with
      | Term.Var v ->
          let r = reg_of vm ~fact v in
          if first_occurrence vm v then emit (Instr.Get_variable (r, ai))
          else emit (Instr.Get_value (r, ai))
      | Term.Atom "[]" -> emit (Instr.Get_nil ai)
      | Term.Atom c -> emit (Instr.Get_constant (c, ai))
      | Term.Int n -> emit (Instr.Get_integer (n, ai))
      | Term.Float f -> emit (Instr.Get_float (f, ai))
      | Term.Struct (".", [| h; tl |]) ->
          emit (Instr.Get_list ai);
          unify_arg h;
          unify_arg tl
      | Term.Struct (f, sub) ->
          emit (Instr.Get_structure (f, Array.length sub, ai));
          Array.iter unify_arg sub)
    args;
  (* expand queued nested structures *)
  while not (Queue.is_empty queue) do
    let reg, term = Queue.pop queue in
    expand reg term
  done;
  List.rev !code

(* ---- body argument compilation ---- *)

(* Build nested structures bottom-up into temporaries, then the top
   level directly into the argument register. *)
let compile_puts vm ~fact args =
  let code = ref [] in
  let emit i = code := i :: !code in
  let tmp_counter = ref (Array.length args + 100) in
  let fresh_tmp () =
    incr tmp_counter;
    !tmp_counter
  in
  (* returns an operand usable in Set_ position *)
  let rec build_into_tmp term =
    match Term.deref term with
    | Term.Struct (".", [| h; tl |]) ->
        let hop = prepare h and tlop = prepare tl in
        let t = fresh_tmp () in
        emit (Instr.Put_list t);
        set_operand hop;
        set_operand tlop;
        Instr.X t
    | Term.Struct (f, sub) ->
        let ops = Array.map prepare sub in
        let t = fresh_tmp () in
        emit (Instr.Put_structure (f, Array.length sub, t));
        Array.iter set_operand ops;
        Instr.X t
    | _ -> assert false

  and prepare sub =
    match Term.deref sub with
    | Term.Var v ->
        let r = reg_of vm ~fact v in
        if first_occurrence vm v then `NewVar r else `Reg r
    | Term.Atom "[]" -> `Nil
    | Term.Atom c -> `Con c
    | Term.Int i -> `Int i
    | Term.Float f -> `Float f
    | Term.Struct _ as nested -> `Reg (build_into_tmp nested)

  and set_operand = function
    | `NewVar r -> emit (Instr.Set_variable r)
    | `Reg r -> emit (Instr.Set_value r)
    | `Nil -> emit (Instr.Set_constant "[]")
    | `Con c -> emit (Instr.Set_constant c)
    | `Int i -> emit (Instr.Set_integer i)
    | `Float f -> emit (Instr.Set_float f)
  in
  Array.iteri
    (fun i arg ->
      let ai = i + 1 in
      match Term.deref arg with
      | Term.Var v ->
          let r = reg_of vm ~fact v in
          if first_occurrence vm v then emit (Instr.Put_variable (r, ai))
          else emit (Instr.Put_value (r, ai))
      | Term.Atom "[]" -> emit (Instr.Put_nil ai)
      | Term.Atom c -> emit (Instr.Put_constant (c, ai))
      | Term.Int n -> emit (Instr.Put_integer (n, ai))
      | Term.Float f -> emit (Instr.Put_float (f, ai))
      | Term.Struct (".", [| h; tl |]) ->
          let hop = prepare h and tlop = prepare tl in
          emit (Instr.Put_list ai);
          set_operand hop;
          set_operand tlop
      | Term.Struct (f, sub) ->
          let ops = Array.map prepare sub in
          emit (Instr.Put_structure (f, Array.length sub, ai));
          Array.iter set_operand ops)
    args;
  List.rev !code

let args_of t =
  match Term.deref t with Term.Struct (_, args) -> args | _ -> [||]

let goal_key g =
  match Term.deref g with
  | Term.Atom name -> (name, 0)
  | Term.Struct (name, args) -> (name, Array.length args)
  | t -> fail "bad goal %a" Term.pp t

let clause ~head ~body =
  let goals = flatten_body body in
  List.iter (fun g -> if unsupported_goal g then fail "unsupported goal %a" Term.pp g) goals;
  let fact = goals = [] || List.for_all (fun g -> goal_key g = ("!", 0)) goals in
  let vm = { assign = Hashtbl.create 8; seen = []; ny = 0 } in
  let head_code = compile_head vm ~fact (args_of head) in
  if fact then
    (* facts (and fact-with-neck-cut) need no environment *)
    head_code @ List.concat_map (fun _ -> [ Instr.Neck_cut ]) goals @ [ Instr.Proceed ]
  else begin
    let uses_deep_cut =
      match goals with
      | _first :: rest -> List.exists (fun g -> goal_key g = ("!", 0)) rest
      | [] -> false
    in
    let cut_slot =
      if uses_deep_cut then begin
        vm.ny <- vm.ny + 1;
        Some (Instr.Y vm.ny)
      end
      else None
    in
    let body_code = ref [] in
    let emit is = body_code := is :: !body_code in
    let n = List.length goals in
    List.iteri
      (fun i g ->
        let last = i = n - 1 in
        let key = goal_key g in
        match key with
        | "!", 0 ->
            if i = 0 then emit [ Instr.Neck_cut ]
            else emit [ Instr.Cut (Option.get cut_slot) ];
            if last then emit [ Instr.Deallocate; Instr.Proceed ]
        | name, arity when List.mem key builtin_goals ->
            emit (compile_puts vm ~fact:false (args_of g));
            emit [ Instr.Builtin (name, arity) ];
            if last then emit [ Instr.Deallocate; Instr.Proceed ]
        | name, arity ->
            emit (compile_puts vm ~fact:false (args_of g));
            if last then emit [ Instr.Deallocate; Instr.Execute (name, arity) ]
            else emit [ Instr.Call (name, arity) ])
      goals;
    let body_code = List.concat (List.rev !body_code) in
    (Instr.Allocate vm.ny
    :: (match cut_slot with Some r -> [ Instr.Get_level r ] | None -> []))
    @ head_code @ body_code
  end

(* ---- predicate-level indexing and assembly ---- *)

let first_arg_kind head =
  let args = args_of head in
  if Array.length args = 0 then `None
  else
    match Term.deref args.(0) with
    | Term.Var _ -> `Var
    | Term.Atom "[]" -> `Con (Instr.KCon "[]")
    | Term.Atom c -> `Con (Instr.KCon c)
    | Term.Int i -> `Con (Instr.KInt i)
    | Term.Float f -> `Con (Instr.KFloat f)
    | Term.Struct (".", [| _; _ |]) -> `Lis
    | Term.Struct (f, sub) -> `Str (f, Array.length sub)

let assemble blocks =
  (* blocks: (label, instr list) list in layout order; labels become
     addresses *)
  let addr = Hashtbl.create 16 in
  let pos = ref 0 in
  List.iter
    (fun (label, instrs) ->
      Hashtbl.replace addr label !pos;
      pos := !pos + List.length instrs)
    blocks;
  let resolve l =
    match Hashtbl.find_opt addr l with
    | Some a -> a
    | None -> Fmt.failwith "unresolved label L%d" l
  in
  let out = Array.make (max 1 !pos) Instr.Fail_instr in
  let i = ref 0 in
  List.iter
    (fun (_, instrs) ->
      List.iter
        (fun instr ->
          let instr =
            match instr with
            | Instr.Try_me_else l -> Instr.Try_me_else (resolve l)
            | Instr.Retry_me_else l -> Instr.Retry_me_else (resolve l)
            | Instr.Try l -> Instr.Try (resolve l)
            | Instr.Retry l -> Instr.Retry (resolve l)
            | Instr.Trust l -> Instr.Trust (resolve l)
            | Instr.Jump l -> Instr.Jump (resolve l)
            | Instr.Switch_on_term (v, c, li, st) ->
                Instr.Switch_on_term (resolve v, resolve c, resolve li, resolve st)
            | Instr.Switch_on_constant (table, d) ->
                Instr.Switch_on_constant (List.map (fun (k, l) -> (k, resolve l)) table, resolve d)
            | Instr.Switch_on_structure (table, d) ->
                Instr.Switch_on_structure (List.map (fun (k, l) -> (k, resolve l)) table, resolve d)
            | i -> i
          in
          out.(!i) <- instr;
          incr i)
        instrs)
    blocks;
  out

let predicate clauses =
  if clauses = [] then [| Instr.Fail_instr |]
  else begin
    let compiled = List.map (fun (head, body) -> (head, clause ~head ~body)) clauses in
    match compiled with
    | [ (_, code) ] -> assemble [ (0, code) ]
    | _ ->
        let next_label = ref 0 in
        let fresh_label () =
          incr next_label;
          !next_label
        in
        let blocks = ref [] in
        let add_block instrs =
          let l = fresh_label () in
          blocks := (l, instrs) :: !blocks;
          l
        in
        let clause_labels = List.map (fun (h, code) -> (h, add_block code)) compiled in
        let fail_label = add_block [ Instr.Fail_instr ] in
        (* a try/retry/trust chain over a subset of the clauses *)
        let chain_instrs = function
          | [] -> [ Instr.Fail_instr ]
          | [ l ] -> [ Instr.Jump l ]
          | first :: rest ->
              let rec tail = function
                | [ last ] -> [ Instr.Trust last ]
                | l :: rest -> Instr.Retry l :: tail rest
                | [] -> []
              in
              Instr.Try first :: tail rest
        in
        let chain labels =
          match labels with
          | [] -> fail_label
          | [ l ] -> l
          | ls -> add_block (chain_instrs ls)
        in
        let kinds = List.map (fun (h, l) -> (first_arg_kind h, l)) clause_labels in
        let all_labels = List.map snd clause_labels in
        (* group clauses by first-argument kind in one pass, keeping the
           original clause order; variable-headed clauses belong to every
           bucket *)
        let con_groups : (Instr.ckey, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
        let str_groups : (string * int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
        let var_clauses = ref [] and lis_clauses = ref [] in
        List.iteri
          (fun pos (kind, l) ->
            match kind with
            | `Var ->
                var_clauses := (pos, l) :: !var_clauses;
                lis_clauses := (pos, l) :: !lis_clauses
            | `Lis -> lis_clauses := (pos, l) :: !lis_clauses
            | `Con c -> (
                match Hashtbl.find_opt con_groups c with
                | Some cell -> cell := (pos, l) :: !cell
                | None -> Hashtbl.add con_groups c (ref [ (pos, l) ]))
            | `Str st -> (
                match Hashtbl.find_opt str_groups st with
                | Some cell -> cell := (pos, l) :: !cell
                | None -> Hashtbl.add str_groups st (ref [ (pos, l) ]))
            | `None -> ())
          kinds;
        let ordered own =
          List.map snd
            (List.sort compare (List.rev_append !var_clauses own))
        in
        let entry =
          if List.exists (fun (k, _) -> k = `None) kinds then
            (* arity 0: no first-argument indexing possible *)
            (0, chain_instrs all_labels)
          else begin
            let var_label = chain all_labels in
            let var_chain () = chain (ordered []) in
            let con_label =
              if Hashtbl.length con_groups = 0 then var_chain ()
              else
                add_block
                  [
                    Instr.Switch_on_constant
                      ( Hashtbl.fold
                          (fun c cell acc -> (c, chain (ordered !cell)) :: acc)
                          con_groups [],
                        var_chain () );
                  ]
            in
            let lis_label = chain (List.map snd (List.sort compare (List.rev !lis_clauses))) in
            let str_label =
              if Hashtbl.length str_groups = 0 then var_chain ()
              else
                add_block
                  [
                    Instr.Switch_on_structure
                      ( Hashtbl.fold
                          (fun st cell acc -> (st, chain (ordered !cell)) :: acc)
                          str_groups [],
                        var_chain () );
                  ]
            in
            (0, [ Instr.Switch_on_term (var_label, con_label, lis_label, str_label) ])
          end
        in
        assemble (entry :: List.rev !blocks)
  end
