(** WAM object files: the paper's byte-code object files (§4.2, §4.6).
    "Since object files contain precompiled code, loading an object file
    is about 12x faster than loading through the formatted read and
    assert" — the code arrives compiled, with its indexing switch tables,
    so loading involves no parsing, no clause insertion and no index
    maintenance. *)

exception Bad_image of string

val save : Emulator.program -> string -> unit
(** Write every predicate's compiled code. Table declarations are
    included; table contents are not. *)

val load : string -> Emulator.program
(** Read an image into a fresh, immediately executable program. *)

val load_into : Emulator.program -> string -> int
(** Merge an image into an existing program (replacing same-name
    predicates); returns the number of predicates loaded. *)
