(** The clause compiler: translates clauses to WAM code with
    first-argument indexing (switch_on_term plus hashed constant and
    structure switches, paper §4.5's default static indexing).

    A simplification relative to a register-optimizing WAM compiler: in
    rules, every variable is treated as permanent (allocated in the
    environment). This keeps argument-register shuffling trivially
    correct at a small constant cost; facts use temporary registers
    only. *)

open Xsb_term

exception Not_compilable of string
(** Raised for clauses the WAM subset does not cover: tabled predicates
    (evaluated by the SLG interpreter), disjunction/if-then-else,
    negation, findall, and meta-calls. *)

val clause : head:Term.t -> body:Term.t -> Instr.t list
(** Compile one clause to unassembled code (no Label pseudo-instrs). *)

val predicate : (Term.t * Term.t) list -> Instr.t array
(** Compile and assemble a whole predicate (list of head/body pairs)
    with first-argument indexing across the clauses. *)

val builtin_goals : (string * int) list
(** Goal shapes compiled to [Builtin] escapes. *)
