lib/wam/wam_image.ml: Emulator Fun List String
