lib/wam/wam_image.mli: Emulator
