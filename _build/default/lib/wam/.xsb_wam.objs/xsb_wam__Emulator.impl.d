lib/wam/emulator.ml: Array Canon Compile Fmt Format Fun Hashtbl Instr List Marshal Option Printf String Term Trail Unify Vec Xsb_db Xsb_slg Xsb_term
