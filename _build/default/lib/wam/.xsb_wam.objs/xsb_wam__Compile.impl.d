lib/wam/compile.ml: Array Fmt Hashtbl Instr List Option Queue Term Xsb_term
