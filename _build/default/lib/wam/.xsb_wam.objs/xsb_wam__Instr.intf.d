lib/wam/instr.mli: Fmt
