lib/wam/instr.ml: Fmt
