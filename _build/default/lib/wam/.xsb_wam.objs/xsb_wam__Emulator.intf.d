lib/wam/emulator.mli: Format Instr Term Xsb_db Xsb_term
