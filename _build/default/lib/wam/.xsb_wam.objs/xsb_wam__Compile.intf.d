lib/wam/compile.mli: Instr Term Xsb_term
