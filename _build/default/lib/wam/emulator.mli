(** The WAM emulator: tagged-cell heap, argument registers, environment
    and choice-point stacks, trail with heap reclamation on backtracking.
    Executes code produced by {!Compile}. *)

open Xsb_term

exception Wam_error of string

type program

val empty_program : unit -> program

val install : program -> string -> int -> Instr.t array -> unit
(** Define (or replace) a predicate's code. *)

val declare_tabled : program -> string -> int -> unit
(** Route calls to the predicate through the table (its generator code
    must be installed under the ["$gen"]-suffixed name). *)

val exported_code : program -> ((string * int) * Instr.t array) list
val tabled_preds : program -> (string * int) list

val write_image : program -> out_channel -> unit
(** Marshal the compiled program (code and switch tables). *)

val read_image : in_channel -> program

val disassemble : program -> Format.formatter -> unit
(** Print every predicate's code as a WAM listing. *)

val disassemble_pred : program -> string -> int -> Format.formatter -> unit

val compile_clauses : program -> (Term.t * Term.t) list -> unit
(** Compile and install a batch of clauses grouped by predicate. *)

val of_database : Xsb_db.Database.t -> program
(** Compile every WAM-compilable predicate of a database; predicates
    that are not compilable (tabled, control constructs) are skipped —
    calling them fails. *)

type machine

val create : program -> machine

val run : machine -> Term.t -> on_solution:(Term.t list -> bool) -> int
(** [run m goal ~on_solution] executes the goal; [on_solution] receives
    the instantiated query variables (in first-occurrence order) for
    each solution and returns [true] to continue searching. Returns the
    number of solutions delivered. *)

val solutions : machine -> Term.t -> Term.t list list
val first_solution : machine -> Term.t -> Term.t list option
val count_solutions : machine -> Term.t -> int
val instructions_executed : machine -> int
