(** The WAM instruction set (paper reference [24]), with the hash-based
    clause indexing instructions of §4.5. Labels are indices
    into a predicate's code array. *)

type reg =
  | X of int  (** temporary register (argument registers are X1..Xn) *)
  | Y of int  (** permanent variable slot in the current environment *)

type label = int

(** Keys of [Switch_on_constant] tables: atomic first arguments. *)
type ckey = KCon of string | KInt of int | KFloat of float

type t =
  (* head unification *)
  | Get_variable of reg * int
  | Get_value of reg * int
  | Get_constant of string * int
  | Get_integer of int * int
  | Get_float of float * int
  | Get_nil of int
  | Get_structure of string * int * int  (** f, n, Ai *)
  | Get_list of int
  (* read/write mode sub-term unification *)
  | Unify_variable of reg
  | Unify_value of reg
  | Unify_constant of string
  | Unify_integer of int
  | Unify_float of float
  | Unify_nil
  | Unify_void of int
  (* body argument construction *)
  | Put_variable of reg * int
  | Put_value of reg * int
  | Put_constant of string * int
  | Put_integer of int * int
  | Put_float of float * int
  | Put_nil of int
  | Put_structure of string * int * int
  | Put_list of int
  | Set_variable of reg
  | Set_value of reg
  | Set_constant of string
  | Set_integer of int
  | Set_float of float
  | Set_void of int
  (* control *)
  | Allocate of int
  | Deallocate
  | Call of string * int
  | Execute of string * int
  | Proceed
  | Builtin of string * int  (** escape to an OCaml builtin over A1..An *)
  | Fail_instr
  (* choice *)
  | Try_me_else of label
  | Retry_me_else of label
  | Trust_me
  | Try of label
  | Retry of label
  | Trust of label
  (* indexing *)
  | Switch_on_term of label * label * label * label  (** var, const, list, struct *)
  | Switch_on_constant of (ckey * label) list * label  (** hashed; default fails *)
  | Switch_on_structure of ((string * int) * label) list * label
  (* cut *)
  | Jump of label
  | Neck_cut
  | Get_level of reg
  | Cut of reg
  | Label of label  (** pseudo-instruction used during assembly *)

val pp : t Fmt.t
