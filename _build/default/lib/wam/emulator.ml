open Xsb_term
module Arith = Xsb_slg.Arith

exception Wam_error of string

let error fmt = Fmt.kstr (fun s -> raise (Wam_error s)) fmt

type cell =
  | Ref of int
  | Str of int
  | Lis of int
  | Con of string
  | IntC of int
  | FloatC of float
  | Fun of string * int

(* Per-predicate code plus hashed switch tables (the "hash-based
   indexing" of §4.5: switch_on_constant/structure lookups are O(1)). *)
type proc = {
  p_code : Instr.t array;
  p_ctab : (int, (Instr.ckey, int) Hashtbl.t) Hashtbl.t;
  p_stab : (int, (string * int, int) Hashtbl.t) Hashtbl.t;
}

(* Linear tabling at the WAM level (see DESIGN.md §3): a tabled call is
   answered from compiled *answer clauses*; generators re-run their
   (renamed) clause code against the current answer snapshots until a
   global fixpoint, then every active table is completed. This trades
   the SLG-WAM's suspension machinery for recomputation, keeping the
   byte-code engine simple while remaining terminating and complete on
   datalog. *)
type table_entry = {
  te_pattern : Term.t;  (* generalized call *)
  te_order : Canon.t Vec.t;
  te_set : unit Canon.Tbl.t;
  mutable te_complete : bool;
  mutable te_proc : proc option;  (* compiled answer clauses (cache) *)
}

and program = {
  preds : (string * int, proc) Hashtbl.t;
  tabled : (string * int, unit) Hashtbl.t;
  tables : table_entry Canon.Tbl.t;
  mutable active : table_entry list;  (* in-progress entries *)
  mutable changed : bool;
  mutable depth : int;  (* generator nesting *)
}

let empty_program () =
  {
    preds = Hashtbl.create 64;
    tabled = Hashtbl.create 8;
    tables = Canon.Tbl.create 64;
    active = [];
    changed = false;
    depth = 0;
  }

let make_proc code =
  let ctab = Hashtbl.create 4 and stab = Hashtbl.create 4 in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Instr.Switch_on_constant (table, _) ->
          let h = Hashtbl.create (2 * List.length table) in
          List.iter (fun (k, l) -> Hashtbl.replace h k l) table;
          Hashtbl.replace ctab pc h
      | Instr.Switch_on_structure (table, _) ->
          let h = Hashtbl.create (2 * List.length table) in
          List.iter (fun (k, l) -> Hashtbl.replace h k l) table;
          Hashtbl.replace stab pc h
      | _ -> ())
    code;
  { p_code = code; p_ctab = ctab; p_stab = stab }

let install program name arity code = Hashtbl.replace program.preds (name, arity) (make_proc code)

let declare_tabled program name arity = Hashtbl.replace program.tabled (name, arity) ()

let exported_code program =
  Hashtbl.fold (fun key proc acc -> (key, proc.p_code) :: acc) program.preds []

let tabled_preds program = Hashtbl.fold (fun key () acc -> key :: acc) program.tabled []

(* whole-program images: procs (code plus prebuilt switch tables) are
   pure data, so they marshal directly; loading is a single unmarshal
   with no compilation, clause insertion or index building *)
type image_payload = (string * int, proc) Hashtbl.t * (string * int) list

let write_image program oc =
  Marshal.to_channel oc ((program.preds, tabled_preds program) : image_payload) []

let read_image ic =
  let (preds, tabled) : image_payload = Marshal.from_channel ic in
  let program = empty_program () in
  Hashtbl.iter (fun key proc -> Hashtbl.replace program.preds key proc) preds;
  List.iter (fun key -> Hashtbl.replace program.tabled key ()) tabled;
  program

let disassemble_pred program name arity ppf =
  match Hashtbl.find_opt program.preds (name, arity) with
  | None -> Fmt.pf ppf "%% %s/%d: undefined@." name arity
  | Some proc ->
      Fmt.pf ppf "%% %s/%d%s@." name arity
        (if Hashtbl.mem program.tabled (name, arity) then "  (tabled)" else "");
      Array.iteri (fun i instr -> Fmt.pf ppf "  %4d  %a@." i Instr.pp instr) proc.p_code

let disassemble program ppf =
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) program.preds [] in
  List.iter
    (fun (name, arity) -> disassemble_pred program name arity ppf)
    (List.sort compare keys)

let head_key head =
  match Term.deref head with
  | Term.Atom name -> (name, 0)
  | Term.Struct (name, args) -> (name, Array.length args)
  | t -> error "bad clause head %a" Term.pp t

let compile_clauses program clauses =
  let by_pred = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (head, body) ->
      let key = head_key head in
      (match Hashtbl.find_opt by_pred key with
      | Some cell -> cell := (head, body) :: !cell
      | None ->
          Hashtbl.add by_pred key (ref [ (head, body) ]);
          order := key :: !order))
    clauses;
  List.iter
    (fun key ->
      let cell = Hashtbl.find by_pred key in
      let code = Compile.predicate (List.rev !cell) in
      install program (fst key) (snd key) code)
    (List.rev !order)

let generator_name name = name ^ "$gen"

let rename_head name head =
  match Term.deref head with
  | Term.Atom _ -> Term.Atom (generator_name name)
  | Term.Struct (_, args) -> Term.Struct (generator_name name, args)
  | t -> error "bad clause head %a" Term.pp t

let of_database db =
  let program = empty_program () in
  List.iter
    (fun pred ->
      let name = Xsb_db.Pred.name pred and arity = Xsb_db.Pred.arity pred in
      let clauses =
        List.map (fun c -> (c.Xsb_db.Pred.head, c.Xsb_db.Pred.body)) (Xsb_db.Pred.clauses pred)
      in
      if Xsb_db.Pred.tabled pred then begin
        (* generator code under p$gen; calls to p go through the table *)
        let clauses = List.map (fun (h, b) -> (rename_head name h, b)) clauses in
        match Compile.predicate clauses with
        | code ->
            install program (generator_name name) arity code;
            Hashtbl.replace program.tabled (name, arity) ()
        | exception Compile.Not_compilable _ -> ()
      end
      else
        match Compile.predicate clauses with
        | code -> install program name arity code
        | exception Compile.Not_compilable _ -> ())
    (Xsb_db.Database.preds db);
  program

(* ------------------------------------------------------------------ *)

type cont = { c_proc : proc; c_pc : int }

type frame = {
  f_prev : frame option;
  f_cp : cont;
  f_perms : cell array;
  mutable f_clevel : choice option;
}

and choice = {
  ch_prev : choice option;
  ch_args : cell array;
  ch_e : frame option;
  ch_cp : cont;
  mutable ch_next : cont;
  ch_tr : int;
  ch_h : int;
  ch_b0 : choice option;
}

type machine = {
  program : program;
  mutable heap : cell array;
  mutable h : int;
  x : cell array;
  mutable e : frame option;
  mutable b : choice option;
  mutable b0 : choice option;
  mutable cp : cont;
  mutable proc : proc;
  mutable pc : int;
  mutable s : int;
  mutable write_mode : bool;
  mutable trail : int array;
  mutable tr : int;
  mutable hb : int;
  mutable num_args : int;
  mutable steps : int;
  mutable on_sol : (machine -> unit) option;
}

exception Backtrack
exception Finished
exception Halted

let halt_proc = make_proc [| Instr.Fail_instr |]

let create program =
  {
    program;
    heap = Array.make 4096 (Con "$free");
    h = 0;
    x = Array.make 1024 (Con "$free");
    e = None;
    b = None;
    b0 = None;
    cp = { c_proc = halt_proc; c_pc = 0 };
    proc = halt_proc;
    pc = 0;
    s = 0;
    write_mode = false;
    trail = Array.make 4096 0;
    tr = 0;
    hb = 0;
    num_args = 0;
    steps = 0;
    on_sol = None;
  }

let instructions_executed m = m.steps

let grow_heap m needed =
  if m.h + needed > Array.length m.heap then begin
    let heap = Array.make (max (2 * Array.length m.heap) (m.h + needed + 1024)) (Con "$free") in
    Array.blit m.heap 0 heap 0 m.h;
    m.heap <- heap
  end

let push_heap m cell =
  grow_heap m 1;
  m.heap.(m.h) <- cell;
  m.h <- m.h + 1

let trail_push m addr =
  if m.tr = Array.length m.trail then begin
    let trail = Array.make (2 * Array.length m.trail) 0 in
    Array.blit m.trail 0 trail 0 m.tr;
    m.trail <- trail
  end;
  m.trail.(m.tr) <- addr;
  m.tr <- m.tr + 1

let rec deref m cell =
  match cell with
  | Ref a -> ( match m.heap.(a) with Ref a' when a' = a -> cell | c -> deref m c)
  | c -> c

let bind m addr cell =
  m.heap.(addr) <- cell;
  if addr < m.hb then trail_push m addr

(* full unification over heap cells *)
let rec unify m u v =
  let u = deref m u and v = deref m v in
  match (u, v) with
  | Ref a, Ref b when a = b -> true
  | Ref a, other | other, Ref a ->
      (match (u, v) with
      | Ref a', Ref b' ->
          (* bind the younger to the older to keep the trail small *)
          if a' < b' then bind m b' (Ref a') else bind m a' (Ref b')
      | _ -> bind m a other);
      true
  | Con a, Con b -> String.equal a b
  | IntC a, IntC b -> a = b
  | FloatC a, FloatC b -> a = b
  | Lis a, Lis b -> unify m m.heap.(a) m.heap.(b) && unify m m.heap.(a + 1) m.heap.(b + 1)
  | Str a, Str b -> (
      match (m.heap.(a), m.heap.(b)) with
      | Fun (f, n), Fun (g, k) ->
          String.equal f g && n = k
          &&
          let rec go i = i > n || (unify m m.heap.(a + i) m.heap.(b + i) && go (i + 1)) in
          go 1
      | _ -> false)
  | _ -> false

let undo_trail m mark =
  while m.tr > mark do
    m.tr <- m.tr - 1;
    let a = m.trail.(m.tr) in
    m.heap.(a) <- Ref a
  done

let backtrack m =
  match m.b with
  | None -> raise Finished
  | Some ch ->
      Array.blit ch.ch_args 0 m.x 0 (Array.length ch.ch_args);
      m.e <- ch.ch_e;
      m.cp <- ch.ch_cp;
      undo_trail m ch.ch_tr;
      m.h <- ch.ch_h;
      m.hb <- ch.ch_h;
      m.b0 <- ch.ch_b0;
      m.proc <- ch.ch_next.c_proc;
      m.pc <- ch.ch_next.c_pc

let frame_of m = match m.e with Some f -> f | None -> error "no environment"

let reg_get m = function
  | Instr.X i -> m.x.(i)
  | Instr.Y i -> (frame_of m).f_perms.(i - 1)

let reg_set m r cell =
  match r with
  | Instr.X i -> m.x.(i) <- cell
  | Instr.Y i -> (frame_of m).f_perms.(i - 1) <- cell

let new_heap_var m =
  let a = m.h in
  push_heap m (Ref a);
  Ref a

(* decode a heap cell into a term; [vars] may be shared across cells so
   that variable identity is preserved when decoding several arguments *)
let decode ?vars m cell =
  let vars = match vars with Some v -> v | None -> Hashtbl.create 8 in
  let rec go cell =
    match deref m cell with
    | Ref a -> (
        match Hashtbl.find_opt vars a with
        | Some v -> v
        | None ->
            let v = Term.fresh_var () in
            Hashtbl.add vars a v;
            v)
    | Con c -> Term.Atom c
    | IntC i -> Term.Int i
    | FloatC f -> Term.Float f
    | Lis a -> Term.cons (go m.heap.(a)) (go m.heap.(a + 1))
    | Str a -> (
        match m.heap.(a) with
        | Fun (f, n) -> Term.Struct (f, Array.init n (fun i -> go m.heap.(a + i + 1)))
        | _ -> error "corrupt heap")
    | Fun _ -> error "corrupt heap"
  in
  go cell

(* arithmetic over cells *)
let rec eval_cell m cell =
  match deref m cell with
  | IntC i -> Arith.I i
  | FloatC f -> Arith.F f
  | Con c -> Arith.eval (Term.Atom c)
  | Str a -> (
      match m.heap.(a) with
      | Fun (f, n) ->
          let args = Array.init n (fun i -> m.heap.(a + i + 1)) in
          eval_compound m f args
      | _ -> error "corrupt heap")
  | Ref _ -> raise (Arith.Arith_error "unbound variable in arithmetic")
  | Lis _ -> raise (Arith.Arith_error "list in arithmetic")
  | Fun _ -> error "corrupt heap"

and eval_compound m f args =
  (* reuse the term-level evaluator by converting the (small) expression *)
  let rec to_term cell =
    match deref m cell with
    | IntC i -> Term.Int i
    | FloatC x -> Term.Float x
    | Con c -> Term.Atom c
    | Str a -> (
        match m.heap.(a) with
        | Fun (g, n) -> Term.Struct (g, Array.init n (fun i -> to_term m.heap.(a + i + 1)))
        | _ -> error "corrupt heap")
    | Ref _ -> raise (Arith.Arith_error "unbound variable in arithmetic")
    | _ -> raise (Arith.Arith_error "bad arithmetic expression")
  in
  Arith.eval (Term.Struct (f, Array.map to_term args))

(* structural comparison for ==/2 *)
let rec cells_equal m u v =
  let u = deref m u and v = deref m v in
  match (u, v) with
  | Ref a, Ref b -> a = b
  | Con a, Con b -> String.equal a b
  | IntC a, IntC b -> a = b
  | FloatC a, FloatC b -> a = b
  | Lis a, Lis b -> cells_equal m m.heap.(a) m.heap.(b) && cells_equal m m.heap.(a + 1) m.heap.(b + 1)
  | Str a, Str b -> (
      match (m.heap.(a), m.heap.(b)) with
      | Fun (f, n), Fun (g, k) ->
          String.equal f g && n = k
          &&
          let rec go i = i > n || (cells_equal m m.heap.(a + i) m.heap.(b + i) && go (i + 1)) in
          go 1
      | _ -> false)
  | _ -> false

let run_builtin m name arity =
  match (name, arity) with
  | "$solution$", 0 -> (
      match m.on_sol with
      | Some hook ->
          hook m;
          raise Backtrack
      | None -> error "no solution hook installed")
  | "=", 2 -> if not (unify m m.x.(1) m.x.(2)) then raise Backtrack
  | "==", 2 -> if not (cells_equal m m.x.(1) m.x.(2)) then raise Backtrack
  | "\\==", 2 -> if cells_equal m m.x.(1) m.x.(2) then raise Backtrack
  | "is", 2 ->
      let v = eval_cell m m.x.(2) in
      let cell = match v with Arith.I i -> IntC i | Arith.F f -> FloatC f in
      if not (unify m m.x.(1) cell) then raise Backtrack
  | ("<" | ">" | "=<" | ">=" | "=:=" | "=\\="), 2 ->
      let a = eval_cell m m.x.(1) and b = eval_cell m m.x.(2) in
      let c = Arith.compare_numbers a b in
      let ok =
        match name with
        | "<" -> c < 0
        | ">" -> c > 0
        | "=<" -> c <= 0
        | ">=" -> c >= 0
        | "=:=" -> c = 0
        | "=\\=" -> c <> 0
        | _ -> assert false
      in
      if not ok then raise Backtrack
  | "write", 1 ->
      Format.printf "%a" Term.pp (decode m m.x.(1))
  | "nl", 0 -> Format.print_newline ()
  | _ -> error "unknown WAM builtin %s/%d" name arity

let lookup_proc m key = Hashtbl.find_opt m.program.preds key

(* forward reference to [run], needed by the tabling wrapper to evaluate
   generators in a nested machine *)
let run_ref : (machine -> Term.t -> on_solution:(Term.t list -> bool) -> int) ref =
  ref (fun _ _ ~on_solution:_ -> 0)

(* ---- linear tabling ---- *)

let generation_pass m entry =
  let program = m.program in
  program.depth <- program.depth + 1;
  Fun.protect
    ~finally:(fun () -> program.depth <- program.depth - 1)
    (fun () ->
      let pattern = entry.te_pattern in
      let goal =
        match Term.deref pattern with
        | Term.Atom name -> Term.Atom (generator_name name)
        | Term.Struct (name, args) -> Term.Struct (generator_name name, args)
        | t -> error "bad table pattern %a" Term.pp t
      in
      let vars = Term.vars pattern in
      let nested = create program in
      let trail = Trail.create () in
      ignore
        (!run_ref nested goal ~on_solution:(fun values ->
             let mark = Trail.mark trail in
             List.iter2
               (fun v value -> ignore (Unify.unify trail (Term.Var v) value))
               vars values;
             let instance = Canon.of_term pattern in
             Trail.undo_to trail mark;
             if not (Canon.Tbl.mem entry.te_set instance) then begin
               Canon.Tbl.add entry.te_set instance ();
               Vec.push entry.te_order instance;
               entry.te_proc <- None;
               program.changed <- true
             end;
             true)))

let answers_proc entry =
  match entry.te_proc with
  | Some proc -> proc
  | None ->
      let facts =
        List.map (fun c -> (Term.deref (Canon.to_term c), Term.Atom "true")) (Vec.to_list entry.te_order)
      in
      let proc = make_proc (Compile.predicate facts) in
      entry.te_proc <- Some proc;
      proc

(* resolve a tabled call: run generators to fixpoint if needed and
   return the compiled answer clauses to resolve against *)
let table_proc m p n =
  let program = m.program in
  let vars = Hashtbl.create 8 in
  let call = Term.struct_ p (Array.init n (fun i -> decode ~vars m m.x.(i + 1))) in
  let key = Canon.of_term call in
  let entry =
    match Canon.Tbl.find_opt program.tables key with
    | Some entry -> entry
    | None ->
        let entry =
          {
            te_pattern = Canon.to_term key;
            te_order = Vec.create ();
            te_set = Canon.Tbl.create 16;
            te_complete = false;
            te_proc = None;
          }
        in
        Canon.Tbl.replace program.tables key entry;
        program.active <- entry :: program.active;
        generation_pass m entry;
        if program.depth = 0 then begin
          (* outermost generator: iterate every active table to the
             global fixpoint, then complete them all *)
          let continue_ = ref true in
          while !continue_ do
            program.changed <- false;
            List.iter (fun e -> generation_pass m e) program.active;
            continue_ := program.changed
          done;
          List.iter (fun e -> e.te_complete <- true) program.active;
          program.active <- []
        end;
        entry
  in
  answers_proc entry

(* the emulator loop *)
let exec m =
  let continue_at pc = m.pc <- pc in
  try
    while true do
      let instr = m.proc.p_code.(m.pc) in
      m.steps <- m.steps + 1;
      let pc = m.pc in
      m.pc <- pc + 1;
      try
        match instr with
        | Instr.Label _ -> ()
        | Instr.Get_variable (r, a) -> reg_set m r m.x.(a)
        | Instr.Get_value (r, a) -> if not (unify m (reg_get m r) m.x.(a)) then raise Backtrack
        | Instr.Get_constant (c, a) -> (
            match deref m m.x.(a) with
            | Ref addr -> bind m addr (Con c)
            | Con c' when String.equal c c' -> ()
            | _ -> raise Backtrack)
        | Instr.Get_integer (i, a) -> (
            match deref m m.x.(a) with
            | Ref addr -> bind m addr (IntC i)
            | IntC i' when i = i' -> ()
            | _ -> raise Backtrack)
        | Instr.Get_float (f, a) -> (
            match deref m m.x.(a) with
            | Ref addr -> bind m addr (FloatC f)
            | FloatC f' when f = f' -> ()
            | _ -> raise Backtrack)
        | Instr.Get_nil a -> (
            match deref m m.x.(a) with
            | Ref addr -> bind m addr (Con "[]")
            | Con "[]" -> ()
            | _ -> raise Backtrack)
        | Instr.Get_structure (f, n, a) -> (
            match deref m m.x.(a) with
            | Ref addr ->
                grow_heap m (n + 1);
                let str = m.h in
                push_heap m (Fun (f, n));
                bind m addr (Str str);
                m.write_mode <- true
            | Str saddr -> (
                match m.heap.(saddr) with
                | Fun (f', n') when String.equal f f' && n = n' ->
                    m.s <- saddr + 1;
                    m.write_mode <- false
                | _ -> raise Backtrack)
            | _ -> raise Backtrack)
        | Instr.Get_list a -> (
            match deref m m.x.(a) with
            | Ref addr ->
                (* the two following unify instructions push head and
                   tail at H and H+1 *)
                bind m addr (Lis m.h);
                m.write_mode <- true
            | Lis laddr ->
                m.s <- laddr;
                m.write_mode <- false
            | _ -> raise Backtrack)
        | Instr.Unify_variable r ->
            if m.write_mode then begin
              let v = new_heap_var m in
              reg_set m r v
            end
            else begin
              reg_set m r m.heap.(m.s);
              m.s <- m.s + 1
            end
        | Instr.Unify_value r ->
            if m.write_mode then push_heap m (reg_get m r)
            else begin
              let ok = unify m (reg_get m r) m.heap.(m.s) in
              m.s <- m.s + 1;
              if not ok then raise Backtrack
            end
        | Instr.Unify_constant c ->
            if m.write_mode then push_heap m (Con c)
            else begin
              let ok = unify m (Con c) m.heap.(m.s) in
              m.s <- m.s + 1;
              if not ok then raise Backtrack
            end
        | Instr.Unify_integer i ->
            if m.write_mode then push_heap m (IntC i)
            else begin
              let ok = unify m (IntC i) m.heap.(m.s) in
              m.s <- m.s + 1;
              if not ok then raise Backtrack
            end
        | Instr.Unify_float f ->
            if m.write_mode then push_heap m (FloatC f)
            else begin
              let ok = unify m (FloatC f) m.heap.(m.s) in
              m.s <- m.s + 1;
              if not ok then raise Backtrack
            end
        | Instr.Unify_nil ->
            if m.write_mode then push_heap m (Con "[]")
            else begin
              let ok = unify m (Con "[]") m.heap.(m.s) in
              m.s <- m.s + 1;
              if not ok then raise Backtrack
            end
        | Instr.Unify_void n ->
            if m.write_mode then
              for _ = 1 to n do
                ignore (new_heap_var m)
              done
            else m.s <- m.s + n
        | Instr.Put_variable (r, a) ->
            let v = new_heap_var m in
            reg_set m r v;
            m.x.(a) <- v
        | Instr.Put_value (r, a) -> m.x.(a) <- reg_get m r
        | Instr.Put_constant (c, a) -> m.x.(a) <- Con c
        | Instr.Put_integer (i, a) -> m.x.(a) <- IntC i
        | Instr.Put_float (f, a) -> m.x.(a) <- FloatC f
        | Instr.Put_nil a -> m.x.(a) <- Con "[]"
        | Instr.Put_structure (f, n, a) ->
            grow_heap m (n + 1);
            push_heap m (Fun (f, n));
            m.x.(a) <- Str (m.h - 1);
            m.write_mode <- true
        | Instr.Put_list a ->
            m.x.(a) <- Lis m.h;
            m.write_mode <- true
        | Instr.Set_variable r -> reg_set m r (new_heap_var m)
        | Instr.Set_value r -> push_heap m (reg_get m r)
        | Instr.Set_constant c -> push_heap m (Con c)
        | Instr.Set_integer i -> push_heap m (IntC i)
        | Instr.Set_float f -> push_heap m (FloatC f)
        | Instr.Set_void n ->
            for _ = 1 to n do
              ignore (new_heap_var m)
            done
        | Instr.Allocate n ->
            m.e <-
              Some
                {
                  f_prev = m.e;
                  f_cp = m.cp;
                  f_perms = Array.make n (Con "$unset");
                  f_clevel = None;
                }
        | Instr.Deallocate ->
            let f = frame_of m in
            m.cp <- f.f_cp;
            m.e <- f.f_prev
        | Instr.Call (p, n) when Hashtbl.mem m.program.tabled (p, n) ->
            let proc = table_proc m p n in
            m.cp <- { c_proc = m.proc; c_pc = m.pc };
            m.b0 <- m.b;
            m.num_args <- n;
            m.proc <- proc;
            m.pc <- 0
        | Instr.Execute (p, n) when Hashtbl.mem m.program.tabled (p, n) ->
            let proc = table_proc m p n in
            m.b0 <- m.b;
            m.num_args <- n;
            m.proc <- proc;
            m.pc <- 0
        | Instr.Call (p, n) -> (
            match lookup_proc m (p, n) with
            | Some proc ->
                m.cp <- { c_proc = m.proc; c_pc = m.pc };
                m.b0 <- m.b;
                m.num_args <- n;
                m.proc <- proc;
                m.pc <- 0
            | None -> raise Backtrack)
        | Instr.Execute (p, n) -> (
            match lookup_proc m (p, n) with
            | Some proc ->
                m.b0 <- m.b;
                m.num_args <- n;
                m.proc <- proc;
                m.pc <- 0
            | None -> raise Backtrack)
        | Instr.Proceed ->
            m.proc <- m.cp.c_proc;
            m.pc <- m.cp.c_pc
        | Instr.Builtin (name, arity) -> run_builtin m name arity
        | Instr.Fail_instr -> raise Backtrack
        | Instr.Try_me_else _ | Instr.Try _ ->
            let args = Array.sub m.x 0 (m.num_args + 1) in
            let next =
              match instr with
              | Instr.Try_me_else l' -> { c_proc = m.proc; c_pc = l' }
              | _ -> { c_proc = m.proc; c_pc = m.pc }
            in
            m.b <-
              Some
                {
                  ch_prev = m.b;
                  ch_args = args;
                  ch_e = m.e;
                  ch_cp = m.cp;
                  ch_next = next;
                  ch_tr = m.tr;
                  ch_h = m.h;
                  ch_b0 = m.b0;
                };
            m.hb <- m.h;
            (match instr with Instr.Try l' -> continue_at l' | _ -> ())
        | Instr.Retry_me_else l -> (
            match m.b with
            | Some ch -> ch.ch_next <- { c_proc = m.proc; c_pc = l }
            | None -> error "retry without choice point")
        | Instr.Retry l -> (
            match m.b with
            | Some ch ->
                ch.ch_next <- { c_proc = m.proc; c_pc = m.pc };
                continue_at l
            | None -> error "retry without choice point")
        | Instr.Trust_me -> (
            match m.b with
            | Some ch ->
                m.b <- ch.ch_prev;
                m.hb <- (match m.b with Some b -> b.ch_h | None -> 0)
            | None -> error "trust without choice point")
        | Instr.Trust l -> (
            match m.b with
            | Some ch ->
                m.b <- ch.ch_prev;
                m.hb <- (match m.b with Some b -> b.ch_h | None -> 0);
                continue_at l
            | None -> error "trust without choice point")
        | Instr.Jump l -> continue_at l
        | Instr.Switch_on_term (v, c, li, st) -> (
            match deref m m.x.(1) with
            | Ref _ -> continue_at v
            | Con _ | IntC _ | FloatC _ -> continue_at c
            | Lis _ -> continue_at li
            | Str _ -> continue_at st
            | Fun _ -> error "corrupt heap")
        | Instr.Switch_on_constant (_, default) -> (
            let table = Hashtbl.find m.proc.p_ctab pc in
            let key =
              match deref m m.x.(1) with
              | Con c -> Some (Instr.KCon c)
              | IntC i -> Some (Instr.KInt i)
              | FloatC f -> Some (Instr.KFloat f)
              | _ -> None
            in
            match Option.bind key (Hashtbl.find_opt table) with
            | Some l -> continue_at l
            | None -> continue_at default)
        | Instr.Switch_on_structure (_, default) -> (
            let table = Hashtbl.find m.proc.p_stab pc in
            let key =
              match deref m m.x.(1) with
              | Str a -> ( match m.heap.(a) with Fun (f, n) -> Some (f, n) | _ -> None)
              | _ -> None
            in
            match Option.bind key (Hashtbl.find_opt table) with
            | Some l -> continue_at l
            | None -> continue_at default)
        | Instr.Neck_cut ->
            m.b <- m.b0;
            m.hb <- (match m.b with Some b -> b.ch_h | None -> 0)
        | Instr.Get_level _ -> (frame_of m).f_clevel <- m.b0
        | Instr.Cut _ ->
            m.b <- (frame_of m).f_clevel;
            m.hb <- (match m.b with Some b -> b.ch_h | None -> 0)
      with Backtrack -> backtrack m
    done;
    assert false
  with
  | Finished -> ()
  | Halted -> ()

(* ------------------------------------------------------------------ *)
(* Queries *)

let query_counter = ref 0

let run m goal ~on_solution =
  incr query_counter;
  let vars = Term.vars goal in
  let k = List.length vars in
  let qname = Printf.sprintf "$q%d" !query_counter in
  let head = Term.struct_ qname (Array.of_list (List.map (fun v -> Term.Var v) vars)) in
  let head = if k = 0 then Term.Atom qname else head in
  (match Compile.predicate [ (head, goal) ] with
  | code -> install m.program qname k code
  | exception Compile.Not_compilable msg -> error "query not compilable: %s" msg);
  (* reset the machine *)
  m.h <- 0;
  m.tr <- 0;
  m.hb <- 0;
  m.e <- None;
  m.b <- None;
  m.b0 <- None;
  m.s <- 0;
  let entry =
    Array.append
      (Array.init k (fun i -> Instr.Put_variable (Instr.X (k + 2 + i), i + 1)))
      [| Instr.Call (qname, k); Instr.Builtin ("$solution$", 0); Instr.Fail_instr |]
  in
  let entry_proc = make_proc entry in
  m.proc <- entry_proc;
  m.pc <- 0;
  m.cp <- { c_proc = entry_proc; c_pc = Array.length entry - 2 };
  (* the query variables occupy the first k heap cells *)
  let count = ref 0 in
  let hook machine =
    incr count;
    let values = List.init k (fun i -> decode machine (Ref i)) in
    if not (on_solution values) then raise Halted
  in
  m.on_sol <- Some hook;
  Fun.protect
    ~finally:(fun () ->
      m.on_sol <- None;
      Hashtbl.remove m.program.preds (qname, k))
    (fun () -> exec m);
  !count

let () = run_ref := run

let solutions m goal =
  let acc = ref [] in
  ignore
    (run m goal ~on_solution:(fun values ->
         acc := values :: !acc;
         true));
  List.rev !acc

let first_solution m goal =
  let result = ref None in
  ignore
    (run m goal ~on_solution:(fun values ->
         result := Some values;
         false));
  !result

let count_solutions m goal = run m goal ~on_solution:(fun _ -> true)
