open Xsb_term

exception Not_datalog of string
exception Unstratifiable of (string * int) list

type literal = Pos of Term.t | Neg of Term.t

type rule = { head : Term.t; body : literal list }

type t = { rules : rule list; facts : Term.t list; idb : (string * int) list }

let pred_of atom =
  match Term.deref atom with
  | Term.Atom name -> (name, 0)
  | Term.Struct (name, args) -> (name, Array.length args)
  | t -> raise (Not_datalog (Fmt.str "bad atom: %a" Term.pp t))

let rec literals_of body =
  match Term.deref body with
  | Term.Atom "true" -> []
  | Term.Struct (",", [| l; r |]) -> literals_of l @ literals_of r
  | Term.Struct (("\\+" | "not" | "tnot" | "e_tnot"), [| g |]) -> [ Neg (Term.deref g) ]
  | Term.Struct ((";" | "->"), _) ->
      raise (Not_datalog "disjunction and if-then-else are not datalog")
  | atom -> [ Pos atom ]

let of_clauses clauses =
  let rules = ref [] and facts = ref [] and idb = ref [] in
  List.iter
    (fun clause ->
      match Term.deref clause with
      | Term.Struct (":-", [| head; body |]) ->
          let rule = { head; body = literals_of body } in
          if rule.body = [] then facts := head :: !facts
          else begin
            rules := rule :: !rules;
            let key = pred_of head in
            if not (List.mem key !idb) then idb := key :: !idb
          end
      | fact -> facts := fact :: !facts)
    clauses;
  { rules = List.rev !rules; facts = List.rev !facts; idb = List.rev !idb }

let of_database db =
  let clauses =
    List.concat_map
      (fun pred ->
        List.map
          (fun c ->
            match Term.deref c.Xsb_db.Pred.body with
            | Term.Atom "true" -> c.Xsb_db.Pred.head
            | body -> Term.Struct (":-", [| c.Xsb_db.Pred.head; body |]))
          (Xsb_db.Pred.clauses pred))
      (Xsb_db.Database.preds db)
  in
  of_clauses clauses

(* Stratification: SCC condensation of the dependency graph; a negative
   edge inside an SCC makes the program unstratifiable. *)
let strata t =
  let preds = Hashtbl.create 16 in
  let note key = if not (Hashtbl.mem preds key) then Hashtbl.add preds key () in
  List.iter (fun r ->
      note (pred_of r.head);
      List.iter (function Pos a | Neg a -> note (pred_of a)) r.body)
    t.rules;
  List.iter (fun f -> note (pred_of f)) t.facts;
  let nodes = Hashtbl.fold (fun k () acc -> k :: acc) preds [] in
  let edges = Hashtbl.create 32 in
  (* (from, to, negative) *)
  List.iter
    (fun r ->
      let h = pred_of r.head in
      List.iter
        (fun lit ->
          let key, negative = match lit with Pos a -> (pred_of a, false) | Neg a -> (pred_of a, true) in
          let existing = Hashtbl.find_opt edges (h, key) in
          Hashtbl.replace edges (h, key) (negative || Option.value existing ~default:false))
        r.body)
    t.rules;
  let succs v =
    Hashtbl.fold (fun (f, to_) _neg acc -> if f = v then to_ :: acc else acc) edges []
  in
  (* Tarjan SCC *)
  let index = Hashtbl.create 16 and lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 in
  let sccs = ref [] in
  let rec connect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          connect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then connect v) nodes;
  (* check no negative edge within an SCC *)
  let scc_of = Hashtbl.create 16 in
  List.iteri (fun i scc -> List.iter (fun v -> Hashtbl.replace scc_of v i) scc) !sccs;
  Hashtbl.iter
    (fun (f, to_) negative ->
      if negative && Hashtbl.find_opt scc_of f = Hashtbl.find_opt scc_of to_ then
        raise (Unstratifiable [ f; to_ ]))
    edges;
  (* Tarjan emits callee SCCs before caller SCCs; since we prepend, the
     accumulated list has callers first — reverse for evaluation order *)
  List.rev !sccs

let pp_literal ppf = function
  | Pos a -> Term.pp ppf a
  | Neg a -> Fmt.pf ppf "\\+ %a" Term.pp a

let pp_rule ppf r =
  Fmt.pf ppf "%a :- %a." Term.pp r.head Fmt.(list ~sep:(any ", ") pp_literal) r.body
