open Xsb_term

exception Not_applicable of string

type rewritten = { program : Program.t; query_pred : string * int; goal : Term.t }

let fail fmt = Fmt.kstr (fun s -> raise (Not_applicable s)) fmt

let args_of atom = match Term.deref atom with Term.Struct (_, args) -> args | _ -> [||]

let adorned_name (name, _arity) ad = Printf.sprintf "%s__%s" name ad
let magic_name (name, _arity) ad = Printf.sprintf "m__%s__%s" name ad

let adornment_of goal =
  let args = args_of goal in
  String.init (Array.length args) (fun i -> if Term.is_ground args.(i) then 'b' else 'f')

let var_ids t = List.map (fun v -> v.Term.vid) (Term.vars t)

let adornment_wrt bound atom =
  let args = args_of atom in
  String.init (Array.length args) (fun i ->
      if List.for_all (fun v -> List.mem v bound) (var_ids args.(i)) then 'b' else 'f')

let bound_args ad args =
  let acc = ref [] in
  Array.iteri (fun i a -> if ad.[i] = 'b' then acc := a :: !acc) args;
  List.rev !acc

let conj_of_body body =
  match body with
  | [] -> Term.Atom "true"
  | Program.Pos a :: rest ->
      List.fold_left
        (fun acc lit ->
          match lit with
          | Program.Pos b -> Term.Struct (",", [| acc; b |])
          | Program.Neg b -> Term.Struct (",", [| acc; Term.Struct ("\\+", [| b |]) |]))
        a rest
  | Program.Neg a :: rest ->
      List.fold_left
        (fun acc lit ->
          match lit with
          | Program.Pos b -> Term.Struct (",", [| acc; b |])
          | Program.Neg b -> Term.Struct (",", [| acc; Term.Struct ("\\+", [| b |]) |]))
        (Term.Struct ("\\+", [| a |]))
        rest

let clause_of_rule r =
  match r.Program.body with
  | [] -> r.Program.head
  | body -> Term.Struct (":-", [| r.Program.head; conj_of_body body |])

let program_of_rules rules facts =
  Program.of_clauses (List.map clause_of_rule rules @ facts)

let rename_rule rule =
  let wrapped =
    Term.Struct
      ( "$rule",
        Array.of_list
          (rule.Program.head
          :: List.map (function Program.Pos a | Program.Neg a -> a) rule.Program.body) )
  in
  match Term.copy wrapped with
  | Term.Struct ("$rule", args) ->
      let head = args.(0) in
      let atoms = Array.to_list (Array.sub args 1 (Array.length args - 1)) in
      let body =
        List.map2
          (fun lit atom ->
            match lit with Program.Pos _ -> Program.Pos atom | Program.Neg _ -> Program.Neg atom)
          rule.Program.body atoms
      in
      { Program.head; body }
  | _ -> assert false

(* Predicates defined by facts as well as rules: move the facts to a
   fresh base relation so that the magic restriction still reaches
   them. *)
let separate_mixed_facts program =
  let idb = program.Program.idb in
  let moved = Hashtbl.create 4 in
  let facts =
    List.map
      (fun fact ->
        let key = Program.pred_of fact in
        if List.mem key idb then begin
          Hashtbl.replace moved key ();
          match Term.deref fact with
          | Term.Struct (name, args) -> Term.Struct (name ^ "$base", args)
          | Term.Atom name -> Term.Atom (name ^ "$base")
          | t -> t
        end
        else fact)
      program.Program.facts
  in
  let bridge_rules =
    Hashtbl.fold
      (fun (name, arity) () acc ->
        let args = Array.init arity (fun _ -> Term.fresh_var ()) in
        {
          Program.head = Term.struct_ name args;
          body = [ Program.Pos (Term.struct_ (name ^ "$base") (Array.copy args)) ];
        }
        :: acc)
      moved []
  in
  { program with Program.facts; rules = bridge_rules @ program.Program.rules }

(* Factoring [10]: project the bound arguments out of the adorned query
   predicate when (a) its magic predicate has only the query seed and
   (b) every recursive call passes the bound arguments through
   unchanged. *)
let factorize rewritten ~ad ~seed =
  let qname, _ = rewritten.query_pred in
  let seed_key = Program.pred_of seed in
  let seed_args = Array.of_list (Array.to_list (args_of seed)) in
  let goal_args = args_of rewritten.goal in
  let bound_positions =
    List.filter (fun i -> ad.[i] = 'b') (List.init (String.length ad) Fun.id)
  in
  if bound_positions = [] then fail "nothing to factor";
  List.iter
    (fun r ->
      if Program.pred_of r.Program.head = seed_key then fail "magic predicate is recursive")
    rewritten.program.Program.rules;
  let is_q atom = Program.pred_of atom = rewritten.query_pred in
  let q_rules, other_rules =
    List.partition (fun r -> is_q r.Program.head) rewritten.program.Program.rules
  in
  (* bound arguments must be passed through every recursive call *)
  List.iter
    (fun r ->
      let head_args = args_of r.Program.head in
      List.iter
        (function
          | Program.Pos atom when is_q atom ->
              List.iter
                (fun i ->
                  let same =
                    match (Term.deref head_args.(i), Term.deref (args_of atom).(i)) with
                    | Term.Var v, Term.Var w -> v == w
                    | _ -> false
                  in
                  if not same then fail "bound argument not passed through")
                bound_positions
          | _ -> ())
        r.Program.body)
    q_rules;
  (* no other rule may call the query predicate *)
  List.iter
    (fun r ->
      List.iter
        (function
          | Program.Pos atom when is_q atom -> fail "query predicate used elsewhere"
          | _ -> ())
        r.Program.body)
    other_rules;
  let fname = "f__" ^ qname in
  let drop_bound args =
    let keep = ref [] in
    Array.iteri (fun i a -> if ad.[i] <> 'b' then keep := a :: !keep) args;
    Array.of_list (List.rev !keep)
  in
  let trail = Trail.create () in
  let transform_rule r =
    let m = Trail.mark trail in
    let head_args = args_of r.Program.head in
    (* substitute the seed constants for the head's bound variables *)
    List.iteri
      (fun si i ->
        match Term.deref head_args.(i) with
        | Term.Var v -> Term.bind trail v seed_args.(si)
        | t ->
            if Term.compare t seed_args.(si) <> 0 then begin
              Trail.undo_to trail m;
              fail "head constant differs from the seed"
            end)
      bound_positions;
    let rewrite_atom atom =
      if is_q atom then Term.struct_ fname (drop_bound (args_of atom)) else atom
    in
    let body_atoms =
      List.filter_map
        (function
          | Program.Pos atom ->
              if Program.pred_of atom = seed_key then None else Some (rewrite_atom atom)
          | Program.Neg _ -> fail "unexpected negation")
        r.Program.body
    in
    let wrapped =
      Term.copy
        (Term.Struct ("$rule", Array.of_list (rewrite_atom r.Program.head :: body_atoms)))
    in
    Trail.undo_to trail m;
    match wrapped with
    | Term.Struct ("$rule", parts) ->
        {
          Program.head = parts.(0);
          body =
            List.map
              (fun a -> Program.Pos a)
              (Array.to_list (Array.sub parts 1 (Array.length parts - 1)));
        }
    | _ -> assert false
  in
  let q_rules' = List.map transform_rule q_rules in
  let facts =
    List.filter (fun f -> Program.pred_of f <> seed_key) rewritten.program.Program.facts
  in
  let goal' = Term.struct_ fname (drop_bound goal_args) in
  {
    program = program_of_rules (q_rules' @ other_rules) facts;
    query_pred = Program.pred_of goal';
    goal = goal';
  }

let rewrite ?(factor = false) program goal =
  let program = separate_mixed_facts program in
  let idb = program.Program.idb in
  let goal_key = Program.pred_of goal in
  if not (List.mem goal_key idb) then
    fail "query predicate %s/%d has no rules" (fst goal_key) (snd goal_key);
  List.iter
    (fun r ->
      List.iter
        (function
          | Program.Neg _ -> fail "magic rewriting requires a positive program"
          | Program.Pos _ -> ())
        r.Program.body)
    program.Program.rules;
  let goal_ad = adornment_of goal in
  let produced = Hashtbl.create 16 in
  let out_rules = ref [] in
  let queue = Queue.create () in
  Queue.add (goal_key, goal_ad) queue;
  Hashtbl.replace produced (goal_key, goal_ad) ();
  while not (Queue.is_empty queue) do
    let key, ad = Queue.pop queue in
    let defining =
      List.filter (fun r -> Program.pred_of r.Program.head = key) program.Program.rules
    in
    List.iter
      (fun rule ->
        let rule = rename_rule rule in
        let head_args = args_of rule.Program.head in
        let magic_head = Term.app (magic_name key ad) (bound_args ad head_args) in
        let bound = ref [] in
        Array.iteri (fun i a -> if ad.[i] = 'b' then bound := var_ids a @ !bound) head_args;
        let prefix = ref [ Program.Pos magic_head ] in
        let new_body =
          List.map
            (fun lit ->
              match lit with
              | Program.Neg _ -> assert false
              | Program.Pos atom ->
                  let akey = Program.pred_of atom in
                  let lit' =
                    if List.mem akey idb then begin
                      let aad = adornment_wrt !bound atom in
                      let m_atom =
                        Term.app (magic_name akey aad) (bound_args aad (args_of atom))
                      in
                      (* skip tautological magic rules (m(X) :- ..., m(X)):
                         they arise from recursive calls that pass the
                         bound arguments through unchanged and would both
                         bloat the program and defeat factoring *)
                      let tautology =
                        List.exists
                          (function
                            | Program.Pos b -> Term.compare b m_atom = 0
                            | Program.Neg _ -> false)
                          !prefix
                      in
                      if not tautology then
                        out_rules := { Program.head = m_atom; body = List.rev !prefix } :: !out_rules;
                      if not (Hashtbl.mem produced (akey, aad)) then begin
                        Hashtbl.replace produced (akey, aad) ();
                        Queue.add (akey, aad) queue
                      end;
                      Program.Pos (Term.struct_ (adorned_name akey aad) (args_of atom))
                    end
                    else Program.Pos atom
                  in
                  prefix := lit' :: !prefix;
                  bound := var_ids atom @ !bound;
                  lit')
            rule.Program.body
        in
        out_rules :=
          {
            Program.head = Term.struct_ (adorned_name key ad) head_args;
            body = Program.Pos magic_head :: new_body;
          }
          :: !out_rules)
      defining
  done;
  let seed = Term.app (magic_name goal_key goal_ad) (bound_args goal_ad (args_of goal)) in
  let adorned_goal = Term.struct_ (adorned_name goal_key goal_ad) (args_of goal) in
  let rewritten =
    {
      program = program_of_rules (List.rev !out_rules) (seed :: program.Program.facts);
      query_pred = Program.pred_of adorned_goal;
      goal = adorned_goal;
    }
  in
  if factor then (try factorize rewritten ~ad:goal_ad ~seed with Not_applicable _ -> rewritten)
  else rewritten

let answers ?strategy ?factor program goal =
  let r = rewrite ?factor program goal in
  let st = Eval.run ?strategy r.program in
  (* the rewritten goal shares its variables with [goal], so matching a
     model tuple against it instantiates the original goal too *)
  let trail = Trail.create () in
  List.filter_map
    (fun tuple ->
      let m = Trail.mark trail in
      let result =
        if Unify.unify trail r.goal (Canon.to_term tuple) then Some (Canon.of_term goal) else None
      in
      Trail.undo_to trail m;
      result)
    (Eval.relation st r.query_pred)
