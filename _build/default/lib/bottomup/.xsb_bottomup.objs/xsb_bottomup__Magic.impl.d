lib/bottomup/magic.ml: Array Canon Eval Fmt Fun Hashtbl List Printf Program Queue String Term Trail Unify Xsb_term
