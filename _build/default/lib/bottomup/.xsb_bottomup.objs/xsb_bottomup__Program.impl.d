lib/bottomup/program.ml: Array Fmt Hashtbl List Option Term Xsb_db Xsb_term
