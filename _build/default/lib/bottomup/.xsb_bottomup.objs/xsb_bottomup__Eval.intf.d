lib/bottomup/eval.mli: Canon Program Term Xsb_term
