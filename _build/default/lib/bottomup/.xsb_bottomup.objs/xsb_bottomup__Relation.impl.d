lib/bottomup/relation.ml: Array Canon List Symbol Vec Xsb_index Xsb_term
