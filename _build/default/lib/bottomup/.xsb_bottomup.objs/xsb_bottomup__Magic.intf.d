lib/bottomup/magic.mli: Canon Eval Program Term Xsb_term
