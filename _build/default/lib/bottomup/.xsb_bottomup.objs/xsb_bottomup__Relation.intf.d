lib/bottomup/relation.mli: Canon Symbol Vec Xsb_index Xsb_term
