lib/bottomup/program.mli: Fmt Term Xsb_db Xsb_term
