lib/bottomup/eval.ml: Array Canon Fmt Hashtbl List Program Relation Symbol Term Trail Unify Xsb_index Xsb_term
