(** Datalog programs for the bottom-up engine: rules with positive and
    negative body literals, facts, and stratification by negation. *)

open Xsb_term

exception Not_datalog of string
exception Unstratifiable of (string * int) list

type literal = Pos of Term.t | Neg of Term.t

type rule = { head : Term.t; body : literal list }

type t = {
  rules : rule list;
  facts : Term.t list;  (** ground unit clauses *)
  idb : (string * int) list;  (** predicates defined by rules *)
}

val pred_of : Term.t -> string * int

val of_clauses : Term.t list -> t
(** Build from clause terms ([H :- B] / facts). [\+], [not], [tnot] and
    [e_tnot] body literals all map to negation. *)

val of_database : Xsb_db.Database.t -> t
(** Extract every predicate of a loaded database. *)

val strata : t -> (string * int) list list
(** Stratification: predicate groups in evaluation order. Negation must
    not cross into the same stratum; raises {!Unstratifiable}. *)

val pp_rule : rule Fmt.t
