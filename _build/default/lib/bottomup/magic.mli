(** Magic-sets rewriting: the goal-directedness mechanism of the
    bottom-up systems in the paper's Table 1 (Aditi, LDL use magic sets;
    CORAL uses magic templates). Given a query, the program is adorned
    with bound/free annotations under a left-to-right sideways
    information passing strategy, and magic predicates restrict the
    fixpoint to query-relevant facts.

    Also implements the *factoring* optimization of Naughton et al. [10]
    (the paper's CORAL-fac configuration): when every recursive call
    passes the bound arguments of a single-seed magic predicate through
    unchanged, those arguments are projected away, halving the arity of
    the recursive predicate. *)

open Xsb_term

exception Not_applicable of string

type rewritten = {
  program : Program.t;  (** adorned rules + magic rules (facts of the original kept) *)
  query_pred : string * int;  (** the adorned query predicate *)
  goal : Term.t;  (** the adorned goal to match against the model *)
}

val adornment_of : Term.t -> string
(** "b"/"f" string for a goal's arguments by groundness. *)

val rewrite : ?factor:bool -> Program.t -> Term.t -> rewritten
(** Magic rewriting of [program] for the given goal. Only positive
    programs are supported ({!Not_applicable} otherwise; negation in
    bottom-up evaluation goes through {!Eval} without magic). With
    [~factor:true], factoring is applied where detected. *)

val answers : ?strategy:Eval.strategy -> ?factor:bool -> Program.t -> Term.t -> Canon.t list
(** Rewrite, evaluate, and return the query's answer instances. *)
