(** Materialized relations for the bottom-up engine: a deduplicating
    tuple store with a first-argument symbol index for joins. Tuples are
    whole atoms in canonical form. *)

open Xsb_term
open Xsb_index

type t

val create : unit -> t
val size : t -> int

val insert : t -> Canon.t -> bool
(** [true] if the tuple is new. *)

val mem : t -> Canon.t -> bool

val tuples : t -> Canon.t Vec.t
(** All tuples in insertion order (do not mutate). *)

val matching : t -> Symbol.t option -> Canon.t list
(** Tuples whose first argument has the given outer symbol ([None] = all
    tuples, or the first argument is unknown). *)

val to_list : t -> Canon.t list
