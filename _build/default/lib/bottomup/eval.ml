open Xsb_term
open Xsb_index

type strategy = Naive | Seminaive

type state = {
  relations : (string * int, Relation.t) Hashtbl.t;
  trail : Trail.t;
  mutable rounds : int;
}

let get_relation st key =
  match Hashtbl.find_opt st.relations key with
  | Some r -> r
  | None ->
      let r = Relation.create () in
      Hashtbl.add st.relations key r;
      r

(* Match a body literal against a source of tuples, using the
   first-argument index when the literal's first argument is bound. *)
let candidates relation literal =
  let sym =
    match Term.deref literal with
    | Term.Struct (_, args) when Array.length args >= 1 -> Symbol.of_term args.(0)
    | _ -> None
  in
  Relation.matching relation sym

(* Evaluate one rule; [delta] optionally designates one positive body
   position that must draw its tuples from the delta relation instead of
   the full one. Every derived head instance is offered to [emit]. *)
let eval_rule st ~full ~delta rule emit =
  let renamed =
    Term.copy
      (Term.Struct
         ( "$rule",
           Array.of_list
             (rule.Program.head
             :: List.map (function Program.Pos a | Program.Neg a -> a) rule.Program.body) ))
  in
  let head, body_atoms =
    match renamed with
    | Term.Struct ("$rule", args) ->
        (args.(0), Array.to_list (Array.sub args 1 (Array.length args - 1)))
    | _ -> assert false
  in
  let body =
    List.map2
      (fun lit atom -> match lit with Program.Pos _ -> Program.Pos atom | Program.Neg _ -> Program.Neg atom)
      rule.Program.body body_atoms
  in
  let rec walk position literals =
    match literals with
    | [] -> emit (Canon.of_term head)
    | Program.Pos atom :: rest ->
        let key = Program.pred_of atom in
        let source =
          match delta with
          | Some (dpos, drel) when dpos = position -> drel
          | _ -> full key
        in
        List.iter
          (fun tuple ->
            let m = Trail.mark st.trail in
            if Unify.unify st.trail atom (Canon.to_term tuple) then walk (position + 1) rest;
            Trail.undo_to st.trail m)
          (candidates source atom)
    | Program.Neg atom :: rest ->
        if not (Term.is_ground atom) then
          raise (Program.Not_datalog (Fmt.str "non-ground negative literal: %a" Term.pp atom));
        let rel = full (Program.pred_of atom) in
        if not (Relation.mem rel (Canon.of_term atom)) then walk (position + 1) rest
  in
  walk 0 body

let run ?(strategy = Seminaive) program =
  let st = { relations = Hashtbl.create 32; trail = Trail.create (); rounds = 0 } in
  List.iter
    (fun fact -> ignore (Relation.insert (get_relation st (Program.pred_of fact)) (Canon.of_term fact)))
    program.Program.facts;
  let full key = get_relation st key in
  let strata = Program.strata program in
  List.iter
    (fun stratum ->
      let rules =
        List.filter (fun r -> List.mem (Program.pred_of r.Program.head) stratum) program.Program.rules
      in
      if rules <> [] then
        match strategy with
        | Naive ->
            (* recompute everything until no new tuples *)
            let changed = ref true in
            while !changed do
              st.rounds <- st.rounds + 1;
              changed := false;
              List.iter
                (fun rule ->
                  eval_rule st ~full ~delta:None rule (fun tuple ->
                      let rel = full (Program.pred_of rule.Program.head) in
                      if Relation.insert rel tuple then changed := true))
                rules
            done
        | Seminaive ->
            (* delta relations per in-stratum predicate *)
            let delta = Hashtbl.create 8 in
            let next_delta = Hashtbl.create 8 in
            let in_stratum key = List.mem key stratum in
            (* round 0: all rules, no delta restriction; seeds deltas *)
            st.rounds <- st.rounds + 1;
            List.iter
              (fun rule ->
                eval_rule st ~full ~delta:None rule (fun tuple ->
                    let key = Program.pred_of rule.Program.head in
                    if Relation.insert (full key) tuple then begin
                      let d =
                        match Hashtbl.find_opt delta key with
                        | Some d -> d
                        | None ->
                            let d = Relation.create () in
                            Hashtbl.add delta key d;
                            d
                      in
                      ignore (Relation.insert d tuple)
                    end))
              rules;
            let any_delta () = Hashtbl.fold (fun _ d acc -> acc || Relation.size d > 0) delta false in
            while any_delta () do
              st.rounds <- st.rounds + 1;
              Hashtbl.reset next_delta;
              List.iter
                (fun rule ->
                  (* one evaluation per recursive body position *)
                  List.iteri
                    (fun position lit ->
                      match lit with
                      | Program.Pos atom when in_stratum (Program.pred_of atom) -> (
                          match Hashtbl.find_opt delta (Program.pred_of atom) with
                          | Some drel when Relation.size drel > 0 ->
                              eval_rule st ~full ~delta:(Some (position, drel)) rule
                                (fun tuple ->
                                  let key = Program.pred_of rule.Program.head in
                                  if Relation.insert (full key) tuple then begin
                                    let d =
                                      match Hashtbl.find_opt next_delta key with
                                      | Some d -> d
                                      | None ->
                                          let d = Relation.create () in
                                          Hashtbl.add next_delta key d;
                                          d
                                    in
                                    ignore (Relation.insert d tuple)
                                  end)
                          | _ -> ())
                      | _ -> ())
                    rule.Program.body)
                rules;
              Hashtbl.reset delta;
              Hashtbl.iter (fun k d -> Hashtbl.add delta k d) next_delta
            done)
    strata;
  st

let relation st key =
  match Hashtbl.find_opt st.relations key with Some r -> Relation.to_list r | None -> []

let relation_size st key =
  match Hashtbl.find_opt st.relations key with Some r -> Relation.size r | None -> 0

let answers st goal =
  let key = Program.pred_of goal in
  let result = ref [] in
  List.iter
    (fun tuple ->
      let m = Trail.mark st.trail in
      if Unify.unify st.trail goal (Canon.to_term tuple) then result := Canon.of_term goal :: !result;
      Trail.undo_to st.trail m)
    (relation st key);
  List.rev !result

let iterations st = st.rounds
