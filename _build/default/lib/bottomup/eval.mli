(** Bottom-up fixpoint evaluation: naive and semi-naive (with delta
    relations), stratum by stratum for stratified negation. This is the
    evaluation regime of the set-at-a-time deductive database systems
    XSB is compared against in section 5 of the paper. *)

open Xsb_term

type strategy = Naive | Seminaive

type state

val run : ?strategy:strategy -> Program.t -> state
(** Evaluate the whole program to its (perfect) model. *)

val relation : state -> string * int -> Canon.t list
(** Tuples of a predicate in the computed model (whole atoms). *)

val relation_size : state -> string * int -> int

val answers : state -> Term.t -> Canon.t list
(** Instances of an arbitrary goal atom in the model. *)

val iterations : state -> int
(** Number of fixpoint rounds performed (across all strata). *)
