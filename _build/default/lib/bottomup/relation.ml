open Xsb_term
open Xsb_index

type t = {
  order : Canon.t Vec.t;
  set : unit Canon.Tbl.t;
  index1 : Canon.t list ref Symbol.Tbl.t;  (* reverse order *)
  mutable unindexed : Canon.t list;  (* first arg is a variable; reverse *)
}

let create () =
  { order = Vec.create (); set = Canon.Tbl.create 64; index1 = Symbol.Tbl.create 64; unindexed = [] }

let size t = Vec.length t.order
let mem t tuple = Canon.Tbl.mem t.set tuple

let first_arg_symbol tuple =
  match tuple with
  | Canon.CStruct (_, args) when Array.length args >= 1 -> Symbol.of_canon args.(0)
  | _ -> None

let insert t tuple =
  if mem t tuple then false
  else begin
    Canon.Tbl.add t.set tuple ();
    Vec.push t.order tuple;
    (match first_arg_symbol tuple with
    | Some s -> (
        match Symbol.Tbl.find_opt t.index1 s with
        | Some cell -> cell := tuple :: !cell
        | None -> Symbol.Tbl.add t.index1 s (ref [ tuple ]))
    | None -> t.unindexed <- tuple :: t.unindexed);
    true
  end

let tuples t = t.order

let matching t sym =
  match sym with
  | None -> Vec.to_list t.order
  | Some s ->
      let indexed = match Symbol.Tbl.find_opt t.index1 s with Some cell -> !cell | None -> [] in
      List.rev_append t.unindexed indexed

let to_list t = Vec.to_list t.order
