open Xsb_term

type node = {
  mutable stored : int list;  (* clauses whose string ends here, reverse order *)
  children : node Symbol.Tbl.t;
}

type t = node

let fresh_node () = { stored = []; children = Symbol.Tbl.create 4 }

let create () = fresh_node ()

exception Hit_variable

(* Pre-order symbols of the argument vector, truncated at the first
   variable. *)
let string_of_head args =
  let acc = ref [] in
  let rec go t =
    match Symbol.of_term t with
    | None -> raise Hit_variable
    | Some s -> (
        acc := s :: !acc;
        match Term.deref t with
        | Term.Struct (_, subargs) -> Array.iter go subargs
        | _ -> ())
  in
  (try Array.iter go args with Hit_variable -> ());
  List.rev !acc

let insert t id args =
  let symbols = string_of_head args in
  let rec go node = function
    | [] -> node.stored <- id :: node.stored
    | s :: rest ->
        let child =
          match Symbol.Tbl.find_opt node.children s with
          | Some child -> child
          | None ->
              let child = fresh_node () in
              Symbol.Tbl.add node.children s child;
              child
        in
        go child rest
  in
  go t symbols

let rec subtree_ids node acc =
  let acc = List.rev_append node.stored acc in
  Symbol.Tbl.fold (fun _ child acc -> subtree_ids child acc) node.children acc

let lookup t args =
  let symbols = string_of_head args in
  let rec go node acc = function
    | [] -> subtree_ids node acc
    | s :: rest -> (
        let acc = List.rev_append node.stored acc in
        match Symbol.Tbl.find_opt node.children s with
        | Some child -> go child acc rest
        | None -> acc)
  in
  List.sort_uniq compare (go t [] symbols)

let pp ppf t =
  let rec go indent node =
    let sorted =
      Symbol.Tbl.fold (fun s child acc -> (s, child) :: acc) node.children []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (s, child) ->
        Fmt.pf ppf "%s%a" indent Symbol.pp s;
        if child.stored <> [] then
          Fmt.pf ppf "  {%a}" Fmt.(list ~sep:(any ",") int) (List.rev child.stored);
        Fmt.pf ppf "@\n";
        go (indent ^ "  ") child)
      sorted
  in
  if t.stored <> [] then
    Fmt.pf ppf "(root) {%a}@\n" Fmt.(list ~sep:(any ",") int) (List.rev t.stored);
  go "" t
