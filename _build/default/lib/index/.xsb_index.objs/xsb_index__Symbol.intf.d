lib/index/symbol.mli: Canon Fmt Hashtbl Term Xsb_term
