lib/index/symbol.ml: Array Canon Fmt Hashtbl Term Xsb_term
