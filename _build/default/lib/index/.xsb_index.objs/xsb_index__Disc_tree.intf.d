lib/index/disc_tree.mli: Term Xsb_term
