lib/index/arg_hash.mli: Term Xsb_term
