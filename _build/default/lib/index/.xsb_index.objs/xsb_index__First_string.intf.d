lib/index/first_string.mli: Fmt Symbol Term Xsb_term
