lib/index/answer_store.ml: Array Canon Hashtbl List Vec Xsb_term
