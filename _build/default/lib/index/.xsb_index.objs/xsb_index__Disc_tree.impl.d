lib/index/disc_tree.ml: Array Hashtbl List Option Symbol Term Xsb_term
