lib/index/first_string.ml: Array Fmt List Symbol Term Xsb_term
