lib/index/answer_store.mli: Canon Xsb_term
