lib/index/arg_hash.ml: Array Hashtbl List Symbol
