(** Full discrimination-tree indexing — the "new implementation of a
    variant of first-string indexing ... which will allow it both to be
    more efficient and to still apply across variables in the indexed
    clauses" that §4.5 describes as under development.

    Unlike {!First_string}, clause strings are complete pre-order symbol
    strings in which variables appear as a wildcard token, so
    discrimination continues past a clause variable. Retrieval walks the
    tree against the call term: a clause wildcard skips one call
    subterm, and a call variable skips one stored subterm along every
    branch. Candidates remain a superset of the unifiable clauses (no
    consistency check for repeated variables), in clause order. *)

open Xsb_term

type t

val create : unit -> t

val insert : t -> int -> Term.t array -> unit

val lookup : t -> Term.t array -> int list
(** Candidate clause ids, increasing. *)

val size : t -> int
(** Number of stored clauses. *)
