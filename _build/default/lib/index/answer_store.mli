(** Answer-clause storage with duplicate detection (paper §4.5).

    Answers returned for a tabled subgoal are copied to table space in
    canonical form; inserting an answer that is a variant of an existing
    one fails the inserting derivation path, which is how SLG avoids
    duplicate computation. Answers retain insertion order so that
    consumers can resume incrementally from the position they have
    already consumed.

    Two interchangeable implementations are provided: [Hash] — "a hash
    index that includes all arguments of the answer", XSB's shipping
    mechanism — and [Trie] — the trie-based answer index the paper
    describes as under development, which integrates the index with the
    storage of the answers. *)

open Xsb_term

module type S = sig
  type t

  val create : ?size_hint:int -> unit -> t

  val insert : t -> Canon.t -> bool
  (** [true] if the answer is new; [false] for a duplicate (variant). *)

  val mem : t -> Canon.t -> bool

  val size : t -> int

  val get : t -> int -> Canon.t
  (** Answer by insertion position, [0 .. size-1]. *)

  val iter : (Canon.t -> unit) -> t -> unit
  (** In insertion order. *)

  val to_list : t -> Canon.t list
end

module Hash : S
module Trie : S

include S
(** The default implementation (currently [Hash], as in XSB 1.3). *)
