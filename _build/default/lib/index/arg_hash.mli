(** Hash-based clause indexing on a field or a combination of up to three
    fields, as declared by [:- index(p/5, [1,2,3+5])] (paper §4.5).

    An index over fields [F] maps the tuple of outer symbols of a clause
    head's [F]-arguments to the set of clauses with those symbols. Clause
    heads with a variable in any indexed field go into a catch-all bucket
    that every retrieval must also return. Retrieval is only possible when
    every indexed argument of the call is bound (to the outer-symbol
    level); {!lookup} returns [None] otherwise and the caller falls back
    to the next index or a scan.

    Candidates are returned in clause order and are a superset of the
    matching clauses; unification does the exact filtering. *)

open Xsb_term

type t

val fields : t -> int list
(** 1-based argument positions this index discriminates on. *)

val create : ?size_hint:int -> int list -> t
(** [create fields] builds an empty index on the given 1-based argument
    positions (1 to 3 of them). [size_hint] sets the initial hash-table
    size, as XSB lets the user override the hash size. *)

val insert : t -> int -> Term.t array -> unit
(** [insert t clause_id head_args] adds a clause (append position given
    by [clause_id], which must be increasing). *)

val remove : t -> int -> Term.t array -> unit
(** Remove a clause previously inserted with the same id and args. *)

val lookup : t -> Term.t array -> int list option
(** [lookup t call_args] returns candidate clause ids in increasing
    order, or [None] when some indexed call argument is unbound. *)

val usable : t -> Term.t array -> bool
(** Whether all indexed positions of the call are bound. *)
