open Xsb_term

type t = SAtom of string | SInt of int | SFloat of float | SStruct of string * int

let of_term t =
  match Term.deref t with
  | Term.Atom a -> Some (SAtom a)
  | Term.Int i -> Some (SInt i)
  | Term.Float x -> Some (SFloat x)
  | Term.Struct (f, args) -> Some (SStruct (f, Array.length args))
  | Term.Var _ -> None

let of_canon = function
  | Canon.CAtom a -> Some (SAtom a)
  | Canon.CInt i -> Some (SInt i)
  | Canon.CFloat x -> Some (SFloat x)
  | Canon.CStruct (f, args) -> Some (SStruct (f, Array.length args))
  | Canon.CVar _ -> None

let equal (a : t) (b : t) = a = b
let hash (s : t) = Hashtbl.hash s

let pp ppf = function
  | SAtom a -> Fmt.string ppf a
  | SInt i -> Fmt.int ppf i
  | SFloat x -> Fmt.float ppf x
  | SStruct (f, n) -> Fmt.pf ppf "%s/%d" f n

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
