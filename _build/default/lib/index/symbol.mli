(** Outer functor symbols, the unit of discrimination for all of XSB's
    hash-based indexing (paper §4.5: "All XSB hash-based indexing uses
    only the outer functor symbol of a given argument"). *)

open Xsb_term

type t =
  | SAtom of string
  | SInt of int
  | SFloat of float
  | SStruct of string * int  (** name/arity *)

val of_term : Term.t -> t option
(** The outer symbol of a dereferenced term; [None] for a variable. *)

val of_canon : Canon.t -> t option

val equal : t -> t -> bool
val hash : t -> int
val pp : t Fmt.t

module Tbl : Hashtbl.S with type key = t
