open Xsb_term

type tok = Star | Sym of Symbol.t

module Tok_tbl = Hashtbl.Make (struct
  type t = tok

  let equal (a : t) (b : t) = a = b
  let hash (t : t) = Hashtbl.hash t
end)

type node = { mutable stored : int list; children : node Tok_tbl.t }

type t = { root : node; mutable count : int }

let fresh_node () = { stored = []; children = Tok_tbl.create 4 }

let create () = { root = fresh_node (); count = 0 }

let size t = t.count

(* complete pre-order token string; variables are wildcards *)
let tokens args =
  let acc = ref [] in
  let rec go term =
    match Symbol.of_term term with
    | None -> acc := Star :: !acc
    | Some s -> (
        acc := Sym s :: !acc;
        match Term.deref term with
        | Term.Struct (_, sub) -> Array.iter go sub
        | _ -> ())
  in
  Array.iter go args;
  List.rev !acc

let insert t id args =
  let rec go node = function
    | [] -> node.stored <- id :: node.stored
    | tok :: rest ->
        let child =
          match Tok_tbl.find_opt node.children tok with
          | Some child -> child
          | None ->
              let child = fresh_node () in
              Tok_tbl.add node.children tok child;
              child
        in
        go child rest
  in
  go t.root (tokens args);
  t.count <- t.count + 1

(* arity of the subterm a token opens: how many further subterms must be
   consumed before this one is complete *)
let opens = function
  | Star | Sym (Symbol.SAtom _) | Sym (Symbol.SInt _) | Sym (Symbol.SFloat _) -> 0
  | Sym (Symbol.SStruct (_, n)) -> n

(* all nodes reachable from [node] by consuming exactly [k] whole stored
   subterms (used when the call has a variable) *)
let rec skip node k acc =
  if k = 0 then node :: acc
  else
    Tok_tbl.fold (fun tok child acc -> skip child (k - 1 + opens tok) acc) node.children acc

let lookup t call_args =
  let acc = ref [] in
  (* terms: the call's remaining pre-order agenda *)
  let rec go node terms =
    match terms with
    | [] -> acc := List.rev_append node.stored !acc
    | term :: rest -> (
        (* a clause wildcard absorbs the whole first call subterm *)
        (match Tok_tbl.find_opt node.children Star with
        | Some child -> go child rest
        | None -> ());
        match Term.deref term with
        | Term.Var _ ->
            (* call variable: skip one stored subterm along every branch *)
            List.iter (fun n -> go n rest) (skip node 1 [])
        | t -> (
            let sym = Option.get (Symbol.of_term t) in
            match Tok_tbl.find_opt node.children (Sym sym) with
            | Some child -> (
                match t with
                | Term.Struct (_, sub) -> go child (Array.to_list sub @ rest)
                | _ -> go child rest)
            | None -> ()))
  in
  go t.root (Array.to_list call_args);
  List.sort_uniq compare !acc
