
(* Keys are short lists of outer symbols, one per indexed field. *)
type key = Symbol.t list

module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal = List.equal Symbol.equal
  let hash (k : t) = Hashtbl.hash k
end)

type t = {
  fields : int list;  (* 1-based *)
  buckets : int list ref Key_tbl.t;  (* clause ids, reverse order *)
  mutable catch_all : int list;  (* reverse order *)
}

let fields t = t.fields

let create ?(size_hint = 64) fields =
  match fields with
  | [] -> invalid_arg "Arg_hash.create: no fields"
  | _ :: _ :: _ :: _ :: _ -> invalid_arg "Arg_hash.create: more than three fields"
  | _ -> { fields; buckets = Key_tbl.create size_hint; catch_all = [] }

let key_of_args t args =
  let rec go = function
    | [] -> Some []
    | f :: rest -> (
        if f < 1 || f > Array.length args then None
        else
          match Symbol.of_term args.(f - 1) with
          | None -> None
          | Some s -> ( match go rest with None -> None | Some k -> Some (s :: k)))
  in
  go t.fields

(* Bucket lists are kept strictly decreasing so that lookups can merge
   them in clause order; asserta inserts ids below all existing ones, so
   insertion is O(1) in the common cases and linear at worst. *)
let rec insert_sorted id = function
  | [] -> [ id ]
  | x :: rest as l -> if id > x then id :: l else if id = x then l else x :: insert_sorted id rest

let insert t id args =
  match key_of_args t args with
  | None -> t.catch_all <- insert_sorted id t.catch_all
  | Some key -> (
      match Key_tbl.find_opt t.buckets key with
      | Some cell -> cell := insert_sorted id !cell
      | None -> Key_tbl.add t.buckets key (ref [ id ]))

let remove t id args =
  match key_of_args t args with
  | None -> t.catch_all <- List.filter (fun i -> i <> id) t.catch_all
  | Some key -> (
      match Key_tbl.find_opt t.buckets key with
      | Some cell -> cell := List.filter (fun i -> i <> id) !cell
      | None -> ())

let usable t args = key_of_args t args <> None

(* Merge two strictly-decreasing id lists into one increasing list. *)
let merge_rev xs ys =
  let rec go acc xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append rest acc
    | x :: xs', y :: ys' ->
        if x > y then go (x :: acc) xs' ys
        else if y > x then go (y :: acc) xs ys'
        else go (x :: acc) xs' ys'
  in
  go [] xs ys

let lookup t args =
  match key_of_args t args with
  | None -> None
  | Some key ->
      let bucket = match Key_tbl.find_opt t.buckets key with Some cell -> !cell | None -> [] in
      Some (merge_rev bucket t.catch_all)
