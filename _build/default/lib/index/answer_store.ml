open Xsb_term

module type S = sig
  type t

  val create : ?size_hint:int -> unit -> t
  val insert : t -> Canon.t -> bool
  val mem : t -> Canon.t -> bool
  val size : t -> int
  val get : t -> int -> Canon.t
  val iter : (Canon.t -> unit) -> t -> unit
  val to_list : t -> Canon.t list
end

module Hash : S = struct
  type t = { index : unit Canon.Tbl.t; order : Canon.t Vec.t }

  let create ?(size_hint = 32) () = { index = Canon.Tbl.create size_hint; order = Vec.create () }

  let mem t answer = Canon.Tbl.mem t.index answer

  let insert t answer =
    if mem t answer then false
    else begin
      Canon.Tbl.add t.index answer ();
      Vec.push t.order answer;
      true
    end

  let size t = Vec.length t.order
  let get t i = Vec.get t.order i
  let iter f t = Vec.iter f t.order
  let to_list t = Vec.to_list t.order
end

module Trie : S = struct
  (* Discrimination trie over the pre-order token string of the canonical
     answer. Unlike first-string indexing, variables are tokens too (they
     are canonically numbered), so each answer has exactly one terminal
     node; storage and index are one structure. *)
  type tok = TVar of int | TAtom of string | TInt of int | TFloat of float | TStruct of string * int

  module Tok_tbl = Hashtbl.Make (struct
    type t = tok

    let equal (a : t) (b : t) = a = b
    let hash (t : t) = Hashtbl.hash t
  end)

  type node = { mutable terminal : bool; children : node Tok_tbl.t }

  type t = { root : node; order : Canon.t Vec.t }

  let fresh_node () = { terminal = false; children = Tok_tbl.create 4 }

  let create ?size_hint:_ () = { root = fresh_node (); order = Vec.create () }

  let tokens answer =
    let acc = ref [] in
    let rec go = function
      | Canon.CVar n -> acc := TVar n :: !acc
      | Canon.CAtom a -> acc := TAtom a :: !acc
      | Canon.CInt i -> acc := TInt i :: !acc
      | Canon.CFloat x -> acc := TFloat x :: !acc
      | Canon.CStruct (f, args) ->
          acc := TStruct (f, Array.length args) :: !acc;
          Array.iter go args
    in
    go answer;
    List.rev !acc

  let mem t answer =
    let rec go node = function
      | [] -> node.terminal
      | tok :: rest -> (
          match Tok_tbl.find_opt node.children tok with
          | Some child -> go child rest
          | None -> false)
    in
    go t.root (tokens answer)

  let insert t answer =
    let rec go node = function
      | [] ->
          if node.terminal then false
          else begin
            node.terminal <- true;
            true
          end
      | tok :: rest ->
          let child =
            match Tok_tbl.find_opt node.children tok with
            | Some child -> child
            | None ->
                let child = fresh_node () in
                Tok_tbl.add node.children tok child;
                child
          in
          go child rest
    in
    let fresh = go t.root (tokens answer) in
    if fresh then Vec.push t.order answer;
    fresh

  let size t = Vec.length t.order
  let get t i = Vec.get t.order i
  let iter f t = Vec.iter f t.order
  let to_list t = Vec.to_list t.order
end

include Hash
