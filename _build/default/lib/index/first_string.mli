(** First-string indexing (paper §4.5, Example 4.2, Figure 3): a variant
    of path-based indexing that stores parts of clauses in a
    discrimination network.

    Each clause head is turned into the string of symbols of the
    pre-order traversal of its arguments, truncated at the first
    variable; the strings are kept in a trie. Retrieval walks the trie
    with the call's pre-order symbol string (also truncated at the call's
    first variable): candidates are the clauses stored on the path walked
    (more general clauses) plus, when the call string is exhausted at a
    node, every clause below that node (more specific clauses). The
    result is a superset of the unifiable clauses, in clause order. *)

open Xsb_term

type t

val create : unit -> t

val insert : t -> int -> Term.t array -> unit
(** [insert t clause_id head_args]; ids must be inserted in increasing
    order. *)

val lookup : t -> Term.t array -> int list
(** Candidate clause ids, increasing. *)

val string_of_head : Term.t array -> Symbol.t list
(** The truncated pre-order symbol string itself (exposed for tests and
    for drawing Figure 3). *)

val pp : t Fmt.t
(** Draw the trie, as in Figure 3 of the paper. *)
