(* The stalemate game of paper §4.4 (Example 4.1):

       win(X) :- move(X,Y), tnot win(Y).

   A position is won iff some move leads to a position that is not won.
   The example demonstrates the three operational models of negation the
   paper compares in Table 2 — SLG negation (tnot), SLDNF (\+), and
   existential negation (e_tnot) — and the well-founded semantics on a
   cyclic move graph.

   Run with: dune exec examples/win_game.exe *)

let complete_binary_tree height =
  (* move(i, 2i), move(i, 2i+1) for the internal nodes of a complete
     binary tree with 2^height - 1 nodes *)
  let buf = Buffer.create 256 in
  let nodes = (1 lsl height) - 1 in
  for i = 1 to nodes do
    if 2 * i <= nodes then Buffer.add_string buf (Printf.sprintf "move(%d,%d). " i (2 * i));
    if (2 * i) + 1 <= nodes then Buffer.add_string buf (Printf.sprintf "move(%d,%d). " i ((2 * i) + 1))
  done;
  Buffer.contents buf

let () =
  let height = 6 in

  (* --- SLG negation --- *)
  let slg = Xsb.Session.create () in
  Xsb.Session.consult slg ":- table win/1.\nwin(X) :- move(X,Y), tnot(win(Y)).";
  Xsb.Session.consult slg (complete_binary_tree height);
  Fmt.pr "SLG negation:        win(1) over a height-%d tree: %b@." height
    (Xsb.Session.succeeds slg "win(1)");
  let stats = Xsb.Engine.stats (Xsb.Session.engine slg) in
  Fmt.pr "  (%d tabled subgoals evaluated — the whole tree)@." stats.Xsb.Machine.st_subgoals;

  (* --- existential negation: visits only the SLDNF fraction (Fig. 2) --- *)
  let eneg = Xsb.Session.create () in
  Xsb.Session.consult eneg ":- table win/1.\nwin(X) :- move(X,Y), e_tnot(win(Y)).";
  Xsb.Session.consult eneg (complete_binary_tree height);
  Fmt.pr "Existential (e_tnot): win(1): %b@." (Xsb.Session.succeeds eneg "win(1)");
  let stats = Xsb.Engine.stats (Xsb.Session.engine eneg) in
  Fmt.pr "  (%d tabled subgoals — abandoned tables were reclaimed, like tcut)@."
    stats.Xsb.Machine.st_subgoals;

  (* --- SLDNF --- *)
  let sldnf = Xsb.Session.create () in
  Xsb.Session.consult sldnf "win(X) :- move(X,Y), \\+ win(Y).";
  Xsb.Session.consult sldnf (complete_binary_tree height);
  Xsb.Engine.set_count_calls (Xsb.Session.engine sldnf) true;
  Fmt.pr "SLDNF (\\+):           win(1): %b@." (Xsb.Session.succeeds sldnf "win(1)");
  Fmt.pr "  (%d calls to win/1 out of %d positions — the sqrt(2)^n effect of Figure 2)@."
    (Xsb.Engine.call_count (Xsb.Session.engine sldnf) "win" 1)
    ((1 lsl height) - 1);

  (* --- local scheduling: inner SCCs complete before the global
     fixpoint, so tnot fails early against already-closed tables --- *)
  let local = Xsb.Session.create ~scheduling:Xsb.Machine.Local () in
  Xsb.Session.consult local ":- table win/1.\nwin(X) :- move(X,Y), tnot(win(Y)).";
  Xsb.Session.consult local (complete_binary_tree height);
  Fmt.pr "Local scheduling:    win(1): %b@." (Xsb.Session.succeeds local "win(1)");
  let stats = Xsb.Engine.stats (Xsb.Session.engine local) in
  Fmt.pr
    "  (%d SCCs completed incrementally, %d subgoals closed before the global fixpoint, max SCC \
     size %d)@."
    stats.Xsb.Machine.st_sccs_completed stats.Xsb.Machine.st_early_completions
    stats.Xsb.Machine.st_max_scc_size;
  assert (stats.Xsb.Machine.st_early_completions > 0);

  (* --- a cyclic game needs the well-founded semantics --- *)
  let wfs = Xsb.Session.create ~mode:Xsb.Machine.Well_founded () in
  Xsb.Session.consult wfs
    ":- table win/1.\n\
     win(X) :- move(X,Y), tnot(win(Y)).\n\
     move(a,b). move(b,a). move(b,c). move(c,d).";
  Fmt.pr "@.Cyclic game a<->b->c->d under the well-founded semantics:@.";
  List.iter
    (fun pos ->
      let answer =
        match Xsb.Session.wfs_query wfs (Printf.sprintf "win(%s)" pos) with
        | [] -> "false"
        | [ { Xsb.Residual.truth = Xsb.Ground.True; _ } ] -> "true"
        | [ { Xsb.Residual.truth = Xsb.Ground.Undefined; _ } ] -> "undefined (drawn)"
        | _ -> "?"
      in
      Fmt.pr "  win(%s) = %s@." pos answer)
    [ "a"; "b"; "c"; "d" ]
