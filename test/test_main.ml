let () =
  Alcotest.run "xsb-repro"
    [
      ("term", Suite_term.suite);
      ("parse", Suite_parse.suite);
      ("index", Suite_index.suite);
      ("db", Suite_db.suite);
      ("hilog", Suite_hilog.suite);
      ("slg", Suite_slg.suite);
      ("bottomup", Suite_bottomup.suite);
      ("wfs", Suite_wfs.suite);
      ("wam", Suite_wam.suite);
      ("rel", Suite_rel.suite);
      ("integration", Suite_integration.suite);
      ("differential", Suite_differential.suite);
      ("scheduling", Suite_scheduling.suite);
      ("incremental", Suite_incremental.suite);
      ("subsumption", Suite_subsumption.suite);
      ("obs", Suite_obs.suite);
      ("metrics", Suite_metrics.suite);
      ("server", Suite_server.suite);
      ("journal", Suite_journal.suite);
      ("repl", Suite_repl.suite);
    ]
