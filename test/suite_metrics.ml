(* The metrics registry (ISSUE PR 8): histogram bucket/quantile math,
   the Prometheus text encoder against its own parse-back checker (a
   golden snapshot plus a property over random registries), the
   monotonic clock, and the table-space byte accounting. *)

module M = Xsb.Metrics

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let close ?(eps = 1e-9) what a b =
  if Float.abs (a -. b) > eps then Alcotest.failf "%s: %g <> %g" what a b

(* --- histograms --- *)

let histogram_cases =
  [
    t "default buckets are sorted and span 1us..67s" `Quick (fun () ->
        let b = M.Histogram.default_buckets in
        check_bool "nonempty" true (Array.length b > 0);
        Array.iteri (fun i x -> if i > 0 then check_bool "sorted" true (b.(i - 1) < x)) b;
        check_bool "low" true (b.(0) <= 1e-6);
        check_bool "high" true (b.(Array.length b - 1) > 60.0));
    t "count/sum/min/max are exact" `Quick (fun () ->
        let h = M.Histogram.create () in
        List.iter (M.Histogram.observe h) [ 0.5; 0.001; 2.0; 0.25 ];
        check_int "count" 4 (M.Histogram.count h);
        close "sum" (M.Histogram.sum h) 2.751;
        close "min" (M.Histogram.min_value h) 0.001;
        close "max" (M.Histogram.max_value h) 2.0);
    t "cumulative rows are monotone and end at +Inf = count" `Quick (fun () ->
        let h = M.Histogram.create () in
        for i = 1 to 500 do
          M.Histogram.observe h (float_of_int i /. 100.0)
        done;
        let rows = M.Histogram.cumulative h in
        let last_bound, last_cum = List.nth rows (List.length rows - 1) in
        check_bool "+Inf last" true (last_bound = Float.infinity);
        check_int "total" 500 last_cum;
        ignore
          (List.fold_left
             (fun prev (_, cum) ->
               check_bool "monotone" true (cum >= prev);
               cum)
             0 rows));
    t "quantiles interpolate and clamp to observed extremes" `Quick (fun () ->
        let h = M.Histogram.create () in
        (* uniform on (0, 1]: p50 ~ 0.5, p99 ~ 0.99, within one
           factor-2 bucket of the truth *)
        for i = 1 to 1000 do
          M.Histogram.observe h (float_of_int i /. 1000.0)
        done;
        let p50 = M.Histogram.quantile h 0.5 in
        let p99 = M.Histogram.quantile h 0.99 in
        check_bool "p50 in bucket" true (p50 >= 0.25 && p50 <= 1.0);
        check_bool "p99 in bucket" true (p99 >= 0.5 && p99 <= 1.0);
        check_bool "ordered" true (p50 <= p99);
        close "p0 = min" (M.Histogram.quantile h 0.0) 0.001;
        close "p100 = max" (M.Histogram.quantile h 1.0) 1.0;
        close "percentile alias" (M.Histogram.percentile h 95.0) (M.Histogram.quantile h 0.95));
    t "a single observation answers every quantile with itself" `Quick (fun () ->
        let h = M.Histogram.create () in
        M.Histogram.observe h 0.125;
        List.iter (fun q -> close "q" (M.Histogram.quantile h q) 0.125) [ 0.0; 0.5; 0.99; 1.0 ]);
    t "empty histogram: zero everything" `Quick (fun () ->
        let h = M.Histogram.create () in
        check_int "count" 0 (M.Histogram.count h);
        close "sum" (M.Histogram.sum h) 0.0;
        close "quantile" (M.Histogram.quantile h 0.5) 0.0);
  ]

(* --- counters, gauges, registration --- *)

let registry_cases =
  [
    t "counters are monotone; negative add refused" `Quick (fun () ->
        let r = M.create () in
        let c = M.counter r ~help:"h" "xsb_test_total" in
        M.Counter.incr c;
        M.Counter.add c 41;
        check_int "value" 42 (M.Counter.value c);
        (match M.Counter.add c (-1) with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "negative add must raise");
        check_int "unchanged" 42 (M.Counter.value c));
    t "registration is find-or-create; kind clashes raise" `Quick (fun () ->
        let r = M.create () in
        let c1 = M.counter r ~help:"h" "xsb_test_total" in
        let c2 = M.counter r ~help:"h" "xsb_test_total" in
        M.Counter.incr c1;
        check_int "same child" 1 (M.Counter.value c2);
        let g1 = M.gauge r ~labels:[ ("a", "1") ] ~help:"h" "xsb_test_gauge" in
        let g2 = M.gauge r ~labels:[ ("a", "2") ] ~help:"h" "xsb_test_gauge" in
        M.Gauge.set g1 1.0;
        M.Gauge.set g2 2.0;
        close "distinct series" (M.Gauge.value g2) 2.0;
        match M.gauge r ~help:"h" "xsb_test_total" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "kind clash must raise");
    t "a disabled registry records nothing but still renders" `Quick (fun () ->
        let r = M.create () in
        let c = M.counter r ~help:"h" "xsb_test_total" in
        let h = M.histogram r ~help:"h" "xsb_test_seconds" in
        M.Counter.incr c;
        M.set_enabled r false;
        M.Counter.incr c;
        M.Histogram.observe h 1.0;
        check_int "counter frozen" 1 (M.Counter.value c);
        check_int "histogram frozen" 0 (M.Histogram.count h);
        match M.Exposition.validate (M.to_text r) with
        | Ok _ -> ()
        | Error why -> Alcotest.failf "disabled exposition invalid: %s" why);
  ]

(* --- the exposition encoder: golden snapshot --- *)

let golden_cases =
  [
    t "golden exposition snapshot" `Quick (fun () ->
        let r = M.create () in
        let c = M.counter r ~labels:[ ("op", "QUERY") ] ~help:"Requests, by op." "xsb_req_total" in
        M.Counter.add c 3;
        let g = M.gauge r ~help:"A gauge with\na newline and \\ backslash." "xsb_depth" in
        M.Gauge.set g 2.5;
        M.gauge_fn r ~labels:[ ("pred", "path/2\"quoted\"") ] ~help:"Bytes." "xsb_bytes"
          (fun () -> 128.0);
        let h = M.histogram r ~buckets:[| 0.1; 1.0 |] ~help:"Latency." "xsb_lat_seconds" in
        M.Histogram.observe h 0.05;
        M.Histogram.observe h 0.5;
        M.Histogram.observe h 5.0;
        let expected =
          "# HELP xsb_req_total Requests, by op.\n\
           # TYPE xsb_req_total counter\n\
           xsb_req_total{op=\"QUERY\"} 3\n\
           # HELP xsb_depth A gauge with\\na newline and \\\\ backslash.\n\
           # TYPE xsb_depth gauge\n\
           xsb_depth 2.5\n\
           # HELP xsb_bytes Bytes.\n\
           # TYPE xsb_bytes gauge\n\
           xsb_bytes{pred=\"path/2\\\"quoted\\\"\"} 128\n\
           # HELP xsb_lat_seconds Latency.\n\
           # TYPE xsb_lat_seconds histogram\n\
           xsb_lat_seconds_bucket{le=\"0.1\"} 1\n\
           xsb_lat_seconds_bucket{le=\"1\"} 2\n\
           xsb_lat_seconds_bucket{le=\"+Inf\"} 3\n\
           xsb_lat_seconds_sum 5.55\n\
           xsb_lat_seconds_count 3\n"
        in
        check_string "exposition" expected (M.to_text r));
  ]

(* --- parse-back property: every well-formed registry validates, and
   every registered family appears exactly once --- *)

let name_of kind i = Printf.sprintf "xsb_prop_%s_%d" kind i

let gen_registry =
  let open QCheck2.Gen in
  let label_value = string_size ~gen:(char_range 'a' 'z') (int_range 0 6) in
  let* n_counters = int_range 0 4 in
  let* n_gauges = int_range 0 4 in
  let* n_hists = int_range 0 2 in
  let* counter_vals = list_repeat n_counters (pair (int_range 0 1000) label_value) in
  let* gauge_vals = list_repeat n_gauges float in
  let* hist_obs = list_repeat n_hists (list_size (int_range 0 20) (float_range 1e-7 100.0)) in
  return (counter_vals, gauge_vals, hist_obs)

let build_registry (counter_vals, gauge_vals, hist_obs) =
  let r = M.create () in
  List.iteri
    (fun i (v, lv) ->
      let c = M.counter r ~labels:[ ("l", lv) ] ~help:"Prop counter." (name_of "total" i) in
      M.Counter.add c v)
    counter_vals;
  List.iteri
    (fun i v -> M.Gauge.set (M.gauge r ~help:"Prop gauge." (name_of "gauge" i)) v)
    gauge_vals;
  List.iteri
    (fun i obs ->
      let h = M.histogram r ~help:"Prop histogram." (name_of "seconds" i) in
      List.iter (M.Histogram.observe h) obs)
    hist_obs;
  r

let parse_back_prop =
  QCheck2.Test.make ~count:200 ~name:"exposition validates and is complete" gen_registry
    (fun ((counter_vals, gauge_vals, hist_obs) as spec) ->
      let r = build_registry spec in
      match M.Exposition.validate (M.to_text r) with
      | Error why -> QCheck2.Test.fail_reportf "invalid exposition: %s" why
      | Ok samples ->
          (* every registered family appears, under exactly one
             HELP/TYPE, with the value we recorded *)
          List.iteri
            (fun i (v, _) ->
              let got = M.Exposition.sum_family samples (name_of "total" i) in
              if int_of_float got <> v then
                QCheck2.Test.fail_reportf "counter %d: %g <> %d" i got v)
            counter_vals;
          List.iteri
            (fun i v ->
              match M.Exposition.find samples (name_of "gauge" i) with
              | Some got when got = v || (Float.is_nan got && Float.is_nan v) -> ()
              | other ->
                  QCheck2.Test.fail_reportf "gauge %d: %s <> %g" i
                    (match other with Some g -> string_of_float g | None -> "missing")
                    v)
            gauge_vals;
          List.iteri
            (fun i obs ->
              let fam = name_of "seconds" i in
              match M.Exposition.find samples (fam ^ "_count") with
              | Some got when int_of_float got = List.length obs -> ()
              | _ -> QCheck2.Test.fail_reportf "histogram %d count wrong" i)
            hist_obs;
          true)

(* hand-broken expositions the checker must reject *)
let checker_cases =
  [
    t "the checker rejects malformed expositions" `Quick (fun () ->
        let reject what text =
          match M.Exposition.validate text with
          | Ok _ -> Alcotest.failf "%s: accepted" what
          | Error _ -> ()
        in
        reject "sample without TYPE" "xsb_x 1\n";
        reject "duplicate series"
          "# HELP xsb_x h\n# TYPE xsb_x counter\nxsb_x 1\nxsb_x 2\n";
        reject "negative counter" "# HELP xsb_x h\n# TYPE xsb_x counter\nxsb_x -1\n";
        reject "declared but empty family" "# HELP xsb_x h\n# TYPE xsb_x counter\n";
        reject "non-cumulative buckets"
          "# HELP xsb_h h\n# TYPE xsb_h histogram\n\
           xsb_h_bucket{le=\"0.1\"} 5\nxsb_h_bucket{le=\"1\"} 3\n\
           xsb_h_bucket{le=\"+Inf\"} 5\nxsb_h_sum 1\nxsb_h_count 5\n";
        reject "+Inf bucket <> count"
          "# HELP xsb_h h\n# TYPE xsb_h histogram\n\
           xsb_h_bucket{le=\"+Inf\"} 5\nxsb_h_sum 1\nxsb_h_count 4\n";
        reject "missing _sum"
          "# HELP xsb_h h\n# TYPE xsb_h histogram\n\
           xsb_h_bucket{le=\"+Inf\"} 2\nxsb_h_count 2\n");
  ]

(* --- the monotonic clock --- *)

let mclock_cases =
  [
    t "mclock never steps backwards and tracks sleeps" `Quick (fun () ->
        let a = Xsb.Mclock.now () in
        Unix.sleepf 0.02;
        let b = Xsb.Mclock.now () in
        check_bool "advances" true (b > a);
        check_bool "by roughly the sleep" true (b -. a >= 0.015 && b -. a < 5.0);
        let prev = ref (Xsb.Mclock.now_ns ()) in
        for _ = 1 to 10_000 do
          let n = Xsb.Mclock.now_ns () in
          check_bool "nondecreasing" true (Int64.compare n !prev >= 0);
          prev := n
        done);
  ]

(* --- table-space accounting --- *)

let bytes_cases =
  [
    t "Canon.size_bytes grows with the term" `Quick (fun () ->
        let sz s = Xsb.Canon.size_bytes (Xsb.Canon.of_term (Xsb.Parser.term_of_string s)) in
        check_bool "atom > 0" true (sz "a" > 0);
        check_bool "struct > atom" true (sz "f(a,b)" > sz "a");
        check_bool "longer names cost more" true
          (sz "averylongatomnameindeed" > sz "a");
        check_bool "nesting costs" true (sz "f(g(h(1)))" > sz "f(1)"));
    t "engine accounting: bytes grow with answers and reset with tables" `Quick (fun () ->
        let s = Xsb.Session.create () in
        Xsb.Session.consult s
          (":- table path/2.\n\
            path(X,Y) :- edge(X,Y).\n\
            path(X,Y) :- path(X,Z), edge(Z,Y).\n"
          ^ String.concat ""
              (List.init 30 (fun i -> Printf.sprintf "edge(%d,%d).\n" (i + 1) (i + 2))));
        let eng = Xsb.Session.engine s in
        check_int "empty before any query" 0 (Xsb.Engine.table_space_bytes eng);
        ignore (Xsb.Session.count s "path(1,X)");
        let b1 = Xsb.Engine.table_space_bytes eng in
        check_bool "nonzero after a query" true (b1 > 0);
        ignore (Xsb.Session.count s "path(2,X)");
        let b2 = Xsb.Engine.table_space_bytes eng in
        check_bool "grows with a second table" true (b2 > b1);
        (match Xsb.Engine.table_bytes_by_pred eng with
        | [ (("path", 2), b) ] ->
            check_bool "per-pred sums to total" true (b = b2)
        | other -> Alcotest.failf "expected one path/2 row, got %d" (List.length other));
        Xsb.Engine.reset_tables eng;
        check_int "reset" 0 (Xsb.Engine.table_space_bytes eng));
    t "publish_metrics snapshots a valid exposition" `Quick (fun () ->
        let s = Xsb.Session.create () in
        Xsb.Session.consult s ":- table p/1.\np(1). p(2). p(3).";
        ignore (Xsb.Session.count s "p(X)");
        let reg = M.create () in
        Xsb.Engine.publish_metrics (Xsb.Session.engine s) reg;
        match M.Exposition.validate (M.to_text reg) with
        | Error why -> Alcotest.failf "invalid engine exposition: %s" why
        | Ok samples ->
            check_bool "at least the 3 answers" true
              (Option.value ~default:(-1.0)
                 (M.Exposition.find ~labels:[ ("kind", "answers") ] samples "xsb_engine_stat")
              >= 3.0);
            check_bool "table bytes exported" true
              (Option.value ~default:0.0 (M.Exposition.find samples "xsb_table_space_bytes")
              > 0.0);
            check_bool "per-pred gauge present" true
              (M.Exposition.find ~labels:[ ("pred", "p/1") ] samples "xsb_table_bytes" <> None));
  ]

let suite =
  histogram_cases @ registry_cases @ golden_cases @ checker_cases @ mclock_cases @ bytes_cases
  @ [ QCheck_alcotest.to_alcotest ~long:false parse_back_prop ]
