(* Replication (ISSUE PR 9): journal shipping end-to-end through the
   server — a primary serving its replication feed, a standby mirroring
   and applying it live, read-only refusal on the standby, snapshot
   bootstrap after the primary compacted, following across a rotation,
   and promotion to a writable primary with the acked prefix intact. *)

open Xsb_server
module J = Xsb.Journal
module R = Xsb_repl.Repl

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let with_dir = Suite_journal.with_dir

let with_server cfg f =
  let server = Server.start { cfg with Server.port = 0 } in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let with_client server f =
  let c = Client.connect (Server.port server) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ok = function
  | Ok payload -> payload
  | Error { Client.code; message } ->
      Alcotest.failf "unexpected error %s: %s" (Protocol.err_code_name code) message

let rows_of = function
  | Client.Rows { rows; _ } -> rows
  | Client.Query_timeout _ -> Alcotest.fail "unexpected timeout"
  | Client.Query_error { code; message } ->
      Alcotest.failf "unexpected query error %s: %s" (Protocol.err_code_name code) message

(* the single core interleaves the applier with everything else, so
   settling is a yield loop with a generous deadline, not a sleep *)
let settle ?(timeout = 15.0) what pred =
  let deadline = Xsb.Mclock.now () +. timeout in
  let rec go () =
    if pred () then ()
    else if Xsb.Mclock.now () > deadline then Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let primary_cfg ?(compact_bytes = 0) dir =
  {
    Server.default_config with
    Server.data_dir = Some dir;
    sync = J.default_group;
    compact_bytes;
    repl_port = Some 0;
    keep_generations = 2;
  }

let standby_cfg dir primary =
  {
    Server.default_config with
    Server.data_dir = Some dir;
    replica_of = Some primary;
    compact_bytes = 0;
  }

let repl_port server =
  match Server.repl_listen_port server with
  | Some p -> p
  | None -> Alcotest.fail "primary has no replication port"

let standby_status server =
  match Server.replica_status server with
  | Some s -> s
  | None -> Alcotest.fail "server is not a standby"

(* caught up = the standby's applied frontier equals the primary's
   durable position exactly (the lag gauge alone can read 0 before the
   first heartbeat taught the standby the primary's watermark) *)
let wait_caught_up primary standby =
  settle "standby catch-up" (fun () ->
      let s = standby_status standby in
      match Server.journal primary with
      | None -> false
      | Some j ->
          let pgen, poff = J.durable_position j in
          s.R.Standby.connected && s.R.Standby.fatal = None
          && Int64.equal s.R.Standby.generation pgen
          && s.R.Standby.applied_off = poff
          && s.R.Standby.lag_bytes = 0)

let suite =
  [
    t "standby follows live writes and serves the same answers" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                with_server (primary_cfg pdir) (fun primary ->
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        with_client primary (fun c ->
                            ignore (ok (Client.assert_ c "edge(1,2)"));
                            ignore (ok (Client.assert_ c "edge(2,3)"));
                            ignore (ok (Client.assert_ c "path(X,Y) :- edge(X,Y)")));
                        wait_caught_up primary standby;
                        let s = standby_status standby in
                        check_bool "records applied" true (s.R.Standby.applied_records >= 3);
                        check_bool "no fatal" true (s.R.Standby.fatal = None);
                        with_client standby (fun c ->
                            check_int "same answers as the primary" 2
                              (List.length (rows_of (Client.query c "path(X,Y)")));
                            (* mutations are refused with READONLY *)
                            match Client.assert_ c "edge(9,9)" with
                            | Error { Client.code = Protocol.Readonly; _ } -> ()
                            | Error { Client.code; _ } ->
                                Alcotest.failf "wrong code %s" (Protocol.err_code_name code)
                            | Ok _ -> Alcotest.fail "standby accepted a mutation");
                        (* writes made while the standby is already
                           attached stream straight through *)
                        with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(3,4)")));
                        wait_caught_up primary standby;
                        with_client standby (fun c ->
                            check_int "the new edge arrived" 3
                              (List.length (rows_of (Client.query c "edge(X,Y)")))))))));
    t "a standby joining after compaction bootstraps from a snapshot" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                with_server (primary_cfg pdir) (fun primary ->
                    with_client primary (fun c ->
                        ignore (ok (Client.assert_ c "edge(1,2)"));
                        ignore (ok (Client.assert_ c "edge(2,3)")));
                    (* rotate: the joining standby can no longer replay
                       generation 1 record by record — it must be seeded *)
                    (match Server.journal primary with
                    | Some j -> J.compact j
                    | None -> Alcotest.fail "no journal");
                    with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(3,4)")));
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        wait_caught_up primary standby;
                        let s = standby_status standby in
                        check_bool "seeded by a snapshot" true
                          (s.R.Standby.snapshots_received >= 1);
                        check_bool "mirroring the post-snapshot generation" true
                          (Int64.compare s.R.Standby.generation 1L > 0);
                        with_client standby (fun c ->
                            check_int "snapshot + tail both present" 3
                              (List.length (rows_of (Client.query c "edge(X,Y)")))))))));
    t "an attached standby follows the primary across a rotation" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                with_server (primary_cfg pdir) (fun primary ->
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(1,2)")));
                        wait_caught_up primary standby;
                        (match Server.journal primary with
                        | Some j -> J.compact j
                        | None -> Alcotest.fail "no journal");
                        with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(2,3)")));
                        wait_caught_up primary standby;
                        let s = standby_status standby in
                        check_bool "crossed the generation boundary" true
                          (Int64.compare s.R.Standby.generation 1L > 0);
                        check_bool "no fatal" true (s.R.Standby.fatal = None);
                        with_client standby (fun c ->
                            check_int "records from both generations" 2
                              (List.length (rows_of (Client.query c "edge(X,Y)")))))))));
    t "promotion: the standby becomes a writable primary, prefix intact" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                with_server (primary_cfg pdir) (fun primary ->
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        with_client primary (fun c ->
                            ignore (ok (Client.assert_ c "edge(1,2)"));
                            ignore (ok (Client.assert_ c "edge(2,3)")));
                        wait_caught_up primary standby;
                        (* the primary dies; the standby takes over *)
                        Server.stop primary;
                        with_client standby (fun c ->
                            ignore (ok (Client.promote c));
                            (* PROMOTE twice is a clean error, not a wedge *)
                            (match Client.promote c with
                            | Error { Client.code = Protocol.Bad_request; _ } -> ()
                            | _ -> Alcotest.fail "second PROMOTE should be BAD_REQUEST");
                            check_bool "no longer a replica" true
                              (Server.replica_status standby = None);
                            check_bool "writes allowed" true (Server.read_only standby = None);
                            ignore (ok (Client.assert_ c "edge(3,4)"));
                            check_int "replicated prefix + new write" 3
                              (List.length (rows_of (Client.query c "edge(X,Y)"))))));
                (* the promoted node's data directory recovers standalone:
                   nothing acked (replicated or written post-promotion)
                   was lost *)
                with_server { Server.default_config with Server.data_dir = Some sdir }
                  (fun reopened ->
                    with_client reopened (fun c ->
                        check_int "durable across restart" 3
                          (List.length (rows_of (Client.query c "edge(X,Y)"))))))));
  ]
