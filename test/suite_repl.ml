(* Replication (ISSUE PR 9): journal shipping end-to-end through the
   server — a primary serving its replication feed, a standby mirroring
   and applying it live, read-only refusal on the standby, snapshot
   bootstrap after the primary compacted, following across a rotation,
   and promotion to a writable primary with the acked prefix intact. *)

open Xsb_server
module J = Xsb.Journal
module R = Xsb_repl.Repl

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let with_dir = Suite_journal.with_dir

let with_server cfg f =
  let server = Server.start { cfg with Server.port = 0 } in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let with_client server f =
  let c = Client.connect (Server.port server) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ok = function
  | Ok payload -> payload
  | Error { Client.code; message } ->
      Alcotest.failf "unexpected error %s: %s" (Protocol.err_code_name code) message

let rows_of = function
  | Client.Rows { rows; _ } -> rows
  | Client.Query_timeout _ -> Alcotest.fail "unexpected timeout"
  | Client.Query_error { code; message } ->
      Alcotest.failf "unexpected query error %s: %s" (Protocol.err_code_name code) message

(* the single core interleaves the applier with everything else, so
   settling is a yield loop with a generous deadline, not a sleep *)
let settle ?(timeout = 15.0) what pred =
  let deadline = Xsb.Mclock.now () +. timeout in
  let rec go () =
    if pred () then ()
    else if Xsb.Mclock.now () > deadline then Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let primary_cfg ?(compact_bytes = 0) dir =
  {
    Server.default_config with
    Server.data_dir = Some dir;
    sync = J.default_group;
    compact_bytes;
    repl_port = Some 0;
    keep_generations = 2;
  }

let standby_cfg dir primary =
  {
    Server.default_config with
    Server.data_dir = Some dir;
    replica_of = Some primary;
    compact_bytes = 0;
  }

let repl_port server =
  match Server.repl_listen_port server with
  | Some p -> p
  | None -> Alcotest.fail "primary has no replication port"

let standby_status server =
  match Server.replica_status server with
  | Some s -> s
  | None -> Alcotest.fail "server is not a standby"

(* caught up = the standby's applied frontier equals the primary's
   durable position exactly (the lag gauge alone can read 0 before the
   first heartbeat taught the standby the primary's watermark) *)
let wait_caught_up primary standby =
  settle "standby catch-up" (fun () ->
      let s = standby_status standby in
      match Server.journal primary with
      | None -> false
      | Some j ->
          let pgen, poff = J.durable_position j in
          s.R.Standby.connected && s.R.Standby.fatal = None
          && Int64.equal s.R.Standby.generation pgen
          && s.R.Standby.applied_off = poff
          && s.R.Standby.lag_bytes = 0)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* the value of an unlabelled gauge/counter line in a Prometheus text
   exposition, e.g. [metric_value text "xsb_repl_sync_degraded"] *)
let metric_value text name =
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
             float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))
         | _ -> None)

let suite =
  [
    t "standby follows live writes and serves the same answers" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                with_server (primary_cfg pdir) (fun primary ->
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        with_client primary (fun c ->
                            ignore (ok (Client.assert_ c "edge(1,2)"));
                            ignore (ok (Client.assert_ c "edge(2,3)"));
                            ignore (ok (Client.assert_ c "path(X,Y) :- edge(X,Y)")));
                        wait_caught_up primary standby;
                        let s = standby_status standby in
                        check_bool "records applied" true (s.R.Standby.applied_records >= 3);
                        check_bool "no fatal" true (s.R.Standby.fatal = None);
                        with_client standby (fun c ->
                            check_int "same answers as the primary" 2
                              (List.length (rows_of (Client.query c "path(X,Y)")));
                            (* mutations are refused with READONLY *)
                            match Client.assert_ c "edge(9,9)" with
                            | Error { Client.code = Protocol.Readonly; _ } -> ()
                            | Error { Client.code; _ } ->
                                Alcotest.failf "wrong code %s" (Protocol.err_code_name code)
                            | Ok _ -> Alcotest.fail "standby accepted a mutation");
                        (* writes made while the standby is already
                           attached stream straight through *)
                        with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(3,4)")));
                        wait_caught_up primary standby;
                        with_client standby (fun c ->
                            check_int "the new edge arrived" 3
                              (List.length (rows_of (Client.query c "edge(X,Y)")))))))));
    t "a standby joining after compaction bootstraps from a snapshot" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                with_server (primary_cfg pdir) (fun primary ->
                    with_client primary (fun c ->
                        ignore (ok (Client.assert_ c "edge(1,2)"));
                        ignore (ok (Client.assert_ c "edge(2,3)")));
                    (* rotate: the joining standby can no longer replay
                       generation 1 record by record — it must be seeded *)
                    (match Server.journal primary with
                    | Some j -> J.compact j
                    | None -> Alcotest.fail "no journal");
                    with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(3,4)")));
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        wait_caught_up primary standby;
                        let s = standby_status standby in
                        check_bool "seeded by a snapshot" true
                          (s.R.Standby.snapshots_received >= 1);
                        check_bool "mirroring the post-snapshot generation" true
                          (Int64.compare s.R.Standby.generation 1L > 0);
                        with_client standby (fun c ->
                            check_int "snapshot + tail both present" 3
                              (List.length (rows_of (Client.query c "edge(X,Y)")))))))));
    t "an attached standby follows the primary across a rotation" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                with_server (primary_cfg pdir) (fun primary ->
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(1,2)")));
                        wait_caught_up primary standby;
                        (match Server.journal primary with
                        | Some j -> J.compact j
                        | None -> Alcotest.fail "no journal");
                        with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(2,3)")));
                        wait_caught_up primary standby;
                        let s = standby_status standby in
                        check_bool "crossed the generation boundary" true
                          (Int64.compare s.R.Standby.generation 1L > 0);
                        check_bool "no fatal" true (s.R.Standby.fatal = None);
                        with_client standby (fun c ->
                            check_int "records from both generations" 2
                              (List.length (rows_of (Client.query c "edge(X,Y)")))))))));
    t "promotion: the standby becomes a writable primary, prefix intact" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                with_server (primary_cfg pdir) (fun primary ->
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        with_client primary (fun c ->
                            ignore (ok (Client.assert_ c "edge(1,2)"));
                            ignore (ok (Client.assert_ c "edge(2,3)")));
                        wait_caught_up primary standby;
                        (* the primary dies; the standby takes over *)
                        Server.stop primary;
                        with_client standby (fun c ->
                            ignore (ok (Client.promote c));
                            (* PROMOTE twice is a clean error, not a wedge *)
                            (match Client.promote c with
                            | Error { Client.code = Protocol.Bad_request; _ } -> ()
                            | _ -> Alcotest.fail "second PROMOTE should be BAD_REQUEST");
                            check_bool "no longer a replica" true
                              (Server.replica_status standby = None);
                            check_bool "writes allowed" true (Server.read_only standby = None);
                            ignore (ok (Client.assert_ c "edge(3,4)"));
                            check_int "replicated prefix + new write" 3
                              (List.length (rows_of (Client.query c "edge(X,Y)"))))));
                (* the promoted node's data directory recovers standalone:
                   nothing acked (replicated or written post-promotion)
                   was lost *)
                with_server { Server.default_config with Server.data_dir = Some sdir }
                  (fun reopened ->
                    with_client reopened (fun c ->
                        check_int "durable across restart" 3
                          (List.length (rows_of (Client.query c "edge(X,Y)"))))))));
    t "fan-out: three standbys follow; losing one is invisible to the rest" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun d1 ->
                with_dir (fun d2 ->
                    with_dir (fun d3 ->
                        with_server (primary_cfg pdir) (fun primary ->
                            let ep = ("127.0.0.1", repl_port primary) in
                            with_server (standby_cfg d1 ep) (fun sb1 ->
                                with_server (standby_cfg d2 ep) (fun sb2 ->
                                    let sb3 =
                                      Server.start { (standby_cfg d3 ep) with Server.port = 0 }
                                    in
                                    let stopped3 = ref false in
                                    Fun.protect
                                      ~finally:(fun () ->
                                        if not !stopped3 then Server.stop sb3)
                                    @@ fun () ->
                                    with_client primary (fun c ->
                                        ignore (ok (Client.assert_ c "edge(1,2)"));
                                        ignore (ok (Client.assert_ c "edge(2,3)")));
                                    wait_caught_up primary sb1;
                                    wait_caught_up primary sb2;
                                    wait_caught_up primary sb3;
                                    (* one standby dies mid-topology *)
                                    Server.stop sb3;
                                    stopped3 := true;
                                    with_client primary (fun c ->
                                        ignore (ok (Client.assert_ c "edge(3,4)")));
                                    wait_caught_up primary sb1;
                                    wait_caught_up primary sb2;
                                    List.iter
                                      (fun sb ->
                                        with_client sb (fun c ->
                                            check_int "survivor serves every edge" 3
                                              (List.length
                                                 (rows_of (Client.query c "edge(X,Y)")))))
                                      [ sb1; sb2 ]))))))));
    t "semi-sync: the ack implies the write is already on the standby" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                let cfg =
                  { (primary_cfg pdir) with Server.sync_standbys = 1; sync_timeout_ms = 5_000 }
                in
                with_server cfg (fun primary ->
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        wait_caught_up primary standby;
                        with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(1,2)")));
                        (* no settling here: the commit barrier already
                           waited for the standby's acknowledgement *)
                        let s = standby_status standby in
                        let j =
                          match Server.journal primary with
                          | Some j -> j
                          | None -> Alcotest.fail "no journal"
                        in
                        let pgen, poff = J.durable_position j in
                        check_bool "standby at (or past) the acked position" true
                          (Int64.equal s.R.Standby.generation pgen
                          && s.R.Standby.applied_off >= poff);
                        with_client primary (fun c ->
                            check_bool "not degraded" true
                              (metric_value (ok (Client.metrics c)) "xsb_repl_sync_degraded"
                              = Some 0.0)))))));
    t "semi-sync degrades to async with no standby, and recovers" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                let cfg =
                  { (primary_cfg pdir) with Server.sync_standbys = 1; sync_timeout_ms = 500 }
                in
                with_server cfg (fun primary ->
                    (* no standby attached: the commit must still ack
                       (degraded), never freeze the writer *)
                    let t0 = Xsb.Mclock.now () in
                    with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(1,2)")));
                    check_bool "acked without any standby" true (Xsb.Mclock.now () -. t0 < 10.0);
                    with_client primary (fun c ->
                        check_bool "degraded gauge up" true
                          (metric_value (ok (Client.metrics c)) "xsb_repl_sync_degraded"
                          = Some 1.0));
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        wait_caught_up primary standby;
                        with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(2,3)")));
                        with_client primary (fun c ->
                            check_bool "degraded clears once a standby acks in time" true
                              (metric_value (ok (Client.metrics c)) "xsb_repl_sync_degraded"
                              = Some 0.0));
                        wait_caught_up primary standby)))));
    t "ROLE: identity and peers; discover_primary picks the writable node" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                let cfg = { (primary_cfg pdir) with Server.peers = [ ("127.0.0.1", 1) ] } in
                with_server cfg (fun primary ->
                    with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                      (fun standby ->
                        wait_caught_up primary standby;
                        with_client primary (fun c ->
                            match Client.role c with
                            | Error _ -> Alcotest.fail "ROLE refused on the primary"
                            | Ok i ->
                                check_bool "primary role" true
                                  (i.Client.role = Client.Primary_role);
                                check_bool "writable" true (not i.Client.read_only);
                                check_bool "epoch >= 1" true (Int64.compare i.Client.epoch 1L >= 0);
                                check_bool "repl feed advertised" true
                                  (i.Client.repl_port = Some (repl_port primary));
                                check_bool "peers echoed" true
                                  (i.Client.peers = [ ("127.0.0.1", 1) ]));
                        with_client standby (fun c ->
                            match Client.role c with
                            | Error _ ->
                                Alcotest.fail "ROLE refused on the standby (must answer read-only)"
                            | Ok i ->
                                check_bool "standby role" true
                                  (i.Client.role = Client.Standby_role);
                                check_bool "read-only" true i.Client.read_only;
                                check_bool "healthy applier" true (i.Client.fatal = None));
                        let eps =
                          [
                            ("127.0.0.1", Server.port standby);
                            ("127.0.0.1", Server.port primary);
                            ("127.0.0.1", 1);
                          ]
                        in
                        match Client.discover_primary eps with
                        | Some ((_, p), i) ->
                            check_int "discovery lands on the primary" (Server.port primary) p;
                            check_bool "discovered role is primary" true
                              (i.Client.role = Client.Primary_role)
                        | None -> Alcotest.fail "no primary discovered")))));
    t "split-brain: the promoted timeline fences a diverged old primary" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                (let old_primary = Server.start { (primary_cfg pdir) with Server.port = 0 } in
                 let stopped_old = ref false in
                 Fun.protect
                   ~finally:(fun () -> if not !stopped_old then Server.stop old_primary)
                 @@ fun () ->
                 let bcfg =
                   {
                     (standby_cfg sdir ("127.0.0.1", repl_port old_primary)) with
                     Server.repl_port = Some 0;
                     keep_generations = 2;
                   }
                 in
                 with_server bcfg (fun b ->
                     with_client old_primary (fun c ->
                         ignore (ok (Client.assert_ c "edge(1,2)"));
                         ignore (ok (Client.assert_ c "edge(2,3)")));
                     wait_caught_up old_primary b;
                     (* failover while the old primary is still alive
                        and writable: a split brain *)
                     with_client b (fun c -> ignore (ok (Client.promote c)));
                     check_bool "promotion bumped the epoch" true (Server.epoch b = Some 2L);
                     (* both sides accept writes — the timelines diverge *)
                     with_client b (fun c -> ignore (ok (Client.assert_ c "edge(100,101)")));
                     with_client old_primary (fun c ->
                         ignore (ok (Client.assert_ c "edge(666,666)")));
                     Server.stop old_primary;
                     stopped_old := true;
                     (* the deposed primary restarts as a standby of the
                        new timeline: it diverged past epoch 1's fence,
                        so it must be refused, not silently rewound *)
                     with_server (standby_cfg pdir ("127.0.0.1", repl_port b)) (fun fenced ->
                         settle "fencing verdict" (fun () ->
                             (standby_status fenced).R.Standby.fatal <> None);
                         (match (standby_status fenced).R.Standby.fatal with
                         | Some msg -> check_bool "told it is fenced" true (contains msg "fenced")
                         | None -> assert false);
                         with_client fenced (fun c ->
                             check_int "fenced node kept its (divergent) state" 3
                               (List.length (rows_of (Client.query c "edge(X,Y)")))));
                     with_client b (fun c ->
                         check_int "new timeline: replicated prefix + its own write" 3
                           (List.length (rows_of (Client.query c "edge(X,Y)"))))));
                (* the new primary's acked state and epoch survive a
                   restart of its data directory *)
                with_server { Server.default_config with Server.data_dir = Some sdir }
                  (fun reopened ->
                    check_bool "epoch durable on the new timeline" true
                      (Server.epoch reopened = Some 2L);
                    with_client reopened (fun c ->
                        check_int "acked prefix + post-promotion write" 3
                          (List.length (rows_of (Client.query c "edge(X,Y)"))))))));
    t "auto-promote: a silent primary is failed over, epoch bumped" `Quick (fun () ->
        with_dir (fun pdir ->
            with_dir (fun sdir ->
                let primary = Server.start { (primary_cfg pdir) with Server.port = 0 } in
                let stopped = ref false in
                Fun.protect ~finally:(fun () -> if not !stopped then Server.stop primary)
                @@ fun () ->
                let bcfg =
                  {
                    (standby_cfg sdir ("127.0.0.1", repl_port primary)) with
                    Server.auto_promote = true;
                    failover_timeout_ms = 400;
                    repl_port = Some 0;
                    keep_generations = 2;
                  }
                in
                with_server bcfg (fun b ->
                    with_client primary (fun c -> ignore (ok (Client.assert_ c "edge(1,2)")));
                    wait_caught_up primary b;
                    (* the primary dies; nobody calls PROMOTE *)
                    Server.stop primary;
                    stopped := true;
                    settle ~timeout:20.0 "automatic promotion" (fun () ->
                        Server.replica_status b = None && Server.read_only b = None);
                    check_bool "epoch bumped by the automatic promotion" true
                      (Server.epoch b = Some 2L);
                    with_client b (fun c ->
                        ignore (ok (Client.assert_ c "edge(2,3)"));
                        check_int "old prefix + new write" 2
                          (List.length (rows_of (Client.query c "edge(X,Y)"))))))));
    t "crash injection at every replication I/O site: the stream converges" `Quick (fun () ->
        let cases =
          [
            ("repl.stream.send", Xsb.Failpoint.Crash);
            ("repl.stream.send", Xsb.Failpoint.Short_write 3);
            ("repl.standby.apply", Xsb.Failpoint.Crash);
            ("repl.standby.ack", Xsb.Failpoint.Crash);
          ]
        in
        List.iter
          (fun (site, action) ->
            List.iter
              (fun after ->
                Fun.protect ~finally:Xsb.Failpoint.reset @@ fun () ->
                with_dir (fun pdir ->
                    with_dir (fun sdir ->
                        with_server (primary_cfg pdir) (fun primary ->
                            with_server (standby_cfg sdir ("127.0.0.1", repl_port primary))
                              (fun standby ->
                                wait_caught_up primary standby;
                                Xsb.Failpoint.arm ~after site action;
                                (* write until the armed site has fired
                                   (the streamer coalesces records into
                                   chunks, so a fixed count could pass
                                   under the seed), pacing slightly so
                                   each record ships in its own frame *)
                                let wrote = ref 0 in
                                with_client primary (fun c ->
                                    while
                                      !wrote < 4
                                      || (Xsb.Failpoint.hits site <= after && !wrote < 60)
                                    do
                                      incr wrote;
                                      ignore
                                        (ok
                                           (Client.assert_ c
                                              (Printf.sprintf "edge(%d,%d)" !wrote (!wrote + 1))));
                                      Thread.delay 0.01
                                    done);
                                check_bool (site ^ " actually triggered") true
                                  (Xsb.Failpoint.hits site > after);
                                (* the injected crash drops the stream;
                                   the standby reconnects and resumes
                                   from its mirrored position — every
                                   acked record converges exactly once *)
                                wait_caught_up primary standby;
                                with_client standby (fun c ->
                                    check_int
                                      (Printf.sprintf "converged after %s (seed %d)" site after)
                                      !wrote
                                      (List.length (rows_of (Client.query c "edge(X,Y)")))))))))
              [ 0; 3 ])
          cases);
  ]
