open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let c s = Canon.of_term (Parser.term_of_string s)

let truth_testable =
  Alcotest.testable
    (fun ppf v ->
      Fmt.string ppf
        (match v with Ground.True -> "true" | Ground.False -> "false" | Ground.Undefined -> "undefined"))
    ( = )

let check_truth = Alcotest.check truth_testable

let wfs_session text =
  let s = Session.create ~mode:Machine.Well_founded () in
  Session.consult s text;
  s

let truth_of s q =
  match Session.wfs_query s q with
  | [] -> Ground.False
  | [ { Residual.truth; _ } ] -> truth
  | _ -> Alcotest.failf "multiple answers for %s" q

let cases =
  [
    t "alternating fixpoint: definite program" `Quick (fun () ->
        let g = Ground.create () in
        Ground.add_fact g (c "a");
        Ground.add_rule g (c "b") ~pos:[ c "a" ] ~neg:[];
        Ground.add_rule g (c "d") ~pos:[ c "e" ] ~neg:[];
        check_truth "a" Ground.True (Ground.wfs g (c "a"));
        check_truth "b" Ground.True (Ground.wfs g (c "b"));
        check_truth "d" Ground.False (Ground.wfs g (c "d"));
        check_truth "unknown atom" Ground.False (Ground.wfs g (c "zzz")));
    t "alternating fixpoint: stratified negation" `Quick (fun () ->
        let g = Ground.create () in
        Ground.add_fact g (c "q");
        Ground.add_rule g (c "p") ~pos:[] ~neg:[ c "q" ];
        Ground.add_rule g (c "r") ~pos:[] ~neg:[ c "s" ];
        check_truth "p" Ground.False (Ground.wfs g (c "p"));
        check_truth "r" Ground.True (Ground.wfs g (c "r")));
    t "alternating fixpoint: negative loop is undefined" `Quick (fun () ->
        let g = Ground.create () in
        Ground.add_rule g (c "p") ~pos:[] ~neg:[ c "q" ];
        Ground.add_rule g (c "q") ~pos:[] ~neg:[ c "p" ];
        check_truth "p" Ground.Undefined (Ground.wfs g (c "p"));
        check_truth "q" Ground.Undefined (Ground.wfs g (c "q")));
    t "positive loop is false, not undefined" `Quick (fun () ->
        let g = Ground.create () in
        Ground.add_rule g (c "p") ~pos:[ c "q" ] ~neg:[];
        Ground.add_rule g (c "q") ~pos:[ c "p" ] ~neg:[];
        check_truth "p" Ground.False (Ground.wfs g (c "p")));
    t "the barber paradox" `Quick (fun () ->
        (* shaves(barber,X) :- not shaves(X,X) — undefined for the barber *)
        let g = Ground.create () in
        Ground.add_rule g (c "shaves(b,b)") ~pos:[] ~neg:[ c "shaves(b,b)" ];
        check_truth "barber" Ground.Undefined (Ground.wfs g (c "shaves(b,b)")));
    t "wfs_partition" `Quick (fun () ->
        let g = Ground.create () in
        Ground.add_fact g (c "t");
        Ground.add_rule g (c "u") ~pos:[] ~neg:[ c "u" ];
        Ground.add_rule g (c "f") ~pos:[ c "nothing" ] ~neg:[];
        let ts, us, fs = Ground.wfs_partition g in
        check_int "true" 1 (List.length ts);
        check_int "undefined" 1 (List.length us);
        check_int "false" 2 (List.length fs));
    t "stable models of an even loop" `Quick (fun () ->
        let g = Ground.create () in
        Ground.add_rule g (c "p") ~pos:[] ~neg:[ c "q" ];
        Ground.add_rule g (c "q") ~pos:[] ~neg:[ c "p" ];
        match Ground.stable_models g with
        | Some models -> check_int "two models" 2 (List.length models)
        | None -> Alcotest.fail "expected enumeration");
    t "odd loop has no stable model but wfs is undefined" `Quick (fun () ->
        let g = Ground.create () in
        Ground.add_rule g (c "p") ~pos:[] ~neg:[ c "p" ];
        check_truth "undefined" Ground.Undefined (Ground.wfs g (c "p"));
        match Ground.stable_models g with
        | Some models -> check_int "none" 0 (List.length models)
        | None -> Alcotest.fail "expected enumeration");
    t "stable models respect the wfs core" `Quick (fun () ->
        let g = Ground.create () in
        Ground.add_fact g (c "base");
        Ground.add_rule g (c "p") ~pos:[ c "base" ] ~neg:[ c "q" ];
        Ground.add_rule g (c "q") ~pos:[ c "base" ] ~neg:[ c "p" ];
        match Ground.stable_models g with
        | Some models ->
            check_int "two" 2 (List.length models);
            List.iter
              (fun m -> check_bool "base in every model" true (List.exists (Canon.equal (c "base")) m))
              models
        | None -> Alcotest.fail "expected enumeration");
    t "engine: undefined pair via residual" `Quick (fun () ->
        let s = wfs_session ":- table p/0, q/0, r/0, s/0.\np :- tnot(q).\nq :- tnot(p).\nr :- tnot(s).\ns." in
        check_truth "p" Ground.Undefined (truth_of s "p");
        check_truth "q" Ground.Undefined (truth_of s "q");
        check_truth "r" Ground.False (truth_of s "r");
        check_truth "s" Ground.True (truth_of s "s"));
    t "engine: win with a draw cycle" `Quick (fun () ->
        let s =
          wfs_session
            ":- table win/1.\n\
             win(X) :- move(X,Y), tnot(win(Y)).\n\
             move(a,b). move(b,a). move(b,c). move(c,d)."
        in
        check_truth "win(a)" Ground.Undefined (truth_of s "win(a)");
        check_truth "win(b)" Ground.Undefined (truth_of s "win(b)");
        check_truth "win(c)" Ground.True (truth_of s "win(c)");
        check_truth "win(d)" Ground.False (truth_of s "win(d)"));
    t "engine: stratified programs have no undefined atoms" `Quick (fun () ->
        let s =
          wfs_session
            ":- table reach/1, blocked/1.\n\
             reach(1).\n\
             reach(Y) :- reach(X), e(X,Y).\n\
             blocked(X) :- n(X), tnot(reach(X)).\n\
             e(1,2). n(1). n(2). n(3)."
        in
        check_truth "blocked(3)" Ground.True (truth_of s "blocked(3)");
        check_truth "blocked(2)" Ground.False (truth_of s "blocked(2)");
        let answers = Session.wfs_query s "blocked(X)" in
        check_bool "all definite" true
          (List.for_all (fun a -> a.Residual.truth = Ground.True) answers));
    t "engine: stable models from the residual (ref [5])" `Quick (fun () ->
        let s = wfs_session ":- table p/0, q/0.\np :- tnot(q).\nq :- tnot(p)." in
        ignore (Session.wfs_query s "p");
        match Residual.stable_models (Session.engine s) with
        | Some models -> check_int "two 2-valued stable models" 2 (List.length models)
        | None -> Alcotest.fail "expected models");
    t "engine: three-valued win over a 2-cycle has matching stable models" `Quick (fun () ->
        let s =
          wfs_session ":- table win/1.\nwin(X) :- move(X,Y), tnot(win(Y)).\nmove(a,b). move(b,a)."
        in
        ignore (Session.wfs_query s "win(a)");
        match Residual.stable_models (Session.engine s) with
        | Some models ->
            (* {win(a)} and {win(b)} *)
            check_int "two models" 2 (List.length models);
            List.iter (fun m -> check_int "one winner each" 1 (List.length m)) models
        | None -> Alcotest.fail "expected models");
    (* regression: --wfs looped forever on mutual negation over
       untabled predicates — solve_tnot fell back to SLD
       negation-as-failure, which recursed without ever creating a
       table. Well-founded mode now auto-tables such predicates. The
       step bound turns any regression into a Step_limit failure
       instead of a hang. *)
    t "engine: mutual negation without table directives terminates" `Quick (fun () ->
        let s = wfs_session "p :- tnot(q).\nq :- tnot(p)." in
        Engine.set_max_steps (Session.engine s) 200_000;
        check_truth "p" Ground.Undefined (truth_of s "p");
        check_truth "q" Ground.Undefined (truth_of s "q"));
    t "engine: untabled 3-cycle of negations is undefined" `Quick (fun () ->
        let s = wfs_session "a :- tnot(b).\nb :- tnot(c).\nc :- tnot(a)." in
        Engine.set_max_steps (Session.engine s) 200_000;
        check_truth "a" Ground.Undefined (truth_of s "a");
        check_truth "b" Ground.Undefined (truth_of s "b");
        check_truth "c" Ground.Undefined (truth_of s "c"));
    t "engine: mixed stratified and unstratified, untabled" `Quick (fun () ->
        let s =
          wfs_session "p :- tnot(q).\nq :- tnot(p).\nr :- tnot(s).\ns.\nk :- tnot(missing)."
        in
        Engine.set_max_steps (Session.engine s) 200_000;
        check_truth "p" Ground.Undefined (truth_of s "p");
        check_truth "r" Ground.False (truth_of s "r");
        check_truth "s" Ground.True (truth_of s "s");
        (* tnot over a predicate with no clauses at all still uses plain
           negation-as-failure: no table needed for a loop-free goal *)
        check_truth "k" Ground.True (truth_of s "k"));
    t "residual: distinct numeric solutions do not collide" `Quick (fun () ->
        (* regression: answers were merged by their printed form, and
           the integer 1 and the float 1.0 print identically *)
        let s = wfs_session ":- table q/1.\nq(1).\nq(1.0)." in
        let answers = Session.wfs_query s "q(X)" in
        check_int "two solutions" 2 (List.length answers);
        check_bool "all true" true
          (List.for_all (fun a -> a.Residual.truth = Ground.True) answers));
    t "delay_truth conjunctions" `Quick (fun () ->
        let g = Ground.create () in
        Ground.add_fact g (c "t");
        Ground.add_rule g (c "u") ~pos:[] ~neg:[ c "u" ];
        check_truth "true and not-false" Ground.True
          (Residual.delay_truth g [ Machine.Dpos (c "k", c "t"); Machine.Dneg (c "zzz") ]);
        check_truth "undefined member" Ground.Undefined
          (Residual.delay_truth g [ Machine.Dpos (c "k", c "t"); Machine.Dneg (c "u") ]);
        check_truth "false member" Ground.False
          (Residual.delay_truth g [ Machine.Dneg (c "t") ]));
  ]

let suite = cases
