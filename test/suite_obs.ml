(* The observability layer (ISSUE PR 3): JSON codec, trace-event sinks,
   the profiling registry, the introspection builtins, and the
   stats-reset-on-abolish regression. *)

open Xsb

let t = Alcotest.test_case
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let session ?scheduling text =
  let s = Session.create ?scheduling () in
  Session.consult s text;
  s

let tc_cycle =
  ":- table path/2.\n\
   path(X,Y) :- edge(X,Y).\n\
   path(X,Y) :- path(X,Z), edge(Z,Y).\n\
   edge(1,2). edge(2,3). edge(3,4). edge(4,1)."

let win_chain =
  ":- table win/1.\n\
   win(X) :- move(X,Y), tnot(win(Y)).\n\
   move(1,2). move(2,3). move(3,4). move(4,5)."

let event ?(seq = 1) ?(step = 0) ?(subgoal = 0) ?(pred = "p/1") ?(call = "p(1)")
    ?(depth = 0) kind =
  { Obs.Event.seq; step; subgoal; pred; call; depth; kind }

(* --- the JSON codec --- *)

let json_cases =
  [
    t "json: roundtrip of a nested value" `Quick (fun () ->
        let v =
          Json.Obj
            [
              ("a", Json.Int 42);
              ("b", Json.List [ Json.Bool true; Json.Null; Json.Float 1.5 ]);
              ("s", Json.String "he said \"hi\"\n\ttab");
            ]
        in
        match Json.of_string (Json.to_string v) with
        | Ok v' -> check_bool "equal after roundtrip" true (v = v')
        | Error e -> Alcotest.failf "parse error: %s" e);
    t "json: rejects malformed input" `Quick (fun () ->
        check_bool "unterminated" true (Result.is_error (Json.of_string "{\"a\": 1"));
        check_bool "bare word" true (Result.is_error (Json.of_string "nope"));
        check_bool "trailing garbage" true (Result.is_error (Json.of_string "1 2")));
    t "json: accessors" `Quick (fun () ->
        match Json.of_string "{\"n\": 3, \"s\": \"x\"}" with
        | Error e -> Alcotest.failf "parse error: %s" e
        | Ok v ->
            check_bool "member n" true (Json.member "n" v = Some (Json.Int 3));
            check_bool "member missing" true (Json.member "z" v = None);
            check_bool "as_int" true (Option.bind (Json.member "n" v) Json.as_int = Some 3));
  ]

(* --- sinks --- *)

let jsonl_cases =
  [
    t "jsonl sink: parseable, step-monotonic, covers the event taxonomy" `Quick (fun () ->
        let path = Filename.temp_file "xsb_trace" ".jsonl" in
        let oc = open_out path in
        let s = session tc_cycle in
        Session.add_sink s (Obs.Sink.Jsonl oc);
        check_int "4 answers" 4 (Session.count s "path(1,X)");
        Session.clear_sinks s;
        close_out oc;
        let lines = In_channel.with_open_text path In_channel.input_lines in
        Sys.remove path;
        check_bool "non-empty trace" true (List.length lines > 10);
        let events =
          List.map
            (fun line ->
              match Json.of_string line with
              | Error e -> Alcotest.failf "unparseable line %S: %s" line e
              | Ok v -> (
                  match Obs.Event.of_json v with
                  | None -> Alcotest.failf "not an event: %S" line
                  | Some ev ->
                      (* the JSON codec is lossless on events *)
                      check_string "event roundtrips through JSON" line
                        (Json.to_string (Obs.Event.to_json ev));
                      ev))
            lines
        in
        let rec monotonic = function
          | (a : Obs.Event.t) :: (b : Obs.Event.t) :: rest ->
              check_bool "seq strictly increasing" true (b.seq > a.seq);
              check_bool "step non-decreasing" true (b.step >= a.step);
              monotonic (b :: rest)
          | _ -> ()
        in
        monotonic events;
        let has k = List.exists (fun (e : Obs.Event.t) -> e.Obs.Event.kind = k) events in
        check_bool "new_subgoal" true (has Obs.Event.New_subgoal);
        check_bool "call" true (has Obs.Event.Call);
        check_bool "answer" true (has Obs.Event.Answer);
        check_bool "dup_answer" true (has Obs.Event.Dup_answer);
        check_bool "suspend" true (has Obs.Event.Suspend);
        check_bool "resume" true (has Obs.Event.Resume);
        check_bool "scc_complete" true
          (List.exists
             (fun (e : Obs.Event.t) ->
               match e.Obs.Event.kind with Obs.Event.Scc_complete _ -> true | _ -> false)
             events);
        check_bool "complete" true (has Obs.Event.Complete));
    t "ring sink: overwrites oldest once full" `Quick (fun () ->
        let ring = Obs.Ring.create 4 in
        check_int "capacity" 4 (Obs.Ring.capacity ring);
        for i = 1 to 10 do
          Obs.Ring.add ring (event ~seq:i Obs.Event.Answer)
        done;
        check_int "length saturates" 4 (Obs.Ring.length ring);
        check_bool "keeps the 4 newest, oldest first" true
          (List.map (fun (e : Obs.Event.t) -> e.Obs.Event.seq) (Obs.Ring.to_list ring)
          = [ 7; 8; 9; 10 ]);
        Obs.Ring.clear ring;
        check_int "clear empties" 0 (Obs.Ring.length ring);
        check_bool "to_list after clear" true (Obs.Ring.to_list ring = []));
    t "pretty sink: stable one-line rendering" `Quick (fun () ->
        check_string "plain event"
          "[    42 @7 sg3 d1] answer        win/1      win(2)"
          (Fmt.str "%a" Obs.Event.pp
             (event ~seq:42 ~step:7 ~subgoal:3 ~depth:1 ~pred:"win/1" ~call:"win(2)"
                Obs.Event.Answer));
        check_string "scc event carries its size"
          "[     1 @0 sg2 d0] scc_complete  p/1        p(1) (scc size 3)"
          (Fmt.str "%a" Obs.Event.pp
             (event ~subgoal:2 ~call:"p(1)" (Obs.Event.Scc_complete 3))));
    t "recorder: inactive without sinks, custom sinks stack" `Quick (fun () ->
        let r = Obs.Recorder.create () in
        check_bool "inactive" false (Obs.Recorder.active r);
        let a = ref 0 and b = ref 0 in
        Obs.Recorder.attach r (Obs.Sink.Custom (fun _ -> incr a));
        Obs.Recorder.attach r (Obs.Sink.Custom (fun _ -> incr b));
        check_bool "active" true (Obs.Recorder.active r);
        Obs.Recorder.emit r ~step:0 ~subgoal:0 ~pred:"p/0" ~call:"p" ~depth:0
          Obs.Event.Call;
        check_int "first sink saw it" 1 !a;
        check_int "second sink saw it" 1 !b;
        Obs.Recorder.clear r;
        check_bool "inactive after clear" false (Obs.Recorder.active r));
  ]

(* --- introspection builtins --- *)

let builtin_cases =
  [
    t "statistics/1 binds the counter list" `Quick (fun () ->
        let s = session tc_cycle in
        check_int "4 answers" 4 (Session.count s "path(1,X)");
        match Session.query s "statistics(S)" with
        | [ { Engine.bindings = [ ("S", term) ]; _ } ] ->
            let text = Term.to_string term in
            let contains key =
              let n = String.length key in
              let rec go i =
                i + n <= String.length text && (String.sub text i n = key || go (i + 1))
              in
              go 0
            in
            List.iter
              (fun key -> check_bool (key ^ " reported") true (contains key))
              [ "subgoals"; "answers"; "suspensions"; "tables" ]
        | _ -> Alcotest.fail "statistics/1 must yield exactly one solution");
    t "table_dump lists completed tables and their answers" `Quick (fun () ->
        let s = session tc_cycle in
        check_int "4 answers" 4 (Session.count s "path(1,X)");
        let dump = Fmt.str "%a" (fun ppf () -> Session.pp_table_dump ppf s) () in
        let contains needle =
          let n = String.length needle in
          let rec go i =
            i + n <= String.length dump && (String.sub dump i n = needle || go (i + 1))
          in
          go 0
        in
        check_bool "mentions the subgoal" true (contains "path(1");
        check_bool "marked complete" true (contains "complete");
        check_bool "an answer is listed" true (contains "path(1,3)"));
    t "get_calls/get_returns enumerate table space" `Quick (fun () ->
        let s = session tc_cycle in
        check_int "4 answers" 4 (Session.count s "path(1,X)");
        check_int "one user table" 1 (Session.count s "get_calls(_)");
        check_int "one answer tuple per return" 4 (Session.count s "get_returns(_,_)");
        check_bool "returns unify with the call" true
          (Session.succeeds s "get_returns(path(1,_), path(1,3))"));
  ]

(* --- the profiling registry --- *)

(* satellite (f): golden --profile rows for the fixed win/not-win chain,
   identical under Local and Batched scheduling (completion work is
   strategy-independent on this program; only answer draining differs) *)
let profile_golden scheduling () =
  let s = session ~scheduling win_chain in
  Session.set_profiling s true;
  check_bool "win(1) fails" true (Session.query s "win(1)" = []);
  let m = Session.metrics s in
  let cell name arity =
    match Obs.Metrics.find m (name, arity) with
    | Some c -> c
    | None -> Alcotest.failf "no profile row for %s/%d" name arity
  in
  let win = cell "win" 1 and move = cell "move" 2 in
  check_int "win/1 calls" 1 win.Obs.Metrics.m_calls;
  check_int "win/1 subgoals (one per position)" 5 win.Obs.Metrics.m_subgoals;
  check_int "win/1 answers (positions 2 and 4)" 2 win.Obs.Metrics.m_answers;
  check_int "win/1 duplicate answers" 0 win.Obs.Metrics.m_dup_answers;
  check_int "win/1 peak table size" 1 win.Obs.Metrics.m_peak_table;
  check_int "move/2 calls" 5 move.Obs.Metrics.m_calls;
  check_int "move/2 answers (never tabled)" 0 move.Obs.Metrics.m_answers;
  check_bool "win/1 some task time sampled" true (win.Obs.Metrics.m_time >= 0.);
  (* the report ranks win/1 (all the answers and time) above move/2 *)
  match Obs.Metrics.rows m with
  | { Obs.Metrics.row_pred = ("win", 1); _ } :: rest ->
      check_bool "move/2 also reported" true
        (List.exists (fun r -> r.Obs.Metrics.row_pred = ("move", 2)) rest)
  | rows ->
      Alcotest.failf "expected win/1 first, got [%s]"
        (String.concat "; "
           (List.map (fun r -> fst r.Obs.Metrics.row_pred) rows))

let profile_cases =
  [
    t "profile goldens on the win chain (local)" `Quick
      (profile_golden Machine.Local);
    t "profile goldens on the win chain (batched)" `Quick
      (profile_golden Machine.Batched);
    t "dup ratio and the JSON report" `Quick (fun () ->
        let s = session tc_cycle in
        Session.set_profiling s true;
        check_int "4 answers" 4 (Session.count s "path(1,X)");
        let m = Session.metrics s in
        let path =
          match Obs.Metrics.find m ("path", 2) with
          | Some c -> c
          | None -> Alcotest.fail "no path/2 row"
        in
        check_bool "cycle rederives answers" true (path.Obs.Metrics.m_dup_answers > 0);
        let ratio = Obs.Metrics.dup_ratio path in
        check_bool "ratio in (0,1)" true (ratio > 0. && ratio < 1.);
        match Obs.Metrics.report_to_json m with
        | Json.List (Json.Obj fields :: _) ->
            check_bool "rows carry predicate names" true
              (match List.assoc_opt "pred" fields with
              | Some (Json.String _) -> true
              | _ -> false)
        | _ -> Alcotest.fail "report_to_json must be a list of objects");
    t "set_profiling off stops sampling; re-enabling resets" `Quick (fun () ->
        let s = session tc_cycle in
        Session.set_profiling s true;
        check_int "4 answers" 4 (Session.count s "path(1,X)");
        Session.set_profiling s false;
        let before = Engine.call_count (Session.engine s) "path" 2 in
        check_int "cached table" 4 (Session.count s "path(1,X)");
        check_int "no sampling while disabled" before
          (Engine.call_count (Session.engine s) "path" 2);
        Session.set_profiling s true;
        check_int "re-enabling resets the registry" 0
          (Engine.call_count (Session.engine s) "path" 2));
  ]

(* --- satellite (b): counters survive nothing — abolish resets stats --- *)

let reset_cases =
  [
    t "abolish_all_tables resets the evaluation counters" `Quick (fun () ->
        (* a mutual-recursion SCC of size 2, so a stale maximum would be
           clearly visible after the reset (the PR 3 bugfix satellite:
           st_max_scc_size and friends must not leak across abolishes) *)
        let s =
          session
            ":- table p/1, q/1.\n\
             p(X) :- edge(X,Y), q(Y).\n\
             q(X) :- edge(X,Y), p(Y).\n\
             q(2).\n\
             edge(1,2). edge(2,1)."
        in
        check_bool "p(1) holds" true (Session.succeeds s "p(1)");
        let st = Session.stats s in
        check_bool "counters populated" true
          (st.Machine.st_subgoals > 2 && st.Machine.st_max_scc_size >= 2
         && st.Machine.st_answers >= 2);
        check_bool "abolish succeeds" true (Session.succeeds s "abolish_all_tables");
        (* [stats] is the live record: the reset must be visible through
           the same reference. The abolish query itself runs after the
           reset, so only its own $query footprint may remain. *)
        check_bool "subgoals reset" true (st.Machine.st_subgoals <= 1);
        check_bool "answers reset" true (st.Machine.st_answers <= 1);
        check_bool "max-scc reset" true (st.Machine.st_max_scc_size <= 1);
        check_bool "sccs-completed reset" true (st.Machine.st_sccs_completed <= 1);
        check_bool "suspensions reset" true (st.Machine.st_suspensions = 0);
        (* and the engine still works after the reset *)
        check_bool "p(1) still holds" true (Session.succeeds s "p(1)");
        check_bool "fresh counters" true (st.Machine.st_max_scc_size >= 2));
    t "Engine.reset_tables resets the counters too" `Quick (fun () ->
        let s = session tc_cycle in
        check_int "4 answers" 4 (Session.count s "path(1,X)");
        let st = Session.stats s in
        check_bool "counters populated" true (st.Machine.st_answers > 0);
        Engine.reset_tables (Session.engine s);
        check_int "answers reset" 0 st.Machine.st_answers;
        check_int "suspensions reset" 0 st.Machine.st_suspensions;
        check_int "resolutions reset" 0 st.Machine.st_resolutions);
  ]

let suite = json_cases @ jsonl_cases @ builtin_cases @ profile_cases @ reset_cases
