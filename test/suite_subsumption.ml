(* Call-subsumption tabling (ISSUE PR 7).

   [:- table p/N as subsumption.] makes subgoal lookup search the
   per-predicate call index for a table whose subgoal subsumes the new
   call. On a hit the call becomes a subsumed consumer of the more
   general table — no generator of its own — and its answers are the
   producer's answers filtered through unification, retrieved
   incrementally through the time-stamped answer index. These are the
   engine-level regressions: late consumers, completion, interaction
   with invalidation, and bounded-query interruption. *)

open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* every solution as one string; [query_all] keeps duplicates so tests
   can assert each answer arrives exactly once *)
let sols_of answers =
  List.map
    (fun (sol : Engine.solution) ->
      String.concat "," (List.map (fun (_, v) -> Term.to_string v) sol.Engine.bindings))
    answers

let query_all s goal = List.sort compare (sols_of (Session.query s goal))
let query_set s goal = List.sort_uniq compare (sols_of (Session.query s goal))

let reach_rules = "p(X,Y) :- edge(X,Y).\np(X,Z) :- p(X,Y), edge(Y,Z).\n"
let cyclic_edges = "edge(1,2). edge(2,3). edge(3,1). edge(3,4). edge(5,6).\n"
let reach_sub = ":- table p/2 as subsumption.\n" ^ cyclic_edges ^ reach_rules
let reach_var = ":- table p/2.\n" ^ cyclic_edges ^ reach_rules

let late_consumer_cases =
  [
    t "a late specific call is served from the completed general table" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s reach_sub;
        check_bool "general answers" true (query_set s "p(X,Y)" <> []);
        let subgoals = (Session.stats s).Machine.st_subgoals in
        let answers = query_all s "p(1,C)" in
        check_bool "each answer exactly once" true
          (answers = List.sort_uniq compare answers);
        check_bool "all reachable from 1" true (answers = [ "1"; "2"; "3"; "4" ]);
        (* only the private $query table appears: the specific call made
           no generator and no table of its own *)
        check_int "no new p table" (subgoals + 1) (Session.stats s).Machine.st_subgoals;
        check_bool "hit counted" true
          ((Session.stats s).Machine.st_subsumption_hits >= 1
          && (Session.stats s).Machine.st_subsumed_calls >= 1));
    t "several specific calls share one general table" `Quick (fun () ->
        let run text =
          let s = Session.create () in
          Session.consult s text;
          ignore (Session.query s "p(X,Y)");
          let answers =
            List.map (fun g -> query_all s g) [ "p(1,C)"; "p(2,C)"; "p(5,C)"; "p(4,C)" ]
          in
          (answers, (Session.stats s).Machine.st_subgoals)
        in
        let sub_answers, sub_tables = run reach_sub in
        let var_answers, var_tables = run reach_var in
        check_bool "same answers as variant tabling" true (sub_answers = var_answers);
        (* completed-table specifics make no table under either mode
           (bound calls over a completed general table were already
           index-served), so the counts merely must not regress *)
        check_bool "no more tables than variant" true (sub_tables <= var_tables));
    t "in-evaluation specific calls create no tables of their own" `Quick (fun () ->
        (* a join [p(A,B), p(B,Z)] issues bound calls while the general
           table is still producing: variant tabling opens a generator
           table per distinct bound call, a subsumed consumer opens none *)
        let run text =
          let s = Session.create ~scheduling:Machine.Batched () in
          Session.consult s (text ^ "r(Z) :- p(A,B), p(B,Z).\n");
          let answers = query_set s "r(Z)" in
          (answers, (Session.stats s).Machine.st_subgoals)
        in
        let sub_answers, sub_tables = run reach_sub in
        let var_answers, var_tables = run reach_var in
        check_bool "same answers as variant tabling" true (sub_answers = var_answers);
        check_bool "strictly fewer tables" true (sub_tables < var_tables));
    t "a subsumed variant call is still served" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s reach_sub;
        ignore (Session.query s "p(X,Y)");
        let before = (Session.stats s).Machine.st_subgoals in
        (* a variant of the completed subgoal is an instance of it too *)
        check_bool "variant re-query" true (query_set s "p(A,B)" <> []);
        check_int "served from the table" (before + 1) (Session.stats s).Machine.st_subgoals);
  ]

let completion_cases =
  let schedulings = [ Machine.Batched; Machine.Local ] in
  [
    t "an in-evaluation subsumed consumer completes without deadlock" `Quick (fun () ->
        List.iter
          (fun sched ->
            let name = Machine.scheduling_to_string sched in
            let s = Session.create ~scheduling:sched () in
            Session.consult s (reach_sub ^ "r(Z) :- p(A,B), p(1,Z).\n");
            let v = Session.create ~scheduling:sched () in
            Session.consult v (reach_var ^ "r(Z) :- p(A,B), p(1,Z).\n");
            check_bool (name ^ ": same answers") true
              (query_set s "r(Z)" = query_set v "r(Z)");
            check_bool (name ^ ": consumer went through the index") true
              ((Session.stats s).Machine.st_subsumption_hits >= 1))
          schedulings);
    t "subsumption across a mutually recursive SCC is not completed early" `Quick (fun () ->
        List.iter
          (fun sched ->
            let name = Machine.scheduling_to_string sched in
            let program mode_lines =
              mode_lines ^ cyclic_edges
              ^ "p(X,Y) :- edge(X,Y).\n\
                 p(X,Z) :- q(X,Y), edge(Y,Z).\n\
                 q(X,Y) :- p(X,Y).\n"
            in
            let s = Session.create ~scheduling:sched () in
            Session.consult s
              (program ":- table p/2 as subsumption.\n:- table q/2 as subsumption.\n");
            let v = Session.create ~scheduling:sched () in
            Session.consult v (program ":- table p/2, q/2.\n");
            List.iter
              (fun g ->
                check_bool (name ^ ": " ^ g) true (query_set s g = query_set v g))
              [ "q(A,B), p(1,C)"; "p(3,C)"; "q(5,C)" ])
          schedulings);
    t "a non-linear subsumed call filters candidate answers" `Quick (fun () ->
        (* batched: p(Z,Z) suspends on the incomplete general table, and
           its drains retrieve by the skeleton p(Z,Z) — the trie does not
           check the non-linear constraint, so candidates like p(1,2)
           reach unification and are rejected there *)
        let s = Session.create ~scheduling:Machine.Batched () in
        Session.consult s (reach_sub ^ "d(Z) :- p(A,B), p(Z,Z).\n");
        check_bool "diagonal answers" true (query_set s "d(Z)" = [ "1"; "2"; "3" ]);
        check_bool "rejections counted" true
          ((Session.stats s).Machine.st_answers_filtered >= 1));
  ]

let invalidation_cases =
  [
    t "a mutation taints the subsuming table before a specific call" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s (":- table p/2 as subsumption.\n" ^ reach_rules);
        check_bool "seed" true (Session.succeeds s "assert(edge(1,2))");
        check_bool "general" true (query_set s "p(X,Y)" = [ "1,2" ]);
        check_bool "grow" true (Session.succeeds s "assert(edge(2,3))");
        (* the completed general table is no longer trustworthy: the
           specific call must not be served its stale answers *)
        check_bool "specific sees the new edge" true (query_set s "p(1,C)" = [ "2"; "3" ]);
        check_bool "general again" true (query_set s "p(X,Y)" = [ "1,2"; "1,3"; "2,3" ]));
    t "retract after a subsumed call leaves no stale answers" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s (":- table p/2 as subsumption.\n" ^ reach_rules);
        check_bool "e12" true (Session.succeeds s "assert(edge(1,2))");
        check_bool "e23" true (Session.succeeds s "assert(edge(2,3))");
        ignore (Session.query s "p(X,Y)");
        check_bool "warm specific" true (query_set s "p(1,C)" = [ "2"; "3" ]);
        check_bool "retract" true (Session.succeeds s "retract(edge(2,3))");
        check_bool "specific after retract" true (query_set s "p(1,C)" = [ "2" ]));
  ]

let bounded_cases =
  [
    t "table space is consistent after a bounded-query timeout" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s reach_sub;
        let e = Session.engine s in
        (match Engine.run_bounded_string ~max_steps:10 e "p(X,Y)" with
        | `Timeout _ -> ()
        | `Answers _ | `Truncated _ -> Alcotest.fail "expected a timeout");
        (* the interrupted evaluation's tables were abandoned; the next
           queries recompute from scratch, including a subsumed call *)
        check_bool "general recomputes" true
          (List.length (query_set s "p(X,Y)") = 13);
        check_bool "specific served" true (query_set s "p(1,C)" = [ "1"; "2"; "3"; "4" ]);
        check_bool "subsumption still active" true
          ((Session.stats s).Machine.st_subsumption_hits >= 1));
    t "a timeout while consuming a subsumed call keeps later queries exact" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s reach_sub;
        ignore (Session.query s "p(X,Y)");
        let e = Session.engine s in
        (* whatever the bounded outcome, the engine must stay usable and
           exact afterwards *)
        (match Engine.run_bounded_string ~max_steps:1 e "p(1,C)" with
        | `Timeout _ | `Answers _ | `Truncated _ -> ());
        check_bool "specific exact afterwards" true
          (query_all s "p(1,C)" = [ "1"; "2"; "3"; "4" ]));
  ]

let suite = late_consumer_cases @ completion_cases @ invalidation_cases @ bounded_cases
