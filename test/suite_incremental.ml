(* Incremental tabling and answer subsumption (ISSUE PR 6).

   [:- table p/N as incremental.] tables track which dynamic predicates
   their derivations read; an assert/retract invalidates only the
   completed tables that transitively depend on the mutated predicate,
   and a pure clause addition to a negation-free incremental table is
   repaired in place instead of recomputed. [:- table p/N as
   subsumptive(op).] folds answers that share their key columns (all
   arguments but the last) into a single answer under the declared
   lattice operation. *)

open Xsb

let t = Alcotest.test_case
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ints_of q_answers =
  List.sort_uniq compare
    (List.map
       (fun (sol : Engine.solution) ->
         match sol.Engine.bindings with
         | [ (_, v) ] -> Term.to_string v
         | _ -> Alcotest.fail "expected one binding")
       q_answers)

let query_ints s goal = ints_of (Session.query s goal)

(* answers of a goal with exactly two bindings, as string pairs *)
let query_pairs s goal =
  List.sort_uniq compare
    (List.map
       (fun (sol : Engine.solution) ->
         match sol.Engine.bindings with
         | [ (_, a); (_, b) ] -> (Term.to_string a, Term.to_string b)
         | _ -> Alcotest.fail "expected two bindings")
       (Session.query s goal))

let assert_ s text = check_bool ("assert " ^ text) true (Session.succeeds s ("assert(" ^ text ^ ")"))
let retract s text = check_bool ("retract " ^ text) true (Session.succeeds s ("retract(" ^ text ^ ")"))

let mode_cases =
  [
    t "table ... as incremental parses and sets the mode" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s ":- table p/2 as incremental, q/2.\np(1,2).\nq(3,4).";
        let mode name =
          match Database.find (Session.db s) name 2 with
          | Some p -> Pred.table_mode p
          | None -> Alcotest.failf "%s/2 missing" name
        in
        check_bool "p incremental" true (mode "p" = Pred.Incremental);
        check_bool "q variant" true (mode "q" = Pred.Variant);
        check_bool "both tabled" true
          (match (Database.find (Session.db s) "p" 2, Database.find (Session.db s) "q" 2) with
          | Some p, Some q -> Pred.tabled p && Pred.tabled q
          | _ -> false));
    t "table ... as subsumptive(op) parses every op" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s
          ":- table m1/2 as subsumptive(min).\n\
           :- table m2/2 as subsumptive(max).\n\
           :- table m3/2 as subsumptive(sum).\n\
           :- table m4/2 as subsumptive(count).\n\
           :- table m5/2 as subsumptive(first).";
        let mode name =
          match Database.find (Session.db s) name 2 with
          | Some p -> Pred.table_mode p
          | None -> Alcotest.failf "%s/2 missing" name
        in
        let open Answer_store.Subsumption in
        check_bool "min" true (mode "m1" = Pred.Subsumptive Min);
        check_bool "max" true (mode "m2" = Pred.Subsumptive Max);
        check_bool "sum" true (mode "m3" = Pred.Subsumptive Sum);
        check_bool "count" true (mode "m4" = Pred.Subsumptive Count);
        check_bool "first" true (mode "m5" = Pred.Subsumptive First));
    t "an unknown table mode is a load error" `Quick (fun () ->
        let s = Session.create () in
        match Session.consult s ":- table p/2 as bogus." with
        | exception _ -> ()
        | () -> Alcotest.fail "expected a load error");
    t "contradictory table-mode redeclarations are a typed error" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s ":- table p/2 as incremental.";
        (match Session.consult s ":- table p/2 as subsumption." with
        | exception
            Database.Table_mode_conflict
              {
                name = "p";
                arity = 2;
                existing = Pred.Incremental;
                requested = Pred.Subsumption;
              } ->
            ()
        | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
        | () -> Alcotest.fail "expected Table_mode_conflict");
        (* the mode survives the rejected redeclaration *)
        check_bool "mode unchanged" true
          (match Database.find (Session.db s) "p" 2 with
          | Some p -> Pred.table_mode p = Pred.Incremental
          | None -> false);
        (* a same-mode redeclaration stays idempotent — journal replay
           re-applies Set_table_mode records and must never raise *)
        Session.consult s ":- table p/2 as incremental.";
        (* plain tabling first, then a mode: an upgrade, not a conflict *)
        Session.consult s ":- table q/2.\n:- table q/2 as subsumption.";
        check_bool "variant upgrades" true
          (match Database.find (Session.db s) "q" 2 with
          | Some q -> Pred.table_mode q = Pred.Subsumption
          | None -> false));
  ]

let reach_program =
  ":- table reach/2 as incremental.\n\
   reach(X,Y) :- edge(X,Y).\n\
   reach(X,Z) :- reach(X,Y), edge(Y,Z)."

let incremental_cases =
  [
    t "a pure addition is repaired in place, keeping old answers" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s reach_program;
        assert_ s "edge(1,2)";
        assert_ s "edge(2,3)";
        check_bool "warm" true (query_ints s "reach(1,X)" = [ "2"; "3" ]);
        assert_ s "edge(3,4)";
        check_int "nothing invalidated" 0 (Session.stats s).Machine.st_invalidations;
        check_bool "new answer after repair" true (query_ints s "reach(1,X)" = [ "2"; "3"; "4" ]);
        check_int "one repair" 1 (Session.stats s).Machine.st_repairs);
    t "a retract invalidates, and the re-evaluation is correct" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s reach_program;
        assert_ s "edge(1,2)";
        assert_ s "edge(2,3)";
        check_bool "warm" true (query_ints s "reach(1,X)" = [ "2"; "3" ]);
        retract s "edge(2,3)";
        check_bool "answer gone" true (query_ints s "reach(1,X)" = [ "2" ]);
        check_bool "invalidated, not repaired" true
          ((Session.stats s).Machine.st_invalidations >= 1
          && (Session.stats s).Machine.st_repairs = 0));
    t "only dependent tables are invalidated" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s
          ":- table r1/1 as incremental.\n\
           :- table r2/1 as incremental.\n\
           r1(X) :- d(X).\n\
           r2(X) :- e(X).";
        assert_ s "d(1)";
        assert_ s "e(1)";
        check_bool "r1" true (query_ints s "r1(X)" = [ "1" ]);
        check_bool "r2" true (query_ints s "r2(X)" = [ "1" ]);
        retract s "d(1)";
        check_int "exactly one table dropped" 1 (Session.stats s).Machine.st_invalidations;
        (* r2 is served from the surviving table: re-querying creates
           only the private $query table, not a new r2 table *)
        let before = (Session.stats s).Machine.st_subgoals in
        check_bool "r2 warm" true (query_ints s "r2(X)" = [ "1" ]);
        check_int "no new r2 table" (before + 1) (Session.stats s).Machine.st_subgoals;
        check_bool "r1 recomputed empty" true (query_ints s "r1(X)" = []));
    t "an unrelated assert leaves every table warm" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s reach_program;
        assert_ s "edge(1,2)";
        check_bool "warm" true (query_ints s "reach(1,X)" = [ "2" ]);
        assert_ s "noise(99)";
        check_int "nothing invalidated" 0 (Session.stats s).Machine.st_invalidations;
        let before = (Session.stats s).Machine.st_subgoals in
        check_bool "still answers" true (query_ints s "reach(1,X)" = [ "2" ]);
        check_int "served from the warm table" (before + 1) (Session.stats s).Machine.st_subgoals;
        check_int "no repair either" 0 (Session.stats s).Machine.st_repairs);
    t "additions through negation invalidate instead of repairing" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s ":- table safe/1 as incremental.\nsafe(X) :- node(X), tnot(bad(X)).";
        assert_ s "node(1)";
        assert_ s "node(2)";
        assert_ s "bad(2)";
        check_bool "initial" true (query_ints s "safe(X)" = [ "1" ]);
        (* a pure addition, but the table's derivations used negation:
           repairing in place would be unsound in general, so it is
           recomputed *)
        assert_ s "node(3)";
        check_bool "invalidated" true ((Session.stats s).Machine.st_invalidations >= 1);
        check_int "never repaired" 0 (Session.stats s).Machine.st_repairs;
        check_bool "correct after recompute" true (query_ints s "safe(X)" = [ "1"; "3" ]);
        assert_ s "bad(1)";
        check_bool "negative change handled" true (query_ints s "safe(X)" = [ "3" ]));
    t "variant tables are invalidated on any relevant write" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s ":- table r/1.\nr(X) :- d(X).";
        assert_ s "d(1)";
        check_bool "initial" true (query_ints s "r(X)" = [ "1" ]);
        assert_ s "d(2)";
        check_bool "fresh answers" true (query_ints s "r(X)" = [ "1"; "2" ]);
        check_bool "dropped, not repaired" true
          ((Session.stats s).Machine.st_invalidations >= 1
          && (Session.stats s).Machine.st_repairs = 0));
    t "a static-predicate write conservatively touches everything" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s ":- table r/1 as incremental.\nr(X) :- d(X).";
        assert_ s "d(1)";
        check_bool "initial" true (query_ints s "r(X)" = [ "1" ]);
        (* static-predicate reads are not tracked, so every completed
           table is conservatively affected. An addition is still
           monotone: the negation-free incremental table is repaired in
           place rather than dropped *)
        let db = Session.db s in
        let p = Database.declare db "sfact" 1 in
        let head = Term.app "sfact" [ Term.Int 9 ] in
        let clause = Database.insert_clause db p ~head ~body:(Term.Atom "true") in
        check_int "addition does not invalidate" 0 (Session.stats s).Machine.st_invalidations;
        check_bool "still correct" true (query_ints s "r(X)" = [ "1" ]);
        check_int "repaired instead" 1 (Session.stats s).Machine.st_repairs;
        (* a static retract is not monotone and has no dependency
           records: every completed table must go *)
        Database.retract_clause db p clause;
        check_bool "invalidated" true ((Session.stats s).Machine.st_invalidations >= 1);
        check_bool "correct after recompute" true (query_ints s "r(X)" = [ "1" ]));
    t "invalidations and repairs are observable events" `Quick (fun () ->
        let s = Session.create () in
        let ring = Obs.Ring.create 128 in
        Session.add_sink s (Obs.Sink.Ring ring);
        Session.consult s reach_program;
        assert_ s "edge(1,2)";
        ignore (Session.query s "reach(1,X)");
        assert_ s "edge(2,3)";
        ignore (Session.query s "reach(1,X)");
        retract s "edge(2,3)";
        ignore (Session.query s "reach(1,X)");
        let kinds = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.kind) (Obs.Ring.to_list ring) in
        check_bool "repair event" true
          (List.exists (function Obs.Event.Repair _ -> true | _ -> false) kinds);
        check_bool "invalidate event" true
          (List.exists (function Obs.Event.Invalidate _ -> true | _ -> false) kinds));
  ]

let sp_program =
  "edge(a,b,3). edge(a,b,1). edge(b,c,5). edge(a,c,10). edge(c,d,1).\n\
   sp(X,Y,C) :- edge(X,Y,C).\n\
   sp(X,Z,C) :- sp(X,Y,C1), edge(Y,Z,C2), C is C1 + C2."

let subsumptive_cases =
  [
    t "subsumptive(min) keeps one minimal answer per key" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s (":- table sp/3 as subsumptive(min).\n" ^ sp_program);
        let answers = query_pairs s "sp(a,Y,C)" in
        check_bool "one answer per target, each minimal" true
          (answers = [ ("b", "1"); ("c", "6"); ("d", "7") ]));
    t "subsumptive(min) matches the non-subsumptive minima" `Quick (fun () ->
        let subsumed = Session.create () in
        Session.consult subsumed (":- table sp/3 as subsumptive(min).\n" ^ sp_program);
        let plain = Session.create () in
        Session.consult plain (":- table sp/3.\n" ^ sp_program);
        let minima answers =
          let best = Hashtbl.create 8 in
          List.iter
            (fun (y, c) ->
              let c = int_of_string c in
              match Hashtbl.find_opt best y with
              | Some c' when c' <= c -> ()
              | _ -> Hashtbl.replace best y c)
            answers;
          List.sort compare (Hashtbl.fold (fun y c acc -> (y, string_of_int c) :: acc) best [])
        in
        check_bool "same minima" true
          (query_pairs subsumed "sp(a,Y,C)" = minima (query_pairs plain "sp(a,Y,C)")));
    t "subsumptive(min) terminates on a cyclic graph" `Quick (fun () ->
        let s = Session.create () in
        Engine.set_max_steps (Session.engine s) 500_000;
        Session.consult s
          ":- table sp/3 as subsumptive(min).\n\
           edge(a,b,1). edge(b,a,1). edge(b,c,2).\n\
           sp(X,Y,C) :- edge(X,Y,C).\n\
           sp(X,Z,C) :- sp(X,Y,C1), edge(Y,Z,C2), C is C1 + C2.";
        check_bool "shortest distances" true
          (query_pairs s "sp(a,Y,C)" = [ ("a", "2"); ("b", "1"); ("c", "3") ]));
    t "subsumptive max / sum / count / first" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s
          ":- table hi/2 as subsumptive(max).\n\
           :- table tot/2 as subsumptive(sum).\n\
           :- table n/2 as subsumptive(count).\n\
           :- table fst/2 as subsumptive(first).\n\
           item(a,1). item(a,2). item(a,2). item(b,5).\n\
           hi(K,V) :- item(K,V).\n\
           tot(K,V) :- item(K,V).\n\
           n(K,V) :- item(K,V).\n\
           fst(K,V) :- item(K,V).";
        check_bool "max" true (query_pairs s "hi(K,V)" = [ ("a", "2"); ("b", "5") ]);
        (* the duplicate item(a,2) contributes once: raw answers are
           deduplicated before folding *)
        check_bool "sum" true (query_pairs s "tot(K,V)" = [ ("a", "3"); ("b", "5") ]);
        check_bool "count" true (query_pairs s "n(K,V)" = [ ("a", "2"); ("b", "1") ]);
        check_bool "first" true (query_pairs s "fst(K,V)" = [ ("a", "1"); ("b", "5") ]);
        check_bool "folds counted" true ((Session.stats s).Machine.st_folds >= 3));
    t "subsumptive folding over floats and mixed numerics" `Quick (fun () ->
        let s = Session.create () in
        Session.consult s
          ":- table lo/2 as subsumptive(min).\n\
           cost(x,2.5). cost(x,2). cost(y,1.0).\n\
           lo(K,V) :- cost(K,V).";
        check_bool "mixed min" true (query_pairs s "lo(K,V)" = [ ("x", "2"); ("y", "1") ]));
  ]

let journal_cases =
  [
    t "table modes round-trip through the journal mutation" `Quick (fun () ->
        let mode = Pred.Subsumptive Answer_store.Subsumption.Min in
        let m =
          Journal.of_db_mutation (Database.Table_mode_pred { name = "sp"; arity = 3; mode })
        in
        let db = Database.create () in
        Journal.apply_mutation db m;
        match Database.find db "sp" 3 with
        | Some p ->
            check_bool "tabled" true (Pred.tabled p);
            check_bool "mode restored" true (Pred.table_mode p = mode)
        | None -> Alcotest.fail "sp/3 missing after replay");
  ]

let suite = mode_cases @ incremental_cases @ subsumptive_cases @ journal_cases
