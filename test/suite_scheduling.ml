(* Completion-order regressions for the incremental SCC-based completion
   (ISSUE PR 2): under Local scheduling, inner SCCs must be completed
   before outer ones — long before the global fixpoint — and the event
   stream must carry one [Complete] event per subgoal at the moment its
   SCC is closed (recorded here through the ring-buffer sink). *)

open Xsb

let pred_of_event s = match String.index_opt s '(' with Some i -> String.sub s 0 i | None -> s

(* run [goal] and collect the [Complete]-event stream for [preds],
   together with the final stats *)
let run_traced ?(scheduling = Machine.Local) ~preds program goal =
  let s = Session.create ~scheduling () in
  let ring = Obs.Ring.create 4096 in
  Session.add_sink s (Obs.Sink.Ring ring);
  Session.consult s program;
  let solutions = Session.query s goal in
  let events =
    List.filter_map
      (fun (e : Obs.Event.t) ->
        if e.kind = Obs.Event.Complete && List.mem (pred_of_event e.call) preds then Some e.call
        else None)
      (Obs.Ring.to_list ring)
  in
  (events, Session.stats s, solutions)

let position events prefix =
  let rec go i = function
    | [] -> Alcotest.failf "no \"complete\" event matching %s in [%s]" prefix (String.concat "; " events)
    | e :: rest ->
        if String.length e >= String.length prefix && String.sub e 0 (String.length prefix) = prefix
        then i
        else go (i + 1) rest
  in
  go 0 events

let win_chain =
  ":- table win/1.\n\
   win(X) :- move(X,Y), tnot(win(Y)).\n\
   move(1,2). move(2,3). move(3,4). move(4,5)."

(* satellite: golden test of the exact "complete" event stream — the win
   chain closes its positions innermost-first, one SCC per position *)
let test_win_event_stream () =
  let events, stats, solutions = run_traced ~preds:[ "win" ] win_chain "win(1)" in
  Alcotest.(check (list string))
    "completion order, innermost first"
    [ "win(5)"; "win(4)"; "win(3)"; "win(2)"; "win(1)" ]
    events;
  (* positions 1..5 with 4 moves: the first player loses *)
  Alcotest.(check bool) "win(1) fails" true (solutions = []);
  (* 5 win/1 positions + the $query table, each a singleton SCC *)
  Alcotest.(check int) "one SCC per position" 6 stats.Machine.st_sccs_completed;
  Alcotest.(check int) "all closed before the fixpoint" 6 stats.Machine.st_early_completions;
  Alcotest.(check int) "max SCC size" 1 stats.Machine.st_max_scc_size

(* the same stream must also be emitted under Batched — incremental
   completion is strategy-independent, only answer draining differs *)
let test_win_event_stream_batched () =
  let events, stats, _ =
    run_traced ~scheduling:Machine.Batched ~preds:[ "win" ] win_chain "win(1)"
  in
  Alcotest.(check (list string))
    "completion order, innermost first"
    [ "win(5)"; "win(4)"; "win(3)"; "win(2)"; "win(1)" ]
    events;
  Alcotest.(check bool) "completions counted" true (stats.Machine.st_completions >= 5)

let chain_edges = "edge(1,2). edge(2,3). edge(3,4). edge(4,5)."

let test_right_recursive_order () =
  let program =
    ":- table path/2.\n\
     path(X,Y) :- edge(X,Y).\n\
     path(X,Y) :- edge(X,Z), path(Z,Y).\n" ^ chain_edges
  in
  let events, stats, solutions = run_traced ~preds:[ "path" ] program "path(1,Y)" in
  Alcotest.(check int) "all reachable" 4 (List.length solutions);
  (* path(5,_) is the innermost SCC, path(1,_) the outermost *)
  Alcotest.(check bool) "path(5) before path(4)" true (position events "path(5" < position events "path(4");
  Alcotest.(check bool) "path(4) before path(3)" true (position events "path(4" < position events "path(3");
  Alcotest.(check bool) "path(2) before path(1)" true (position events "path(2" < position events "path(1");
  (* 5 path/2 subgoals + the $query table, each a singleton SCC *)
  Alcotest.(check int) "six singleton SCCs" 6 stats.Machine.st_sccs_completed;
  Alcotest.(check bool) "closed before the fixpoint" true (stats.Machine.st_early_completions >= 5)

let test_left_recursive_order () =
  let program =
    ":- table path/2.\n\
     path(X,Y) :- path(X,Z), edge(Z,Y).\n\
     path(X,Y) :- edge(X,Y).\n" ^ chain_edges
  in
  let events, stats, solutions = run_traced ~preds:[ "path" ] program "path(1,Y)" in
  (* left recursion only ever calls the variant path(1,_): one self-loop SCC *)
  Alcotest.(check int) "all reachable" 4 (List.length solutions);
  Alcotest.(check (list string)) "single table" [ List.hd events ] events;
  (* the self-loop SCC of path(1,_) plus the $query table *)
  Alcotest.(check int) "one SCC" 2 stats.Machine.st_sccs_completed;
  Alcotest.(check bool) "closed before the fixpoint" true (stats.Machine.st_early_completions >= 1)

let test_double_recursive_order () =
  let program =
    ":- table path/2.\n\
     path(X,Y) :- edge(X,Y).\n\
     path(X,Y) :- path(X,Z), path(Z,Y).\n" ^ chain_edges
  in
  let events, stats, solutions = run_traced ~preds:[ "path" ] program "path(1,Y)" in
  Alcotest.(check int) "all reachable" 4 (List.length solutions);
  (* inner suffix tables close before the outer query table *)
  Alcotest.(check bool) "path(5) before path(1)" true (position events "path(5" < position events "path(1");
  Alcotest.(check bool) "path(4) before path(1)" true (position events "path(4" < position events "path(1");
  Alcotest.(check bool) "path(3) before path(1)" true (position events "path(3" < position events "path(1");
  Alcotest.(check bool) "closed before the fixpoint" true (stats.Machine.st_early_completions >= 1)

(* mutual recursion over a cyclic graph: the subgoals p(1) and q(2) call
   each other, so they must fall into one SCC of size 2 and be completed
   together *)
let test_mutual_scc () =
  let program =
    ":- table p/1, q/1.\n\
     p(X) :- edge(X,Y), q(Y).\n\
     q(X) :- edge(X,Y), p(Y).\n\
     q(2).\n\
     edge(1,2). edge(2,1)."
  in
  let events, stats, solutions = run_traced ~preds:[ "p"; "q" ] program "p(1)" in
  Alcotest.(check bool) "p(1) holds" true (solutions <> []);
  Alcotest.(check bool) "p and q share an SCC" true (stats.Machine.st_max_scc_size >= 2);
  (* every table gets exactly one complete event ($query1 is filtered) *)
  Alcotest.(check int) "one complete event per table" (stats.Machine.st_completions - 1)
    (List.length events)

let suite =
  [
    Alcotest.test_case "win chain: golden complete-event stream (local)" `Quick
      test_win_event_stream;
    Alcotest.test_case "win chain: golden complete-event stream (batched)" `Quick
      test_win_event_stream_batched;
    Alcotest.test_case "right-recursive tc completes inner SCCs first" `Quick
      test_right_recursive_order;
    Alcotest.test_case "left-recursive tc is a single self-loop SCC" `Quick
      test_left_recursive_order;
    Alcotest.test_case "double-recursive tc completes inner SCCs first" `Quick
      test_double_recursive_order;
    Alcotest.test_case "mutual recursion forms one SCC" `Quick test_mutual_scc;
  ]
